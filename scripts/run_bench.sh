#!/usr/bin/env bash
# Build and run the hot-path benchmark; optionally append the JSON
# trajectory point to the file the repo commits as BENCH_hotpath.json.
#
# Usage:
#   scripts/run_bench.sh                 # full run, human-readable
#   scripts/run_bench.sh --json          # full run, append to BENCH_hotpath.json
#   scripts/run_bench.sh --json --smoke  # fast run -> BENCH_hotpath.smoke.json
#   scripts/run_bench.sh --workers 1,2,4,8   # server-worker sweep for section 4
#   scripts/run_bench.sh --build-dir out # custom build directory
#
# BENCH_hotpath.json is a JSON *array* of runs — the perf trajectory; each
# --json invocation appends one run (a legacy single-object file is wrapped
# into the first trajectory point automatically).  Smoke output goes to a
# separate file so reproducing the CI step locally can never clobber the
# committed full-run trajectory (smoke throughput is noise-dominated; only
# its structural assertions are comparable).
#
# Since PR 6 each run object also carries a "compression" section: twin
# CM1 runs (raw vs xor+lzs) through the real emit pipeline onto real disk
# — bytes-to-disk, achieved ratio, and spare-time utilization.
#
# Since PR 7 the worker-scaling section records its measurement mode
# (wall_clock on >= 4-core hosts, modeled otherwise) and a
# "skewed_clients" section compares pinned vs. work-stealing pools under
# a hot-client mix, with a posix twin proving parked workers drained the
# write-behind queue.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
json=0
smoke=0
workers=""
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --json)  json=1; shift ;;
    --smoke) smoke=1; shift ;;
    --workers)
      [[ $# -ge 2 ]] || { echo "error: --workers needs a list, e.g. 1,2,4" >&2; exit 2; }
      workers="$2"; shift 2 ;;
    --build-dir)
      [[ $# -ge 2 ]] || { echo "error: --build-dir needs a path" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    -j|--jobs)
      [[ $# -ge 2 ]] || { echo "error: $1 needs a number" >&2; exit 2; }
      jobs="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,11p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs" --target bench_hotpath

# Appends one run object to a trajectory file (a JSON array of runs).
append_trajectory() {
  local target="$1" newrun="$2" tmp="$1.tmp"
  if [[ ! -s "$target" ]]; then
    { echo "["; cat "$newrun"; echo "]"; } > "$target"
    return
  fi
  if [[ "$(head -c 1 "$target")" == "[" ]]; then
    # The append rewrites textually, so insist on the format this script
    # itself produces (closing "]" alone on the last line) rather than
    # silently corrupting a reformatted file.
    if [[ "$(tail -n 1 "$target")" != "]" ]]; then
      echo "error: $target is not in this script's trajectory format" \
           "(expected a closing ']' on its own last line); re-format or" \
           "remove it before appending" >&2
      exit 1
    fi
    sed '$d' "$target" > "$tmp"        # drop the closing "]"
  else
    { echo "["; cat "$target"; } > "$tmp"  # wrap a legacy single-run file
  fi
  { echo ","; cat "$newrun"; echo "]"; } >> "$tmp"
  mv "$tmp" "$target"
}

args=()
json_out="$repo_root/BENCH_hotpath.json"
[[ "$smoke" -eq 1 ]] && { args+=(--smoke); json_out="$repo_root/BENCH_hotpath.smoke.json"; }
[[ -n "$workers" ]] && args+=(--workers "$workers")

if [[ "$json" -eq 1 ]]; then
  run_json="$(mktemp)"
  trap 'rm -f "$run_json"' EXIT
  "$build_dir/bench/bench_hotpath" "${args[@]}" --json "$run_json"
  append_trajectory "$json_out" "$run_json"
  echo "appended run to $json_out"
else
  "$build_dir/bench/bench_hotpath" "${args[@]}"
fi
