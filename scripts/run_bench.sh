#!/usr/bin/env bash
# Build and run the hot-path benchmark; optionally emit the JSON
# trajectory point the repo commits as BENCH_hotpath.json.
#
# Usage:
#   scripts/run_bench.sh                 # full run, human-readable
#   scripts/run_bench.sh --json          # full run + write BENCH_hotpath.json
#   scripts/run_bench.sh --json --smoke  # fast run -> BENCH_hotpath.smoke.json
#   scripts/run_bench.sh --build-dir out # custom build directory
#
# Smoke output goes to a separate file so reproducing the CI step locally
# can never clobber the committed full-run baseline (smoke throughput is
# noise-dominated; only its structural assertions are comparable).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
json=0
smoke=0
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --json)  json=1; shift ;;
    --smoke) smoke=1; shift ;;
    --build-dir)
      [[ $# -ge 2 ]] || { echo "error: --build-dir needs a path" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    -j|--jobs)
      [[ $# -ge 2 ]] || { echo "error: $1 needs a number" >&2; exit 2; }
      jobs="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,10p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs" --target bench_hotpath

args=()
json_out="$repo_root/BENCH_hotpath.json"
[[ "$smoke" -eq 1 ]] && { args+=(--smoke); json_out="$repo_root/BENCH_hotpath.smoke.json"; }
[[ "$json" -eq 1 ]] && args+=(--json "$json_out")

"$build_dir/bench/bench_hotpath" "${args[@]}"
