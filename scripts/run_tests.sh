#!/usr/bin/env bash
# Configure, build, and run the test suites in one shot.
#
# Usage:
#   scripts/run_tests.sh                 # everything
#   scripts/run_tests.sh --filter shm    # suites matching a regex (ctest -R)
#   scripts/run_tests.sh --filter storage  # storage backends: conformance,
#                                          # posix round-trips, write-behind
#   scripts/run_tests.sh --asan          # AddressSanitizer build (separate build dir)
#   scripts/run_tests.sh --tsan          # ThreadSanitizer build (separate build dir)
#   scripts/run_tests.sh --faults        # fault-tolerance suites under 3 seeds
#                                        # (DEDICORE_FAULT_SEED sweeps the
#                                        # injector's probabilistic schedules)
#   scripts/run_tests.sh --thread-safety # Clang Thread Safety Analysis build
#                                        # (-Werror=thread-safety; needs clang)
#   scripts/run_tests.sh --tidy          # clang-tidy over src/ with the
#                                        # repo's .clang-tidy (needs clang-tidy)
#   scripts/run_tests.sh --build-dir out # custom build directory
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir=""
filter=""
sanitize=""
faults=""
thread_safety=""
tidy=""
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --filter)
      [[ $# -ge 2 ]] || { echo "error: --filter needs a regex" >&2; exit 2; }
      filter="$2"; shift 2 ;;
    --asan)
      sanitize="address"; shift ;;
    --tsan)
      sanitize="thread"; shift ;;
    --faults)
      faults="1"; shift ;;
    --thread-safety)
      thread_safety="1"; shift ;;
    --tidy)
      tidy="1"; shift ;;
    --build-dir)
      [[ $# -ge 2 ]] || { echo "error: --build-dir needs a path" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    -j|--jobs)
      [[ $# -ge 2 ]] || { echo "error: $1 needs a number" >&2; exit 2; }
      jobs="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,17p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

# clang-tidy mode: static analysis only, no build or test run.  The check
# set lives in .clang-tidy at the repo root; findings are errors (CI runs
# this as a gate).
if [[ -n "$tidy" ]]; then
  tidy_bin="$(command -v clang-tidy || true)"
  if [[ -z "$tidy_bin" ]]; then
    echo "error: --tidy requires clang-tidy, which is not installed" >&2
    echo "       (apt-get install clang-tidy, or run the CI 'tidy' job)" >&2
    exit 3
  fi
  tidy_build="$repo_root/build-tidy"
  cmake -B "$tidy_build" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DDEDICORE_BUILD_BENCH=OFF -DDEDICORE_BUILD_EXAMPLES=OFF >/dev/null
  mapfile -t tidy_sources < <(find "$repo_root/src" -name '*.cpp' | sort)
  echo "=== clang-tidy over ${#tidy_sources[@]} sources ==="
  "$tidy_bin" -p "$tidy_build" --warnings-as-errors='*' --quiet \
      "${tidy_sources[@]}"
  echo "clang-tidy: clean"
  exit 0
fi

# Thread-safety mode: a Clang build with the thread-safety analysis as a
# hard error.  This is the compile-time counterpart of the runtime lockdep
# layer in common/sync.cpp — it proves every DEDICORE_GUARDED_BY /
# REQUIRES annotation in the headers against every call site.
if [[ -n "$thread_safety" ]]; then
  clang_cxx="${CLANGXX:-$(command -v clang++ || true)}"
  if [[ -z "$clang_cxx" ]]; then
    echo "error: --thread-safety requires clang++ (GCC has no thread-safety" >&2
    echo "       analysis; the annotations expand to nothing there)." >&2
    echo "       Install clang or set CLANGXX=/path/to/clang++." >&2
    exit 3
  fi
  build_dir="${build_dir:-$repo_root/build-thread-safety}"
  cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_CXX_COMPILER="$clang_cxx" -DDEDICORE_THREAD_SAFETY=ON
  cmake --build "$build_dir" -j "$jobs"
  echo "thread-safety analysis: clean build"
  exit 0
fi

# Sanitized builds get their own directory so differently-instrumented
# binaries never mix.
if [[ -z "$build_dir" ]]; then
  build_dir="$repo_root/build"
  case "$sanitize" in
    address) build_dir="$repo_root/build-asan" ;;
    thread)  build_dir="$repo_root/build-tsan" ;;
  esac
fi

cmake_args=(-B "$build_dir" -S "$repo_root")
[[ -n "$sanitize" ]] && cmake_args+=("-DDEDICORE_SANITIZE=$sanitize")

cmake "${cmake_args[@]}"
cmake --build "$build_dir" -j "$jobs"

if [[ -n "$faults" ]]; then
  # The fault-tolerance suites (injector units, client-death reclamation,
  # crash-consistent storage) plus the transport conformance layer they
  # lean on, swept across three injector seeds.  Deterministic
  # (probability=1.0) plans replay identically under every seed; the sweep
  # exists for the probabilistic schedules and for shaking out
  # interleaving-dependent flakes in the reclaim path.
  for seed in 1 42 20250808; do
    echo "=== fault suites, DEDICORE_FAULT_SEED=$seed ==="
    DEDICORE_FAULT_SEED="$seed" ctest --test-dir "$build_dir" \
      --output-on-failure -j "$jobs" -R "${filter:-fault|transport|storage}"
  done
  exit 0
fi

ctest_args=(--test-dir "$build_dir" --output-on-failure -j "$jobs")
[[ -n "$filter" ]] && ctest_args+=(-R "$filter")
ctest "${ctest_args[@]}"
