#!/usr/bin/env bash
# Configure, build, and run the test suites in one shot.
#
# Usage:
#   scripts/run_tests.sh                 # everything
#   scripts/run_tests.sh --filter shm    # suites matching a regex (ctest -R)
#   scripts/run_tests.sh --filter storage  # storage backends: conformance,
#                                          # posix round-trips, write-behind
#   scripts/run_tests.sh --asan          # AddressSanitizer build (separate build dir)
#   scripts/run_tests.sh --tsan          # ThreadSanitizer build (separate build dir)
#   scripts/run_tests.sh --faults        # fault-tolerance suites under 3 seeds
#                                        # (DEDICORE_FAULT_SEED sweeps the
#                                        # injector's probabilistic schedules)
#   scripts/run_tests.sh --build-dir out # custom build directory
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir=""
filter=""
sanitize=""
faults=""
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --filter)
      [[ $# -ge 2 ]] || { echo "error: --filter needs a regex" >&2; exit 2; }
      filter="$2"; shift 2 ;;
    --asan)
      sanitize="address"; shift ;;
    --tsan)
      sanitize="thread"; shift ;;
    --faults)
      faults="1"; shift ;;
    --build-dir)
      [[ $# -ge 2 ]] || { echo "error: --build-dir needs a path" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    -j|--jobs)
      [[ $# -ge 2 ]] || { echo "error: $1 needs a number" >&2; exit 2; }
      jobs="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,13p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

# Sanitized builds get their own directory so differently-instrumented
# binaries never mix.
if [[ -z "$build_dir" ]]; then
  build_dir="$repo_root/build"
  case "$sanitize" in
    address) build_dir="$repo_root/build-asan" ;;
    thread)  build_dir="$repo_root/build-tsan" ;;
  esac
fi

cmake_args=(-B "$build_dir" -S "$repo_root")
[[ -n "$sanitize" ]] && cmake_args+=("-DDEDICORE_SANITIZE=$sanitize")

cmake "${cmake_args[@]}"
cmake --build "$build_dir" -j "$jobs"

if [[ -n "$faults" ]]; then
  # The fault-tolerance suites (injector units, client-death reclamation,
  # crash-consistent storage) plus the transport conformance layer they
  # lean on, swept across three injector seeds.  Deterministic
  # (probability=1.0) plans replay identically under every seed; the sweep
  # exists for the probabilistic schedules and for shaking out
  # interleaving-dependent flakes in the reclaim path.
  for seed in 1 42 20250808; do
    echo "=== fault suites, DEDICORE_FAULT_SEED=$seed ==="
    DEDICORE_FAULT_SEED="$seed" ctest --test-dir "$build_dir" \
      --output-on-failure -j "$jobs" -R "${filter:-fault|transport|storage}"
  done
  exit 0
fi

ctest_args=(--test-dir "$build_dir" --output-on-failure -j "$jobs")
[[ -n "$filter" ]] && ctest_args+=(-R "$filter")
ctest "${ctest_args[@]}"
