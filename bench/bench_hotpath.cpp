// Hot-path benchmark: the three data-plane costs PR 3 rewrote, measured
// against the designs they replaced.
//
//   1. allocator churn  — concurrent allocate/free against a fragmented
//      segment: size-segregated best-fit (shm::Segment) vs. the pre-PR
//      first-fit linear scan (bench_legacy::LegacySegment);
//   2. queue throughput — N producers / 1 consumer through the two-lock
//      BoundedQueue (single-event and batched push_all/pop_all paths) vs.
//      the pre-PR single-mutex ring;
//   3. MPI batching     — wire messages per (client, iteration) through
//      MpiTransport, against the analytic pre-PR count of one message per
//      block plus one per control event;
//   4. server worker scaling (PR 4) — event throughput of one
//      ShmServerTransport drained by a pool of N concurrent next_event()
//      consumers (the dedicated-I/O-rank worker pool), with a synthetic
//      per-event pipeline cost standing in for indexing + plugins.
//      --workers N,N,... selects the sweep (default 1,2,4,8).  On a host
//      with >= 4 cores the service cost is a real spin and the result is a
//      wall-clock measurement; on narrower machines the bench falls back
//      to the virtual-clock model (mode recorded in the JSON).
//   5. posix storage backend (PR 5) — real-disk emit throughput of
//      h5lite-sized images through storage::PosixBackend into a scratch
//      directory (TempDir-style, removed afterwards): the synchronous
//      create/write/fsync/close path vs. the write-behind queue drained
//      by worker threads.  Unlike sections 1–4 these are *measured disk*
//      numbers, not modelled ones — see docs/performance.md.
//   6. emit-path compression (PR 6) — bench_sparetime-style CM1 loads
//      driven through the *real* pipeline (Runtime + store plugin +
//      EmitStage + write-behind + posix backend), once raw and once with
//      xor+lzs: bytes-to-disk, achieved ratio, dedicated-core codec time
//      as a share of worker time (the §IV.D spare-cycle claim), and the
//      effective MB/s of raw payload retired per wall second.
//   7. skewed clients + work stealing (this PR) — the same worker pool
//      fed a pathological client mix (one client producing >= 75 % of the
//      events) twice: once with static client->worker pinning and once
//      with ownership-token work stealing.  Pinning serializes the hot
//      client on one worker; stealing spreads its backlog across the
//      pool.  Structural gates: steals observed, exactly-once asserted.
//      A twin run attaches a real posix write-behind queue and asserts
//      that *parked* workers drained it (idle_drains > 0) — the
//      drain-while-idle half of the stealing PR.
//   8. client death (PR 8) — throughput retained while a client dies
//      mid-stream and its segment blocks are reclaimed.
//   9. sharded multi-root storage (PR 9) — aggregate write throughput of
//      the chunking + placement + integrity stack over 1/2/4 posix roots,
//      drained chunk-granularly by the write-behind pool.  On >= 4 cores
//      the MB/s are wall-clock; narrower hosts use the deterministic
//      placement model (makespan = the busiest root's bytes at a fixed
//      per-root bandwidth).  Structural gates run in both modes: the
//      4-root layout must spread bytes (roots x balance >= 1.5x), a
//      4-root twin must read back byte-identical to a single-root run,
//      a flipped bit must surface as DATA_LOSS, and replication=2 must
//      recover it.
//
// Modes: default is a full run sized for stable numbers; --smoke shrinks
// everything to a CTest-friendly second (registered with label
// bench-smoke so the harness cannot bit-rot); --json FILE emits the
// machine-readable result consumed by scripts/run_bench.sh, which appends
// it to BENCH_hotpath.json — the perf-regression trajectory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <filesystem>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "legacy_hotpath.hpp"
#include "minimpi/minimpi.hpp"
#include "shm/bounded_queue.hpp"
#include "shm/segment.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"
#include "storage/posix_backend.hpp"
#include "storage/sharded_backend.hpp"
#include "storage/write_behind.hpp"
#include "transport/message.hpp"
#include "transport/mpi_transport.hpp"
#include "transport/shm_transport.hpp"

namespace {

using dedicore::Rng;
using dedicore::transport::Event;
using dedicore::transport::EventType;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// 1. Allocator churn
// ---------------------------------------------------------------------------

struct ChurnConfig {
  std::uint64_t capacity = 1ull << 26;
  int fragment_pins = 4096;       ///< small pinned blocks fragmenting the front
  std::uint64_t pin_bytes = 2048; ///< size of each pin (and of each hole)
  int ops_per_thread = 100000;    ///< allocate/free pairs per thread
  int pool_size = 16;             ///< live blocks each thread cycles through
};

/// Drives `ops_per_thread` allocate/free pairs per thread against a
/// fragmented allocator.  Returns allocate+free operations per second.
///
/// The fragmentation models a long-running server's segment: thousands of
/// small live blocks with freed holes between them at low offsets.  The
/// churn allocates blocks larger than any hole, so a first-fit scan walks
/// the entire hole band on every allocation — the O(n) behaviour the
/// size-segregated index removes (best-fit jumps past all of them in one
/// lower_bound).
template <typename Allocator>
double run_allocator_churn(const ChurnConfig& cfg, int threads) {
  Allocator segment(cfg.capacity);

  std::vector<dedicore::shm::BlockRef> pins;
  for (int i = 0; i < cfg.fragment_pins; ++i) {
    auto ref = segment.try_allocate(cfg.pin_bytes);
    if (!ref) break;
    pins.push_back(*ref);
  }
  for (std::size_t i = 0; i < pins.size(); i += 2) segment.deallocate(pins[i]);

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x9E3779B9u + static_cast<std::uint64_t>(t));
      std::vector<dedicore::shm::BlockRef> pool;
      pool.reserve(static_cast<std::size_t>(cfg.pool_size));
      for (int op = 0; op < cfg.ops_per_thread; ++op) {
        if (pool.size() < static_cast<std::size_t>(cfg.pool_size)) {
          // Larger than every hole: a first-fit scan cannot stop early.
          const std::uint64_t size = (8ull << 10) + rng.next_below(24 << 10);
          if (auto ref = segment.try_allocate(size)) {
            pool.push_back(*ref);
            continue;
          }
        }
        if (!pool.empty()) {
          const std::size_t pick = rng.next_below(pool.size());
          segment.deallocate(pool[pick]);
          pool[pick] = pool.back();
          pool.pop_back();
        }
      }
      for (const auto& ref : pool) segment.deallocate(ref);
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = seconds_since(start);

  for (std::size_t i = 1; i < pins.size(); i += 2) segment.deallocate(pins[i]);
  return static_cast<double>(threads) * cfg.ops_per_thread / elapsed;
}

// ---------------------------------------------------------------------------
// 2. Queue throughput
// ---------------------------------------------------------------------------

struct QueueConfig {
  std::size_t capacity = 4096;
  int events_per_producer = 200000;
  std::size_t batch = 64;
};

/// The pre-PR shape: N blocking producers and one consumer, one lock
/// transaction per event on both sides of the legacy single-mutex ring.
double run_queue_legacy(const QueueConfig& cfg, int producers) {
  dedicore::bench_legacy::LegacyBoundedQueue<Event> queue(cfg.capacity);
  const long total =
      static_cast<long>(producers) * cfg.events_per_producer;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      Event event;
      event.type = EventType::kBlockWritten;
      for (int i = 0; i < cfg.events_per_producer; ++i) (void)queue.push(event);
    });
  }
  long received = 0;
  while (received < total) {
    if (queue.pop()) ++received;
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total) / seconds_since(start);
}

/// The post-PR ShmTransport shape: producers still push per event (a
/// publish is per block), but the consumer drains bursts with pop_all —
/// what ShmServerTransport::next_event does since this PR.
double run_queue_popall(const QueueConfig& cfg, int producers) {
  dedicore::shm::BoundedQueue<Event> queue(cfg.capacity);
  const long total =
      static_cast<long>(producers) * cfg.events_per_producer;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      Event event;
      event.type = EventType::kBlockWritten;
      for (int i = 0; i < cfg.events_per_producer; ++i) (void)queue.push(event);
    });
  }
  long received = 0;
  std::vector<Event> sink;
  while (received < total) {
    sink.clear();
    received += static_cast<long>(queue.pop_all(sink));
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total) / seconds_since(start);
}

/// Fully batched: producers push_all() an iteration's worth of events in
/// one critical section, the consumer drains with pop_all().
double run_queue_batched(const QueueConfig& cfg, int producers) {
  dedicore::shm::BoundedQueue<Event> queue(cfg.capacity);
  const long total =
      static_cast<long>(producers) * cfg.events_per_producer;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      std::vector<Event> burst(cfg.batch);
      for (Event& event : burst) event.type = EventType::kBlockWritten;
      int sent = 0;
      while (sent < cfg.events_per_producer) {
        const std::size_t n =
            std::min(cfg.batch,
                     static_cast<std::size_t>(cfg.events_per_producer - sent));
        (void)queue.push_all(std::span<Event>(burst.data(), n));
        sent += static_cast<int>(n);
      }
    });
  }
  long received = 0;
  std::vector<Event> sink;
  while (received < total) {
    sink.clear();
    received += static_cast<long>(queue.pop_all(sink));
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total) / seconds_since(start);
}

// ---------------------------------------------------------------------------
// 3. MPI wire messages per iteration
// ---------------------------------------------------------------------------

struct MpiBatchConfig {
  int clients = 3;
  int iterations = 32;
  int blocks_per_iteration = 8;
  std::uint64_t block_bytes = 4096;
};

struct MpiBatchResult {
  double wire_per_client_iteration = 0;       ///< measured, batched
  double unbatched_per_client_iteration = 0;  ///< analytic pre-PR count
  double events_per_wire_message = 0;         ///< aggregation factor
};

MpiBatchResult run_mpi_batching(const MpiBatchConfig& cfg) {
  namespace transport = dedicore::transport;
  namespace minimpi = dedicore::minimpi;

  std::vector<transport::TransportStats> client_stats(
      static_cast<std::size_t>(cfg.clients));
  // Two iterations of credit headroom: the server releases iteration k's
  // blocks when its close event lands, so a client producing iteration
  // k+1 never stalls (and never has to split an iteration across frames).
  const std::uint64_t share = static_cast<std::uint64_t>(
      2 * cfg.blocks_per_iteration + 2) * (cfg.block_bytes + 64);

  minimpi::run_world(cfg.clients + 1, [&](minimpi::Comm& world) {
    if (world.rank() < cfg.clients) {
      transport::MpiClientTransport client(world, cfg.clients, share);
      for (int it = 0; it < cfg.iterations; ++it) {
        // A simulation computes between outputs — which is when the
        // server catches up and credit flows back.  Without this pause
        // the client outruns its credit and iterations split into
        // partial frames, measuring a client no real deployment has.
        if (it > 0) std::this_thread::sleep_for(std::chrono::microseconds(500));
        for (int b = 0; b < cfg.blocks_per_iteration; ++b) {
          auto ref = client.acquire_blocking(cfg.block_bytes);
          Event event;
          event.type = EventType::kBlockWritten;
          event.source = world.rank();
          event.iteration = it;
          event.block_id = static_cast<std::uint32_t>(b);
          event.block = *ref;
          client.publish(event);
        }
        Event end;
        end.type = EventType::kEndIteration;
        end.source = world.rank();
        end.iteration = it;
        client.post(end);  // the flush point: ships the iteration's frame
      }
      Event stop;
      stop.type = EventType::kClientStop;
      stop.source = world.rank();
      client.post(stop);
      client_stats[static_cast<std::size_t>(world.rank())] = client.stats();
    } else {
      auto fabric = std::make_shared<transport::ShmFabric>(
          static_cast<std::uint64_t>(cfg.clients) * share, 0, 0);
      transport::MpiServerTransport server(world, fabric);
      // Minimal server loop: release blocks when their iteration closes,
      // mirroring core::Server::complete_iteration.
      std::vector<std::vector<dedicore::shm::BlockRef>> held(
          static_cast<std::size_t>(cfg.clients));
      int stops = 0;
      while (stops < cfg.clients) {
        auto event = server.next_event();
        if (!event) break;
        const auto source = static_cast<std::size_t>(event->source);
        switch (event->type) {
          case EventType::kBlockWritten:
            held[source].push_back(event->block);
            break;
          case EventType::kEndIteration:
            for (const auto& ref : held[source]) server.release(ref);
            held[source].clear();
            break;
          case EventType::kClientStop:
            ++stops;
            break;
          default:
            break;
        }
      }
    }
  });

  std::uint64_t wire = 0, events = 0;
  for (const auto& s : client_stats) {
    wire += s.wire_messages;
    events += s.events_sent;
  }
  MpiBatchResult result;
  const double client_iterations =
      static_cast<double>(cfg.clients) * cfg.iterations;
  result.wire_per_client_iteration = static_cast<double>(wire) / client_iterations;
  // Pre-PR wiring shipped one message per published block and one per
  // control event: blocks + end-iteration per iteration, plus one stop.
  result.unbatched_per_client_iteration =
      static_cast<double>(cfg.blocks_per_iteration) + 1.0 +
      1.0 / cfg.iterations;
  result.events_per_wire_message =
      static_cast<double>(events) / static_cast<double>(wire);
  return result;
}

// ---------------------------------------------------------------------------
// 4. Server worker scaling (the PR-4 axis)
// ---------------------------------------------------------------------------

struct WorkerScaleConfig {
  int clients = 8;  ///< pinning cap: a pool wider than this stops scaling
  int events_per_client = 30000;
  std::uint64_t block_bytes = 2048;
  std::uint64_t capacity = 1ull << 26;
  std::size_t queue_capacity = 4096;
  /// Per-event pipeline service (indexing + plugins).  In wall-clock mode
  /// (hosts with >= 4 cores) the worker genuinely spins this long and the
  /// makespan is wall time; otherwise the cost is advanced on each
  /// worker's *virtual* clock (common/clock virtual-time hook, the same
  /// determinism device the timing suites use) — physical-thread scaling
  /// is meaningless on a 1-core CI box, so the fallback measures what the
  /// pool adds structurally: how the demux + client->worker assignment
  /// parallelize the service time, as events per modeled second.
  double service_seconds_per_event = 10e-6;
};

/// True when a wall-clock pool measurement is meaningful on this host: the
/// sweep needs the workers to actually run in parallel.
bool wall_clock_capable() {
  return std::thread::hardware_concurrency() >= 4;
}

/// Drives `clients` producers through one ShmServerTransport drained by
/// `workers` concurrent next_event() consumers (the server worker pool).
/// Returns events per second — wall seconds when `wall_clock`, else
/// modeled seconds (makespan = the busiest worker's virtual clock); aborts
/// the bench on any lost or duplicated event — the throughput claim is
/// worthless without the exactly-once one.
double run_worker_scaling(const WorkerScaleConfig& cfg, int workers,
                          bool wall_clock) {
  namespace transport = dedicore::transport;
  auto fabric = std::make_shared<transport::ShmFabric>(
      cfg.capacity, /*queue_count=*/1, cfg.queue_capacity);
  transport::ShmServerTransport server(fabric, 0);
  server.set_worker_count(workers);

  const long total =
      static_cast<long>(cfg.clients) * (cfg.events_per_client + 1);
  std::atomic<int> stops{0};
  // Per-(client, block) delivery counters: a total-only check would let a
  // loss paired with a duplication cancel out and pass the gate.
  std::vector<std::atomic<int>> delivered(
      static_cast<std::size_t>(cfg.clients) *
      static_cast<std::size_t>(cfg.events_per_client));
  std::vector<std::atomic<int>> stop_delivered(
      static_cast<std::size_t>(cfg.clients));
  std::vector<double> worker_busy(static_cast<std::size_t>(workers), 0.0);

  if (!wall_clock) dedicore::set_virtual_time_enabled(true);
  const auto wall_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients + workers));
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0);
      for (int i = 0; i < cfg.events_per_client; ++i) {
        auto ref = client.acquire_blocking(cfg.block_bytes);
        if (!ref) return;
        Event event;
        event.type = EventType::kBlockWritten;
        event.source = c;
        event.block_id = static_cast<std::uint32_t>(i);
        event.block = *ref;
        client.publish(event);
      }
      Event stop;
      stop.type = EventType::kClientStop;
      stop.source = c;
      client.post(stop);
    });
  }
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->type == EventType::kBlockWritten) {
          delivered[static_cast<std::size_t>(event->source) *
                        static_cast<std::size_t>(cfg.events_per_client) +
                    event->block_id]
              .fetch_add(1, std::memory_order_relaxed);
          // Wall mode burns the service for real.  Modeled mode advances
          // this thread's virtual clock instantly and then yields: during
          // a real service window the *other* workers run, and on a
          // narrow host the yield is what gives them that window —
          // without it one worker monopolizes the demux between context
          // switches and the model measures the scheduler, not the pool.
          if (wall_clock) {
            dedicore::spin_seconds(cfg.service_seconds_per_event);
          } else {
            dedicore::sleep_seconds(cfg.service_seconds_per_event);
            std::this_thread::yield();
          }
          server.release(event->block);
        } else if (event->type == EventType::kClientStop) {
          stop_delivered[static_cast<std::size_t>(event->source)].fetch_add(
              1, std::memory_order_relaxed);
          if (stops.fetch_add(1) + 1 == cfg.clients) server.end_of_stream();
        }
      }
      // The thread's virtual clock is exactly its accumulated service
      // (only meaningful in modeled mode).
      worker_busy[static_cast<std::size_t>(w)] = dedicore::now_seconds();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_elapsed = seconds_since(wall_start);
  if (!wall_clock) dedicore::set_virtual_time_enabled(false);

  long exactly_once = 0;
  for (const auto& count : delivered)
    if (count.load(std::memory_order_relaxed) == 1) ++exactly_once;
  for (const auto& count : stop_delivered)
    if (count.load(std::memory_order_relaxed) == 1) ++exactly_once;
  if (exactly_once != total) {
    std::fprintf(stderr,
                 "FAIL: worker pool delivered %ld of %ld events exactly once "
                 "(workers=%d)\n",
                 exactly_once, total, workers);
    std::exit(1);
  }
  const double makespan =
      wall_clock ? wall_elapsed
                 : *std::max_element(worker_busy.begin(), worker_busy.end());
  return static_cast<double>(total) / makespan;
}

// ---------------------------------------------------------------------------
// 5. Posix storage backend (real disk, not modelled)
// ---------------------------------------------------------------------------

struct PosixBenchConfig {
  int files = 64;                          ///< h5lite-sized images emitted
  std::uint64_t image_bytes = 1ull << 20;  ///< 1 MiB per image
  std::uint64_t budget_bytes = 8ull << 20; ///< write-behind byte budget
  int drainers = 2;                        ///< stand-in server workers
};

struct PosixBenchResult {
  double sync_mb_per_sec = 0.0;          ///< create/write/fsync/close inline
  double write_behind_mb_per_sec = 0.0;  ///< enqueue + concurrent drain
  double enqueue_block_seconds = 0.0;    ///< producer stalls (backpressure)
};

/// Emits `files` images through PosixBackend into a fresh scratch
/// directory under the system temp dir, once synchronously and once
/// through a WriteBehind queue drained by `drainers` threads, verifying
/// every byte landed.  The scratch directory is removed afterwards.
PosixBenchResult run_posix_backend(const PosixBenchConfig& cfg) {
  namespace fs = std::filesystem;
  namespace storage = dedicore::storage;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dedicore_bench_posix_" + std::to_string(::getpid()));
  PosixBenchResult result;

  std::vector<std::byte> image(cfg.image_bytes);
  Rng rng(0xC0FFEE);
  for (auto& b : image) b = static_cast<std::byte>(rng.next_below(256));
  const double total_mb = static_cast<double>(cfg.files) *
                          static_cast<double>(cfg.image_bytes) / 1e6;

  {
    storage::PosixBackend backend(scratch / "sync");
    const auto start = Clock::now();
    for (int i = 0; i < cfg.files; ++i) {
      const auto status = storage::write_image(
          backend, "node0/it" + std::to_string(i) + ".h5l", image);
      if (!status.is_ok()) {
        std::fprintf(stderr, "FAIL: posix sync write: %s\n",
                     status.to_string().c_str());
        std::exit(1);
      }
    }
    result.sync_mb_per_sec = total_mb / seconds_since(start);
    if (backend.stats().bytes_written !=
        static_cast<std::uint64_t>(cfg.files) * cfg.image_bytes) {
      std::fprintf(stderr, "FAIL: posix sync byte accounting\n");
      std::exit(1);
    }
  }

  {
    storage::PosixBackend backend(scratch / "wb");
    storage::WriteBehind queue(backend, cfg.budget_bytes);
    const auto start = Clock::now();
    std::vector<std::thread> drainers;
    std::atomic<bool> done{false};
    for (int d = 0; d < cfg.drainers; ++d) {
      drainers.emplace_back([&] {
        while (!done.load(std::memory_order_acquire))
          if (queue.drain_some(4) == 0) std::this_thread::yield();
      });
    }
    for (int i = 0; i < cfg.files; ++i)
      queue.enqueue({"node0/it" + std::to_string(i) + ".h5l", 0, image});
    queue.drain_all();
    done.store(true, std::memory_order_release);
    for (auto& d : drainers) d.join();
    result.write_behind_mb_per_sec = total_mb / seconds_since(start);
    result.enqueue_block_seconds = queue.stats().enqueue_block_seconds;
    const auto stats = queue.stats();
    if (stats.jobs_written != static_cast<std::uint64_t>(cfg.files) ||
        stats.jobs_failed != 0) {
      std::fprintf(stderr, "FAIL: write-behind drained %llu/%d jobs\n",
                   static_cast<unsigned long long>(stats.jobs_written),
                   cfg.files);
      std::exit(1);
    }
  }

  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return result;
}

// ---------------------------------------------------------------------------
// 6. Emit-path compression (real pipeline, real disk)
// ---------------------------------------------------------------------------

struct CompressionBenchConfig {
  int iterations = 16;
  std::uint64_t grid = 24;  ///< per-core CM1 block edge (nx = ny = nz)
  int cores_per_node = 4;   ///< 3 clients + 1 dedicated core
};

struct CompressionBenchRow {
  std::string codec;
  std::uint64_t raw_bytes = 0;      ///< payload entering the emit stage
  std::uint64_t bytes_to_disk = 0;  ///< posix file bytes actually written
  double achieved_ratio = 0.0;      ///< ServerStats raw/stored (1.0 = raw)
  double compress_seconds = 0.0;    ///< dedicated-core time inside codecs
  /// Share of total server-worker time spent compressing — the §IV.D
  /// claim is that this fits inside the 92–99 % idle budget.
  double spare_time_utilization = 0.0;
  double effective_mb_per_sec = 0.0;  ///< raw payload MB per wall second
  double wall_seconds = 0.0;
};

/// One full CM1 run through the real pipeline — Runtime, store plugin,
/// EmitStage, write-behind, PosixBackend into a scratch directory — with
/// the given storage codec.  The smooth advection–diffusion fields are the
/// compressible shape the paper measured at 600%.
CompressionBenchRow run_compression(const CompressionBenchConfig& cfg,
                                    const std::string& codec) {
  namespace fs = std::filesystem;
  namespace core = dedicore::core;
  namespace sim = dedicore::sim;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dedicore_bench_compress_" + std::to_string(::getpid()) + "_" +
       (codec == "xor+lzs" ? "xorlzs" : codec));

  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = cfg.grid;
  options.cores_per_node = cfg.cores_per_node;
  options.codec = codec;
  core::Configuration config = sim::make_cm1_configuration(options);
  // Retarget storage at the real disk: this section measures measured
  // bytes-to-disk, not modelled time.
  core::StorageSpec storage_spec = config.storage();
  storage_spec.backend = "posix";
  storage_spec.path = scratch.string();
  config.set_storage(storage_spec);
  config.validate();

  // Unused sink: the posix backend never touches the simulator.
  dedicore::fsim::StorageConfig sim_storage;
  sim_storage.jitter_sigma = 0.0;
  sim_storage.spike_probability = 0.0;
  sim_storage.interference_on_rate = 0.0;
  dedicore::fsim::FileSystem unused_fs(sim_storage,
                                       dedicore::fsim::TimeScale{1e-4, 0.01});

  CompressionBenchRow row;
  row.codec = codec;
  const auto start = Clock::now();
  dedicore::minimpi::run_world(cfg.cores_per_node, [&](auto& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, unused_fs);
    if (rt.is_server()) {
      rt.run_server();
      const core::ServerStats& stats = rt.server_stats();
      row.raw_bytes = stats.emit_raw_bytes;
      row.achieved_ratio = stats.achieved_ratio();
      row.compress_seconds = stats.compress_seconds;
      const double worker_time = stats.idle_seconds + stats.busy_seconds;
      row.spare_time_utilization =
          worker_time > 0.0 ? stats.compress_seconds / worker_time : 0.0;
      return;
    }
    sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(
        options, rt.client_comm().rank(), rt.client_comm().size()));
    for (int it = 0; it < cfg.iterations; ++it) {
      proxy.step();
      for (const auto& [name, bytes] : proxy.field_bytes()) {
        const auto status = rt.client().write(name, bytes);
        if (!status.is_ok()) {
          std::fprintf(stderr, "FAIL: compression bench write: %s\n",
                       status.to_string().c_str());
          std::exit(1);
        }
      }
      if (const auto status = rt.client().end_iteration(); !status.is_ok()) {
        std::fprintf(stderr, "FAIL: compression bench end_iteration: %s\n",
                     status.to_string().c_str());
        std::exit(1);
      }
    }
    rt.finalize();
  });
  row.wall_seconds = seconds_since(start);

  dedicore::storage::PosixBackend disk(scratch);
  for (const std::string& file : disk.list_files())
    row.bytes_to_disk += disk.file_size(file);
  row.effective_mb_per_sec =
      static_cast<double>(row.raw_bytes) / 1e6 / row.wall_seconds;

  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return row;
}

// ---------------------------------------------------------------------------
// 7. Skewed clients + work stealing
// ---------------------------------------------------------------------------

struct SkewConfig {
  int clients = 8;
  int workers = 4;
  int hot_blocks = 30000;  ///< client 0 — ~78 % of all events
  int cold_blocks = 1200;  ///< each of the other seven clients
  std::uint64_t block_bytes = 2048;
  std::uint64_t capacity = 1ull << 26;
  std::size_t queue_capacity = 4096;
  double service_seconds_per_event = 10e-6;
  int steal_threshold = 2;
};

struct SkewSummary {
  std::string mode;  ///< "wall_clock" or "modeled", shared with section 4
  double pinned_events_per_sec = 0.0;
  double steal_events_per_sec = 0.0;
  double speedup = 0.0;
  std::uint64_t steals = 0;          ///< observed in the steal-on run
  std::uint64_t posix_jobs = 0;      ///< write-behind jobs in the twin run
  std::uint64_t posix_idle_drains = 0;  ///< drained by *parked* workers
};

/// The skewed twin of run_worker_scaling: client 0 produces the bulk of
/// the events, and the pool runs either with static pinning (client c ->
/// worker c mod N, the pre-PR design) or with ownership-token work
/// stealing.  Under pinning the hot client's events serialize on one
/// worker no matter how wide the pool is; stealing migrates its backlog
/// to whoever is idle.  Exactly-once is asserted per (client, block) —
/// the speedup claim is worthless without it.
double run_skewed_clients(const SkewConfig& cfg, bool steal, bool wall_clock,
                          std::uint64_t* steals_out) {
  namespace transport = dedicore::transport;
  auto fabric = std::make_shared<transport::ShmFabric>(
      cfg.capacity, /*queue_count=*/1, cfg.queue_capacity);
  transport::ShmServerTransport server(fabric, 0);
  transport::WorkerPoolOptions options;
  options.steal = steal;
  options.steal_threshold = cfg.steal_threshold;
  server.set_worker_count(cfg.workers, options);

  const auto blocks_of = [&cfg](int c) {
    return c == 0 ? cfg.hot_blocks : cfg.cold_blocks;
  };
  const auto flat = [&cfg](int c, std::uint32_t b) {
    const long base =
        c == 0 ? 0
               : cfg.hot_blocks + static_cast<long>(c - 1) * cfg.cold_blocks;
    return static_cast<std::size_t>(base + b);
  };
  const long total_blocks =
      cfg.hot_blocks + static_cast<long>(cfg.clients - 1) * cfg.cold_blocks;
  const long total = total_blocks + cfg.clients;
  std::vector<std::atomic<int>> delivered(
      static_cast<std::size_t>(total_blocks));
  std::vector<std::atomic<int>> stop_delivered(
      static_cast<std::size_t>(cfg.clients));
  std::vector<double> worker_busy(static_cast<std::size_t>(cfg.workers), 0.0);
  std::atomic<int> stops{0};

  if (!wall_clock) dedicore::set_virtual_time_enabled(true);
  const auto wall_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients + cfg.workers));
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0);
      const int blocks = blocks_of(c);
      for (int i = 0; i < blocks; ++i) {
        auto ref = client.acquire_blocking(cfg.block_bytes);
        if (!ref) return;
        Event event;
        event.type = EventType::kBlockWritten;
        event.source = c;
        event.block_id = static_cast<std::uint32_t>(i);
        event.block = *ref;
        client.publish(event);
      }
      Event stop;
      stop.type = EventType::kClientStop;
      stop.source = c;
      client.post(stop);
    });
  }
  for (int w = 0; w < cfg.workers; ++w) {
    threads.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->type == EventType::kBlockWritten) {
          delivered[flat(event->source, event->block_id)].fetch_add(
              1, std::memory_order_relaxed);
          // Same service model as run_worker_scaling: real spin in wall
          // mode, virtual advance + yield (the peers' service window) in
          // modeled mode.
          if (wall_clock) {
            dedicore::spin_seconds(cfg.service_seconds_per_event);
          } else {
            dedicore::sleep_seconds(cfg.service_seconds_per_event);
            std::this_thread::yield();
          }
          server.release(event->block);
        } else if (event->type == EventType::kClientStop) {
          stop_delivered[static_cast<std::size_t>(event->source)].fetch_add(
              1, std::memory_order_relaxed);
          if (stops.fetch_add(1) + 1 == cfg.clients) server.end_of_stream();
        }
      }
      worker_busy[static_cast<std::size_t>(w)] = dedicore::now_seconds();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_elapsed = seconds_since(wall_start);
  if (!wall_clock) dedicore::set_virtual_time_enabled(false);

  long exactly_once = 0;
  for (const auto& count : delivered)
    if (count.load(std::memory_order_relaxed) == 1) ++exactly_once;
  for (const auto& count : stop_delivered)
    if (count.load(std::memory_order_relaxed) == 1) ++exactly_once;
  if (exactly_once != total) {
    std::fprintf(stderr,
                 "FAIL: skewed pool delivered %ld of %ld events exactly once "
                 "(steal=%d)\n",
                 exactly_once, total, steal ? 1 : 0);
    std::exit(1);
  }
  *steals_out = server.stats().steals;
  const double makespan =
      wall_clock ? wall_elapsed
                 : *std::max_element(worker_busy.begin(), worker_busy.end());
  return static_cast<double>(total) / makespan;
}

struct SkewPosixConfig {
  int jobs = 24;                           ///< write-behind images
  std::uint64_t image_bytes = 256 * 1024;
  std::uint64_t budget_bytes = 8ull << 20;
};

struct SkewPosixResult {
  std::uint64_t idle_drains = 0;
  std::uint64_t jobs_written = 0;
};

/// The drain-while-idle twin: the same skewed stream with stealing on,
/// but with a real posix write-behind queue hooked into the pool's idle
/// path.  The jobs are enqueued before the pool starts, so a worker that
/// parks with nothing to consume or steal has disk work waiting — the
/// idle_drains counter proves parked workers (not the enqueuer, not a
/// final flush) performed writes.  Runs in real time: the writes are
/// measured disk I/O, as in section 5.
SkewPosixResult run_skew_posix_drain(const SkewConfig& cfg,
                                     const SkewPosixConfig& pcfg) {
  namespace fs = std::filesystem;
  namespace transport = dedicore::transport;
  namespace storage = dedicore::storage;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dedicore_bench_skew_" + std::to_string(::getpid()));
  storage::PosixBackend backend(scratch);
  storage::WriteBehind queue(backend, pcfg.budget_bytes);

  auto fabric = std::make_shared<transport::ShmFabric>(
      cfg.capacity, /*queue_count=*/1, cfg.queue_capacity);
  transport::ShmServerTransport server(fabric, 0);
  transport::WorkerPoolOptions options;
  options.steal = true;
  options.steal_threshold = cfg.steal_threshold;
  server.set_worker_count(cfg.workers, options);
  server.set_idle_hook([&queue] { return queue.try_drain_one(); });

  std::vector<std::byte> image(pcfg.image_bytes);
  Rng rng(0xBEEF);
  for (auto& b : image) b = static_cast<std::byte>(rng.next_below(256));
  // Fits inside the budget, so none of these enqueues blocks: the whole
  // backlog is waiting before the first worker parks.
  for (int i = 0; i < pcfg.jobs; ++i)
    queue.enqueue({"skew/it" + std::to_string(i) + ".h5l", 0, image});

  std::atomic<int> stops{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < cfg.workers; ++w) {
    threads.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->type == EventType::kBlockWritten) {
          server.release(event->block);
        } else if (event->type == EventType::kClientStop) {
          if (stops.fetch_add(1) + 1 == cfg.clients) server.end_of_stream();
        }
      }
    });
  }
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0);
      const int blocks = c == 0 ? cfg.hot_blocks : cfg.cold_blocks;
      for (int i = 0; i < blocks; ++i) {
        auto ref = client.acquire_blocking(cfg.block_bytes);
        if (!ref) return;
        Event event;
        event.type = EventType::kBlockWritten;
        event.source = c;
        event.block_id = static_cast<std::uint32_t>(i);
        event.block = *ref;
        client.publish(event);
      }
      Event stop;
      stop.type = EventType::kClientStop;
      stop.source = c;
      client.post(stop);
    });
  }
  for (auto& t : threads) t.join();
  queue.drain_all();  // whatever the idle path did not get to

  const auto wb_stats = queue.stats();
  if (wb_stats.jobs_written != static_cast<std::uint64_t>(pcfg.jobs) ||
      wb_stats.jobs_failed != 0) {
    std::fprintf(stderr, "FAIL: skew posix twin wrote %llu/%d jobs\n",
                 static_cast<unsigned long long>(wb_stats.jobs_written),
                 pcfg.jobs);
    std::exit(1);
  }
  SkewPosixResult result;
  result.idle_drains = server.stats().idle_drains;
  result.jobs_written = wb_stats.jobs_written;
  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return result;
}

// ---------------------------------------------------------------------------
// 8. Fault tolerance: time-to-reclaim and throughput retained when one of
//    the clients is killed mid-run
// ---------------------------------------------------------------------------

struct DeathBenchConfig {
  int clients = 8;
  int workers = 4;
  int blocks_per_client = 6000;
  int kill_after = 1500;  ///< victim events that land before the death
  int victim = 3;
  std::uint64_t block_bytes = 2048;
  std::uint64_t capacity = 1ull << 26;
  std::size_t queue_capacity = 4096;
  double service_seconds_per_event = 10e-6;
  int steal_threshold = 2;
};

struct DeathBenchResult {
  std::string mode;  ///< "wall_clock" or "modeled", as in sections 4/7
  double healthy_events_per_sec = 0.0;
  double faulty_events_per_sec = 0.0;
  double throughput_retained = 0.0;  ///< faulty rate / healthy rate
  double reclaim_ms = 0.0;  ///< death observed -> reclaim complete (wall)
  std::uint64_t blocks_reclaimed = 0;
};

/// One run of the uniform 8-client stream on a stealing 4-worker pool.
/// With `kill` set, a seeded fault plan kills the victim on the publish
/// after its kill_after-th event — mid-acquire, so the unpublished block
/// is left to the liveness ledger exactly as a SIGKILL would leave it.
/// The survivors run to completion; the pool must consume the abort,
/// reclaim the orphan, and terminate without the victim's stop.
/// Exactly-once is asserted for every event that was actually published.
double run_client_death(const DeathBenchConfig& cfg, bool kill,
                        bool wall_clock, DeathBenchResult* result) {
  namespace transport = dedicore::transport;
  auto fabric = std::make_shared<transport::ShmFabric>(
      cfg.capacity, /*queue_count=*/1, cfg.queue_capacity);
  transport::ShmServerTransport server(fabric, 0);
  transport::WorkerPoolOptions options;
  options.steal = true;
  options.steal_threshold = cfg.steal_threshold;
  server.set_worker_count(cfg.workers, options);

  std::shared_ptr<dedicore::fault::FaultInjector> faults;
  if (kill) {
    faults = std::make_shared<dedicore::fault::FaultInjector>(1);
    dedicore::fault::FaultSpec spec;
    spec.point = "client.die";
    spec.target = cfg.victim;
    spec.after = static_cast<std::uint64_t>(cfg.kill_after);
    faults->arm(spec);
  }

  const long total_blocks =
      static_cast<long>(cfg.clients) * cfg.blocks_per_client;
  std::vector<std::atomic<int>> delivered(
      static_cast<std::size_t>(total_blocks));
  std::vector<double> worker_busy(static_cast<std::size_t>(cfg.workers), 0.0);
  std::atomic<int> stops{0};
  std::atomic<bool> aborted{false};
  std::atomic<double> death_at{-1.0};    // wall seconds since start
  std::atomic<double> reclaimed_at{-1.0};
  const int expected_stops = kill ? cfg.clients - 1 : cfg.clients;

  if (!wall_clock) dedicore::set_virtual_time_enabled(true);
  const auto wall_start = Clock::now();
  const auto maybe_finish = [&] {
    if (stops.load(std::memory_order_acquire) == expected_stops &&
        (!kill || aborted.load(std::memory_order_acquire)))
      server.end_of_stream();
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients + cfg.workers));
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0, c, faults);
      for (int i = 0; i < cfg.blocks_per_client; ++i) {
        auto ref = client.acquire_blocking(cfg.block_bytes);
        if (!ref) return;
        Event event;
        event.type = EventType::kBlockWritten;
        event.source = c;
        event.block_id = static_cast<std::uint32_t>(i);
        event.block = *ref;
        if (!client.publish(event)) {
          // The armed fault fired: the client is dead.  No abandon, no
          // stop — the acquired block stays in the liveness ledger for
          // the server's reclaim, as after a real SIGKILL.
          death_at.store(seconds_since(wall_start),
                         std::memory_order_release);
          return;
        }
      }
      Event stop;
      stop.type = EventType::kClientStop;
      stop.source = c;
      client.post(stop);
    });
  }
  for (int w = 0; w < cfg.workers; ++w) {
    threads.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->type == EventType::kBlockWritten) {
          delivered[static_cast<std::size_t>(event->source) *
                        static_cast<std::size_t>(cfg.blocks_per_client) +
                    event->block_id]
              .fetch_add(1, std::memory_order_relaxed);
          if (wall_clock) {
            dedicore::spin_seconds(cfg.service_seconds_per_event);
          } else {
            dedicore::sleep_seconds(cfg.service_seconds_per_event);
            std::this_thread::yield();
          }
          server.release(event->block);
        } else if (event->type == EventType::kClientStop) {
          stops.fetch_add(1, std::memory_order_acq_rel);
          maybe_finish();
        } else if (event->type == EventType::kClientAborted) {
          server.reclaim_client(event->source);
          reclaimed_at.store(seconds_since(wall_start),
                             std::memory_order_release);
          aborted.store(true, std::memory_order_release);
          maybe_finish();
        }
      }
      worker_busy[static_cast<std::size_t>(w)] = dedicore::now_seconds();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_elapsed = seconds_since(wall_start);
  if (!wall_clock) dedicore::set_virtual_time_enabled(false);

  // Exactly-once over everything that was actually published: all blocks
  // of the survivors, the victim's first kill_after, nothing after.
  long expected = 0, got = 0;
  for (int c = 0; c < cfg.clients; ++c) {
    const int published = (kill && c == cfg.victim) ? cfg.kill_after
                                                    : cfg.blocks_per_client;
    expected += published;
    for (int i = 0; i < cfg.blocks_per_client; ++i) {
      const int count =
          delivered[static_cast<std::size_t>(c) *
                        static_cast<std::size_t>(cfg.blocks_per_client) +
                    static_cast<std::size_t>(i)]
              .load(std::memory_order_relaxed);
      if (count == 1 && i < published) ++got;
      if (count != 0 && i >= published) got = -1;  // phantom delivery
    }
  }
  if (got != expected) {
    std::fprintf(stderr,
                 "FAIL: client-death run delivered %ld of %ld published "
                 "events exactly once (kill=%d)\n",
                 got, expected, kill ? 1 : 0);
    std::exit(1);
  }
  if (kill) {
    const auto stats = server.stats();
    if (stats.clients_aborted != 1 || stats.blocks_reclaimed < 1) {
      std::fprintf(stderr,
                   "FAIL: reclaim saw %llu aborts, %llu blocks\n",
                   static_cast<unsigned long long>(stats.clients_aborted),
                   static_cast<unsigned long long>(stats.blocks_reclaimed));
      std::exit(1);
    }
    if (fabric->segment.used() != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu segment bytes leaked past the reclaim\n",
                   static_cast<unsigned long long>(fabric->segment.used()));
      std::exit(1);
    }
    result->blocks_reclaimed = stats.blocks_reclaimed;
    result->reclaim_ms =
        (reclaimed_at.load() - death_at.load()) * 1e3;  // wall milliseconds
  }
  const long processed = expected + expected_stops + (kill ? 1 : 0);
  const double makespan =
      wall_clock ? wall_elapsed
                 : *std::max_element(worker_busy.begin(), worker_busy.end());
  return static_cast<double>(processed) / makespan;
}

// ---------------------------------------------------------------------------
// 9. Sharded multi-root storage (chunking + placement + integrity)
// ---------------------------------------------------------------------------

struct ShardedBenchConfig {
  int files = 32;
  std::uint64_t image_bytes = 1ull << 20;  ///< 1 MiB per image
  std::uint64_t chunk_bytes = 256 << 10;   ///< 4 chunks per image
  std::uint64_t budget_bytes = 8ull << 20;
  int drainers = 4;  ///< stand-in server workers (>= widest root sweep)
  /// Per-root bandwidth of the deterministic model (only ratios matter).
  double modeled_root_bw = 200e6;
};

struct ShardedBenchRow {
  int roots = 0;
  double mb_per_sec = 0.0;  ///< aggregate write MB/s, per scaling mode
  double speedup = 0.0;     ///< vs the 1-root row of the same mode
  /// total physical bytes / (roots * busiest root's bytes): 1.0 is a
  /// perfect spread.  roots * balance is the makespan speedup the layout
  /// supports, independent of the disk — the structural gate.
  double placement_balance = 0.0;
};

struct ShardedBenchResult {
  std::string mode;  ///< "wall_clock" or "modeled", as in sections 4/7/8
  std::vector<ShardedBenchRow> rows;
  bool twin_identical = false;
  bool corruption_detected = false;
  bool replication_recovered = false;
};

/// Emits `files` images through a ShardedBackend over `roots` posix roots
/// via a chunk-granular WriteBehind drained by `drainers` threads, then
/// verifies every image reads back and reports aggregate MB/s plus the
/// placement balance.  Wall mode times the drain; modeled mode is the
/// deterministic placement model (makespan = busiest root's bytes at a
/// fixed per-root bandwidth), so 1-core CI still produces a meaningful
/// scaling curve.
ShardedBenchRow run_sharded_roots(const ShardedBenchConfig& cfg, int roots,
                                  bool wall_clock) {
  namespace fs = std::filesystem;
  namespace storage = dedicore::storage;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dedicore_bench_sharded_" + std::to_string(::getpid()) + "_" +
       std::to_string(roots));
  std::vector<fs::path> root_paths;
  for (int r = 0; r < roots; ++r)
    root_paths.push_back(scratch / ("root" + std::to_string(r)));

  storage::ShardedOptions opts;
  opts.chunk_size = cfg.chunk_bytes;
  opts.placement = storage::PlacementPolicy::kBalanced;
  storage::ShardedBackend backend(root_paths, opts);
  storage::WriteBehind queue(backend, cfg.budget_bytes);

  std::vector<std::byte> image(cfg.image_bytes);
  Rng rng(0xD15C);
  for (auto& b : image) b = static_cast<std::byte>(rng.next_below(256));
  const double total_mb = static_cast<double>(cfg.files) *
                          static_cast<double>(cfg.image_bytes) / 1e6;

  const auto start = Clock::now();
  std::vector<std::thread> drainers;
  std::atomic<bool> done{false};
  for (int d = 0; d < cfg.drainers; ++d) {
    drainers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire))
        if (queue.drain_some(4) == 0) std::this_thread::yield();
    });
  }
  for (int i = 0; i < cfg.files; ++i)
    queue.enqueue({"node0/it" + std::to_string(i) + ".h5l", 0, image});
  queue.drain_all();
  done.store(true, std::memory_order_release);
  for (auto& d : drainers) d.join();
  const double elapsed = seconds_since(start);

  const auto wb = queue.stats();
  if (wb.jobs_failed != 0 ||
      backend.file_count() != static_cast<std::size_t>(cfg.files)) {
    std::fprintf(stderr,
                 "FAIL: sharded(%d roots) published %zu/%d images, %llu "
                 "failed jobs\n",
                 roots, backend.file_count(), cfg.files,
                 static_cast<unsigned long long>(wb.jobs_failed));
    std::exit(1);
  }

  ShardedBenchRow row;
  row.roots = roots;
  std::uint64_t physical = 0, busiest = 0;
  for (const auto& rs : backend.root_stats()) {
    physical += rs.bytes_written;
    busiest = std::max(busiest, rs.bytes_written);
  }
  row.placement_balance =
      static_cast<double>(physical) /
      (static_cast<double>(roots) * static_cast<double>(busiest));
  row.mb_per_sec =
      wall_clock ? total_mb / elapsed
                 : total_mb / (static_cast<double>(busiest) /
                               cfg.modeled_root_bw);

  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return row;
}

/// Structural integrity gates, independent of scale and scaling mode: the
/// sharded twin reads back byte-identical to a single-root posix run of
/// the same images, a flipped bit in a chunk surfaces as DATA_LOSS, and
/// replication=2 serves the exact original bytes past the corrupt copy.
ShardedBenchResult run_sharded_integrity(const ShardedBenchConfig& cfg,
                                         ShardedBenchResult result) {
  namespace fs = std::filesystem;
  namespace storage = dedicore::storage;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dedicore_bench_sharded_twin_" + std::to_string(::getpid()));
  const int files = std::min(cfg.files, 4);

  std::vector<std::byte> image(cfg.image_bytes);
  Rng rng(0xBEEF);
  for (auto& b : image) b = static_cast<std::byte>(rng.next_below(256));

  {
    // Twin: one single-root posix backend, one 4-root sharded stack.
    storage::PosixBackend single(scratch / "single");
    std::vector<fs::path> roots;
    for (int r = 0; r < 4; ++r)
      roots.push_back(scratch / "sharded" / ("root" + std::to_string(r)));
    storage::ShardedOptions opts;
    opts.chunk_size = cfg.chunk_bytes;
    storage::ShardedBackend sharded(roots, opts);
    result.twin_identical = true;
    for (int i = 0; i < files; ++i) {
      const std::string path = "it" + std::to_string(i) + ".h5l";
      image[static_cast<std::size_t>(i)] = static_cast<std::byte>(i);
      if (!storage::write_image(single, path, image).is_ok() ||
          !storage::write_image(sharded, path, image).is_ok()) {
        std::fprintf(stderr, "FAIL: sharded twin write\n");
        std::exit(1);
      }
      const auto a = single.read_file(path);
      const auto b = sharded.read_file(path);
      result.twin_identical =
          result.twin_identical && a.has_value() && b.has_value() && *a == *b;
    }
  }
  {
    // Corruption without replication: DATA_LOSS, never silent garbage.
    std::vector<fs::path> roots = {scratch / "c" / "r0", scratch / "c" / "r1"};
    storage::ShardedOptions opts;
    opts.chunk_size = cfg.chunk_bytes;
    storage::ShardedBackend backend(roots, opts);
    if (!storage::write_image(backend, "img.h5l", image).is_ok()) {
      std::fprintf(stderr, "FAIL: sharded corruption-probe write\n");
      std::exit(1);
    }
    for (const auto& root : roots) {
      const fs::path chunk = root / "img.h5l.chunk-0";
      if (!fs::exists(chunk)) continue;
      std::fstream io(chunk, std::ios::in | std::ios::out | std::ios::binary);
      char c = 0;
      io.read(&c, 1);
      c = static_cast<char>(c ^ 0x01);
      io.seekp(0);
      io.write(&c, 1);
    }
    std::vector<std::byte> back;
    result.corruption_detected =
        backend.read_image("img.h5l", &back).code() ==
        dedicore::StatusCode::kDataLoss;
  }
  {
    // Same corruption with replication=2: recovered, byte-identical.
    std::vector<fs::path> roots = {scratch / "r" / "r0", scratch / "r" / "r1"};
    storage::ShardedOptions opts;
    opts.chunk_size = cfg.chunk_bytes;
    opts.replication = 2;
    storage::ShardedBackend backend(roots, opts);
    if (!storage::write_image(backend, "img.h5l", image).is_ok()) {
      std::fprintf(stderr, "FAIL: sharded replication-probe write\n");
      std::exit(1);
    }
    const auto flip = [&](const fs::path& root) {
      std::fstream io(root / "img.h5l.chunk-0",
                      std::ios::in | std::ios::out | std::ios::binary);
      char c = 0;
      io.read(&c, 1);
      c = static_cast<char>(c ^ 0x01);
      io.seekp(0);
      io.write(&c, 1);
    };
    // Corrupt one copy; if the read path served chunk 0 from the *other*
    // replica first (placement-dependent), restore it and corrupt that
    // one instead, so the recovery actually exercises the fall-through.
    std::vector<std::byte> back;
    bool degraded = false;
    flip(roots[0]);
    dedicore::Status read = backend.read_image("img.h5l", &back, &degraded);
    if (read.is_ok() && !degraded) {
      flip(roots[0]);  // restore
      flip(roots[1]);
      degraded = false;
      read = backend.read_image("img.h5l", &back, &degraded);
    }
    result.replication_recovered =
        read.is_ok() && back == image && degraded &&
        backend.counters().corrupt_chunks_detected > 0;
  }

  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return result;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct AllocatorRow {
  int threads;
  double legacy_ops_per_sec;
  double ops_per_sec;
};

struct QueueRow {
  int producers;
  double legacy_events_per_sec;
  double events_per_sec;
  double batch_events_per_sec;
};

struct WorkerRow {
  int workers;
  double events_per_sec;
  double speedup;  ///< vs the first (narrowest) entry of the sweep
};

std::string format_json(const std::string& mode,
                        const std::vector<AllocatorRow>& allocator,
                        const std::vector<QueueRow>& queue,
                        const std::vector<WorkerRow>& worker_rows,
                        const std::string& scaling_mode,
                        const SkewConfig& skew_cfg, const SkewSummary& skew,
                        const MpiBatchConfig& mpi_cfg,
                        const MpiBatchResult& mpi,
                        const PosixBenchConfig& posix_cfg,
                        const PosixBenchResult& posix,
                        const ShardedBenchConfig& sharded_cfg,
                        const ShardedBenchResult& sharded,
                        const CompressionBenchConfig& compress_cfg,
                        const std::vector<CompressionBenchRow>& compression,
                        const DeathBenchConfig& death_cfg,
                        const DeathBenchResult& death) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed;
  out << "{\n  \"bench\": \"hotpath\",\n  \"mode\": \"" << mode << "\",\n";
  out << "  \"allocator_churn\": [\n";
  for (std::size_t i = 0; i < allocator.size(); ++i) {
    const auto& row = allocator[i];
    out << "    {\"threads\": " << row.threads
        << ", \"legacy_ops_per_sec\": " << row.legacy_ops_per_sec
        << ", \"ops_per_sec\": " << row.ops_per_sec << ", \"speedup\": ";
    out.precision(2);
    out << row.ops_per_sec / row.legacy_ops_per_sec;
    out.precision(1);
    out << "}" << (i + 1 < allocator.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"queue_throughput\": [\n";
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const auto& row = queue[i];
    out << "    {\"producers\": " << row.producers
        << ", \"legacy_events_per_sec\": " << row.legacy_events_per_sec
        << ", \"events_per_sec\": " << row.events_per_sec
        << ", \"batch_events_per_sec\": " << row.batch_events_per_sec
        << "}" << (i + 1 < queue.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"server_worker_scaling_mode\": \"" << scaling_mode
      << "\",\n  \"server_worker_scaling\": [\n";
  for (std::size_t i = 0; i < worker_rows.size(); ++i) {
    const auto& row = worker_rows[i];
    out << "    {\"workers\": " << row.workers
        << ", \"events_per_sec\": " << row.events_per_sec << ", \"speedup\": ";
    out.precision(2);
    out << row.speedup;
    out.precision(1);
    out << "}" << (i + 1 < worker_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"skewed_clients\": {\n";
  out << "    \"clients\": " << skew_cfg.clients
      << ", \"workers\": " << skew_cfg.workers
      << ", \"hot_blocks\": " << skew_cfg.hot_blocks
      << ", \"cold_blocks\": " << skew_cfg.cold_blocks << ",\n";
  out << "    \"mode\": \"" << skew.mode << "\",\n";
  out << "    \"pinned_events_per_sec\": " << skew.pinned_events_per_sec
      << ",\n    \"steal_events_per_sec\": " << skew.steal_events_per_sec
      << ",\n    \"speedup\": ";
  out.precision(2);
  out << skew.speedup;
  out.precision(1);
  out << ", \"steals\": " << skew.steals
      << ",\n    \"posix_idle_drain_jobs\": " << skew.posix_jobs
      << ", \"posix_idle_drains\": " << skew.posix_idle_drains << "\n  },\n";
  out << "  \"mpi_batching\": {\n";
  out << "    \"clients\": " << mpi_cfg.clients
      << ", \"iterations\": " << mpi_cfg.iterations
      << ", \"blocks_per_iteration\": " << mpi_cfg.blocks_per_iteration
      << ",\n";
  out.precision(3);
  out << "    \"wire_messages_per_client_iteration\": "
      << mpi.wire_per_client_iteration
      << ",\n    \"unbatched_wire_messages_per_client_iteration\": "
      << mpi.unbatched_per_client_iteration
      << ",\n    \"events_per_wire_message\": " << mpi.events_per_wire_message
      << "\n  },\n";
  out << "  \"posix_backend\": {\n";
  out << "    \"files\": " << posix_cfg.files
      << ", \"image_bytes\": " << posix_cfg.image_bytes
      << ", \"drainers\": " << posix_cfg.drainers << ",\n";
  out.precision(1);
  out << "    \"sync_mb_per_sec\": " << posix.sync_mb_per_sec
      << ",\n    \"write_behind_mb_per_sec\": "
      << posix.write_behind_mb_per_sec;
  out.precision(4);
  out << ",\n    \"enqueue_block_seconds\": " << posix.enqueue_block_seconds
      << "\n  },\n";
  out << "  \"sharded_backend\": {\n";
  out << "    \"files\": " << sharded_cfg.files
      << ", \"image_bytes\": " << sharded_cfg.image_bytes
      << ", \"chunk_bytes\": " << sharded_cfg.chunk_bytes
      << ", \"drainers\": " << sharded_cfg.drainers << ",\n";
  out << "    \"mode\": \"" << sharded.mode << "\",\n    \"roots\": [\n";
  for (std::size_t i = 0; i < sharded.rows.size(); ++i) {
    const auto& row = sharded.rows[i];
    out.precision(1);
    out << "      {\"roots\": " << row.roots
        << ", \"mb_per_sec\": " << row.mb_per_sec << ", \"speedup\": ";
    out.precision(2);
    out << row.speedup << ", \"placement_balance\": " << row.placement_balance
        << "}" << (i + 1 < sharded.rows.size() ? "," : "") << "\n";
  }
  out.precision(1);
  out << "    ],\n";
  out << "    \"twin_identical\": "
      << (sharded.twin_identical ? "true" : "false")
      << ", \"corruption_detected\": "
      << (sharded.corruption_detected ? "true" : "false")
      << ", \"replication_recovered\": "
      << (sharded.replication_recovered ? "true" : "false") << "\n  },\n";
  out << "  \"compression\": {\n";
  out << "    \"iterations\": " << compress_cfg.iterations
      << ", \"grid\": " << compress_cfg.grid
      << ", \"cores_per_node\": " << compress_cfg.cores_per_node
      << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < compression.size(); ++i) {
    const auto& row = compression[i];
    out << "      {\"codec\": \"" << row.codec << "\", \"raw_bytes\": "
        << row.raw_bytes << ", \"bytes_to_disk\": " << row.bytes_to_disk;
    out.precision(2);
    out << ", \"achieved_ratio\": " << row.achieved_ratio;
    out.precision(4);
    out << ",\n       \"compress_seconds\": " << row.compress_seconds
        << ", \"spare_time_utilization\": " << row.spare_time_utilization;
    out.precision(1);
    out << ", \"effective_mb_per_sec\": " << row.effective_mb_per_sec << "}"
        << (i + 1 < compression.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";
  out << "  \"client_death\": {\n";
  out << "    \"clients\": " << death_cfg.clients
      << ", \"workers\": " << death_cfg.workers
      << ", \"blocks_per_client\": " << death_cfg.blocks_per_client
      << ", \"kill_after\": " << death_cfg.kill_after << ",\n";
  out << "    \"mode\": \"" << death.mode << "\",\n";
  out << "    \"healthy_events_per_sec\": " << death.healthy_events_per_sec
      << ",\n    \"faulty_events_per_sec\": " << death.faulty_events_per_sec
      << ",\n    \"throughput_retained\": ";
  out.precision(3);
  out << death.throughput_retained << ",\n    \"reclaim_ms\": "
      << death.reclaim_ms;
  out.precision(1);
  out << ", \"blocks_reclaimed\": " << death.blocks_reclaimed << "\n  }\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::vector<int> worker_sweep = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      // Comma-separated sweep, e.g. --workers 1,2,4,8.
      worker_sweep.clear();
      std::string list = argv[++i];
      std::stringstream items(list);
      std::string item;
      while (std::getline(items, item, ',')) {
        const int workers = std::atoi(item.c_str());
        if (workers < 1) {
          std::cerr << "bench_hotpath: bad --workers entry '" << item << "'\n";
          return 2;
        }
        worker_sweep.push_back(workers);
      }
      if (worker_sweep.empty()) {
        std::cerr << "bench_hotpath: empty --workers sweep\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_hotpath [--smoke] [--json FILE] "
                   "[--workers N,N,...]\n";
      return 2;
    }
  }

  ChurnConfig churn;
  QueueConfig queue_cfg;
  MpiBatchConfig mpi_cfg;
  WorkerScaleConfig worker_cfg;
  SkewConfig skew_cfg;
  SkewPosixConfig skew_posix_cfg;
  PosixBenchConfig posix_cfg;
  ShardedBenchConfig sharded_cfg;
  CompressionBenchConfig compress_cfg;
  DeathBenchConfig death_cfg;
  if (smoke) {
    churn.capacity = 1ull << 24;
    churn.fragment_pins = 512;
    churn.ops_per_thread = 5000;
    queue_cfg.events_per_producer = 20000;
    mpi_cfg.iterations = 8;
    worker_cfg.events_per_client = 4000;
    skew_cfg.hot_blocks = 4000;
    skew_cfg.cold_blocks = 160;
    skew_posix_cfg.jobs = 6;
    skew_posix_cfg.image_bytes = 64 * 1024;
    posix_cfg.files = 8;
    posix_cfg.image_bytes = 256 * 1024;
    posix_cfg.budget_bytes = 1ull << 20;
    sharded_cfg.files = 6;
    sharded_cfg.image_bytes = 256 * 1024;
    sharded_cfg.chunk_bytes = 64 * 1024;
    sharded_cfg.budget_bytes = 1ull << 20;
    compress_cfg.iterations = 4;
    compress_cfg.grid = 16;
    death_cfg.blocks_per_client = 600;
    death_cfg.kill_after = 150;
  }

  // Wall-clock pool measurements need real parallel hardware; narrower
  // hosts (this includes 1-core CI containers) fall back to the
  // deterministic virtual-clock model.  Recorded in the JSON so trajectory
  // points are only ever compared within a mode.
  const bool wall = wall_clock_capable();
  const std::string scaling_mode = wall ? "wall_clock" : "modeled";

  std::vector<AllocatorRow> allocator_rows;
  for (int threads : {1, 4}) {
    AllocatorRow row;
    row.threads = threads;
    row.legacy_ops_per_sec =
        run_allocator_churn<dedicore::bench_legacy::LegacySegment>(churn,
                                                                   threads);
    row.ops_per_sec =
        run_allocator_churn<dedicore::shm::Segment>(churn, threads);
    allocator_rows.push_back(row);
    std::printf(
        "allocator churn, %d thread(s): legacy %.2fM ops/s, new %.2fM ops/s "
        "(%.2fx)\n",
        threads, row.legacy_ops_per_sec / 1e6, row.ops_per_sec / 1e6,
        row.ops_per_sec / row.legacy_ops_per_sec);
  }

  std::vector<QueueRow> queue_rows;
  for (int producers : {1, 2, 4}) {
    QueueRow row;
    row.producers = producers;
    row.legacy_events_per_sec = run_queue_legacy(queue_cfg, producers);
    row.events_per_sec = run_queue_popall(queue_cfg, producers);
    row.batch_events_per_sec = run_queue_batched(queue_cfg, producers);
    queue_rows.push_back(row);
    std::printf(
        "queue throughput, %d producer(s): legacy %.2fM ev/s, "
        "push+pop_all %.2fM ev/s, push_all+pop_all %.2fM ev/s\n",
        producers, row.legacy_events_per_sec / 1e6, row.events_per_sec / 1e6,
        row.batch_events_per_sec / 1e6);
  }

  std::vector<WorkerRow> worker_rows;
  for (int workers : worker_sweep) {
    WorkerRow row;
    row.workers = workers;
    row.events_per_sec = run_worker_scaling(worker_cfg, workers, wall);
    row.speedup = worker_rows.empty()
                      ? 1.0
                      : row.events_per_sec / worker_rows.front().events_per_sec;
    worker_rows.push_back(row);
    std::printf(
        "server worker scaling (%s), %d worker(s): %.2fM ev/s (%.2fx vs %d)\n",
        scaling_mode.c_str(), workers, row.events_per_sec / 1e6, row.speedup,
        worker_rows.front().workers);
  }

  SkewSummary skew;
  skew.mode = scaling_mode;
  std::uint64_t pinned_steals = 0;
  skew.pinned_events_per_sec =
      run_skewed_clients(skew_cfg, /*steal=*/false, wall, &pinned_steals);
  skew.steal_events_per_sec =
      run_skewed_clients(skew_cfg, /*steal=*/true, wall, &skew.steals);
  skew.speedup = skew.steal_events_per_sec / skew.pinned_events_per_sec;
  std::printf(
      "skewed clients (%s), %d clients (hot %d / cold %d) on %d workers: "
      "pinned %.2fM ev/s, stealing %.2fM ev/s (%.2fx), %llu steals\n",
      scaling_mode.c_str(), skew_cfg.clients, skew_cfg.hot_blocks,
      skew_cfg.cold_blocks, skew_cfg.workers,
      skew.pinned_events_per_sec / 1e6, skew.steal_events_per_sec / 1e6,
      skew.speedup, static_cast<unsigned long long>(skew.steals));
  // Structural gates, any scale: the pinned run must not migrate clients,
  // and the stealing run must actually have stolen — a zero here means the
  // speedup compares two identically-assigned pools.
  if (pinned_steals != 0) {
    std::fprintf(stderr, "FAIL: pinned run reported %llu steals\n",
                 static_cast<unsigned long long>(pinned_steals));
    return 1;
  }
  if (skew.steals == 0) {
    std::fprintf(stderr, "FAIL: stealing run observed no steals\n");
    return 1;
  }

  const SkewPosixResult skew_posix =
      run_skew_posix_drain(skew_cfg, skew_posix_cfg);
  skew.posix_jobs = skew_posix.jobs_written;
  skew.posix_idle_drains = skew_posix.idle_drains;
  std::printf(
      "skewed clients posix twin: %llu write-behind jobs, %llu drained by "
      "parked workers\n",
      static_cast<unsigned long long>(skew_posix.jobs_written),
      static_cast<unsigned long long>(skew_posix.idle_drains));
  if (skew_posix.idle_drains == 0) {
    std::fprintf(stderr,
                 "FAIL: no write-behind job was drained from the idle path\n");
    return 1;
  }

  const MpiBatchResult mpi = run_mpi_batching(mpi_cfg);
  std::printf(
      "mpi batching: %.3f wire msgs per (client, iteration) for %d blocks "
      "(unbatched design: %.3f), %.1f events per wire message\n",
      mpi.wire_per_client_iteration, mpi_cfg.blocks_per_iteration,
      mpi.unbatched_per_client_iteration, mpi.events_per_wire_message);

  const PosixBenchResult posix = run_posix_backend(posix_cfg);
  std::printf(
      "posix backend: sync %.1f MB/s, write-behind (%d drainers) %.1f MB/s, "
      "producer blocked %.3fs on the %.0f MiB budget\n",
      posix.sync_mb_per_sec, posix_cfg.drainers,
      posix.write_behind_mb_per_sec, posix.enqueue_block_seconds,
      static_cast<double>(posix_cfg.budget_bytes) / (1 << 20));

  ShardedBenchResult sharded;
  sharded.mode = scaling_mode;
  for (int roots : {1, 2, 4}) {
    ShardedBenchRow row = run_sharded_roots(sharded_cfg, roots, wall);
    row.speedup = sharded.rows.empty()
                      ? 1.0
                      : row.mb_per_sec / sharded.rows.front().mb_per_sec;
    sharded.rows.push_back(row);
    std::printf(
        "sharded backend (%s), %d root(s): %.1f MB/s aggregate (%.2fx vs 1 "
        "root), placement balance %.2f\n",
        scaling_mode.c_str(), roots, row.mb_per_sec, row.speedup,
        row.placement_balance);
  }
  sharded = run_sharded_integrity(sharded_cfg, std::move(sharded));
  std::printf(
      "sharded integrity: twin %s, corruption %s, replication-2 recovery "
      "%s\n",
      sharded.twin_identical ? "byte-identical" : "MISMATCH",
      sharded.corruption_detected ? "detected" : "MISSED",
      sharded.replication_recovered ? "byte-identical" : "FAILED");
  // Structural gates, any scale and either mode.  The scaling gate uses
  // roots x balance — the makespan speedup the *layout* supports — so a
  // full run on a many-core single-disk host cannot fail it on hardware
  // it does not have; in modeled mode mb_per_sec/speedup are exactly this
  // product, so the committed 4-root number clears 1.5x whenever the gate
  // does.
  {
    const ShardedBenchRow& widest = sharded.rows.back();
    const double layout_speedup =
        static_cast<double>(widest.roots) * widest.placement_balance;
    if (layout_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: 4-root placement supports only %.2fx over one root "
                   "(balance %.2f)\n",
                   layout_speedup, widest.placement_balance);
      return 1;
    }
  }
  if (!sharded.twin_identical || !sharded.corruption_detected ||
      !sharded.replication_recovered) {
    std::fprintf(stderr, "FAIL: sharded integrity gates\n");
    return 1;
  }

  std::vector<CompressionBenchRow> compression;
  for (const std::string codec : {"none", "xor+lzs"}) {
    compression.push_back(run_compression(compress_cfg, codec));
    const auto& row = compression.back();
    std::printf(
        "compression (%s): %.1f MB raw -> %.1f MB on disk (%.2fx), codec "
        "time %.3fs (%.1f%% of worker time), %.1f raw MB/s retired\n",
        row.codec.c_str(), static_cast<double>(row.raw_bytes) / 1e6,
        static_cast<double>(row.bytes_to_disk) / 1e6, row.achieved_ratio,
        row.compress_seconds, row.spare_time_utilization * 100.0,
        row.effective_mb_per_sec);
  }

  DeathBenchResult death;
  death.mode = scaling_mode;
  death.healthy_events_per_sec =
      run_client_death(death_cfg, /*kill=*/false, wall, &death);
  death.faulty_events_per_sec =
      run_client_death(death_cfg, /*kill=*/true, wall, &death);
  death.throughput_retained =
      death.faulty_events_per_sec / death.healthy_events_per_sec;
  std::printf(
      "client death (%s), %d clients on %d workers, victim killed after %d "
      "of %d events: healthy %.2fM ev/s, faulty %.2fM ev/s (%.3f retained), "
      "reclaim in %.2fms, %llu block(s) reclaimed\n",
      scaling_mode.c_str(), death_cfg.clients, death_cfg.workers,
      death_cfg.kill_after, death_cfg.blocks_per_client,
      death.healthy_events_per_sec / 1e6, death.faulty_events_per_sec / 1e6,
      death.throughput_retained, death.reclaim_ms,
      static_cast<unsigned long long>(death.blocks_reclaimed));
  // Structural gates, any scale (run_client_death already asserted
  // exactly-once, the abort, the orphan reclaim, and a leak-free
  // segment): a faulty run that keeps less than half the healthy
  // throughput means the reclaim path is stalling the survivors.
  if (!smoke && death.throughput_retained < 0.5) {
    std::fprintf(stderr,
                 "FAIL: only %.3f of healthy throughput retained with a dead "
                 "client\n",
                 death.throughput_retained);
    return 1;
  }

  const std::string json =
      format_json(smoke ? "smoke" : "full", allocator_rows, queue_rows,
                  worker_rows, scaling_mode, skew_cfg, skew, mpi_cfg, mpi,
                  posix_cfg, posix, sharded_cfg, sharded, compress_cfg,
                  compression, death_cfg, death);
  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << json;
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "bench_hotpath: cannot write " << json_path << "\n";
        return 1;
      }
      out << json;
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  // Smoke mode doubles as a regression gate in CTest: the structural win
  // (frame batching) must hold at any scale.  Throughput ratios are only
  // checked in full runs — tiny smoke workloads are noise-dominated.
  if (!smoke &&
      mpi.wire_per_client_iteration > 2.0) {
    std::cerr << "FAIL: wire messages per iteration did not collapse to O(1)\n";
    return 1;
  }
  if (mpi.wire_per_client_iteration >=
      mpi.unbatched_per_client_iteration) {
    std::cerr << "FAIL: batching sent no fewer messages than the unbatched "
                 "design\n";
    return 1;
  }
  // Work-stealing gate (full runs only — smoke workloads are too small for
  // throughput ratios): under the skewed mix, stealing must beat pinning
  // by at least 1.5x at 4 workers.  In modeled mode the ratio is
  // deterministic (~3x: the hot client's ~81 % service share spreads over
  // the pool); in wall mode it is a real measurement on >= 4 cores.
  if (!smoke && skew.speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: stealing speedup %.2fx under skew is below 1.5x\n",
                 skew.speedup);
    return 1;
  }
  // PR-6 structural gate (any scale): the xor+lzs twin must put fewer
  // bytes on the real disk than the raw twin of the same workload.
  if (compression[1].bytes_to_disk >= compression[0].bytes_to_disk ||
      compression[1].achieved_ratio <= 1.0) {
    std::cerr << "FAIL: compression did not shrink bytes-to-disk ("
              << compression[0].bytes_to_disk << " raw vs "
              << compression[1].bytes_to_disk << " compressed)\n";
    return 1;
  }
  return 0;
}
