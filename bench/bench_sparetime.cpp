// E4 — "Saving time" (§IV.D): dedicated-core idleness, compression on the
// spare time, and the I/O-scheduling ablation.
//
// Paper anchors:
//   * dedicated cores are idle 92–99 % of the time on Kraken;
//   * compression reached a 600 % ratio with no overhead on the simulation;
//   * a better I/O scheduling schema raised throughput to 12.7 GB/s.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/table.hpp"
#include "compress/codec.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "model/replay.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;
using namespace dedicore::model;

namespace {

// --- part 1: idle fraction across scales (model) ---------------------------

void report_idle() {
  const fsim::StorageConfig storage = kraken_storage_config();
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;

  Table table({"cores", "dedicated idle", "hidden write p50 (s)",
               "paper range"});
  for (int cores : {576, 2304, 9216}) {
    ClusterSpec cluster;
    cluster.total_cores = cores;
    cluster.cores_per_node = 12;
    const ReplayResult r = replay(Strategy::kDamaris, cluster, workload,
                                  storage, kraken_congestion_alpha(), 13);
    table.add_row({fmt_count(static_cast<std::uint64_t>(cores)),
                   fmt_percent(r.dedicated_idle_fraction),
                   fmt_double(r.hidden_io_seconds.summary().median, 1),
                   "92-99%"});
  }
  table.print(std::cout, "E4a: dedicated-core idle time");
}

// --- part 2: compression ratio + zero overhead (real threads) --------------

struct CompressionOutcome {
  double ratio = 0.0;
  double stall_raw = 0.0;
  double stall_packed = 0.0;
};

CompressionOutcome measure_compression() {
  CompressionOutcome outcome;
  for (const std::string codec : {"none", "xor+lzs"}) {
    sim::Cm1WorkloadOptions options;
    options.nx = options.ny = options.nz = 20;
    options.cores_per_node = 4;
    options.codec = codec;
    const core::Configuration cfg = sim::make_cm1_configuration(options);
    fsim::StorageConfig storage;
    storage.ost_count = 8;
    fsim::TimeScale ts;
    ts.real_per_sim = 1e-3;
    fsim::FileSystem fs(storage, ts);

    std::mutex mutex;
    SampleSet stalls;
    double ratio = 1.0;
    minimpi::run_world(4, [&](minimpi::Comm& world) {
      core::Runtime rt = core::Runtime::initialize(cfg, world, fs);
      if (rt.is_server()) {
        rt.run_server();
        if (auto* store = dynamic_cast<core::StorePlugin*>(
                rt.server().find_plugin("end_iteration", "store"))) {
          const auto t = store->totals();
          std::lock_guard<std::mutex> lock(mutex);
          ratio = compress::compression_ratio(t.raw_bytes, t.stored_bytes);
        }
        return;
      }
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(
          options, rt.client_comm().rank(), rt.client_comm().size()));
      for (int it = 0; it < 4; ++it) {
        proxy.step();
        Stopwatch stall;
        for (const auto& [name, bytes] : proxy.field_bytes())
          (void)rt.client().write(name, bytes);
        (void)rt.client().end_iteration();
        std::lock_guard<std::mutex> lock(mutex);
        stalls.add(stall.elapsed_seconds());
      }
      rt.finalize();
    });
    if (codec == "none") {
      outcome.stall_raw = stalls.summary().median;
    } else {
      outcome.stall_packed = stalls.summary().median;
      outcome.ratio = ratio;
    }
  }
  return outcome;
}

// --- part 3: scheduler ablation (model) ------------------------------------

void report_scheduler() {
  const fsim::StorageConfig storage = kraken_storage_config();
  ClusterSpec cluster;
  cluster.total_cores = 9216;
  cluster.cores_per_node = 12;
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;

  Table table({"scheduler", "max concurrent nodes", "throughput",
               "run time (s)"});
  const ReplayResult greedy = replay(Strategy::kDamaris, cluster, workload,
                                     storage, kraken_congestion_alpha(), 17);
  table.add_row({"greedy", "unlimited",
                 format_throughput_gbps(greedy.aggregate_throughput),
                 fmt_double(greedy.app_seconds, 1)});
  for (int width : {96, 192, 384}) {
    WorkloadSpec w = workload;
    w.throttle_max_nodes = width;
    const ReplayResult r = replay(Strategy::kDamarisThrottled, cluster, w,
                                  storage, kraken_congestion_alpha(), 17);
    table.add_row({"throttled", std::to_string(width),
                   format_throughput_gbps(r.aggregate_throughput),
                   fmt_double(r.app_seconds, 1)});
  }
  table.print(std::cout, "E4c: I/O scheduling ablation (paper: 10 -> 12.7 GB/s)");
}

}  // namespace

int main() {
  std::printf("E4: using the dedicated cores' spare time\n\n");
  report_idle();

  std::printf("\n");
  const CompressionOutcome c = measure_compression();
  Table table({"metric", "measured", "paper"});
  table.add_row({"compression ratio", fmt_double(c.ratio, 2) + "x", "6.0x (600%)"});
  table.add_row({"client stall, raw", fmt_double(c.stall_raw * 1e6, 1) + " us", "-"});
  table.add_row({"client stall, compressed",
                 fmt_double(c.stall_packed * 1e6, 1) + " us",
                 "no overhead on the simulation"});
  table.print(std::cout, "E4b: compression on the dedicated core (real threads)");

  std::printf("\n");
  report_scheduler();
  return 0;
}
