// E6 — usability (§V.C.2): lines of integration code.
//
// The paper rewrote the VisIt example suite with Damaris: "All these
// examples require more than a hundred lines of code with the VisIt API.
// Damaris only requires one line per data object ... ending up with less
// than 10 lines of code changes."
//
// This harness measures the same thing on this repository's own example
// pair: nek5000_insitu.cpp tags every middleware line with `damaris-api`;
// nek5000_vislite_direct.cpp tags every line of synchronous visualization
// plumbing with `vislite-api`.  Both examples produce the same images.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"

using namespace dedicore;

namespace {

int count_marked_lines(const std::string& path, const std::string& marker) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s (run from the repository root or "
                         "set DEDICORE_SRC)\n", path.c_str());
    return -1;
  }
  int count = 0;
  std::string line;
  while (std::getline(in, line))
    if (line.find(marker) != std::string::npos) ++count;
  return count;
}

std::string examples_dir() {
  if (const char* env = std::getenv("DEDICORE_SRC"))
    return std::string(env) + "/examples/";
#ifdef DEDICORE_EXAMPLES_DIR
  return std::string(DEDICORE_EXAMPLES_DIR) + "/";
#else
  return "examples/";
#endif
}

}  // namespace

int main() {
  std::printf("E6: instrumentation cost — lines of integration code\n\n");
  const std::string dir = examples_dir();
  const int damaris_lines =
      count_marked_lines(dir + "nek5000_insitu.cpp", "damaris-api");
  const int direct_lines =
      count_marked_lines(dir + "nek5000_vislite_direct.cpp", "vislite-api");
  if (damaris_lines < 0 || direct_lines < 0) return 1;

  Table table({"integration", "lines of code", "paper"});
  table.add_row({"synchronous VisLite (VisIt-style)",
                 std::to_string(direct_lines), "> 100 per example"});
  table.add_row({"Damaris plugin + XML",
                 std::to_string(damaris_lines), "< 10 per example"});
  table.print(std::cout);

  std::printf("\nBoth programs render the same isosurface images of the same "
              "solver; the Damaris version moves the whole pipeline into "
              "the vislite plugin configured from the data description.\n");
  std::printf("ratio: %.1fx fewer integration lines with dedicated cores\n",
              static_cast<double>(direct_lines) /
                  static_cast<double>(damaris_lines));
  return direct_lines > damaris_lines ? 0 : 1;
}
