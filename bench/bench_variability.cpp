// E2 — "Hiding the I/O variability" (§IV.B).
//
// Distribution of the per-process, per-iteration I/O stall for the three
// approaches, at paper scale (model replay) and at small scale with the
// real middleware threads (cross-validation).  Paper anchors:
//   * baselines spread over orders of magnitude between the slowest and
//     fastest process and between iterations (hundreds of seconds);
//   * the Damaris-visible write is a shared-memory copy of ~0.1 s that
//     does not depend on scale.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/clock.hpp"
#include "common/table.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "model/replay.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;
using namespace dedicore::model;

namespace {

void add_row(Table& table, const std::string& scale_label,
             const std::string& strategy, const Summary& s) {
  table.add_row({scale_label, strategy, fmt_double(s.min, 3),
                 fmt_double(s.median, 3), fmt_double(s.p99, 3),
                 fmt_double(s.max, 3),
                 s.spread() > 0 ? fmt_double(s.spread(), 1) + "x" : "-"});
}

}  // namespace

int main() {
  std::printf("E2: per-process, per-iteration I/O stall distributions\n\n");

  // --- paper scale via the model ------------------------------------------
  Table table({"scale", "strategy", "min (s)", "p50 (s)", "p99 (s)", "max (s)",
               "max/min"});
  const fsim::StorageConfig storage = kraken_storage_config();
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.bytes_per_core = 43ull << 20;

  for (int cores : {2304, 9216}) {
    ClusterSpec cluster;
    cluster.total_cores = cores;
    cluster.cores_per_node = 12;
    for (Strategy strategy : {Strategy::kFilePerProcess, Strategy::kCollective,
                              Strategy::kDamaris}) {
      const ReplayResult r = replay(strategy, cluster, workload, storage,
                                    kraken_congestion_alpha(), 7);
      add_row(table, fmt_count(static_cast<std::uint64_t>(cores)),
              std::string(strategy_name(strategy)),
              r.visible_io_seconds.summary());
    }
  }
  table.print(std::cout, "model replay (Kraken-calibrated)");

  std::printf("\npaper anchor: Damaris write '\"'cut down to the time "
              "required to write in shared memory, in the order of 0.1 "
              "seconds', independent of scale; baseline spread spans orders "
              "of magnitude.\n\n");

  // --- small-scale cross-check with real threads ---------------------------
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 16;
  options.cores_per_node = 4;
  const core::Configuration cfg = sim::make_cm1_configuration(options);

  fsim::StorageConfig jittery;
  jittery.ost_count = 4;
  jittery.ost_bandwidth = 150e6;
  jittery.jitter_sigma = 0.4;
  jittery.spike_probability = 0.05;
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  fsim::FileSystem fs(jittery, ts);

  std::mutex mutex;
  SampleSet stalls;
  minimpi::run_world(8, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(
        options, rt.client_comm().rank(), rt.client_comm().size()));
    for (int it = 0; it < 5; ++it) {
      proxy.step();
      Stopwatch stall;
      for (const auto& [name, bytes] : proxy.field_bytes())
        (void)rt.client().write(name, bytes);
      (void)rt.client().end_iteration();
      std::lock_guard<std::mutex> lock(mutex);
      stalls.add(stall.elapsed_seconds());
    }
    rt.finalize();
  });

  const Summary s = stalls.summary();
  std::printf("real-thread middleware (8 ranks, 2 nodes): visible stall "
              "median %.1f us, p99 %.1f us — a flat memcpy while the "
              "jittery storage runs behind the dedicated cores.\n",
              s.median * 1e6, s.p99 * 1e6);
  return 0;
}
