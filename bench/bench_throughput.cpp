// E3 — "Increasing I/O throughput" (§IV.C).
//
// Aggregate storage throughput of each approach at 9216 cores on the
// Kraken-calibrated model.  Paper anchors: collective 0.5 GB/s,
// file-per-process < 1.7 GB/s, Damaris up to 10 GB/s (and 12.7 GB/s with
// smarter scheduling — reported in E4 but included here for the series).
#include <cstdio>
#include <iostream>

#include "common/bytes.hpp"
#include "common/table.hpp"
#include "model/replay.hpp"

using namespace dedicore;
using namespace dedicore::model;

int main() {
  const fsim::StorageConfig storage = kraken_storage_config();
  const double alpha = kraken_congestion_alpha();

  ClusterSpec cluster;
  cluster.total_cores = 9216;
  cluster.cores_per_node = 12;

  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;

  std::printf("E3: aggregate write throughput at 9,216 cores "
              "(Kraken-calibrated model)\n\n");

  struct Row {
    Strategy strategy;
    const char* paper;
  };
  const Row rows[] = {
      {Strategy::kCollective, "0.5 GB/s"},
      {Strategy::kFilePerProcess, "< 1.7 GB/s"},
      {Strategy::kDamaris, "10 GB/s"},
      {Strategy::kDamarisThrottled, "12.7 GB/s"},
  };

  Table table({"strategy", "peak (up to)", "sustained", "paper", "bytes",
               "MDS ops"});
  double damaris = 0, collective = 0;
  for (const Row& row : rows) {
    WorkloadSpec w = workload;
    if (row.strategy == Strategy::kDamarisThrottled)
      w.throttle_max_nodes = cluster.nodes() / 4;
    const ReplayResult r = replay(row.strategy, cluster, w, storage, alpha, 11);
    table.add_row({std::string(strategy_name(row.strategy)),
                   format_throughput_gbps(r.peak_throughput),
                   format_throughput_gbps(r.aggregate_throughput), row.paper,
                   format_bytes(r.total_bytes), fmt_count(r.mds_operations)});
    if (row.strategy == Strategy::kDamaris) damaris = r.peak_throughput;
    if (row.strategy == Strategy::kCollective) collective = r.peak_throughput;
  }
  table.print(std::cout);

  std::printf("\nshape check: Damaris/collective throughput ratio %.1fx "
              "(paper: ~20x); ordering damaris > fpp > collective must "
              "hold.\n", damaris / collective);
  return 0;
}
