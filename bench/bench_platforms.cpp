// E1b — cross-platform sweep (§IV: "Experiments were carried on several
// platforms including the French Grid'5000 testbed with 24 cores per
// node, the Kraken Cray XT5 supercomputer with 12 cores per node, and a
// Power5 cluster featuring 16 cores per node").
//
// The Damaris result must be architecture-independent: on every platform
// the dedicated-core run stays at compute-only speed while the baselines
// degrade according to that platform's storage weaknesses (MDS-bound on
// Lustre, server-count-bound on the smaller systems).
#include <cstdio>
#include <iostream>

#include "common/bytes.hpp"
#include "common/table.hpp"
#include "model/replay.hpp"

using namespace dedicore;
using namespace dedicore::model;

int main() {
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;

  std::printf("E1b: the three experimental platforms of the paper\n\n");

  Table table({"platform", "cores", "strategy", "run time (s)",
               "vs compute-only", "peak thpt", "damaris idle"});

  for (const Platform& platform :
       {kraken_platform(), grid5000_platform(), power5_platform()}) {
    ClusterSpec cluster;
    cluster.cores_per_node = platform.cores_per_node;
    cluster.total_cores = platform.max_cores;
    for (Strategy strategy : {Strategy::kFilePerProcess, Strategy::kCollective,
                              Strategy::kDamaris, Strategy::kDedicatedNodes}) {
      const ReplayResult r = replay(strategy, cluster, workload,
                                    platform.storage,
                                    platform.congestion_alpha, 29);
      const bool dedicated = strategy == Strategy::kDamaris ||
                             strategy == Strategy::kDedicatedNodes;
      table.add_row(
          {platform.name, fmt_count(static_cast<std::uint64_t>(cluster.total_cores)),
           std::string(strategy_name(strategy)), fmt_double(r.app_seconds, 1),
           fmt_speedup(r.app_seconds / r.compute_only_seconds),
           format_throughput_gbps(r.peak_throughput),
           dedicated ? fmt_percent(r.dedicated_idle_fraction)
                     : std::string("-")});
    }
  }
  table.print(std::cout);
  std::printf("\nDamaris rides at compute-only speed on every platform; the "
              "baselines degrade according to each storage system's own "
              "bottleneck.\n");
  return 0;
}
