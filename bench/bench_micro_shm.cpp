// M1 — microbenchmarks of the Damaris data path: shared-memory segment
// allocation, the one-copy write path, and the bounded event queue.  These
// are the operations whose cost is the *entire* simulation-visible price
// of Damaris I/O, so they must stay in the microsecond range.
#include <benchmark/benchmark.h>

#include <cstring>

#include "core/types.hpp"
#include "shm/bounded_queue.hpp"
#include "shm/segment.hpp"

using namespace dedicore;

namespace {

void BM_SegmentAllocFree(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  shm::Segment segment(1ull << 28);
  for (auto _ : state) {
    auto block = segment.try_allocate(size);
    benchmark::DoNotOptimize(block);
    segment.deallocate(*block);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SegmentAllocFree)->Arg(4 << 10)->Arg(1 << 20)->Arg(16 << 20);

void BM_SegmentWriteCopy(benchmark::State& state) {
  // The client-visible damaris write: allocate + memcpy.  The paper
  // measures ~0.1 s for CM1-sized data; per-byte cost here shows why.
  const auto size = static_cast<std::size_t>(state.range(0));
  shm::Segment segment(1ull << 28);
  std::vector<std::byte> payload(size, std::byte{0x5A});
  for (auto _ : state) {
    auto block = segment.try_write(payload);
    benchmark::DoNotOptimize(block);
    segment.deallocate(*block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_SegmentWriteCopy)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_SegmentFragmentedAlloc(benchmark::State& state) {
  // Worst-ish case: many live blocks force the first-fit scan deeper.
  shm::Segment segment(1ull << 26);
  std::vector<shm::BlockRef> live;
  for (int i = 0; i < 512; ++i)
    live.push_back(*segment.try_allocate(32 << 10));
  for (std::size_t i = 0; i < live.size(); i += 2) segment.deallocate(live[i]);
  for (auto _ : state) {
    auto block = segment.try_allocate(16 << 10);
    segment.deallocate(*block);
  }
  for (std::size_t i = 1; i < live.size(); i += 2) segment.deallocate(live[i]);
}
BENCHMARK(BM_SegmentFragmentedAlloc);

void BM_QueuePushPop(benchmark::State& state) {
  shm::BoundedQueue<core::Event> queue(1024);
  core::Event event;
  event.type = core::EventType::kBlockWritten;
  event.block = {0, 4096};
  for (auto _ : state) {
    (void)queue.try_push(event);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueuePushPop);

void BM_QueueContended(benchmark::State& state) {
  static shm::BoundedQueue<core::Event>* queue = nullptr;
  if (state.thread_index() == 0) queue = new shm::BoundedQueue<core::Event>(4096);
  core::Event event;
  for (auto _ : state) {
    if (state.thread_index() % 2 == 0) {
      (void)queue->try_push(event);
    } else {
      benchmark::DoNotOptimize(queue->try_pop());
    }
  }
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_QueueContended)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
