// M4 — runtime microbenchmarks: minimpi collectives and the DES engine
// (the two engines under everything else in this repository).
#include <benchmark/benchmark.h>

#include <functional>

#include "des/engine.hpp"
#include "fsim/storage_model.hpp"
#include "minimpi/minimpi.hpp"

using namespace dedicore;

namespace {

void BM_MiniMpiBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    minimpi::run_world(ranks, [&](minimpi::Comm& world) {
      for (int i = 0; i < rounds; ++i) world.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rounds);
}
BENCHMARK(BM_MiniMpiBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_MiniMpiAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    minimpi::run_world(ranks, [&](minimpi::Comm& world) {
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(world.allreduce_value(world.rank(), std::plus<int>()));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rounds);
}
BENCHMARK(BM_MiniMpiAllreduce)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_MiniMpiP2PLatency(benchmark::State& state) {
  const int rounds = 2000;
  for (auto _ : state) {
    minimpi::run_world(2, [&](minimpi::Comm& world) {
      for (int i = 0; i < rounds; ++i) {
        if (world.rank() == 0) {
          world.send_value(i, 1, 1);
          benchmark::DoNotOptimize(world.recv_value<int>(1, 2));
        } else {
          benchmark::DoNotOptimize(world.recv_value<int>(0, 1));
          world.send_value(i, 0, 2);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rounds);
}
BENCHMARK(BM_MiniMpiP2PLatency)->Unit(benchmark::kMillisecond);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    des::Engine engine;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 100000) engine.schedule_in(1.0, tick);
    };
    engine.schedule_in(1.0, tick);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_EngineEventThroughput)->Unit(benchmark::kMillisecond);

void BM_SharedLinkChurn(benchmark::State& state) {
  // The OST inner loop: submissions and completions with many flows.
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fsim::SharedLink link(100e6);
    for (int i = 0; i < flows; ++i)
      link.submit(0.0, 1e6 * (1 + i % 7));
    while (link.active_flows() > 0) {
      const double t = link.next_completion_time();
      benchmark::DoNotOptimize(link.complete_at(t));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * flows);
}
BENCHMARK(BM_SharedLinkChurn)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
