// M3 — h5lite microbenchmarks: building and parsing file images of
// CM1-like multi-block aggregates (the storage plugin's inner loop).
#include <benchmark/benchmark.h>

#include <cmath>

#include "h5lite/h5lite.hpp"

using namespace dedicore;
using namespace dedicore::h5lite;

namespace {

std::vector<float> block_values(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 300.0f + std::sin(0.02f * static_cast<float>(i));
  return v;
}

/// Builds the image the store plugin writes: `blocks` datasets per each of
/// 5 variables.
std::vector<std::byte> build_aggregate(int blocks, std::uint64_t edge,
                                       compress::CodecId codec) {
  const auto values = block_values(edge * edge * edge);
  const std::uint64_t dims[3] = {edge, edge, edge};
  FileBuilder builder;
  for (const char* var : {"theta", "qv", "u", "v", "w"}) {
    const auto group = builder.create_group(FileBuilder::kRoot, var);
    for (int b = 0; b < blocks; ++b) {
      const std::string name = "r" + std::to_string(b) + "_b0";
      if (codec == compress::CodecId::kNone) {
        builder.add_dataset(group, name, DType::kFloat32, dims,
                            std::as_bytes(std::span<const float>(values)));
      } else {
        builder.add_dataset_chunked(group, name, DType::kFloat32, dims, dims,
                                    std::as_bytes(std::span<const float>(values)),
                                    codec);
      }
    }
  }
  return std::move(builder).finalize();
}

void BM_BuildAggregate(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  std::size_t image_size = 0;
  for (auto _ : state) {
    auto image = build_aggregate(blocks, 24, compress::CodecId::kNone);
    image_size = image.size();
    benchmark::DoNotOptimize(image);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image_size));
}
BENCHMARK(BM_BuildAggregate)->Arg(1)->Arg(11)->Arg(23);

void BM_BuildAggregateCompressed(benchmark::State& state) {
  std::size_t image_size = 0;
  for (auto _ : state) {
    auto image = build_aggregate(11, 24, compress::CodecId::kXorLzs);
    image_size = image.size();
    benchmark::DoNotOptimize(image);
  }
  state.counters["image_bytes"] = static_cast<double>(image_size);
}
BENCHMARK(BM_BuildAggregateCompressed);

void BM_ParseAggregate(benchmark::State& state) {
  const auto image = build_aggregate(11, 24, compress::CodecId::kNone);
  for (auto _ : state) {
    File file = File::parse(image);
    benchmark::DoNotOptimize(file.dataset_paths());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ParseAggregate);

void BM_ReadDataset(benchmark::State& state) {
  const auto image = build_aggregate(4, 24, compress::CodecId::kXorLzs);
  const File file = File::parse(image);
  const Dataset* ds = file.find_dataset("theta/r0_b0");
  for (auto _ : state) {
    auto values = ds->read();
    benchmark::DoNotOptimize(values);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds->byte_size()));
}
BENCHMARK(BM_ReadDataset);

}  // namespace

BENCHMARK_MAIN();
