// E1 — "Making simulations scale" (§IV.A).
//
// Weak-scaling sweep of the CM1 workload on the Kraken-calibrated model:
// 576 -> 9216 cores, both dedicated deployments plus the baselines.
// Paper anchors:
//   * collective I/O phase reaches ~800 s, ~70 % of the run time at 9216;
//   * file-per-process is faster but produces unmanageable file counts;
//   * Damaris scales nearly perfectly and is ~3.5x faster than collective
//     at 9216 cores.
// dedicated-nodes is the runtime's dedicated_mode=nodes topology: no core
// is sacrificed, but hand-off pays the interconnect instead of the memory
// bus.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "model/replay.hpp"

using namespace dedicore;
using namespace dedicore::model;

int main() {
  const fsim::StorageConfig storage = kraken_storage_config();
  const double alpha = kraken_congestion_alpha();

  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;

  std::printf("E1: weak scaling of CM1 on the Kraken-calibrated model "
              "(%d iterations, %.0f MB/core/iteration, %.0f s compute)\n\n",
              workload.iterations,
              static_cast<double>(workload.bytes_per_core) / 1e6,
              workload.compute_seconds);

  Table table({"cores", "strategy", "run time (s)", "vs compute-only",
               "I/O share", "files", "visible stall p50 (s)"});

  const Strategy strategies[] = {Strategy::kFilePerProcess,
                                 Strategy::kCollective, Strategy::kDamaris,
                                 Strategy::kDedicatedNodes};
  double damaris_9216 = 0, collective_9216 = 0, fpp_9216 = 0;
  double dednodes_9216 = 0;
  std::uint64_t fpp_files_9216 = 0;

  for (int cores : {576, 1152, 2304, 4608, 9216}) {
    ClusterSpec cluster;
    cluster.total_cores = cores;
    cluster.cores_per_node = 12;
    for (Strategy strategy : strategies) {
      const ReplayResult r =
          replay(strategy, cluster, workload, storage, alpha, 42);
      table.add_row({fmt_count(static_cast<std::uint64_t>(cores)),
                     std::string(strategy_name(strategy)),
                     fmt_double(r.app_seconds, 1),
                     fmt_speedup(r.app_seconds / r.compute_only_seconds),
                     fmt_percent(r.io_fraction),
                     fmt_count(r.files_created),
                     fmt_double(r.visible_io_seconds.summary().median, 3)});
      if (cores == 9216) {
        if (strategy == Strategy::kDamaris) damaris_9216 = r.app_seconds;
        if (strategy == Strategy::kDedicatedNodes) dednodes_9216 = r.app_seconds;
        if (strategy == Strategy::kCollective) collective_9216 = r.app_seconds;
        if (strategy == Strategy::kFilePerProcess) {
          fpp_9216 = r.app_seconds;
          fpp_files_9216 = r.files_created;
        }
      }
    }
  }
  table.print(std::cout);

  // The worker-count axis of an I/O node (mirrors the runtime's
  // server_workers): how much of the dedicated-nodes result depends on
  // actually using the whole node, not just reserving it.
  std::printf("\ndedicated-nodes I/O-node worker sweep at 9,216 cores "
              "(server_workers in the runtime):\n");
  Table worker_table({"io-node workers", "run time (s)", "I/O share",
                      "io-node idle"});
  {
    ClusterSpec cluster;
    cluster.total_cores = 9216;
    cluster.cores_per_node = 12;
    for (int workers : {1, 2, 4, 12}) {
      WorkloadSpec swept = workload;
      swept.io_node_workers = workers;
      const ReplayResult r = replay(Strategy::kDedicatedNodes, cluster, swept,
                                    storage, alpha, 42);
      worker_table.add_row({fmt_count(static_cast<std::uint64_t>(workers)),
                            fmt_double(r.app_seconds, 1),
                            fmt_percent(r.io_fraction),
                            fmt_percent(r.dedicated_idle_fraction)});
    }
  }
  worker_table.print(std::cout);

  std::printf("\nheadline comparison at 9,216 cores:\n");
  std::printf("  Damaris speedup vs collective I/O: %.2fx   (paper: 3.5x)\n",
              collective_9216 / damaris_9216);
  std::printf("  Damaris speedup vs file-per-process: %.2fx\n",
              fpp_9216 / damaris_9216);
  std::printf("  file-per-process created %s files for just %d output steps "
              "(paper: \"simply impossible to post-process\")\n",
              fmt_count(fpp_files_9216).c_str(), workload.iterations);
  std::printf("  dedicated nodes vs dedicated cores: %.2fx  (nodes keep every "
              "core computing but pay the interconnect on hand-off)\n",
              dednodes_9216 / damaris_9216);
  return 0;
}
