// E5 — in-situ visualization (§V.C.1).
//
// (a) Real threads: the Nek proxy with the identical VisLite pipeline run
//     synchronously by the simulation cores vs. handed to the dedicated
//     core.  The observable is the solver-visible stall per iteration
//     (this container has one physical CPU, so total wall time cannot show
//     overlap — but the stall is exactly what a real multi-core node
//     removes from the critical path).  Paper anchor: Damaris in-situ has
//     no performance impact on the simulation.
// (b) Model extrapolation of (a) to 800 cores — the scale at which the
//     paper ran Nek5000 with Damaris while synchronous VisIt coupling
//     stopped scaling (compositing collectives grow with rank count).
// (c) Backpressure: when the analysis is slower than the timestep, the
//     skip-iteration policy drops output to preserve the solver's pace;
//     the block policy stalls instead.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/clock.hpp"
#include "common/table.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/nek_proxy.hpp"
#include "sim/workload.hpp"
#include "viz/vislite.hpp"

using namespace dedicore;

namespace {

fsim::StorageConfig storage_config() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 8;
  return cfg;
}

fsim::TimeScale fast_scale() {
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  return ts;
}

constexpr std::uint64_t kGrid = 16;
constexpr int kIterations = 4;
constexpr int kRender = 64;

struct StallResult {
  Summary stall;     ///< solver-visible time not spent computing
  double pipeline_seconds = 0.0;  ///< measured cost of one viz pipeline
};

/// Synchronous in-situ: every client runs the pipeline inline.
StallResult run_synchronous(int ranks) {
  fsim::FileSystem fs(storage_config(), fast_scale());
  std::mutex mutex;
  SampleSet stalls;
  SampleSet pipeline_costs;
  minimpi::run_world(ranks, [&](minimpi::Comm& world) {
    sim::NekConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = kGrid;
    cfg.rank = world.rank();
    cfg.world_size = world.size();
    sim::NekProxy proxy(cfg);
    for (int it = 0; it < kIterations; ++it) {
      proxy.step();
      Stopwatch stall;
      // The VisIt-style coupling: pipeline inline plus the global isovalue
      // collective and a lockstep barrier.
      const auto field = proxy.velocity_magnitude();
      const double local_mean = viz::compute_statistics(field).mean;
      const double isovalue =
          world.allreduce_value(local_mean, std::plus<double>()) / world.size();
      viz::GridView grid{field, kGrid, kGrid, kGrid};
      viz::RenderOptions options;
      options.width = options.height = kRender;
      const viz::PipelineResult result =
          viz::run_insitu_pipeline(grid, isovalue, options);
      world.barrier();
      std::lock_guard<std::mutex> lock(mutex);
      stalls.add(stall.elapsed_seconds());
      pipeline_costs.add(result.seconds);
    }
  });
  StallResult out;
  out.stall = stalls.summary();
  out.pipeline_seconds = pipeline_costs.summary().median;
  return out;
}

/// Damaris in-situ: clients only hand the field to the dedicated core.
StallResult run_dedicated(int ranks, int cores_per_node) {
  sim::NekWorkloadOptions options;
  options.nx = options.ny = options.nz = kGrid;
  options.cores_per_node = cores_per_node;
  options.render_size = kRender;
  const core::Configuration cfg = sim::make_nek_configuration(options);
  fsim::FileSystem fs(storage_config(), fast_scale());

  std::mutex mutex;
  SampleSet stalls;
  minimpi::run_world(ranks, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    sim::NekConfig nek;
    nek.nx = nek.ny = nek.nz = kGrid;
    nek.rank = rt.client_comm().rank();
    nek.world_size = rt.client_comm().size();
    sim::NekProxy proxy(nek);
    for (int it = 0; it < kIterations; ++it) {
      proxy.step();
      Stopwatch stall;
      (void)rt.client().write("vel_mag", proxy.field_bytes());
      (void)rt.client().end_iteration();
      std::lock_guard<std::mutex> lock(mutex);
      stalls.add(stall.elapsed_seconds());
    }
    rt.finalize();
  });
  StallResult out;
  out.stall = stalls.summary();
  return out;
}

/// Simple scaling model for part (b): the synchronous coupling pays the
/// local pipeline plus an image-compositing reduction that deepens with
/// log2(ranks) (VisIt's parallel rendering); Damaris pays one shm copy.
void report_extrapolation(double pipeline_cost, double damaris_stall) {
  const double compositing_step = pipeline_cost * 0.35;  // per tree level
  Table table({"cores", "synchronous stall (ms/it)", "damaris stall (ms/it)",
               "stall removed"});
  for (int cores : {48, 96, 192, 384, 800}) {
    const double levels = std::log2(static_cast<double>(cores));
    const double sync = pipeline_cost + compositing_step * levels;
    table.add_row({std::to_string(cores), fmt_double(sync * 1e3, 2),
                   fmt_double(damaris_stall * 1e3, 3),
                   fmt_speedup(sync / std::max(damaris_stall, 1e-9))});
  }
  table.print(std::cout,
              "E5b: extrapolated solver stall (measured pipeline cost + "
              "log-depth compositing)");
  std::printf("paper: Nek5000 + Damaris ran at the full 800-core cluster; "
              "synchronous VisIt coupling did not scale that far.\n");
}

void report_skip_policy() {
  // Make the analysis genuinely slower than the timestep: few spectral
  // modes (cheap solver step) and a large render target (expensive
  // pipeline).  The dedicated core falls behind; the skip policy drops
  // iterations, the block policy stalls the solver instead.
  Table table({"policy", "steps", "rendered", "skipped iterations",
               "solver stall total (ms)"});
  for (const auto policy : {core::BackpressurePolicy::kSkipIteration,
                            core::BackpressurePolicy::kBlock}) {
    sim::NekWorkloadOptions options;
    options.nx = options.ny = options.nz = 24;
    options.cores_per_node = 3;
    options.render_size = 384;  // deliberately expensive pipeline
    options.policy = policy;
    // The buffer fits a single iteration of the two clients' fields.
    options.buffer_size = 2 * 24 * 24 * 24 * sizeof(double) + 8192;
    const core::Configuration cfg = sim::make_nek_configuration(options);
    fsim::FileSystem fs(storage_config(), fast_scale());

    constexpr int kSteps = 6;
    std::mutex mutex;
    double stall_total = 0.0;
    std::uint64_t rendered = 0, skipped = 0;
    minimpi::run_world(3, [&](minimpi::Comm& world) {
      core::Runtime rt = core::Runtime::initialize(cfg, world, fs);
      if (rt.is_server()) {
        rt.run_server();
        std::lock_guard<std::mutex> lock(mutex);
        skipped += rt.server_stats().client_skips;
        if (auto* plugin = dynamic_cast<core::VisLitePlugin*>(
                rt.server().find_plugin("end_iteration", "vislite")))
          rendered += plugin->totals().blocks_rendered;
        return;
      }
      sim::NekConfig nek;
      nek.nx = nek.ny = nek.nz = 24;
      nek.modes = 2;  // cheap solver step
      nek.rank = rt.client_comm().rank();
      nek.world_size = rt.client_comm().size();
      sim::NekProxy proxy(nek);
      for (int it = 0; it < kSteps; ++it) {
        proxy.step();
        Stopwatch stall;
        (void)rt.client().write("vel_mag", proxy.field_bytes());
        (void)rt.client().end_iteration();
        std::lock_guard<std::mutex> lock(mutex);
        stall_total += stall.elapsed_seconds();
      }
      rt.finalize();
    });
    table.add_row({policy == core::BackpressurePolicy::kBlock ? "block" : "skip",
                   std::to_string(kSteps), std::to_string(rendered),
                   std::to_string(skipped), fmt_double(stall_total * 1e3, 1)});
  }
  table.print(std::cout,
              "E5c: analysis slower than the timestep (skip vs block)");
  std::printf("paper: \"we implemented in Damaris a way to automatically "
              "skip some iterations of data in order to keep up\" — the "
              "skip row drops output instead of stalling.\n");
}

}  // namespace

int main() {
  std::printf("E5: in-situ visualization — synchronous vs dedicated cores\n\n");

  Table table({"compute ranks", "synchronous stall (ms/it p50)",
               "damaris stall (ms/it p50)", "stall removed"});
  double pipeline_cost = 0.0;
  double damaris_stall = 1e-9;
  for (int nodes : {1, 2, 4}) {
    const int cores_per_node = 4;
    const int sync_ranks = nodes * (cores_per_node - 1);  // same compute cores
    const StallResult sync = run_synchronous(sync_ranks);
    const StallResult dedicated =
        run_dedicated(nodes * cores_per_node, cores_per_node);
    table.add_row({std::to_string(sync_ranks),
                   fmt_double(sync.stall.median * 1e3, 2),
                   fmt_double(dedicated.stall.median * 1e3, 3),
                   fmt_speedup(sync.stall.median /
                               std::max(dedicated.stall.median, 1e-9))});
    pipeline_cost = sync.pipeline_seconds;
    damaris_stall = std::max(dedicated.stall.median, 1e-6);
  }
  table.print(std::cout, "E5a: solver-visible stall per iteration (real threads)");
  std::printf("the dedicated-core stall is a flat shared-memory hand-off; "
              "the synchronous stall is the full pipeline + collectives.\n\n");

  report_extrapolation(pipeline_cost, damaris_stall);
  std::printf("\n");
  report_skip_policy();
  return 0;
}
