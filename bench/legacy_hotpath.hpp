// Pre-PR-3 reference implementations of the node-local hot path, kept
// verbatim (modulo renaming) so bench_hotpath can measure the rewrite
// against the design it replaced:
//
//   * LegacySegment — first-fit linear scan over a free-list vector,
//     O(n) sorted-vector bookkeeping of allocated blocks, every operation
//     (including used()/stats()) under one global mutex, notify_all on
//     every free;
//   * LegacyBoundedQueue — single mutex/two condvar ring buffer,
//     unconditional notify on every push/pop.
//
// These are benchmark baselines only — nothing outside bench/ links them.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "shm/segment.hpp"

namespace dedicore::bench_legacy {

class LegacySegment {
 public:
  explicit LegacySegment(std::uint64_t capacity)
      : capacity_(capacity), memory_(new std::byte[capacity]) {
    free_list_.push_back(FreeBlock{0, capacity});
  }

  std::optional<shm::BlockRef> try_allocate(std::uint64_t size,
                                            std::uint64_t alignment = 8) {
    std::lock_guard<std::mutex> lock(mutex_);
    return allocate_locked(size, alignment);
  }

  void deallocate(shm::BlockRef block) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto pos = std::lower_bound(allocated_.begin(), allocated_.end(),
                                  block.offset,
                                  [](const FreeBlock& b, std::uint64_t off) {
                                    return b.offset < off;
                                  });
      DEDICORE_CHECK(pos != allocated_.end() && pos->offset == block.offset,
                     "LegacySegment: unknown block");
      allocated_.erase(pos);
      used_ -= block.size;

      auto it = std::lower_bound(free_list_.begin(), free_list_.end(),
                                 block.offset,
                                 [](const FreeBlock& b, std::uint64_t off) {
                                   return b.offset < off;
                                 });
      it = free_list_.insert(it, FreeBlock{block.offset, block.size});
      if (auto next = it + 1;
          next != free_list_.end() && it->offset + it->size == next->offset) {
        it->size += next->size;
        free_list_.erase(next);
      }
      if (it != free_list_.begin()) {
        auto prev = it - 1;
        if (prev->offset + prev->size == it->offset) {
          prev->size += it->size;
          free_list_.erase(it);
        }
      }
    }
    space_freed_.notify_all();
  }

  std::uint64_t used() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return used_;
  }

 private:
  struct FreeBlock {
    std::uint64_t offset;
    std::uint64_t size;
  };

  std::optional<shm::BlockRef> allocate_locked(std::uint64_t size,
                                               std::uint64_t alignment) {
    for (std::size_t i = 0; i < free_list_.size(); ++i) {
      FreeBlock& fb = free_list_[i];
      const std::uint64_t aligned =
          (fb.offset + alignment - 1) / alignment * alignment;
      const std::uint64_t padding = aligned - fb.offset;
      if (fb.size < padding + size) continue;
      const std::uint64_t tail_offset = aligned + size;
      const std::uint64_t tail_size = fb.offset + fb.size - tail_offset;
      if (padding == 0 && tail_size == 0) {
        free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (padding == 0) {
        fb.offset = tail_offset;
        fb.size = tail_size;
      } else if (tail_size == 0) {
        fb.size = padding;
      } else {
        fb.size = padding;
        free_list_.insert(
            free_list_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
            FreeBlock{tail_offset, tail_size});
      }
      const shm::BlockRef ref{aligned, size};
      auto pos = std::lower_bound(allocated_.begin(), allocated_.end(), aligned,
                                  [](const FreeBlock& b, std::uint64_t off) {
                                    return b.offset < off;
                                  });
      allocated_.insert(pos, FreeBlock{aligned, size});
      used_ += size;
      return ref;
    }
    return std::nullopt;
  }

  const std::uint64_t capacity_;
  std::unique_ptr<std::byte[]> memory_;
  mutable std::mutex mutex_;
  std::condition_variable space_freed_;
  std::vector<FreeBlock> free_list_;
  std::vector<FreeBlock> allocated_;
  std::uint64_t used_ = 0;
};

template <typename T>
class LegacyBoundedQueue {
 public:
  explicit LegacyBoundedQueue(std::size_t capacity)
      : capacity_(capacity), buffer_(capacity) {}

  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) return false;
    enqueue_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  Status try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::closed("queue closed");
      if (size_ == capacity_) return Status::would_block("queue full");
      enqueue_locked(std::move(value));
    }
    not_empty_.notify_one();
    return Status::ok();
  }

  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T out = dequeue_locked();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return std::nullopt;
      out = dequeue_locked();
    }
    not_full_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void enqueue_locked(T value) {
    buffer_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % capacity_;
    ++size_;
  }

  T dequeue_locked() {
    T out = std::move(buffer_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return out;
  }

  const std::size_t capacity_;
  std::vector<T> buffer_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace dedicore::bench_legacy
