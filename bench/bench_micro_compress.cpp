// M2 — codec microbenchmarks: throughput and ratio per codec on the two
// data classes that matter (smooth simulation fields, incompressible
// noise).  The spare-time budget of a dedicated core bounds how much
// compression it can absorb; these numbers feed that estimate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "compress/codec.hpp"

using namespace dedicore;
using compress::CodecId;

namespace {

std::vector<std::byte> smooth_field_bytes(std::size_t doubles) {
  std::vector<double> v(doubles);
  for (std::size_t i = 0; i < doubles; ++i)
    v[i] = 300.0 + 3.0 * std::sin(0.01 * static_cast<double>(i));
  std::vector<std::byte> out(v.size() * sizeof(double));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

std::vector<std::byte> noise_bytes(std::size_t n) {
  Rng rng(99);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

void run_compress(benchmark::State& state, CodecId id,
                  const std::vector<std::byte>& input) {
  const compress::Codec* codec = compress::find_codec(id);
  std::size_t packed_size = 0;
  for (auto _ : state) {
    auto packed = codec->compress(input);
    packed_size = packed.size();
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
  state.counters["ratio"] = static_cast<double>(input.size()) /
                            static_cast<double>(packed_size);
}

void BM_CompressSmooth(benchmark::State& state) {
  static const auto input = smooth_field_bytes(256 * 1024);
  run_compress(state, static_cast<CodecId>(state.range(0)), input);
}
BENCHMARK(BM_CompressSmooth)
    ->Arg(static_cast<int>(CodecId::kRle))
    ->Arg(static_cast<int>(CodecId::kXorDelta))
    ->Arg(static_cast<int>(CodecId::kLzs))
    ->Arg(static_cast<int>(CodecId::kXorLzs));

void BM_CompressNoise(benchmark::State& state) {
  static const auto input = noise_bytes(1 << 20);
  run_compress(state, static_cast<CodecId>(state.range(0)), input);
}
BENCHMARK(BM_CompressNoise)
    ->Arg(static_cast<int>(CodecId::kRle))
    ->Arg(static_cast<int>(CodecId::kXorLzs));

void BM_Decompress(benchmark::State& state) {
  static const auto input = smooth_field_bytes(256 * 1024);
  const compress::Codec* codec =
      compress::find_codec(static_cast<CodecId>(state.range(0)));
  const auto packed = codec->compress(input);
  for (auto _ : state) {
    auto raw = codec->decompress(packed, input.size());
    benchmark::DoNotOptimize(raw);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Decompress)
    ->Arg(static_cast<int>(CodecId::kXorDelta))
    ->Arg(static_cast<int>(CodecId::kXorLzs));

}  // namespace

BENCHMARK_MAIN();
