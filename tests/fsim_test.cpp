// Tests for the parallel-filesystem model: virtual-time primitives
// (QueueServer, SharedLink, InterferenceProcess, JitterModel) and the
// real-thread FileSystem adapter (contention, MDS serialization, content
// round-trips).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <thread>

#include "common/clock.hpp"
#include "framework/test_infra.hpp"
#include "fsim/filesystem.hpp"
#include "fsim/storage_model.hpp"

namespace dedicore::fsim {
namespace {

StorageConfig small_config() {
  StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 100e6;
  cfg.mds_op_cost = 2e-3;
  cfg.stripe_size = 64 * 1024;
  cfg.default_stripe_count = 1;
  cfg.request_latency = 1e-4;
  cfg.jitter_sigma = 0.0;  // deterministic unless a test enables it
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;  // disabled
  return cfg;
}

TimeScale fast_scale() {
  TimeScale ts;
  ts.real_per_sim = 2e-3;  // 1 sim second = 2 ms wall
  ts.quantum_sim = 0.01;
  return ts;
}

// ---------------------------------------------------------------------------
// StorageConfig validation
// ---------------------------------------------------------------------------

TEST(StorageConfigTest, ValidatesRanges) {
  StorageConfig cfg = small_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.ost_count = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = small_config();
  cfg.default_stripe_count = 99;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = small_config();
  cfg.interference_share = 1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = small_config();
  cfg.spike_probability = 1.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// QueueServer
// ---------------------------------------------------------------------------

TEST(QueueServerTest, SerializesArrivals) {
  QueueServer mds;
  // Three ops arriving together: completions must stack up.
  EXPECT_DOUBLE_EQ(mds.submit(0.0, 0.01), 0.01);
  EXPECT_DOUBLE_EQ(mds.submit(0.0, 0.01), 0.02);
  EXPECT_DOUBLE_EQ(mds.submit(0.0, 0.01), 0.03);
  EXPECT_EQ(mds.operations(), 3u);
  EXPECT_NEAR(mds.total_queue_wait(), 0.01 + 0.02, 1e-12);
}

TEST(QueueServerTest, IdleServerStartsImmediately) {
  QueueServer mds;
  mds.submit(0.0, 0.01);
  // Arrival after the server went idle: no queueing.
  EXPECT_DOUBLE_EQ(mds.submit(5.0, 0.02), 5.02);
  EXPECT_NEAR(mds.total_queue_wait(), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// SharedLink (virtual-time processor sharing)
// ---------------------------------------------------------------------------

TEST(SharedLinkTest, SingleFlowRunsAtFullBandwidth) {
  SharedLink link(100.0);  // 100 B/s
  link.submit(0.0, 50.0);
  EXPECT_DOUBLE_EQ(link.next_completion_time(), 0.5);
  auto done = link.complete_at(0.5);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(link.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 50.0);
}

TEST(SharedLinkTest, TwoFlowsShareFairly) {
  SharedLink link(100.0);
  link.submit(0.0, 100.0);
  link.submit(0.0, 100.0);
  // Each gets 50 B/s -> both complete at t=2.
  EXPECT_DOUBLE_EQ(link.next_completion_time(), 2.0);
  EXPECT_EQ(link.complete_at(2.0).size(), 2u);
}

TEST(SharedLinkTest, LateArrivalSlowsEarlierFlow) {
  SharedLink link(100.0);
  link.submit(0.0, 100.0);      // alone it would finish at t=1
  link.submit(0.5, 100.0);      // halves the rate from t=0.5
  // First flow: 50 bytes left at t=0.5, draining at 50 B/s -> t=1.5.
  EXPECT_NEAR(link.next_completion_time(), 1.5, 1e-9);
  auto done = link.complete_at(1.5);
  EXPECT_EQ(done.size(), 1u);
  // Second flow: 50 bytes left, now alone at 100 B/s -> t=2.0.
  EXPECT_NEAR(link.next_completion_time(), 2.0, 1e-9);
}

TEST(SharedLinkTest, BandwidthFactorScalesRate) {
  SharedLink link(100.0);
  link.set_bandwidth_factor(0.5);
  link.submit(0.0, 50.0);
  EXPECT_DOUBLE_EQ(link.next_completion_time(), 1.0);
}

TEST(SharedLinkTest, BusyTimeAccumulatesOnlyWhenActive) {
  SharedLink link(100.0);
  link.advance_to(5.0);  // idle
  EXPECT_DOUBLE_EQ(link.busy_time(), 0.0);
  link.submit(5.0, 100.0);
  link.complete_at(6.0);
  EXPECT_DOUBLE_EQ(link.busy_time(), 1.0);
}

TEST(SharedLinkTest, IdleLinkReportsNever) {
  SharedLink link(10.0);
  EXPECT_EQ(link.next_completion_time(), SharedLink::kNever);
}

TEST(SharedLinkTest, TinyResidualsComplete) {
  // Regression for the stuck-completion bug: sub-epsilon residuals caused
  // by floating-point drain error must still finish.
  SharedLink link(45e6);
  link.submit(0.0, 43e6);
  link.submit(1e-7, 43e6);
  double t = 0;
  int completed = 0;
  for (int guard = 0; guard < 16 && completed < 2; ++guard) {
    t = link.next_completion_time();
    ASSERT_NE(t, SharedLink::kNever);
    completed += static_cast<int>(link.complete_at(t).size());
  }
  EXPECT_EQ(completed, 2);
}

// ---------------------------------------------------------------------------
// InterferenceProcess / JitterModel
// ---------------------------------------------------------------------------

TEST(InterferenceTest, DisabledProcessIsAlwaysFullBandwidth) {
  StorageConfig cfg = small_config();
  InterferenceProcess p(cfg, Rng(1));
  for (double t : {0.0, 10.0, 1000.0})
    EXPECT_DOUBLE_EQ(p.available_fraction(t), 1.0);
}

TEST(InterferenceTest, TogglesBetweenOnAndOff) {
  StorageConfig cfg = small_config();
  cfg.interference_on_rate = 1.0;
  cfg.interference_off_rate = 1.0;
  cfg.interference_share = 0.5;
  InterferenceProcess p(cfg, Rng(5));
  bool saw_full = false, saw_degraded = false;
  for (double t = 0; t < 200.0; t += 0.5) {
    const double f = p.available_fraction(t);
    if (f == 1.0) saw_full = true;
    if (f == 0.5) saw_degraded = true;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(saw_degraded);
}

TEST(InterferenceTest, AverageAvailableMatchesDuty) {
  StorageConfig cfg = small_config();
  cfg.interference_on_rate = 0.5;   // mean off period 2
  cfg.interference_off_rate = 0.5;  // mean on period 2 -> 50% duty
  cfg.interference_share = 0.6;
  InterferenceProcess p(cfg, Rng(7));
  const double avg = p.average_available(0.0, 5000.0);
  // Expected availability: 0.5*1.0 + 0.5*0.4 = 0.7.
  EXPECT_NEAR(avg, 0.7, 0.05);
}

TEST(JitterTest, UnitMedianHeavyTail) {
  StorageConfig cfg = small_config();
  cfg.jitter_sigma = 0.3;
  cfg.spike_probability = 0.05;
  cfg.spike_max = 64.0;
  cfg.spike_alpha = 1.1;
  JitterModel jitter(cfg, Rng(11));
  SampleSet samples;
  for (int i = 0; i < 20000; ++i) samples.add(jitter.factor());
  const Summary s = samples.summary();
  EXPECT_NEAR(s.median, 1.0, 0.1);
  EXPECT_GT(s.max / s.min, 50.0);  // orders of magnitude, as in §IV.B
}

// ---------------------------------------------------------------------------
// FileSystem (real threads)
// ---------------------------------------------------------------------------

TEST(FileSystemTest, CreateWriteReadBack) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle f = fs.create("dir/data.bin");
  const std::vector<std::byte> payload{std::byte{9}, std::byte{8}, std::byte{7}};
  const double duration = fs.write(f, payload);
  EXPECT_GT(duration, 0.0);
  fs.close(f);
  EXPECT_TRUE(fs.exists("dir/data.bin"));
  EXPECT_EQ(fs.file_size("dir/data.bin"), 3u);
  auto content = fs.read_file("dir/data.bin");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, payload);
}

TEST(FileSystemTest, PwriteFillsSparseRegions) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle f = fs.create("sparse.bin");
  const std::vector<std::byte> chunk{std::byte{0xFF}};
  fs.pwrite(f, 10, chunk);
  EXPECT_EQ(fs.file_size("sparse.bin"), 11u);
  auto content = *fs.read_file("sparse.bin");
  EXPECT_EQ(std::to_integer<int>(content[9]), 0);     // hole zero-filled
  EXPECT_EQ(std::to_integer<int>(content[10]), 0xFF);
}

TEST(FileSystemTest, AppendGrowsFile) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle f = fs.create("log.bin");
  const std::vector<std::byte> chunk(100, std::byte{1});
  fs.write(f, chunk);
  fs.write(f, chunk);
  EXPECT_EQ(fs.file_size("log.bin"), 200u);
}

TEST(FileSystemTest, OpenMissingReturnsNullopt) {
  FileSystem fs(small_config(), fast_scale());
  EXPECT_FALSE(fs.open("nope").has_value());
  EXPECT_FALSE(fs.exists("nope"));
  EXPECT_FALSE(fs.read_file("nope").has_value());
}

TEST(FileSystemTest, CreateTruncatesExisting) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle a = fs.create("f");
  fs.write(a, std::vector<std::byte>(64, std::byte{1}));
  FileHandle b = fs.create("f");
  (void)b;
  EXPECT_EQ(fs.file_size("f"), 0u);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(FileSystemTest, ListFilesIsSorted) {
  FileSystem fs(small_config(), fast_scale());
  fs.create("b");
  fs.create("a");
  fs.create("c");
  const auto files = fs.list_files();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "a");
  EXPECT_EQ(files[2], "c");
}

TEST(FileSystemTest, WriteDurationScalesWithSize) {
  // Under virtual time the modelled durations are exact quantum sums, so
  // the size comparison cannot be perturbed by scheduler noise (the real
  // sleeps here are tens of microseconds — any descheduling hiccup used
  // to be able to inflate the small write past the big one).
  testing::VirtualTimeScope virtual_time;
  StorageConfig cfg = small_config();
  const TimeScale ts = fast_scale();
  FileSystem fs(cfg, ts);
  FileHandle f = fs.create("grow.bin");
  const double small_write =
      fs.write(f, std::vector<std::byte>(100 * 1024, std::byte{0}));
  const double big_write =
      fs.write(f, std::vector<std::byte>(1600 * 1024, std::byte{0}));
  EXPECT_GT(big_write, small_write);
  // Exact model: request latency plus full bandwidth-sharing quanta until
  // the volume drains (100 KiB fits one 1 MB quantum; 1600 KiB needs two).
  EXPECT_NEAR(small_write, cfg.request_latency + 1 * ts.quantum_sim, 1e-9);
  EXPECT_NEAR(big_write, cfg.request_latency + 2 * ts.quantum_sim, 1e-9);
}

TEST(FileSystemTest, MdsSerializesConcurrentCreates) {
  StorageConfig cfg = small_config();
  cfg.mds_op_cost = 20e-3;  // 20 ms sim = 40 us real each... scaled below
  TimeScale ts;
  ts.real_per_sim = 1e-3;
  ts.quantum_sim = 0.01;
  FileSystem fs(cfg, ts);

  constexpr int kThreads = 8;
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&fs, t] { fs.create("file" + std::to_string(t)); });
  for (auto& t : threads) t.join();
  // Eight serialized 20ms-sim ops = 160ms sim = 160us... with real sleep
  // granularity the wall time must be at least the serialized sim total.
  EXPECT_GE(ts.to_sim(wall.elapsed_seconds()), 8 * cfg.mds_op_cost * 0.9);
  EXPECT_EQ(fs.stats().mds_operations, 8u);
  EXPECT_EQ(fs.stats().files_created, 8u);
}

namespace {

/// Modelled full-bandwidth duration of one write: request latency plus the
/// whole quanta needed to drain the volume alone.  A lower bound for any
/// measured duration — contention, scheduling delays and machine load can
/// only inflate the measurement, never deflate it below the model.
double modelled_solo_write(const StorageConfig& cfg, const TimeScale& ts,
                           std::size_t bytes) {
  const double bytes_per_quantum = cfg.ost_bandwidth * ts.quantum_sim;
  const double quanta = std::ceil(static_cast<double>(bytes) / bytes_per_quantum);
  return cfg.request_latency + quanta * ts.quantum_sim;
}

/// Body of the OST-contention scenario, shared with the load-stress case
/// below.  All assertions are *lower bounds against modelled constants*:
/// the pre-PR-5 version compared the concurrent mean against a measured
/// solo write, and under `ctest -j` on a 1-core machine the tiny (~40 us)
/// solo measurement was inflated by load until the ratio flaked.  Writers
/// now start behind a barrier (overlap by construction, not by thread-
/// spawn timing) and each write spans many 5 ms quanta, so scheduling
/// skew is small against the measured interval.
void run_ost_contention_scenario() {
  StorageConfig cfg = small_config();
  cfg.ost_count = 1;  // force full contention
  cfg.ost_bandwidth = 50e6;
  TimeScale ts;
  ts.real_per_sim = 0.25;  // 0.02 sim-s quantum -> 5 ms wall
  ts.quantum_sim = 0.02;
  FileSystem fs(cfg, ts);

  constexpr int kWriters = 4;
  const std::vector<std::byte> payload(4 * 1024 * 1024, std::byte{0});
  const double solo = modelled_solo_write(cfg, ts, payload.size());

  std::barrier start(kWriters);
  std::vector<std::thread> threads;
  std::vector<double> durations(kWriters, 0.0);
  std::vector<double> started(kWriters, 0.0), finished(kWriters, 0.0);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      FileHandle f = fs.create("c" + std::to_string(t));
      start.arrive_and_wait();
      started[static_cast<std::size_t>(t)] = fs.sim_now();
      durations[static_cast<std::size_t>(t)] = fs.write(f, payload);
      finished[static_cast<std::size_t>(t)] = fs.sim_now();
    });
  }
  for (auto& t : threads) t.join();

  for (double d : durations) {
    // No writer can beat the full-bandwidth model (tolerance for float
    // accumulation only).
    EXPECT_GE(d, solo * 0.99);
  }
  // Conservation law of the single OST: it serves at most `ost_bandwidth`
  // bytes per sim-second no matter how the four transfers interleave, so
  // the whole batch must span at least total-volume / bandwidth.  This
  // bound holds both when the writers overlap (each sees ~4x solo) AND
  // when extreme 1-core CPU load serializes them (each sees ~1x solo but
  // the batch stretches end to end) — the residual `ctest -j` flake was a
  // mean-duration assertion that only the overlapped schedule satisfied.
  // A broken contention model still fails it: four writers at full
  // bandwidth in parallel would finish the batch in a quarter of the
  // required span.
  const double span = *std::max_element(finished.begin(), finished.end()) -
                      *std::min_element(started.begin(), started.end());
  const double total_bytes = static_cast<double>(kWriters) *
                             static_cast<double>(payload.size());
  EXPECT_GE(span, 0.99 * total_bytes / cfg.ost_bandwidth);
}

}  // namespace

TEST(FileSystemTest, ConcurrentWritersContendOnOsts) {
  run_ost_contention_scenario();
}

/// Stress case for the `ctest -j` 1-core flake: the same contention
/// invariants must hold while the machine is saturated with CPU burners —
/// the situation that broke the old measured-solo formulation.
TEST(FileSystemStressTest, ContentionInvariantsHoldUnderCpuLoad) {
  std::atomic<bool> stop{false};
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<std::thread> burners;
  for (unsigned i = 0; i < 2 * hw; ++i) {
    burners.emplace_back([&stop] {
      volatile std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) sink = sink * 1664525u + 1;
    });
  }
  run_ost_contention_scenario();
  stop.store(true, std::memory_order_relaxed);
  for (auto& b : burners) b.join();
}

TEST(FileSystemTest, StatsAccumulate) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle f = fs.create("x");
  fs.write(f, std::vector<std::byte>(1024, std::byte{0}));
  fs.write(f, std::vector<std::byte>(1024, std::byte{0}));
  const FileSystemStats stats = fs.stats();
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.bytes_written, 2048u);
  EXPECT_EQ(stats.write_time_summary.count, 2u);
  EXPECT_GT(stats.total_write_time_sim, 0.0);
}

TEST(FileSystemTest, ZeroByteWriteIsCheap) {
  FileSystem fs(small_config(), fast_scale());
  FileHandle f = fs.create("empty");
  const double duration = fs.pwrite(f, 0, {});
  EXPECT_DOUBLE_EQ(duration, 0.0);
  EXPECT_EQ(fs.file_size("empty"), 0u);
}

TEST(FileSystemDeathTest, StaleHandleAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  FileSystem fs(small_config(), fast_scale());
  FileHandle bogus{999};
  EXPECT_DEATH(fs.close(bogus), "stale file handle");
}

/// Striping property: a file of any size lands only on its stripe OSTs and
/// all bytes are persisted.
class StripingTest : public ::testing::TestWithParam<int> {};

TEST_P(StripingTest, ContentSurvivesAnyStripeCount) {
  const int stripes = GetParam();
  StorageConfig cfg = small_config();
  FileSystem fs(cfg, fast_scale());
  FileHandle f = fs.create("striped", stripes);
  std::vector<std::byte> payload(300 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i % 251);
  fs.write(f, payload);
  EXPECT_EQ(*fs.read_file("striped"), payload);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, StripingTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dedicore::fsim
