// Tests for the DES storage model and the full-scale strategy replays.
// The replay assertions encode the paper's qualitative results at a
// moderate scale (fast to simulate); bench_* binaries run the full sweeps.
#include <gtest/gtest.h>

#include "model/replay.hpp"
#include "model/sim_storage.hpp"

namespace dedicore::model {
namespace {

fsim::StorageConfig quiet_storage(int osts = 8) {
  fsim::StorageConfig cfg;
  cfg.ost_count = osts;
  cfg.ost_bandwidth = 100e6;
  cfg.mds_op_cost = 1e-3;
  cfg.jitter_sigma = 0.0;
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// SimStorage
// ---------------------------------------------------------------------------

TEST(SimStorageTest, SingleWriteDurationMatchesBandwidth) {
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.0);
  double duration = -1;
  storage.write({{0, 100e6}}, [&](double d) { duration = d; });
  engine.run();
  EXPECT_NEAR(duration, 1.0, 1e-9);  // 100 MB at 100 MB/s
  EXPECT_NEAR(storage.bytes_written(), 100e6, 1.0);
  EXPECT_EQ(storage.writes(), 1u);
}

TEST(SimStorageTest, StripedWriteUsesParallelOsts) {
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.0);
  double striped = -1;
  storage.write(storage.stripe_chunks(0, 100e6, 4), [&](double d) { striped = d; });
  engine.run();
  EXPECT_NEAR(striped, 0.25, 1e-9);  // 4 OSTs in parallel
}

TEST(SimStorageTest, ConcurrentFlowsShareAnOst) {
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.0);
  std::vector<double> durations;
  for (int i = 0; i < 2; ++i)
    storage.write({{0, 100e6}}, [&](double d) { durations.push_back(d); });
  engine.run();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_NEAR(durations[0], 2.0, 1e-6);
  EXPECT_NEAR(durations[1], 2.0, 1e-6);
}

TEST(SimStorageTest, CongestionDegradesSharedBandwidth) {
  // With alpha > 0, n flows drain slower than B/n each.
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), /*alpha=*/0.1);
  std::vector<double> durations;
  for (int i = 0; i < 4; ++i)
    storage.write({{0, 100e6}}, [&](double d) { durations.push_back(d); });
  engine.run();
  ASSERT_EQ(durations.size(), 4u);
  // Fair share would be 4 s; congestion factor (1+0.1*3) makes it 5.2 s.
  EXPECT_GT(durations[3], 5.0);
}

TEST(SimStorageTest, MdsSerializesOps) {
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.0);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i)
    storage.mds_op([&] { completions.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[2], 3e-3, 1e-9);
  EXPECT_EQ(storage.mds_operations(), 3u);
}

TEST(SimStorageTest, ThroughputWindowCoversActivity) {
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.0);
  engine.schedule_at(5.0, [&] { storage.write({{0, 100e6}}, {}); });
  engine.run();
  EXPECT_NEAR(storage.first_activity(), 5.0, 1e-9);
  EXPECT_NEAR(storage.last_activity(), 6.0, 1e-9);
  EXPECT_NEAR(storage.aggregate_throughput(), 100e6, 1e3);
}

TEST(SimStorageTest, ManySmallResidualFlowsTerminate) {
  // Regression: sub-epsilon residuals must not spin the engine (the bug
  // that froze the first full-scale replays).
  des::Engine engine;
  SimStorage storage(engine, quiet_storage(), 0.05);
  int completed = 0;
  for (int i = 0; i < 50; ++i)
    storage.write({{i % 8, 43e6}}, [&](double) { ++completed; });
  engine.run();
  EXPECT_EQ(completed, 50);
  EXPECT_LT(engine.events_executed(), 10000u);
}

// ---------------------------------------------------------------------------
// Replays — paper shape at moderate scale
// ---------------------------------------------------------------------------

struct ReplaySet {
  ReplayResult fpp, collective, damaris, throttled, msg;
};

ReplaySet run_all(int cores) {
  ClusterSpec cluster;
  cluster.total_cores = cores;
  cluster.cores_per_node = 12;
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;
  const fsim::StorageConfig storage = kraken_storage_config();
  const double alpha = kraken_congestion_alpha();

  ReplaySet out;
  out.fpp = replay(Strategy::kFilePerProcess, cluster, workload, storage, alpha, 1);
  out.collective = replay(Strategy::kCollective, cluster, workload, storage, alpha, 1);
  out.damaris = replay(Strategy::kDamaris, cluster, workload, storage, alpha, 1);
  WorkloadSpec throttled = workload;
  throttled.throttle_max_nodes = std::max(1, cluster.nodes() / 4);
  out.throttled = replay(Strategy::kDamarisThrottled, cluster, throttled, storage, alpha, 1);
  out.msg = replay(Strategy::kDamarisMsgPassing, cluster, workload, storage, alpha, 1);
  return out;
}

class ReplayShapeTest : public ::testing::TestWithParam<int> {
 protected:
  static const ReplaySet& results(int cores) {
    static std::map<int, ReplaySet> cache;
    auto it = cache.find(cores);
    if (it == cache.end()) it = cache.emplace(cores, run_all(cores)).first;
    return it->second;
  }
};

TEST_P(ReplayShapeTest, DamarisWinsOnApplicationTime) {
  const ReplaySet& r = results(GetParam());
  EXPECT_LT(r.damaris.app_seconds, r.fpp.app_seconds);
  EXPECT_LT(r.damaris.app_seconds, r.collective.app_seconds);
}

TEST_P(ReplayShapeTest, DamarisIsNearComputeOnly) {
  const ReplaySet& r = results(GetParam());
  // "nearly perfect scalability ... does not depend anymore on the I/O".
  EXPECT_LT(r.damaris.app_seconds, r.damaris.compute_only_seconds * 1.10);
  EXPECT_LT(r.damaris.io_fraction, 0.05);
}

TEST_P(ReplayShapeTest, DamarisSustainedThroughputBeatsFpp) {
  const ReplaySet& r = results(GetParam());
  EXPECT_GT(r.damaris.aggregate_throughput, r.fpp.aggregate_throughput);
  // The full paper ordering (damaris > fpp > collective) only emerges at
  // large scale where collective collapses; see the large-scale test.
}

TEST(ReplayLargeScaleTest, ThroughputOrderingMatchesPaperAtScale) {
  ClusterSpec cluster;
  cluster.total_cores = 4608;
  cluster.cores_per_node = 12;
  WorkloadSpec workload;
  workload.iterations = 3;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;
  const fsim::StorageConfig storage = kraken_storage_config();
  const double alpha = kraken_congestion_alpha();
  const auto fpp = replay(Strategy::kFilePerProcess, cluster, workload, storage, alpha, 2);
  const auto col = replay(Strategy::kCollective, cluster, workload, storage, alpha, 2);
  const auto dam = replay(Strategy::kDamaris, cluster, workload, storage, alpha, 2);
  // Paper at 9216: Damaris 10 GB/s > fpp 1.7 GB/s > collective 0.5 GB/s.
  EXPECT_GT(dam.peak_throughput, fpp.peak_throughput);
  EXPECT_GT(fpp.peak_throughput, col.peak_throughput);
  EXPECT_GT(dam.peak_throughput / col.peak_throughput, 4.0);
}

TEST_P(ReplayShapeTest, CollectiveStallsGrowFasterThanFpp) {
  const ReplaySet& r = results(GetParam());
  // The collective phase is the slowest path at every scale; its absolute
  // dominance (70 % of the run, §IV.A) emerges at 4608+ cores — covered by
  // CollectiveIoDominatesAtLargeScale below.
  EXPECT_GT(r.collective.visible_io_seconds.summary().median,
            r.fpp.visible_io_seconds.summary().median);
  EXPECT_GT(r.collective.io_fraction, 0.0);
}

TEST(ReplayLargeScaleTest, CollectiveIoDominatesAtLargeScale) {
  ClusterSpec cluster;
  cluster.total_cores = 4608;
  cluster.cores_per_node = 12;
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 350.0;
  workload.bytes_per_core = 43ull << 20;
  const auto r = replay(Strategy::kCollective, cluster, workload,
                        kraken_storage_config(), kraken_congestion_alpha(), 1);
  // Paper: the I/O phase reaches ~70 % of the run time near full scale.
  EXPECT_GT(r.io_fraction, 0.30);
  EXPECT_GT(r.app_seconds, r.compute_only_seconds * 1.4);
}

TEST_P(ReplayShapeTest, DedicatedCoresMostlyIdle) {
  const ReplaySet& r = results(GetParam());
  EXPECT_GT(r.damaris.dedicated_idle_fraction, 0.80);
  EXPECT_LE(r.damaris.dedicated_idle_fraction, 1.0);
}

TEST_P(ReplayShapeTest, FileCountsMatchStrategies) {
  const int cores = GetParam();
  const ReplaySet& r = results(cores);
  EXPECT_EQ(r.fpp.files_created, static_cast<std::uint64_t>(cores) * 4u);
  EXPECT_EQ(r.collective.files_created, 4u);
  EXPECT_EQ(r.damaris.files_created,
            static_cast<std::uint64_t>(cores / 12) * 4u);
}

TEST_P(ReplayShapeTest, VisibleWriteIsSubSecondForDamaris) {
  const ReplaySet& r = results(GetParam());
  // Paper: "cut down to the time required to write in shared memory, in
  // the order of 0.1 seconds".  The baselines' stall is storage-bound and
  // at least an order of magnitude larger at any scale.
  const double damaris_median = r.damaris.visible_io_seconds.summary().median;
  EXPECT_LT(damaris_median, 0.5);
  EXPECT_GT(r.fpp.visible_io_seconds.summary().median, 3.0 * damaris_median);
}

TEST_P(ReplayShapeTest, MessagePassingAblationIsVisiblyWorse) {
  const ReplaySet& r = results(GetParam());
  EXPECT_GT(r.msg.visible_io_seconds.summary().median,
            r.damaris.visible_io_seconds.summary().median * 2.0);
}

TEST_P(ReplayShapeTest, ThrottledSchedulerDoesNotHurtAppTime) {
  const ReplaySet& r = results(GetParam());
  EXPECT_LT(r.throttled.app_seconds, r.damaris.app_seconds * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Scales, ReplayShapeTest, ::testing::Values(576, 1152));

TEST(ReplayTest, NarrowIoNodeWorkerPoolsDrainSlower) {
  // The io_node_workers axis (mirroring the runtime's server_workers): a
  // 1-worker I/O node serializes its group's writes, so the storage drain
  // takes at least as long as with the full node width, and the narrower
  // pool is busier per worker (lower idle fraction).  Equal widths —
  // explicit cores_per_node vs auto(0) — must be identical.
  const ClusterSpec cluster{1152, 12, 1};
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.compute_seconds = 120.0;
  workload.bytes_per_core = 43ull << 20;
  workload.compute_nodes_per_io_node = 16;
  const auto storage = kraken_storage_config();
  const double alpha = kraken_congestion_alpha();

  auto with_workers = [&](int workers) {
    WorkloadSpec w = workload;
    w.io_node_workers = workers;
    return replay(Strategy::kDedicatedNodes, cluster, w, storage, alpha, 7);
  };
  const auto full = with_workers(0);            // auto: full node width
  const auto explicit_full = with_workers(12);  // same width, spelled out
  const auto narrow = with_workers(1);

  EXPECT_EQ(explicit_full.app_seconds, full.app_seconds);
  EXPECT_EQ(explicit_full.dedicated_idle_fraction,
            full.dedicated_idle_fraction);
  EXPECT_GE(narrow.storage_drain_seconds, full.storage_drain_seconds);
  EXPECT_LT(narrow.dedicated_idle_fraction, full.dedicated_idle_fraction);
}

TEST(ReplayTest, VariabilitySpreadIsOrdersOfMagnitudeForBaselines) {
  const ClusterSpec cluster{1152, 12, 1};
  WorkloadSpec workload;
  workload.iterations = 4;
  workload.bytes_per_core = 43ull << 20;
  const auto r = replay(Strategy::kFilePerProcess, cluster, workload,
                        kraken_storage_config(), kraken_congestion_alpha(), 3);
  const Summary s = r.visible_io_seconds.summary();
  EXPECT_GT(s.spread(), 5.0);  // slowest vs fastest process
}

TEST(ReplayTest, SkipPolicyDropsIterationsWhenStorageLags) {
  ClusterSpec cluster{144, 12, 1};
  WorkloadSpec workload;
  workload.iterations = 6;
  workload.compute_seconds = 5.0;  // storage cannot keep up
  workload.bytes_per_core = 200ull << 20;
  workload.node_buffer_bytes = 3ull << 30;
  workload.policy = core::BackpressurePolicy::kSkipIteration;
  fsim::StorageConfig storage = quiet_storage(4);
  storage.ost_bandwidth = 20e6;
  const auto r = replay(Strategy::kDamaris, cluster, workload, storage, 0.02, 5);
  EXPECT_GT(r.iterations_skipped, 0u);
  // The app never waits: run time stays near compute-only.
  EXPECT_LT(r.app_seconds, r.compute_only_seconds * 1.5);
}

TEST(ReplayTest, BlockPolicyStallsInsteadOfSkipping) {
  ClusterSpec cluster{144, 12, 1};
  WorkloadSpec workload;
  workload.iterations = 6;
  workload.compute_seconds = 5.0;
  workload.bytes_per_core = 200ull << 20;
  workload.node_buffer_bytes = 3ull << 30;
  workload.policy = core::BackpressurePolicy::kBlock;
  fsim::StorageConfig storage = quiet_storage(4);
  storage.ost_bandwidth = 20e6;
  const auto r = replay(Strategy::kDamaris, cluster, workload, storage, 0.02, 5);
  EXPECT_EQ(r.iterations_skipped, 0u);
  EXPECT_GT(r.app_seconds, r.compute_only_seconds * 1.5);
}

TEST(ReplayTest, DeterministicPerSeed) {
  const ClusterSpec cluster{144, 12, 1};
  WorkloadSpec workload;
  workload.iterations = 3;
  const auto a = replay(Strategy::kDamaris, cluster, workload,
                        kraken_storage_config(), 0.05, 9);
  const auto b = replay(Strategy::kDamaris, cluster, workload,
                        kraken_storage_config(), 0.05, 9);
  EXPECT_DOUBLE_EQ(a.app_seconds, b.app_seconds);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput, b.aggregate_throughput);
  const auto c = replay(Strategy::kDamaris, cluster, workload,
                        kraken_storage_config(), 0.05, 10);
  EXPECT_NE(a.app_seconds, c.app_seconds);
}

TEST(ReplayTest, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kFilePerProcess), "file-per-process");
  EXPECT_EQ(strategy_name(Strategy::kDamarisThrottled), "damaris+sched");
}

}  // namespace
}  // namespace dedicore::model
