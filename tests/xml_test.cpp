// Tests for the XML parser/DOM used by the Damaris configuration.
#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace dedicore::xml {
namespace {

TEST(XmlTest, ParsesSimpleElement) {
  const Node root = parse("<simulation name=\"cm1\"/>");
  EXPECT_EQ(root.name(), "simulation");
  EXPECT_EQ(root.attribute_or("name", ""), "cm1");
  EXPECT_TRUE(root.children().empty());
}

TEST(XmlTest, ParsesNestedStructure) {
  const Node root = parse(R"(
    <simulation>
      <data>
        <layout name="g" dimensions="4,4"/>
        <variable name="theta" layout="g"/>
        <variable name="qv" layout="g"/>
      </data>
    </simulation>)");
  const Node& data = root.require_child("data");
  EXPECT_EQ(data.children_named("variable").size(), 2u);
  EXPECT_EQ(data.children_named("layout").size(), 1u);
  EXPECT_EQ(data.children_named("mesh").size(), 0u);
}

TEST(XmlTest, TextContentIsTrimmed) {
  const Node root = parse("<a>  hello world\n </a>");
  EXPECT_EQ(root.text(), "hello world");
}

TEST(XmlTest, DecodesEntities) {
  const Node root = parse("<a v=\"&lt;&amp;&gt;\">x &quot;y&quot; &apos;z&apos; &#65;</a>");
  EXPECT_EQ(root.attribute_or("v", ""), "<&>");
  EXPECT_EQ(root.text(), "x \"y\" 'z' A");
}

TEST(XmlTest, HandlesCommentsAndDeclaration) {
  const Node root = parse(R"(<?xml version="1.0"?>
    <!-- preamble -->
    <root><!-- inner --><child/></root>
    <!-- trailing -->)");
  EXPECT_EQ(root.name(), "root");
  ASSERT_EQ(root.children().size(), 1u);
  EXPECT_EQ(root.children()[0].name(), "child");
}

TEST(XmlTest, HandlesCdata) {
  const Node root = parse("<a><![CDATA[<not & parsed>]]></a>");
  EXPECT_EQ(root.text(), "<not & parsed>");
}

TEST(XmlTest, SingleQuotedAttributes) {
  const Node root = parse("<a k='v1' j=\"v2\"/>");
  EXPECT_EQ(root.attribute_or("k", ""), "v1");
  EXPECT_EQ(root.attribute_or("j", ""), "v2");
}

TEST(XmlTest, TypedAttributeAccessors) {
  const Node root = parse("<a i=\"42\" d=\"2.5\" b=\"true\" s=\"x\"/>");
  EXPECT_EQ(root.attribute_int("i", 0), 42);
  EXPECT_DOUBLE_EQ(root.attribute_double("d", 0.0), 2.5);
  EXPECT_TRUE(root.attribute_bool("b", false));
  EXPECT_EQ(root.attribute_int("missing", 7), 7);
  EXPECT_FALSE(root.attribute_bool("missing", false));
}

TEST(XmlTest, TypedAccessorRejectsBadValues) {
  const Node root = parse("<a i=\"4x\" b=\"maybe\"/>");
  EXPECT_THROW((void)root.attribute_int("i", 0), ConfigError);
  EXPECT_THROW((void)root.attribute_bool("b", false), ConfigError);
}

TEST(XmlTest, RequireAttributeThrowsWithContext) {
  const Node root = parse("<simulation/>");
  try {
    (void)root.require_attribute("name");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("simulation"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("name"), std::string::npos);
  }
}

TEST(XmlTest, ErrorsIncludeLineAndColumn) {
  try {
    parse("<a>\n  <b>\n</a>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), ConfigError);
  EXPECT_THROW(parse("<a>"), ConfigError);
  EXPECT_THROW(parse("<a></b>"), ConfigError);
  EXPECT_THROW(parse("<a b=></a>"), ConfigError);
  EXPECT_THROW(parse("<a b=\"1\" b=\"2\"/>"), ConfigError);
  EXPECT_THROW(parse("<a/><b/>"), ConfigError);
  EXPECT_THROW(parse("<a>&unknown;</a>"), ConfigError);
  EXPECT_THROW(parse("<a><!-- unterminated </a>"), ConfigError);
}

TEST(XmlTest, RoundTripThroughToXml) {
  const std::string doc = R"(<simulation name="cm1" cores="12">
  <buffer size="64MiB"/>
  <data note="a &lt;b&gt; &amp; c">
    <variable name="theta"/>
  </data>
</simulation>)";
  const Node first = parse(doc);
  const Node second = parse(first.to_xml());
  EXPECT_EQ(second.name(), first.name());
  EXPECT_EQ(second.attribute_or("cores", ""), "12");
  EXPECT_EQ(second.require_child("data").attribute_or("note", ""), "a <b> & c");
  EXPECT_EQ(second.require_child("data").children().size(), 1u);
}

TEST(XmlTest, NumericCharacterReferencesUtf8) {
  const Node root = parse("<a>&#x41;&#955;</a>");  // 'A' + lambda
  EXPECT_EQ(root.text(), "A\xCE\xBB");
}

TEST(XmlTest, ParseFileMissingThrows) {
  EXPECT_THROW(parse_file("/nonexistent/path.xml"), ConfigError);
}

TEST(XmlTest, DeepNestingParses) {
  std::string doc;
  for (int i = 0; i < 30; ++i) doc += "<n" + std::to_string(i) + ">";
  for (int i = 29; i >= 0; --i) doc += "</n" + std::to_string(i) + ">";
  const Node root = parse(doc);
  EXPECT_EQ(root.name(), "n0");
}

TEST(XmlTest, ProgrammaticConstruction) {
  Node root("simulation");
  root.add_attribute("name", "test");
  Node child("data");
  child.set_text("payload");
  root.add_child(std::move(child));
  const Node parsed = parse(root.to_xml());
  EXPECT_EQ(parsed.require_child("data").text(), "payload");
}

}  // namespace
}  // namespace dedicore::xml
