// Multi-threaded stress coverage for shm::BoundedQueue — the control-message
// hot path between simulation cores and the dedicated core.  Each item is
// tagged (producer, sequence); after the run we assert that nothing was
// lost, nothing was duplicated, and each producer's items were observed in
// order by whichever consumer received them.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "framework/test_infra.hpp"
#include "shm/bounded_queue.hpp"

namespace dedicore {
namespace {

using shm::BoundedQueue;

constexpr std::uint64_t make_item(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}
constexpr std::uint64_t item_producer(std::uint64_t item) { return item >> 32; }
constexpr std::uint64_t item_seq(std::uint64_t item) {
  return item & 0xffffffffull;
}

struct StressResult {
  std::vector<std::vector<std::uint64_t>> per_consumer;  // items as received
};

// Runs `producers` x `consumers` threads over a queue of `capacity`;
// producers use blocking push, consumers blocking pop until drained.
StressResult run_stress(int producers, int consumers, int items_per_producer,
                        std::size_t capacity) {
  BoundedQueue<std::uint64_t> queue(capacity);
  StressResult result;
  result.per_consumer.resize(static_cast<std::size_t>(consumers));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers + consumers));

  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&queue, &result, c] {
      auto& received = result.per_consumer[static_cast<std::size_t>(c)];
      while (auto item = queue.pop()) received.push_back(*item);
    });
  }
  std::atomic<int> producers_left{producers};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&queue, &producers_left, p, items_per_producer] {
      for (int i = 0; i < items_per_producer; ++i) {
        if (!queue.push(make_item(static_cast<std::uint64_t>(p),
                                  static_cast<std::uint64_t>(i)))) {
          // Record the failure but fall through to the close() bookkeeping:
          // bailing out without it would leave consumers blocked in pop()
          // and turn the failure into a suite timeout.
          ADD_FAILURE() << "queue closed under producer " << p << " at item "
                        << i;
          break;
        }
      }
      if (producers_left.fetch_sub(1) == 1) queue.close();
    });
  }
  for (auto& t : threads) t.join();
  return result;
}

void check_no_loss_no_dup(const StressResult& result, int producers,
                          int items_per_producer) {
  // Per-producer sequence order must be preserved within each consumer:
  // the queue is FIFO and each pop is atomic, so one producer's items reach
  // any single consumer in increasing sequence order.
  std::vector<std::vector<bool>> seen(
      static_cast<std::size_t>(producers),
      std::vector<bool>(static_cast<std::size_t>(items_per_producer), false));
  std::size_t total = 0;
  for (const auto& received : result.per_consumer) {
    std::vector<std::int64_t> last_seq(static_cast<std::size_t>(producers), -1);
    for (std::uint64_t item : received) {
      const auto p = item_producer(item);
      const auto s = item_seq(item);
      ASSERT_LT(p, static_cast<std::uint64_t>(producers));
      ASSERT_LT(s, static_cast<std::uint64_t>(items_per_producer));
      EXPECT_FALSE(seen[p][s]) << "duplicate item: producer " << p << " seq "
                               << s;
      seen[p][s] = true;
      EXPECT_GT(static_cast<std::int64_t>(s), last_seq[p])
          << "producer " << p << " order inverted at seq " << s;
      last_seq[p] = static_cast<std::int64_t>(s);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(producers) *
                       static_cast<std::size_t>(items_per_producer));
  for (int p = 0; p < producers; ++p) {
    const auto lost = static_cast<std::size_t>(
        std::count(seen[static_cast<std::size_t>(p)].begin(),
                   seen[static_cast<std::size_t>(p)].end(), false));
    EXPECT_EQ(lost, 0u) << "producer " << p << " lost " << lost << " items";
  }
}

TEST(ShmQueueStressTest, SingleProducerSingleConsumer) {
  const auto result = run_stress(1, 1, 20000, 8);
  check_no_loss_no_dup(result, 1, 20000);
}

TEST(ShmQueueStressTest, ManyProducersOneConsumerTinyCapacity) {
  // Capacity 1 maximizes backpressure: every push waits for the consumer.
  const auto result = run_stress(8, 1, 2000, 1);
  check_no_loss_no_dup(result, 8, 2000);
}

TEST(ShmQueueStressTest, ManyProducersManyConsumers) {
  const auto result = run_stress(8, 8, 4000, 16);
  check_no_loss_no_dup(result, 8, 4000);
}

TEST(ShmQueueStressTest, MixedBlockingAndNonblockingEndpoints) {
  // Producers alternate try_push (spinning on WOULD_BLOCK) with blocking
  // push; consumers alternate try_pop with blocking pop.  Semantics must be
  // identical to the pure-blocking run.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kItems = 3000;
  BoundedQueue<std::uint64_t> queue(4);
  StressResult result;
  result.per_consumer.resize(kConsumers);

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &result, c] {
      auto& received = result.per_consumer[static_cast<std::size_t>(c)];
      bool use_try = (c % 2) == 0;
      while (true) {
        if (use_try) {
          if (auto item = queue.try_pop()) {
            received.push_back(*item);
          } else if (queue.closed() && queue.size() == 0) {
            // Closed and a moment ago empty — confirm via blocking pop,
            // which drains any item racing in ahead of the close.
            if (auto last = queue.pop()) received.push_back(*last);
            else break;
          } else {
            std::this_thread::yield();
          }
        } else {
          if (auto item = queue.pop()) received.push_back(*item);
          else break;
        }
        use_try = !use_try;
      }
    });
  }
  std::atomic<int> producers_left{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, &producers_left, p] {
      for (int i = 0; i < kItems; ++i) {
        const auto item = make_item(static_cast<std::uint64_t>(p),
                                    static_cast<std::uint64_t>(i));
        bool pushed;
        if ((i % 2) == 0) {
          Status st;
          while ((st = queue.try_push(item)).code() == StatusCode::kWouldBlock)
            std::this_thread::yield();
          EXPECT_OK(st);
          pushed = st.is_ok();
        } else {
          pushed = queue.push(item);
          EXPECT_TRUE(pushed) << "queue closed under producer " << p;
        }
        // Fall through to the close() bookkeeping on failure: bailing out
        // without it would leave consumers blocked in pop() forever.
        if (!pushed) break;
      }
      if (producers_left.fetch_sub(1) == 1) queue.close();
    });
  }
  for (auto& t : threads) t.join();
  check_no_loss_no_dup(result, kProducers, kItems);
}

TEST(ShmQueueStressTest, BatchedProducersAndConsumersLoseNothing) {
  // The PR-3 batch paths under contention: producers push_all random-sized
  // bursts (often larger than the capacity, forcing chunked delivery),
  // consumers drain with pop_all.  Same exactly-once + per-producer-order
  // contract as the single-event paths.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kItems = 3000;
  BoundedQueue<std::uint64_t> queue(16);

  StressResult result;
  result.per_consumer.resize(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &result, c] {
      auto& received = result.per_consumer[static_cast<std::size_t>(c)];
      std::vector<std::uint64_t> burst;
      while (queue.pop_all(burst) > 0) {
        received.insert(received.end(), burst.begin(), burst.end());
        burst.clear();
      }
    });
  }
  std::atomic<int> producers_left{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, &producers_left, p] {
      Rng rng = testing::make_rng(static_cast<std::uint64_t>(p));
      int next = 0;
      std::vector<std::uint64_t> burst;
      while (next < kItems) {
        const int n = static_cast<int>(1 + rng.next_below(40));
        burst.clear();
        for (int i = 0; i < n && next < kItems; ++i, ++next)
          burst.push_back(make_item(static_cast<std::uint64_t>(p),
                                    static_cast<std::uint64_t>(next)));
        const std::size_t delivered =
            queue.push_all(std::span<std::uint64_t>(burst));
        ASSERT_EQ(delivered, burst.size()) << "queue closed under producer";
      }
      if (producers_left.fetch_sub(1) == 1) queue.close();
    });
  }
  for (auto& t : threads) t.join();
  check_no_loss_no_dup(result, kProducers, kItems);
}

TEST(ShmQueueStressTest, CloseWithPendingItemsDrainsExactly) {
  // Items already queued at close() must all be delivered before consumers
  // see end-of-stream; pushes after close() must fail.
  BoundedQueue<std::uint64_t> queue(64);
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK(queue.try_push(make_item(0, static_cast<std::uint64_t>(i))));
  }
  queue.close();
  EXPECT_FALSE(queue.push(make_item(0, 999)));
  EXPECT_STATUS(queue.try_push(make_item(0, 999)), StatusCode::kClosed);

  std::vector<std::vector<std::uint64_t>> received(4);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&queue, &received, c] {
      while (auto item = queue.pop())
        received[static_cast<std::size_t>(c)].push_back(*item);
    });
  }
  for (auto& t : consumers) t.join();
  StressResult result{std::move(received)};
  check_no_loss_no_dup(result, 1, 32);
}

TEST(ShmQueueStressTest, CloseRacesConcurrentBatchDrains) {
  // The multi-worker shutdown shape (server worker pools drain one queue
  // via pop_all): close() fires from a separate thread while several
  // consumers are mid-drain and others are blocked in wait_for_item_locked.
  // Every consumer must observe the close promptly — a missed wakeup turns
  // this test into a suite timeout — and the items that were successfully
  // pushed before the close form, per producer, a prefix delivered exactly
  // once.  Chiefly here for the TSan job, which runs this suite.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 6;
  constexpr int kItems = 20000;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<std::uint64_t> queue(32);
    std::vector<std::vector<std::uint64_t>> received(kConsumers);
    std::vector<int> pushed_ok(kProducers, 0);

    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&queue, &received, c] {
        auto& mine = received[static_cast<std::size_t>(c)];
        std::vector<std::uint64_t> burst;
        while (queue.pop_all(burst) > 0) {
          mine.insert(mine.end(), burst.begin(), burst.end());
          burst.clear();
        }
      });
    }
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&queue, &pushed_ok, p] {
        for (int i = 0; i < kItems; ++i) {
          if (!queue.push(make_item(static_cast<std::uint64_t>(p),
                                    static_cast<std::uint64_t>(i))))
            return;  // closed under us: everything before i was delivered
          pushed_ok[static_cast<std::size_t>(p)] = i + 1;
        }
      });
    }
    // Let traffic build, then slam the door mid-stream.
    std::this_thread::sleep_for(std::chrono::microseconds(200 + 150 * round));
    queue.close();
    for (auto& t : threads) t.join();

    // Exactly-once and per-producer order for everything that was pushed;
    // the delivered set per producer is a prefix of what push() accepted
    // (a push racing the close may or may not have landed).
    std::vector<std::int64_t> max_seq(kProducers, -1);
    std::vector<std::vector<bool>> seen(
        static_cast<std::size_t>(kProducers),
        std::vector<bool>(static_cast<std::size_t>(kItems), false));
    for (const auto& mine : received) {
      std::vector<std::int64_t> last(kProducers, -1);
      for (std::uint64_t item : mine) {
        const auto p = item_producer(item);
        const auto s = item_seq(item);
        ASSERT_LT(p, static_cast<std::uint64_t>(kProducers));
        EXPECT_FALSE(seen[p][s]) << "duplicate item";
        seen[p][s] = true;
        EXPECT_GT(static_cast<std::int64_t>(s), last[p]) << "order inverted";
        last[p] = static_cast<std::int64_t>(s);
        max_seq[p] = std::max(max_seq[p], last[p]);
      }
    }
    for (int p = 0; p < kProducers; ++p) {
      // No holes: delivery is a prefix.
      for (std::int64_t s = 0; s <= max_seq[p]; ++s)
        EXPECT_TRUE(seen[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)])
            << "producer " << p << " lost item " << s;
      // Everything push() accepted was delivered: close() drains, it does
      // not drop.
      EXPECT_GE(max_seq[p] + 1,
                static_cast<std::int64_t>(pushed_ok[static_cast<std::size_t>(p)]))
          << "producer " << p << " had accepted pushes dropped";
    }
  }
}

TEST(ShmQueueStressTest, PopAllDeserterChurnDoesNotStrandWakeups) {
  // The work-stealing pool's consumer shape: pop_all callers that bounce in
  // and out of the queue at maximum frequency (max=1, so every item is its
  // own register/recheck/decrement crossing of the Dekker gate) and
  // consumers that *desert* mid-stream — a worker that stole a client
  // elsewhere stops draining this queue while its registration churn is
  // still in flight.  Producers push single items, so every signal takes
  // the notify_one path, the easiest one to strand: if an abandoned
  // registration could swallow a wakeup meant for a real waiter, the
  // remaining consumers would hang in wait_for_item_locked and time the
  // suite out.  The accounting assertions are the usual exactly-once +
  // per-producer order over everything the deserters and stayers received.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 6;
  constexpr int kDeserters = 3;       // consumers 0..2 leave early
  constexpr std::size_t kQuota = 400;  // items a deserter takes before leaving
  constexpr int kItems = 6000;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<std::uint64_t> queue(4);
    std::vector<std::vector<std::uint64_t>> received(kConsumers);

    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&queue, &received, c] {
        auto& mine = received[static_cast<std::size_t>(c)];
        const bool deserter = c < kDeserters;
        std::vector<std::uint64_t> burst;
        // max=1 keeps each pop_all to a single item: the consumer re-enters
        // wait_for_item_locked (register, recheck, often abandon the wait)
        // once per item instead of once per batch.
        while (queue.pop_all(burst, 1) > 0) {
          mine.insert(mine.end(), burst.begin(), burst.end());
          burst.clear();
          if (deserter && mine.size() >= kQuota) return;  // walk away
        }
      });
    }
    std::atomic<int> producers_left{kProducers};
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&queue, &producers_left, p] {
        for (int i = 0; i < kItems; ++i) {
          if (!queue.push(make_item(static_cast<std::uint64_t>(p),
                                    static_cast<std::uint64_t>(i)))) {
            // Record and fall through to the close() bookkeeping, as above:
            // bailing out would strand the staying consumers in pop_all.
            ADD_FAILURE() << "queue closed under producer " << p;
            break;
          }
        }
        if (producers_left.fetch_sub(1) == 1) queue.close();
      });
    }
    for (auto& t : threads) t.join();
    StressResult result{std::move(received)};
    check_no_loss_no_dup(result, kProducers, kItems);
  }
}

TEST(ShmQueueStressTest, CloseReleasesBlockedProducers) {
  // Producers blocked on a full queue must wake and observe failure when
  // the consumer side closes the queue instead of draining it.
  BoundedQueue<std::uint64_t> queue(1);
  ASSERT_TRUE(queue.push(make_item(0, 0)));

  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, &rejected, p] {
      if (!queue.push(make_item(static_cast<std::uint64_t>(p) + 1, 0)))
        rejected.fetch_add(1);
    });
  }
  // Give the producers a chance to block on the full queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 4);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(make_item(0, 0)));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

}  // namespace
}  // namespace dedicore
