// Transport conformance suite: the contract in transport/transport.hpp,
// exercised identically against both backends —
//   * ShmTransport: shared segment + bounded queues (dedicated cores),
//   * MpiTransport: payload shipping + credit flow control (dedicated
//     nodes).
// Covered: per-client FIFO ordering, backpressure primitives (try_acquire
// refusal, acquire_blocking wakeup on release), close/drain, no lost or
// duplicated blocks, payload integrity, and the backpressure *policy*
// semantics end-to-end through Runtime in both deployment modes.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "framework/test_infra.hpp"
#include "minimpi/minimpi.hpp"
#include "transport/mpi_transport.hpp"
#include "transport/shm_transport.hpp"

namespace dedicore {
namespace {

using transport::ClientTransport;
using transport::Event;
using transport::EventType;
using transport::ServerTransport;

enum class Backend { kShm, kMpi };

const char* backend_name(Backend b) {
  return b == Backend::kShm ? "shm" : "mpi";
}

struct HarnessOptions {
  int clients = 1;
  std::uint64_t capacity = 1 << 20;
  std::size_t queue_capacity = 256;
};

using ClientBody = std::function<void(ClientTransport&, int client_index)>;
using ServerBody = std::function<void(ServerTransport&)>;

/// Runs `client_body` on `clients` concurrent producers and `server_body`
/// on one consumer, wired through the chosen backend.  For the MPI backend
/// each client's credit budget is its equal share of `capacity`, matching
/// what Runtime::initialize hands out.
void run_backend(Backend backend, const HarnessOptions& options,
                 const ClientBody& client_body, const ServerBody& server_body) {
  if (backend == Backend::kShm) {
    auto fabric = std::make_shared<transport::ShmFabric>(
        options.capacity, /*queue_count=*/1, options.queue_capacity);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(options.clients) + 1);
    for (int c = 0; c < options.clients; ++c) {
      threads.emplace_back([&, c] {
        transport::ShmClientTransport client(fabric, 0);
        client_body(client, c);
      });
    }
    threads.emplace_back([&] {
      transport::ShmServerTransport server(fabric, 0);
      server_body(server);
    });
    for (auto& t : threads) t.join();
  } else {
    const int world_size = options.clients + 1;
    const std::uint64_t share =
        options.capacity / static_cast<std::uint64_t>(options.clients);
    minimpi::run_world(world_size, [&](minimpi::Comm& world) {
      if (world.rank() < options.clients) {
        transport::MpiClientTransport client(world, options.clients, share);
        client_body(client, world.rank());
      } else {
        auto fabric = std::make_shared<transport::ShmFabric>(
            options.capacity, /*queue_count=*/0, options.queue_capacity);
        transport::MpiServerTransport server(world, fabric);
        server_body(server);
      }
    });
  }
}

/// Fills a block with a recognizable pattern and publishes it.
void publish_block(ClientTransport& client, const shm::BlockRef& ref,
                   int source, std::uint32_t block_id, std::uint64_t stamp) {
  auto view = client.view(ref);
  for (std::size_t i = 0; i < view.size(); ++i)
    view[i] = static_cast<std::byte>((stamp + i) & 0xff);
  Event event;
  event.type = EventType::kBlockWritten;
  event.source = source;
  event.block_id = block_id;
  event.block = ref;
  ASSERT_TRUE(client.publish(event));
}

bool block_matches(ServerTransport& server, const Event& event,
                   std::uint64_t stamp) {
  const auto view = server.view(event.block);
  for (std::size_t i = 0; i < view.size(); ++i)
    if (view[i] != static_cast<std::byte>((stamp + i) & 0xff)) return false;
  return true;
}

void post_stop(ClientTransport& client, int source) {
  Event stop;
  stop.type = EventType::kClientStop;
  stop.source = source;
  ASSERT_TRUE(client.post(stop));
}

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, PerClientFifoOrderingPreserved) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr int kClients = 3;
    constexpr std::uint32_t kBlocks = 16;
    constexpr std::uint64_t kBlockSize = 256;

    HarnessOptions options;
    options.clients = kClients;
    options.capacity = 1 << 20;  // roomy: this test is about ordering

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          for (std::uint32_t b = 0; b < kBlocks; ++b) {
            auto ref = client.acquire_blocking(kBlockSize);
            ASSERT_TRUE(ref.has_value());
            publish_block(client, *ref, c, b, c * 1000 + b);
          }
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          std::map<int, std::uint32_t> next_id;
          int stops = 0;
          while (stops < kClients) {
            auto event = server.next_event();
            ASSERT_TRUE(event.has_value());
            if (event->type == EventType::kClientStop) {
              // FIFO: a client's stop arrives after all its blocks.
              EXPECT_EQ(next_id[event->source], kBlocks);
              ++stops;
              continue;
            }
            ASSERT_EQ(event->type, EventType::kBlockWritten);
            // Blocks of one client arrive in publish order.
            EXPECT_EQ(event->block_id, next_id[event->source]);
            EXPECT_TRUE(block_matches(server, *event,
                                      event->source * 1000 + event->block_id));
            ++next_id[event->source];
            server.release(event->block);
          }
        });
  }
}

// ---------------------------------------------------------------------------
// Backpressure primitives
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, TryAcquireFailsWhenExhaustedAndRecoversOnAbandon) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr std::uint64_t kBlockSize = 1024;

    HarnessOptions options;
    options.clients = 1;
    options.capacity = 2 * kBlockSize;

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          auto a = client.try_acquire(kBlockSize);
          auto b = client.try_acquire(kBlockSize);
          ASSERT_TRUE(a.has_value());
          ASSERT_TRUE(b.has_value());
          // The bounded resource is spent: refusal, not blocking.
          EXPECT_FALSE(client.try_acquire(kBlockSize).has_value());
          EXPECT_GE(client.stats().acquire_failures, 1u);
          // Returning a block restores the budget.
          client.abandon(*a);
          auto c2 = client.try_acquire(kBlockSize);
          EXPECT_TRUE(c2.has_value());
          if (c2) client.abandon(*c2);
          client.abandon(*b);
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          auto event = server.next_event();
          ASSERT_TRUE(event.has_value());
          EXPECT_EQ(event->type, EventType::kClientStop);
        });
  }
}

TEST(TransportConformanceTest, AcquireBlockingWakesWhenServerReleases) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr std::uint64_t kBlockSize = 1024;

    HarnessOptions options;
    options.clients = 1;
    options.capacity = 2 * kBlockSize;

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          auto a = client.acquire_blocking(kBlockSize);
          auto b = client.acquire_blocking(kBlockSize);
          ASSERT_TRUE(a.has_value());
          ASSERT_TRUE(b.has_value());
          publish_block(client, *a, c, 0, 7);
          // Full: this can only complete once the server releases block 0
          // (segment space frees on shm, credit returns on mpi).
          auto blocked = client.acquire_blocking(kBlockSize);
          ASSERT_TRUE(blocked.has_value());
          client.abandon(*blocked);
          client.abandon(*b);
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          int stops = 0;
          while (stops < 1) {
            auto event = server.next_event();
            ASSERT_TRUE(event.has_value());
            if (event->type == EventType::kClientStop) {
              ++stops;
            } else {
              EXPECT_TRUE(block_matches(server, *event, 7));
              server.release(event->block);
            }
          }
          const auto stats = server.stats();
          if (stats.blocks_received_remote > 0) {  // mpi backend
            EXPECT_EQ(stats.bytes_received_remote, kBlockSize);
          }
        });
  }
}

// ---------------------------------------------------------------------------
// No loss, no duplication, payload integrity
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, NoBlockIsLostOrDuplicated) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr int kClients = 4;
    constexpr std::uint32_t kBlocks = 32;

    HarnessOptions options;
    options.clients = kClients;
    options.capacity = 4 << 20;

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          for (std::uint32_t b = 0; b < kBlocks; ++b) {
            // Varying sizes exercise the allocator / wire path.
            const std::uint64_t size = 64 + 32 * (b % 7);
            auto ref = client.acquire_blocking(size);
            ASSERT_TRUE(ref.has_value());
            publish_block(client, *ref, c, b, c * 10000 + b * 13);
          }
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          std::map<std::pair<int, std::uint32_t>, int> seen;
          int stops = 0;
          while (stops < kClients) {
            auto event = server.next_event();
            ASSERT_TRUE(event.has_value());
            if (event->type == EventType::kClientStop) {
              ++stops;
              continue;
            }
            EXPECT_TRUE(block_matches(
                server, *event, event->source * 10000 + event->block_id * 13));
            ++seen[{event->source, event->block_id}];
            server.release(event->block);
          }
          ASSERT_EQ(seen.size(),
                    static_cast<std::size_t>(kClients) * kBlocks);  // none lost
          for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);  // none duplicated
        });
  }
}

// ---------------------------------------------------------------------------
// Batching: FIFO and exactly-once must hold across flush boundaries
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, BatchingPreservesFifoAndExactlyOnceAcrossFlushBoundaries) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr int kClients = 2;
    constexpr int kIterations = 4;
    constexpr std::uint32_t kBlocksPerIteration = 6;
    constexpr std::uint64_t kBlockSize = 512;

    HarnessOptions options;
    options.clients = kClients;
    options.capacity = 1 << 20;

    std::vector<transport::TransportStats> client_stats(kClients);
    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          for (int it = 0; it < kIterations; ++it) {
            for (std::uint32_t b = 0; b < kBlocksPerIteration; ++b) {
              const std::uint32_t id =
                  static_cast<std::uint32_t>(it) * kBlocksPerIteration + b;
              auto ref = client.acquire_blocking(kBlockSize);
              ASSERT_TRUE(ref.has_value());
              auto view = client.view(*ref);
              const std::uint64_t stamp = c * 100000 + id * 7;
              for (std::size_t i = 0; i < view.size(); ++i)
                view[i] = static_cast<std::byte>((stamp + i) & 0xff);
              Event event;
              event.type = EventType::kBlockWritten;
              event.source = c;
              event.iteration = it;
              event.block_id = id;
              event.block = *ref;
              ASSERT_TRUE(client.publish(event));
              // A mid-iteration flush boundary: everything published so
              // far ships now, the rest of the iteration ships later —
              // the server must not be able to tell the difference.
              if (b == 2) client.flush();
            }
            Event end;
            end.type = EventType::kEndIteration;
            end.source = c;
            end.iteration = it;
            ASSERT_TRUE(client.post(end));  // the natural flush point
          }
          post_stop(client, c);
          client_stats[static_cast<std::size_t>(c)] = client.stats();
        },
        [&](ServerTransport& server) {
          std::map<int, std::uint32_t> next_id;
          std::map<int, std::vector<shm::BlockRef>> held;
          int stops = 0;
          while (stops < kClients) {
            auto event = server.next_event();
            ASSERT_TRUE(event.has_value());
            switch (event->type) {
              case EventType::kBlockWritten: {
                // FIFO across every flush boundary: ids strictly
                // sequential per client, each seen exactly once.
                ASSERT_EQ(event->block_id, next_id[event->source]);
                ++next_id[event->source];
                EXPECT_TRUE(block_matches(
                    server, *event,
                    event->source * 100000 + event->block_id * 7));
                held[event->source].push_back(event->block);
                break;
              }
              case EventType::kEndIteration: {
                // An iteration's blocks all precede its close event.
                ASSERT_EQ(next_id[event->source] % kBlocksPerIteration, 0u);
                // Release like a real server: end of the plugin pipeline
                // (on MPI this exercises frame-granular credit return).
                for (const auto& ref : held[event->source])
                  server.release(ref);
                held[event->source].clear();
                break;
              }
              case EventType::kClientStop:
                EXPECT_EQ(next_id[event->source],
                          kIterations * kBlocksPerIteration);
                ++stops;
                break;
              default:
                FAIL() << "unexpected event type";
            }
          }
        });

    for (int c = 0; c < kClients; ++c) {
      const auto& stats = client_stats[static_cast<std::size_t>(c)];
      EXPECT_EQ(stats.events_sent,
                static_cast<std::uint64_t>(kIterations) *
                        (kBlocksPerIteration + 1) + 1);
      if (backend == Backend::kMpi) {
        EXPECT_EQ(stats.blocks_shipped,
                  static_cast<std::uint64_t>(kIterations) * kBlocksPerIteration);
        // The aggregation claim: at most two frames per iteration (the
        // explicit mid-iteration flush + the close) plus the stop frame —
        // far fewer wire messages than events.
        EXPECT_GT(stats.wire_messages, 0u);
        EXPECT_LE(stats.wire_messages,
                  static_cast<std::uint64_t>(kIterations) * 2 + 1);
        EXPECT_LT(stats.wire_messages, stats.events_sent);
      } else {
        EXPECT_EQ(stats.blocks_shipped, 0u);  // zero-copy: nothing serialized
        EXPECT_EQ(stats.wire_messages, 0u);   // nothing crosses a wire
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent consumers: a worker pool draining one ServerTransport must
// preserve the whole contract — per-client FIFO, exactly-once — via the
// client→worker pinning rule (client c is observed only by worker c mod N).
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, ConcurrentConsumersPreserveFifoAndExactlyOnce) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr int kClients = 5;
    constexpr int kWorkers = 3;
    constexpr std::uint32_t kBlocks = 48;
    constexpr std::uint64_t kBlockSize = 192;

    HarnessOptions options;
    options.clients = kClients;
    options.capacity = 4 << 20;  // roomy: this test is about ordering

    // What each worker observed, in its own arrival order.
    std::vector<std::vector<Event>> per_worker(kWorkers);

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          for (std::uint32_t b = 0; b < kBlocks; ++b) {
            auto ref = client.acquire_blocking(kBlockSize);
            ASSERT_TRUE(ref.has_value());
            publish_block(client, *ref, c, b, c * 1000 + b);
            // Occasional explicit flush boundaries (MPI) interleave frames
            // from different clients at the server's single recv point.
            if (b % 7 == 3) client.flush();
          }
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          server.set_worker_count(kWorkers);
          std::atomic<int> stops{0};
          std::vector<std::thread> workers;
          workers.reserve(kWorkers);
          for (int w = 0; w < kWorkers; ++w) {
            workers.emplace_back([&, w] {
              auto& seen = per_worker[static_cast<std::size_t>(w)];
              while (auto event = server.next_event(w)) {
                seen.push_back(*event);
                if (event->type == EventType::kBlockWritten) {
                  EXPECT_TRUE(block_matches(
                      server, *event,
                      event->source * 1000 + event->block_id));
                  server.release(event->block);
                } else if (event->type == EventType::kClientStop) {
                  // Ordered shutdown: the worker that consumes the final
                  // stop ends the stream; the others drain and see
                  // nullopt.  Mirrors core::Server's worker lifecycle.
                  if (stops.fetch_add(1) + 1 == kClients)
                    server.end_of_stream();
                }
              }
            });
          }
          for (auto& t : workers) t.join();
        });

    // Every client's stream lands on exactly its pinned worker, in FIFO
    // order, stop last, nothing lost, nothing duplicated.
    std::size_t total_events = 0;
    for (int w = 0; w < kWorkers; ++w) {
      std::map<int, std::uint32_t> next_id;
      std::map<int, bool> stopped;
      for (const Event& event : per_worker[static_cast<std::size_t>(w)]) {
        EXPECT_EQ(event.source % kWorkers, w) << "client not pinned";
        EXPECT_FALSE(stopped[event.source]) << "event after its client's stop";
        if (event.type == EventType::kClientStop) {
          EXPECT_EQ(next_id[event.source], kBlocks);
          stopped[event.source] = true;
        } else {
          ASSERT_EQ(event.type, EventType::kBlockWritten);
          EXPECT_EQ(event.block_id, next_id[event.source]++) << "FIFO broken";
        }
        ++total_events;
      }
    }
    EXPECT_EQ(total_events,
              static_cast<std::size_t>(kClients) * (kBlocks + 1));
  }
}

// ---------------------------------------------------------------------------
// Work stealing: one hot client carrying ~90% of the events over a 4-worker
// pool.  Under static pinning that client's worker serializes the pool;
// with stealing on, ownership of the hot client migrates to idle workers.
// The contract that must survive the migrations:
//  * exactly-once — every (client, block) delivered exactly once, payload
//    intact;
//  * per-client delivery order — each worker observes any client's blocks
//    with strictly increasing ids (its view is a subsequence of the
//    client's FIFO stream);
//  * control barrier — when a client's stop is handed out, every block
//    that client published has already been fully processed (the demux
//    holds controls back while earlier events of that client are in
//    flight on any worker);
//  * and at least one steal actually happened (the pool did not quietly
//    fall back to pinning).
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, SkewedClientStealingKeepsFifoAndExactlyOnce) {
  for (Backend backend : {Backend::kShm, Backend::kMpi}) {
    SCOPED_TRACE(backend_name(backend));
    constexpr int kClients = 8;
    constexpr int kWorkers = 4;
    constexpr std::uint32_t kHotBlocks = 126;  // client 0: 126 of 140 = 90%
    constexpr std::uint32_t kColdBlocks = 2;
    constexpr std::uint64_t kBlockSize = 256;

    HarnessOptions options;
    options.clients = kClients;
    options.capacity = 4 << 20;

    const auto blocks_of = [](int c) {
      return c == 0 ? kHotBlocks : kColdBlocks;
    };

    std::vector<std::vector<Event>> per_worker(kWorkers);
    std::array<std::atomic<std::uint32_t>, kClients> processed{};
    std::atomic<std::uint64_t> observed_steals{0};

    run_backend(
        backend, options,
        [&](ClientTransport& client, int c) {
          const std::uint32_t blocks = blocks_of(c);
          for (std::uint32_t b = 0; b < blocks; ++b) {
            auto ref = client.acquire_blocking(kBlockSize);
            ASSERT_TRUE(ref.has_value());
            publish_block(client, *ref, c, b, c * 1000 + b);
            if (b % 11 == 5) client.flush();
          }
          post_stop(client, c);
        },
        [&](ServerTransport& server) {
          transport::WorkerPoolOptions steal_on;
          steal_on.steal = true;
          steal_on.steal_threshold = 2;
          server.set_worker_count(kWorkers, steal_on);
          std::atomic<int> stops{0};
          std::vector<std::thread> workers;
          workers.reserve(kWorkers);
          for (int w = 0; w < kWorkers; ++w) {
            workers.emplace_back([&, w] {
              auto& seen = per_worker[static_cast<std::size_t>(w)];
              while (auto event = server.next_event(w)) {
                seen.push_back(*event);
                if (event->type == EventType::kBlockWritten) {
                  EXPECT_TRUE(block_matches(
                      server, *event,
                      event->source * 1000 + event->block_id));
                  server.release(event->block);
                  // Counted while the event is in flight — the control
                  // barrier below is exactly the promise that these
                  // increments happen-before the stop's delivery.
                  processed[static_cast<std::size_t>(event->source)]
                      .fetch_add(1);
                } else if (event->type == EventType::kClientStop) {
                  EXPECT_EQ(
                      processed[static_cast<std::size_t>(event->source)]
                          .load(),
                      blocks_of(event->source))
                      << "stop overtook an in-flight block of client "
                      << event->source;
                  if (stops.fetch_add(1) + 1 == kClients)
                    server.end_of_stream();
                }
              }
            });
          }
          for (auto& t : workers) t.join();
          observed_steals.store(server.stats().steals);
        });

    // Exactly-once across the pool, and per-(worker, client) ids strictly
    // increasing — each worker's view is a subsequence of the client FIFO.
    std::map<std::pair<int, std::uint32_t>, int> deliveries;
    for (int w = 0; w < kWorkers; ++w) {
      std::map<int, std::uint32_t> last_id;
      for (const Event& event : per_worker[static_cast<std::size_t>(w)]) {
        if (event.type != EventType::kBlockWritten) continue;
        ++deliveries[{event.source, event.block_id}];
        auto [it, first] = last_id.try_emplace(event.source, event.block_id);
        if (!first) {
          EXPECT_GT(event.block_id, it->second)
              << "client " << event.source << " reordered on worker " << w;
          it->second = event.block_id;
        }
      }
    }
    std::size_t total_blocks = 0;
    for (int c = 0; c < kClients; ++c) total_blocks += blocks_of(c);
    EXPECT_EQ(deliveries.size(), total_blocks);
    for (const auto& [key, count] : deliveries)
      EXPECT_EQ(count, 1) << "client " << key.first << " block " << key.second;
    EXPECT_GT(observed_steals.load(), 0u) << "hot client was never stolen";
  }
}

// ---------------------------------------------------------------------------
// Client death: client 3 is killed mid-iteration (blocks published, its
// iteration never closed, one block acquired but never published) under a
// 4-worker stealing pool.  The fault-tolerance contract:
//  * the abort is a gated control — every block the corpse published is
//    fully processed before kClientAborted is handed out;
//  * reclaim_client() frees what the corpse still held (shm: the liveness
//    ledger's unpublished block; mpi: credits for its blocks are swallowed
//    instead of being sent to a dead rank);
//  * the survivors are untouched: per-client FIFO and exactly-once hold
//    across the steal migrations, and the run terminates normally;
//  * afterwards nothing leaks — on shm the segment is back to empty.
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, ClientDeathMidIterationReclaimsAndSurvivorsComplete) {
  constexpr int kClients = 8;
  constexpr int kWorkers = 4;
  constexpr int kVictim = 3;
  constexpr std::uint32_t kBlocks = 24;        // survivors
  constexpr std::uint32_t kVictimBlocks = 3;   // published before death
  constexpr std::uint64_t kBlockSize = 256;
  constexpr std::uint64_t kCapacity = 4 << 20;

  const auto client_body = [&](ClientTransport& client, int c) {
    if (c == kVictim) {
      // Acquired but never published: only post-mortem reclaim (the shm
      // liveness ledger) can free this one.
      auto orphan = client.acquire_blocking(kBlockSize);
      ASSERT_TRUE(orphan.has_value());
      for (std::uint32_t b = 0; b < kVictimBlocks; ++b) {
        auto ref = client.acquire_blocking(kBlockSize);
        ASSERT_TRUE(ref.has_value());
        publish_block(client, *ref, c, b, c * 1000 + b);
      }
      client.flush();  // published work is on the wire before the death
      client.die();    // SIGKILL: no end_iteration, no stop, no cleanup
      EXPECT_TRUE(client.dead());
      // The corpse runs no code — whatever a zombie thread might still
      // attempt must be refused, not crash.
      EXPECT_FALSE(client.acquire_blocking(kBlockSize).has_value());
      Event late;
      late.type = EventType::kClientStop;
      late.source = c;
      EXPECT_FALSE(client.post(late));
      return;
    }
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      auto ref = client.acquire_blocking(kBlockSize);
      ASSERT_TRUE(ref.has_value());
      publish_block(client, *ref, c, b, c * 1000 + b);
      if (b % 7 == 3) client.flush();
    }
    post_stop(client, c);
  };

  struct Observed {
    std::vector<std::vector<Event>> per_worker;
    std::uint64_t clients_aborted = 0;
    std::uint64_t blocks_reclaimed = 0;
    std::uint64_t credits_reclaimed = 0;
  };

  const auto server_body = [&](ServerTransport& server, Observed& observed) {
    transport::WorkerPoolOptions steal_on;
    steal_on.steal = true;
    steal_on.steal_threshold = 2;
    server.set_worker_count(kWorkers, steal_on);
    std::atomic<int> finished{0};  // stops + aborts
    std::mutex held_mutex;
    std::vector<shm::BlockRef> victim_held;
    std::array<std::atomic<std::uint32_t>, kClients> processed{};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        auto& seen = observed.per_worker[static_cast<std::size_t>(w)];
        while (auto event = server.next_event(w)) {
          seen.push_back(*event);
          switch (event->type) {
            case EventType::kBlockWritten:
              EXPECT_TRUE(block_matches(
                  server, *event, event->source * 1000 + event->block_id));
              if (event->source == kVictim) {
                // Mid-iteration: a real server holds blocks until the
                // iteration closes — the victim's never does.
                std::lock_guard<std::mutex> lock(held_mutex);
                victim_held.push_back(event->block);
              } else {
                server.release(event->block);
              }
              processed[static_cast<std::size_t>(event->source)].fetch_add(1);
              break;
            case EventType::kClientAborted: {
              EXPECT_EQ(event->source, kVictim);
              // The abort is gated like a stop: every block the corpse
              // published was processed before it was handed out.
              EXPECT_EQ(
                  processed[static_cast<std::size_t>(kVictim)].load(),
                  kVictimBlocks)
                  << "abort overtook an in-flight block of the dead client";
              // Reclaim FIRST (mark dead), then drop the partial
              // iteration — on mpi the credits for these blocks must be
              // swallowed, not shipped to the corpse.
              server.reclaim_client(event->source);
              std::vector<shm::BlockRef> drop;
              {
                std::lock_guard<std::mutex> lock(held_mutex);
                drop.swap(victim_held);
              }
              for (const auto& ref : drop) server.release(ref);
              if (finished.fetch_add(1) + 1 == kClients)
                server.end_of_stream();
              break;
            }
            case EventType::kClientStop:
              EXPECT_NE(event->source, kVictim) << "the dead spoke";
              EXPECT_EQ(
                  processed[static_cast<std::size_t>(event->source)].load(),
                  kBlocks);
              if (finished.fetch_add(1) + 1 == kClients)
                server.end_of_stream();
              break;
            default:
              ADD_FAILURE() << "unexpected event type";
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    const auto stats = server.stats();
    observed.clients_aborted = stats.clients_aborted;
    observed.blocks_reclaimed = stats.blocks_reclaimed;
    observed.credits_reclaimed = stats.credits_reclaimed;
  };

  const auto verify_survivors = [&](const Observed& observed) {
    // Exactly-once and per-(worker, client) FIFO subsequences, steal
    // migrations notwithstanding; the victim contributes at most its
    // pre-death blocks, exactly once each.
    std::map<std::pair<int, std::uint32_t>, int> deliveries;
    for (int w = 0; w < kWorkers; ++w) {
      std::map<int, std::uint32_t> last_id;
      for (const Event& event :
           observed.per_worker[static_cast<std::size_t>(w)]) {
        if (event.type != EventType::kBlockWritten) continue;
        ++deliveries[{event.source, event.block_id}];
        auto [it, first] = last_id.try_emplace(event.source, event.block_id);
        if (!first) {
          EXPECT_GT(event.block_id, it->second)
              << "client " << event.source << " reordered on worker " << w;
          it->second = event.block_id;
        }
      }
    }
    EXPECT_EQ(deliveries.size(),
              static_cast<std::size_t>(kClients - 1) * kBlocks + kVictimBlocks);
    for (const auto& [key, count] : deliveries)
      EXPECT_EQ(count, 1) << "client " << key.first << " block " << key.second;
    EXPECT_EQ(observed.clients_aborted, 1u);
  };

  {
    SCOPED_TRACE("shm");
    auto fabric = std::make_shared<transport::ShmFabric>(
        kCapacity, /*queue_count=*/1, /*queue_capacity=*/256);
    Observed observed;
    observed.per_worker.resize(kWorkers);
    std::vector<std::thread> threads;
    threads.reserve(kClients + 1);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        transport::ShmClientTransport client(fabric, 0, /*client_index=*/c);
        client_body(client, c);
      });
    }
    threads.emplace_back([&] {
      transport::ShmServerTransport server(fabric, 0);
      server_body(server, observed);
    });
    for (auto& t : threads) t.join();
    verify_survivors(observed);
    // The liveness ledger reclaimed the acquired-but-unpublished block...
    EXPECT_EQ(observed.blocks_reclaimed, 1u);
    // ...and with every published block released too, nothing pins the
    // segment: a leaked byte here is a permanent leak in a real node.
    EXPECT_EQ(fabric->segment.used(), 0u);
  }
  {
    SCOPED_TRACE("mpi");
    Observed observed;
    observed.per_worker.resize(kWorkers);
    const std::uint64_t share = kCapacity / kClients;
    minimpi::run_world(kClients + 1, [&](minimpi::Comm& world) {
      if (world.rank() < kClients) {
        transport::MpiClientTransport client(world, kClients, share);
        client_body(client, world.rank());
      } else {
        auto fabric = std::make_shared<transport::ShmFabric>(
            kCapacity, /*queue_count=*/0, /*queue_capacity=*/256);
        transport::MpiServerTransport server(world, fabric);
        server_body(server, observed);
      }
    });
    verify_survivors(observed);
    // The victim's held blocks were released after reclaim_client: their
    // frame credits were swallowed instead of being sent to the corpse.
    EXPECT_GT(observed.credits_reclaimed, 0u);
  }
}

// ---------------------------------------------------------------------------
// Zombie controls: once a client's abort has been consumed, controls of
// that client still sitting in (or later reaching) the demux are
// cancelled — nothing must ever wait on a barrier whose client is dead —
// while its stray blocks still flow so the server can release them.
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, DemuxCancelsZombieControlsAfterAbort) {
  auto fabric = std::make_shared<transport::ShmFabric>(1 << 16, 1, 64);
  transport::ShmServerTransport server(fabric, 0);

  const auto make_block = [&](std::uint32_t id) {
    auto ref = fabric->segment.try_allocate(128);
    EXPECT_TRUE(ref.has_value());
    Event event;
    event.type = EventType::kBlockWritten;
    event.source = 0;
    event.block_id = id;
    event.block = *ref;
    return event;
  };

  // A node monitor's view of a crashed client: a legitimate block, then
  // the injected abort — and then stragglers that raced the monitor (a
  // control that must be cancelled, a block that must still flow).
  ASSERT_TRUE(fabric->queues[0]->push(make_block(0)));
  Event abort_event;
  abort_event.type = EventType::kClientAborted;
  abort_event.source = 0;
  ASSERT_TRUE(fabric->queues[0]->push(abort_event));
  Event zombie_control;
  zombie_control.type = EventType::kEndIteration;
  zombie_control.source = 0;
  ASSERT_TRUE(fabric->queues[0]->push(zombie_control));
  ASSERT_TRUE(fabric->queues[0]->push(make_block(1)));
  Event stop;
  stop.type = EventType::kClientStop;
  stop.source = 1;
  ASSERT_TRUE(fabric->queues[0]->push(stop));

  server.set_worker_count(2);
  std::atomic<int> dead_client_events{0};
  std::atomic<int> stops{0};
  std::atomic<bool> zombie_control_delivered{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->source == 0) {
          if (event->type == EventType::kEndIteration)
            zombie_control_delivered.store(true);
          if (event->type == EventType::kBlockWritten)
            server.release(event->block);
          ++dead_client_events;
        } else if (event->type == EventType::kClientStop) {
          ++stops;
        }
        // Expected stream: block 0, abort, block 1 (flows), stop — the
        // zombie end-iteration is cancelled, never handed to a worker.
        if (stops.load() == 1 && dead_client_events.load() >= 3)
          server.end_of_stream();
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_FALSE(zombie_control_delivered.load())
      << "a dead client's control reached a worker";
  EXPECT_EQ(dead_client_events.load(), 3);
  EXPECT_EQ(server.stats().controls_cancelled, 1u);
  EXPECT_EQ(fabric->segment.used(), 0u);
}

// ---------------------------------------------------------------------------
// Credit accounting: a request larger than the whole budget must fail fast
// on BOTH acquire flavors (the blocking one used to be able to wait forever
// on credit that could never cover it — this test hangs, and times the
// suite out, on a regression).
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, MpiAcquireFlavorsAgreeOnCanNeverFit) {
  constexpr std::uint64_t kBudget = 4096;
  minimpi::run_world(2, [&](minimpi::Comm& world) {
    if (world.rank() == 0) {
      transport::MpiClientTransport client(world, 1, kBudget);
      EXPECT_FALSE(client.try_acquire(kBudget + 1).has_value());
      EXPECT_FALSE(client.acquire_blocking(kBudget + 1).has_value());
      EXPECT_GE(client.stats().acquire_failures, 2u);
      // The budget itself still fits on both paths.
      auto a = client.try_acquire(kBudget);
      ASSERT_TRUE(a.has_value());
      client.abandon(*a);
      auto b = client.acquire_blocking(kBudget);
      ASSERT_TRUE(b.has_value());
      client.abandon(*b);
      post_stop(client, 0);
    } else {
      auto fabric =
          std::make_shared<transport::ShmFabric>(kBudget, /*queue_count=*/0, 8);
      transport::MpiServerTransport server(world, fabric);
      auto event = server.next_event();
      ASSERT_TRUE(event.has_value());
      EXPECT_EQ(event->type, EventType::kClientStop);
    }
  });
}

// ---------------------------------------------------------------------------
// Close / drain (shm: an explicit close exists; both: stop-drain protocol)
// ---------------------------------------------------------------------------

TEST(TransportConformanceTest, ShmCloseDrainsThenRefuses) {
  auto fabric = std::make_shared<transport::ShmFabric>(1 << 16, 1, 8);
  transport::ShmClientTransport client(fabric, 0);
  transport::ShmServerTransport server(fabric, 0);

  for (std::uint32_t b = 0; b < 3; ++b) {
    auto ref = client.try_acquire(128);
    ASSERT_TRUE(ref.has_value());
    Event event;
    event.type = EventType::kBlockWritten;
    event.source = 0;
    event.block_id = b;
    event.block = *ref;
    ASSERT_TRUE(client.publish(event));
  }
  server.close_intake();

  // Published events drain in order after close...
  for (std::uint32_t b = 0; b < 3; ++b) {
    auto event = server.next_event();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->block_id, b);
    server.release(event->block);
  }
  // ...then the transport reports end-of-stream,
  EXPECT_FALSE(server.next_event().has_value());
  // and further publishes are refused rather than silently dropped.
  auto ref = client.try_acquire(128);
  ASSERT_TRUE(ref.has_value());
  Event late;
  late.type = EventType::kBlockWritten;
  late.block = *ref;
  EXPECT_FALSE(client.publish(late));
  EXPECT_STATUS(client.try_publish(late), StatusCode::kClosed);
  EXPECT_FALSE(client.post(late));
  client.abandon(*ref);
}

// ---------------------------------------------------------------------------
// Backpressure *policy* semantics end-to-end, in both deployment modes
// ---------------------------------------------------------------------------

/// Adaptive policy through the full Runtime: a buffer sized to 1.5 blocks
/// admits each iteration's priority-1 block and deterministically refuses
/// the priority-0 block on top of it (the precious block stays resident
/// until the iteration completes server-side).  The same invariant must
/// hold whether the bound is a shared segment (cores) or a credit budget
/// (nodes).
void run_adaptive_policy_scenario(core::DedicatedMode mode) {
  const std::uint64_t block_bytes = 8 * 8 * 8 * sizeof(double);
  core::Configuration cfg;
  cfg.set_simulation_name("policy");
  cfg.set_architecture(2, 1);
  cfg.set_dedicated_mode(mode, 1);
  cfg.set_buffer(block_bytes + block_bytes / 2, 64,
                 core::BackpressurePolicy::kAdaptive);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.extents = {8, 8, 8};
  cfg.add_layout(layout);
  core::VariableSpec precious;
  precious.name = "precious";
  precious.layout = "grid";
  precious.priority = 1;
  cfg.add_variable(precious);
  core::VariableSpec bulk;
  bulk.name = "bulk";
  bulk.layout = "grid";
  cfg.add_variable(bulk);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  cfg.validate();

  constexpr int kIterations = 6;
  fsim::StorageConfig storage;
  storage.ost_count = 2;
  storage.ost_bandwidth = 400e6;
  storage.jitter_sigma = 0.0;
  storage.spike_probability = 0.0;
  storage.interference_on_rate = 0.0;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  std::uint64_t precious_failures = 0, dropped = 0, remote_blocks = 0;
  std::vector<double> field(8 * 8 * 8, 1.5);
  minimpi::run_world(2, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      remote_blocks = rt.server_stats().blocks_received_remote;
      return;
    }
    core::Client& client = rt.client();
    for (int it = 0; it < kIterations; ++it) {
      if (!client.write("precious", std::span<const double>(field)).is_ok())
        ++precious_failures;
      (void)client.write("bulk", std::span<const double>(field));
      ASSERT_OK(client.end_iteration());
    }
    rt.finalize();
    dropped = client.stats().dropped_blocks;
  });

  EXPECT_EQ(precious_failures, 0u);
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(kIterations));
  if (mode == core::DedicatedMode::kNodes) {
    EXPECT_EQ(remote_blocks, static_cast<std::uint64_t>(kIterations));
  } else {
    EXPECT_EQ(remote_blocks, 0u);
  }
}

TEST(TransportPolicyTest, IoNodesWithoutClientsTerminate) {
  // More I/O ranks than clients: world of 4 with dedicated_nodes=3 leaves
  // a single client, served by I/O rank 0 only.  Servers 1 and 2 must see
  // client_count == 0 and return from run() immediately instead of
  // blocking forever on an event that never comes.
  core::Configuration cfg;
  cfg.set_simulation_name("sparse");
  cfg.set_architecture(2, 1);
  cfg.set_dedicated_mode(core::DedicatedMode::kNodes, 3);
  cfg.set_buffer(1 << 20, 64, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.extents = {8};
  cfg.add_layout(layout);
  core::VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  cfg.validate();

  fsim::StorageConfig storage;
  storage.jitter_sigma = 0.0;
  storage.spike_probability = 0.0;
  storage.interference_on_rate = 0.0;
  fsim::FileSystem fs(storage, fsim::TimeScale{1e-3, 0.01});

  std::atomic<int> servers_done{0};
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();  // must return even with zero clients
      ++servers_done;
      return;
    }
    std::vector<double> field(8, 2.0);
    ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });
  EXPECT_EQ(servers_done.load(), 3);
  EXPECT_EQ(fs.file_count(), 1u);  // only server 0 had work
}

TEST(TransportPolicyTest, AdaptivePolicyHoldsOnShmBackend) {
  run_adaptive_policy_scenario(core::DedicatedMode::kCores);
}

TEST(TransportPolicyTest, AdaptivePolicyHoldsOnMpiBackend) {
  run_adaptive_policy_scenario(core::DedicatedMode::kNodes);
}

}  // namespace
}  // namespace dedicore
