// Tests for the discrete-event engine and its resources.
#include <gtest/gtest.h>

#include "des/engine.hpp"

namespace dedicore::des {
namespace {

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(EngineTest, SameTimeEventsFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, ScheduleInIsRelative) {
  Engine engine;
  double fired_at = -1;
  engine.schedule_at(2.0, [&] {
    engine.schedule_in(0.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  const EventId id = engine.schedule_at(1.0, [&] { ran = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(EngineTest, CancelIsIdempotentAndSafeAfterRun) {
  Engine engine;
  const EventId id = engine.schedule_at(1.0, [] {});
  engine.run();
  engine.cancel(id);  // already ran: harmless
  engine.cancel(999);  // never existed: harmless
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventsCanScheduleChains) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) engine.schedule_in(1.0, tick);
  };
  engine.schedule_in(1.0, tick);
  engine.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(EngineDeathTest, SchedulingIntoThePastAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_DEATH(engine.schedule_at(1.0, [] {}), "past");
}

// ---------------------------------------------------------------------------
// SimSemaphore
// ---------------------------------------------------------------------------

TEST(SimSemaphoreTest, LimitsConcurrencyFifo) {
  Engine engine;
  SimSemaphore sem(engine, 2);
  std::vector<int> admitted;
  for (int i = 0; i < 5; ++i)
    sem.acquire([&admitted, i] { admitted.push_back(i); });
  engine.run();
  // Only the first two got in (no one released).
  EXPECT_EQ(admitted, (std::vector<int>{0, 1}));
  EXPECT_EQ(sem.waiting(), 3u);

  sem.release();
  engine.run();
  EXPECT_EQ(admitted, (std::vector<int>{0, 1, 2}));  // FIFO order
}

TEST(SimSemaphoreTest, ReleaseWithoutWaitersRestoresPermit) {
  Engine engine;
  SimSemaphore sem(engine, 1);
  int admitted = 0;
  sem.acquire([&] { ++admitted; });
  engine.run();
  sem.release();
  EXPECT_EQ(sem.available(), 1);
  sem.acquire([&] { ++admitted; });
  engine.run();
  EXPECT_EQ(admitted, 2);
}

// ---------------------------------------------------------------------------
// SimFifoServer
// ---------------------------------------------------------------------------

TEST(SimFifoServerTest, SerializesRequests) {
  Engine engine;
  SimFifoServer server(engine);
  std::vector<double> completions;
  engine.schedule_at(0.0, [&] {
    server.request(0.1, [&] { completions.push_back(engine.now()); });
    server.request(0.1, [&] { completions.push_back(engine.now()); });
    server.request(0.1, [&] { completions.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 0.1, 1e-12);
  EXPECT_NEAR(completions[1], 0.2, 1e-12);
  EXPECT_NEAR(completions[2], 0.3, 1e-12);
  EXPECT_EQ(server.operations(), 3u);
  EXPECT_NEAR(server.busy_time(), 0.3, 1e-12);
}

TEST(SimFifoServerTest, IdleServerServesImmediately) {
  Engine engine;
  SimFifoServer server(engine);
  double done_at = -1;
  engine.schedule_at(0.0, [&] { server.request(0.05, [] {}); });
  engine.schedule_at(10.0, [&] {
    server.request(0.05, [&] { done_at = engine.now(); });
  });
  engine.run();
  EXPECT_NEAR(done_at, 10.05, 1e-12);
}

}  // namespace
}  // namespace dedicore::des
