// Tests for the XML-driven Configuration: parsing, defaults, validation
// errors with precise messages.
#include <gtest/gtest.h>

#include "core/configuration.hpp"

namespace dedicore::core {
namespace {

const char* kFullDocument = R"(
<simulation name="cm1" cores_per_node="12" dedicated_cores="1">
  <buffer size="128MiB" queue="512" policy="skip"/>
  <data>
    <layout name="grid3d" type="float32" dimensions="64, 64, 64"/>
    <layout name="profile" type="float64" dimensions="64"/>
    <mesh name="atm" type="rectilinear" coordinates="xcoord"/>
    <variable name="xcoord" layout="profile" store="false"/>
    <variable name="theta" layout="grid3d" mesh="atm" group="fields" codec="xor"/>
    <variable name="qv" layout="grid3d" mesh="atm" group="fields"/>
  </data>
  <storage basename="out/cm1" codec="xor+lzs" min_ratio="1.5" stripe_count="2"
           scheduler="throttled" max_concurrent="4"/>
  <actions>
    <event name="end_iteration" plugin="store"/>
    <event name="snapshot" plugin="vislite">
      <param key="variable" value="theta"/>
      <param key="isovalue" value="301.5"/>
    </event>
  </actions>
</simulation>
)";

TEST(ConfigurationTest, ParsesFullDocument) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  EXPECT_EQ(cfg.simulation_name(), "cm1");
  EXPECT_EQ(cfg.cores_per_node(), 12);
  EXPECT_EQ(cfg.dedicated_cores(), 1);
  EXPECT_EQ(cfg.clients_per_node(), 11);
  EXPECT_EQ(cfg.buffer_size(), 128ull << 20);
  EXPECT_EQ(cfg.queue_capacity(), 512u);
  EXPECT_EQ(cfg.policy(), BackpressurePolicy::kSkipIteration);
  EXPECT_EQ(cfg.layouts().size(), 2u);
  EXPECT_EQ(cfg.meshes().size(), 1u);
  EXPECT_EQ(cfg.variables().size(), 3u);
  EXPECT_EQ(cfg.actions().size(), 2u);
  EXPECT_EQ(cfg.storage().basename, "out/cm1");
  EXPECT_EQ(cfg.storage().codec, "xor+lzs");
  EXPECT_DOUBLE_EQ(cfg.storage().min_ratio, 1.5);
  EXPECT_EQ(cfg.storage().scheduler, "throttled");
  EXPECT_EQ(cfg.storage().max_concurrent_nodes, 4);
  // Per-variable codec override; unset inherits the storage codec ("").
  EXPECT_EQ(cfg.variable("theta").codec, "xor");
  EXPECT_EQ(cfg.variable("qv").codec, "");
}

TEST(ConfigurationTest, DedicatedModeDefaultsToCores) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  EXPECT_EQ(cfg.dedicated_mode(), DedicatedMode::kCores);
  EXPECT_EQ(cfg.dedicated_nodes(), 1);
}

TEST(ConfigurationTest, DedicatedNodesModeParses) {
  const Configuration cfg = Configuration::from_string(R"(
    <simulation dedicated_mode="nodes" dedicated_nodes="3">
      <data>
        <layout name="l" dimensions="8"/>
        <variable name="v" layout="l"/>
      </data>
    </simulation>)");
  EXPECT_EQ(cfg.dedicated_mode(), DedicatedMode::kNodes);
  EXPECT_EQ(cfg.dedicated_nodes(), 3);
  EXPECT_EQ(to_string(DedicatedMode::kNodes), "nodes");
  EXPECT_EQ(to_string(DedicatedMode::kCores), "cores");
}

TEST(ConfigurationTest, BadDedicatedModeRejected) {
  EXPECT_THROW(Configuration::from_string(
                   R"(<simulation dedicated_mode="racks"/>)"),
               ConfigError);
  EXPECT_THROW(Configuration::from_string(
                   R"(<simulation dedicated_mode="nodes" dedicated_nodes="0"/>)"),
               ConfigError);
}

TEST(ConfigurationTest, ServerWorkersParsesAndValidates) {
  // Default: auto (0), resolved per deployment mode at wiring time.
  const Configuration defaulted = Configuration::from_string(kFullDocument);
  EXPECT_EQ(defaulted.server_workers(), 0);
  EXPECT_EQ(defaulted.effective_server_workers(), 1);  // cores mode

  const Configuration cfg = Configuration::from_string(R"(
    <simulation cores_per_node="8" dedicated_mode="nodes" dedicated_nodes="2"
                server_workers="4">
      <data>
        <layout name="l" dimensions="8"/>
        <variable name="v" layout="l"/>
      </data>
    </simulation>)");
  EXPECT_EQ(cfg.server_workers(), 4);
  EXPECT_EQ(cfg.effective_server_workers(), 4);

  // Auto in nodes mode deploys the full node width the model assumes.
  const Configuration auto_nodes = Configuration::from_string(R"(
    <simulation cores_per_node="8" dedicated_mode="nodes" dedicated_nodes="2"/>)");
  EXPECT_EQ(auto_nodes.effective_server_workers(), 8);

  EXPECT_THROW(Configuration::from_string(
                   R"(<simulation server_workers="-1"/>)"),
               ConfigError);
  // The sanity cap: a fat-fingered width must not pass validation and
  // kill the I/O rank at thread-spawn time.
  EXPECT_THROW(Configuration::from_string(
                   R"(<simulation server_workers="500000"/>)"),
               ConfigError);
}

TEST(ConfigurationTest, StealParsesAndValidates) {
  // Default: stealing on at threshold 2 — the worker-pool assignment the
  // server wires unless the XML opts out.
  const Configuration defaulted = Configuration::from_string(kFullDocument);
  EXPECT_TRUE(defaulted.steal_enabled());
  EXPECT_EQ(defaulted.steal_threshold(), 2);

  const Configuration off = Configuration::from_string(
      R"(<simulation steal="off"/>)");
  EXPECT_FALSE(off.steal_enabled());

  const Configuration tuned = Configuration::from_string(
      R"(<simulation steal="on" steal_threshold="8"/>)");
  EXPECT_TRUE(tuned.steal_enabled());
  EXPECT_EQ(tuned.steal_threshold(), 8);

  // Programmatic path mirrors the XML one.
  Configuration programmatic = Configuration::from_string(kFullDocument);
  programmatic.set_steal(false, 5);
  EXPECT_FALSE(programmatic.steal_enabled());
  EXPECT_EQ(programmatic.steal_threshold(), 5);

  EXPECT_THROW(
      Configuration::from_string(R"(<simulation steal="maybe"/>)"),
      ConfigError);
  EXPECT_THROW(
      Configuration::from_string(R"(<simulation steal_threshold="0"/>)"),
      ConfigError);
  // Same fat-finger cap rationale as server_workers.
  EXPECT_THROW(Configuration::from_string(
                   R"(<simulation steal_threshold="99999999"/>)"),
               ConfigError);
}

TEST(ConfigurationTest, LayoutLookupAndSizes) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  const LayoutSpec& grid = cfg.layout("grid3d");
  EXPECT_EQ(grid.dtype, h5lite::DType::kFloat32);
  EXPECT_EQ(grid.element_count(), 64u * 64 * 64);
  EXPECT_EQ(grid.byte_size(), 64u * 64 * 64 * 4);
  EXPECT_THROW((void)cfg.layout("missing"), ConfigError);
}

TEST(ConfigurationTest, VariableLookupByNameAndId) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  const VariableSpec& theta = cfg.variable("theta");
  EXPECT_EQ(theta.group, "fields");
  EXPECT_EQ(cfg.variable(theta.id).name, "theta");
  EXPECT_FALSE(cfg.variable("xcoord").store);
  EXPECT_THROW((void)cfg.variable("nope"), ConfigError);
  EXPECT_THROW((void)cfg.variable(VariableId{99}), ConfigError);
}

TEST(ConfigurationTest, BytesPerCoreCountsOnlyStoredVariables) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  // theta + qv stored (grid3d float32), xcoord not stored.
  EXPECT_EQ(cfg.bytes_per_core_per_iteration(), 2u * 64 * 64 * 64 * 4);
}

TEST(ConfigurationTest, ActionParamsParsed) {
  const Configuration cfg = Configuration::from_string(kFullDocument);
  const ActionSpec& viz = cfg.actions()[1];
  EXPECT_EQ(viz.event, "snapshot");
  EXPECT_EQ(viz.params.at("variable"), "theta");
  EXPECT_EQ(viz.params.at("isovalue"), "301.5");
}

TEST(ConfigurationTest, DefaultsApplyWhenSectionsOmitted) {
  const Configuration cfg = Configuration::from_string(
      "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
      "<variable name=\"v\" layout=\"l\"/></data></simulation>");
  EXPECT_EQ(cfg.cores_per_node(), 12);
  EXPECT_EQ(cfg.dedicated_cores(), 1);
  EXPECT_EQ(cfg.policy(), BackpressurePolicy::kBlock);
  EXPECT_EQ(cfg.storage().scheduler, "greedy");
  EXPECT_EQ(cfg.layout("l").dtype, h5lite::DType::kFloat64);  // default type
}

struct BadDocumentCase {
  const char* name;
  const char* document;
  const char* expected_fragment;
};

class ConfigurationErrorTest : public ::testing::TestWithParam<BadDocumentCase> {};

TEST_P(ConfigurationErrorTest, RejectsWithPreciseMessage) {
  const auto& param = GetParam();
  try {
    Configuration::from_string(param.document);
    FAIL() << "expected ConfigError for " << param.name;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(param.expected_fragment),
              std::string::npos)
        << "message was: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    BadDocuments, ConfigurationErrorTest,
    ::testing::Values(
        BadDocumentCase{"wrong_root", "<sim/>", "simulation"},
        BadDocumentCase{"unknown_layout_ref",
                        "<simulation><data><variable name=\"v\" layout=\"x\"/>"
                        "</data></simulation>",
                        "unknown layout"},
        BadDocumentCase{"unknown_mesh_ref",
                        "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
                        "<variable name=\"v\" layout=\"l\" mesh=\"m\"/>"
                        "</data></simulation>",
                        "unknown mesh"},
        BadDocumentCase{"duplicate_variable",
                        "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
                        "<variable name=\"v\" layout=\"l\"/>"
                        "<variable name=\"v\" layout=\"l\"/>"
                        "</data></simulation>",
                        "duplicate variable"},
        BadDocumentCase{"duplicate_layout",
                        "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
                        "<layout name=\"l\" dimensions=\"8\"/>"
                        "</data></simulation>",
                        "duplicate layout"},
        BadDocumentCase{"bad_policy",
                        "<simulation><buffer policy=\"maybe\"/></simulation>",
                        "policy"},
        BadDocumentCase{"bad_dimension",
                        "<simulation><data>"
                        "<layout name=\"l\" dimensions=\"4,-2\"/>"
                        "</data></simulation>",
                        "dimension"},
        BadDocumentCase{"too_many_dims",
                        "<simulation><data>"
                        "<layout name=\"l\" dimensions=\"2,2,2,2,2\"/>"
                        "</data></simulation>",
                        "4 dimensions"},
        BadDocumentCase{"bad_dtype",
                        "<simulation><data>"
                        "<layout name=\"l\" type=\"quad\" dimensions=\"4\"/>"
                        "</data></simulation>",
                        "unknown data type"},
        BadDocumentCase{"dedicated_exceeds_cores",
                        "<simulation cores_per_node=\"4\" dedicated_cores=\"4\"/>",
                        "dedicated_cores"},
        BadDocumentCase{"throttled_needs_width",
                        "<simulation><storage scheduler=\"throttled\"/></simulation>",
                        "max_concurrent"},
        BadDocumentCase{"unknown_codec",
                        "<simulation><storage codec=\"zstd\"/></simulation>",
                        "codec"},
        BadDocumentCase{"unknown_variable_codec",
                        "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
                        "<variable name=\"v\" layout=\"l\" codec=\"zstd\"/>"
                        "</data></simulation>",
                        "unknown codec"},
        BadDocumentCase{"unknown_action_codec",
                        "<simulation><data><layout name=\"l\" dimensions=\"4\"/>"
                        "<variable name=\"v\" layout=\"l\"/></data>"
                        "<actions><event name=\"e\" plugin=\"store\">"
                        "<param key=\"codec\" value=\"zstd\"/></event></actions>"
                        "</simulation>",
                        "unknown codec"},
        BadDocumentCase{"min_ratio_below_one",
                        "<simulation><storage min_ratio=\"0.5\"/></simulation>",
                        "min_ratio"},
        BadDocumentCase{"mesh_coordinate_not_variable",
                        "<simulation><data>"
                        "<mesh name=\"m\" coordinates=\"nope\"/>"
                        "</data></simulation>",
                        "unknown variable"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ConfigurationTest, ProgrammaticConstructionValidates) {
  Configuration cfg;
  cfg.set_architecture(8, 2);
  cfg.set_buffer(1 << 20, 64, BackpressurePolicy::kBlock);
  LayoutSpec layout;
  layout.name = "l";
  layout.extents = {16, 16};
  cfg.add_layout(layout);
  VariableSpec v;
  v.name = "x";
  v.layout = "l";
  cfg.add_variable(v);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.clients_per_node(), 6);
  // Ids assigned in insertion order.
  EXPECT_EQ(cfg.variable("x").id, 0u);
}

TEST(ConfigurationTest, EventTypeNames) {
  EXPECT_EQ(to_string(EventType::kBlockWritten), "block_written");
  EXPECT_EQ(to_string(EventType::kClientStop), "client_stop");
  EXPECT_EQ(to_string(BackpressurePolicy::kBlock), "block");
  EXPECT_EQ(to_string(BackpressurePolicy::kSkipIteration), "skip");
}

}  // namespace
}  // namespace dedicore::core
