// Fault-tolerance suite: deterministic fault injection, client-death
// reclamation, and crash-consistent storage with retry/backoff.
//
//   * FaultInjector: seeded determinism (same seed + same probe order =>
//     same firing pattern), after/count/target gating, registry
//     validation.
//   * Configuration: the <faults> plan, on_client_failure, and the
//     storage retry budget parse and validate.
//   * WriteBehind: transient (kIoError) failures retried with bounded
//     backoff; poison jobs quarantined after the budget instead of
//     wedging the drain.
//   * PosixBackend: temp+fsync+rename publication — a crash mid-close
//     (SIGKILL-equivalent) leaves a torn *temp*, never a torn final; the
//     startup recovery scan quarantines leftovers; leaked handles are
//     reclaimed and counted.
//   * End to end through Runtime: a seeded "client dies mid-iteration"
//     plan on both deployment modes (drop_iteration vs keep_partial), and
//     a server crash during an image close whose restart shows zero torn
//     images.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/runtime.hpp"
#include "framework/test_infra.hpp"
#include "h5lite/h5lite.hpp"
#include "minimpi/minimpi.hpp"
#include "storage/posix_backend.hpp"
#include "storage/write_behind.hpp"

namespace dedicore {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using storage::FileHandle;
using storage::PosixBackend;
using storage::WriteBehind;

std::vector<std::byte> pattern_bytes(std::size_t n, int salt = 0) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>((i * 7 + salt * 131) & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FiresAfterSkipCountWithTargetGating) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.point = "posix.pwrite";
  spec.target = 5;
  spec.after = 2;
  spec.count = 2;
  injector.arm(spec);

  // Wrong target: never a match, never a hit.
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(injector.should_fire("posix.pwrite", 4));
  EXPECT_EQ(injector.hits("posix.pwrite"), 0u);

  // Matching target: the first `after` probes pass, the next `count`
  // fire, then the spec is spent.
  EXPECT_FALSE(injector.should_fire("posix.pwrite", 5));
  EXPECT_FALSE(injector.should_fire("posix.pwrite", 5));
  EXPECT_TRUE(injector.should_fire("posix.pwrite", 5));
  EXPECT_TRUE(injector.should_fire("posix.pwrite", 5));
  EXPECT_FALSE(injector.should_fire("posix.pwrite", 5));
  EXPECT_EQ(injector.hits("posix.pwrite"), 5u);
  EXPECT_EQ(injector.fired("posix.pwrite"), 2u);
}

TEST(FaultInjectorTest, MagnitudeReachesTheFiringSite) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.point = "write_behind.enqueue_stall";
  spec.magnitude = 250;
  injector.arm(spec);
  const auto fired = injector.fire("write_behind.enqueue_stall");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->magnitude, 250u);
}

TEST(FaultInjectorTest, SameSeedReplaysProbabilisticPattern) {
  const auto pattern = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    FaultSpec spec;
    spec.point = "posix.fsync";
    spec.probability = 0.5;
    spec.count = 1u << 20;  // never spent
    injector.arm(spec);
    std::vector<bool> fired;
    fired.reserve(256);
    for (int i = 0; i < 256; ++i)
      fired.push_back(injector.should_fire("posix.fsync"));
    return fired;
  };
  const auto a = pattern(42), b = pattern(42), c = pattern(43);
  EXPECT_EQ(a, b) << "same seed must replay bit-for-bit";
  EXPECT_NE(a, c) << "a different seed should explore a different schedule";
  // The Bernoulli gate is a gate, not a constant.
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjectorTest, ArmValidatesPointAndParameters) {
  FaultInjector injector(1);
  FaultSpec typo;
  typo.point = "posix.pwright";
  EXPECT_THROW(injector.arm(typo), ConfigError);
  FaultSpec bad_probability;
  bad_probability.point = "posix.pwrite";
  bad_probability.probability = 1.5;
  EXPECT_THROW(injector.arm(bad_probability), ConfigError);
  FaultSpec zero_count;
  zero_count.point = "posix.pwrite";
  zero_count.count = 0;
  EXPECT_THROW(injector.arm(zero_count), ConfigError);
  EXPECT_FALSE(injector.armed());
}

// ---------------------------------------------------------------------------
// Configuration: the <faults> plan
// ---------------------------------------------------------------------------

TEST(FaultConfigTest, ParsesFaultPlanPolicyAndRetryBudget) {
  const std::string xml = R"(
    <simulation name="faulty" cores_per_node="4" dedicated_cores="1"
                on_client_failure="keep_partial">
      <buffer size="4MiB" queue="64" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
      </data>
      <storage basename="faulty" backend="posix" path="/tmp/x" retries="5"/>
      <faults seed="1234">
        <fault point="client.die" target="2" after="7"/>
        <fault point="posix.fsync" count="3" probability="0.25" magnitude="9"/>
      </faults>
    </simulation>)";
  const core::Configuration cfg = core::Configuration::from_string(xml);
  EXPECT_EQ(cfg.on_client_failure(), core::ClientFailurePolicy::kKeepPartial);
  EXPECT_EQ(cfg.storage().retries, 5);
  ASSERT_EQ(cfg.faults().faults.size(), 2u);
  EXPECT_EQ(cfg.faults().seed, 1234u);
  EXPECT_EQ(cfg.faults().faults[0].point, "client.die");
  EXPECT_EQ(cfg.faults().faults[0].target, 2);
  EXPECT_EQ(cfg.faults().faults[0].after, 7u);
  EXPECT_EQ(cfg.faults().faults[1].count, 3u);
  EXPECT_EQ(cfg.faults().faults[1].probability, 0.25);
  EXPECT_EQ(cfg.faults().faults[1].magnitude, 9u);
}

TEST(FaultConfigTest, RejectsTyposLoudly) {
  const auto config_with = [](const std::string& inject) {
    return "<simulation name=\"s\" cores_per_node=\"2\" dedicated_cores=\"1\" " +
           inject.substr(0, inject.find('|')) + R"(>
      <buffer size="1MiB" queue="64"/>
      <data><layout name="g" type="float64" dimensions="4"/>
            <variable name="v" layout="g"/></data>)" +
           inject.substr(inject.find('|') + 1) + "</simulation>";
  };
  EXPECT_THROW(core::Configuration::from_string(config_with(
                   "on_client_failure=\"explode\"|")),
               ConfigError);
  EXPECT_THROW(core::Configuration::from_string(config_with(
                   "|<faults><fault point=\"client.dye\"/></faults>")),
               ConfigError);
  EXPECT_THROW(core::Configuration::from_string(config_with(
                   "|<faults><fault point=\"client.die\" "
                   "probability=\"2.0\"/></faults>")),
               ConfigError);
  EXPECT_THROW(core::Configuration::from_string(config_with(
                   "|<storage retries=\"0\"/>")),
               ConfigError);
}

// ---------------------------------------------------------------------------
// WriteBehind: retry with bounded backoff, poison quarantine
// ---------------------------------------------------------------------------

TEST(WriteBehindFaultTest, TransientFailuresAreRetriedThenSucceed) {
  testing::TempDir dir("wb_retry");
  auto faults = std::make_shared<FaultInjector>(7);
  FaultSpec flaky;
  flaky.point = "write_behind.write";
  flaky.count = 2;  // first two attempts fail, the third lands
  faults->arm(flaky);

  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 1 << 20, /*retries=*/3, faults);
  Status verdict = Status::internal("never ran");
  queue.enqueue({"retry.bin", 0, pattern_bytes(512),
                 [&](const Status& st) { verdict = st; }});
  queue.drain_all();

  EXPECT_OK(verdict);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.jobs_written, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_EQ(stats.jobs_quarantined, 0u);
  EXPECT_EQ(backend.read_file("retry.bin"), pattern_bytes(512));
}

TEST(WriteBehindFaultTest, PoisonJobIsQuarantinedAndDrainNeverWedges) {
  testing::TempDir dir("wb_poison");
  auto faults = std::make_shared<FaultInjector>(7);
  FaultSpec poison;
  poison.point = "write_behind.write";
  poison.count = 3;  // exactly the retry budget: job 1 dies, job 2 is clean
  faults->arm(poison);

  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 1 << 20, /*retries=*/3, faults);
  Status verdict = Status::ok();
  queue.enqueue({"poison.bin", 0, pattern_bytes(256),
                 [&](const Status& st) { verdict = st; }});
  queue.enqueue({"healthy.bin", 0, pattern_bytes(256)});
  queue.drain_all();  // a wedged poison job would hang right here

  EXPECT_EQ(verdict.code(), StatusCode::kIoError);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.jobs_quarantined, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.jobs_written, 1u);
  EXPECT_FALSE(backend.exists("poison.bin"));
  EXPECT_TRUE(backend.exists("healthy.bin"));
  EXPECT_EQ(queue.pending_jobs(), 0u);
}

TEST(WriteBehindFaultTest, PosixFsyncFaultIsTransparentlyRetried) {
  // The injected failure lives in the *backend* this time: close()'s
  // fsync fails once, write_image reports kIoError, and the queue's
  // retry re-creates the image from the job's bytes.  The first
  // attempt's torn temp must stay invisible and be quarantined by the
  // next startup.
  testing::TempDir dir("wb_fsync_retry");
  auto faults = std::make_shared<FaultInjector>(11);
  FaultSpec fsync_once;
  fsync_once.point = "posix.fsync";
  fsync_once.count = 1;
  faults->arm(fsync_once);

  {
    PosixBackend backend(dir.path(), faults);
    WriteBehind queue(backend, 1 << 20, /*retries=*/3, faults);
    queue.enqueue({"image.h5l", 0, pattern_bytes(1024)});
    queue.drain_all();
    EXPECT_EQ(queue.stats().retries, 1u);
    EXPECT_EQ(queue.stats().jobs_written, 1u);
    EXPECT_EQ(backend.read_file("image.h5l"), pattern_bytes(1024));
    ASSERT_EQ(backend.list_files(), std::vector<std::string>{"image.h5l"});
  }
  PosixBackend restarted(dir.path());
  EXPECT_EQ(restarted.stats().files_quarantined, 1u);
  EXPECT_EQ(restarted.read_file("image.h5l"), pattern_bytes(1024));
}

// ---------------------------------------------------------------------------
// PosixBackend: crash consistency
// ---------------------------------------------------------------------------

TEST(PosixCrashConsistencyTest, CrashOnCloseLeavesNoTornFinal) {
  testing::TempDir dir("posix_crash");
  auto faults = std::make_shared<FaultInjector>(3);
  FaultSpec crash;
  crash.point = "posix.crash_on_close";
  crash.count = 1;
  faults->arm(crash);

  std::uint64_t quarantined = 0;
  {
    PosixBackend backend(dir.path(), faults);
    FileHandle f;
    ASSERT_OK(backend.create("run/torn.bin", &f));
    ASSERT_OK(backend.write(f, pattern_bytes(4096)));
    // The simulated SIGKILL: close "succeeds" from the dead process's
    // point of view, but nothing was published.
    ASSERT_OK(backend.close(f));
    EXPECT_FALSE(backend.exists("run/torn.bin"));
    EXPECT_TRUE(backend.list_files().empty());
    EXPECT_EQ(backend.open_handles(), 0u);
  }
  // "Reboot": the recovery scan sweeps the torn temp aside.
  PosixBackend restarted(dir.path());
  quarantined = restarted.stats().files_quarantined;
  EXPECT_EQ(quarantined, 1u);
  EXPECT_FALSE(restarted.exists("run/torn.bin"));
  EXPECT_TRUE(restarted.list_files().empty());
  std::error_code ec;
  std::size_t quarantine_entries = 0;
  for (auto it = std::filesystem::directory_iterator(
           restarted.quarantine_dir(), ec);
       !ec && it != std::filesystem::directory_iterator(); ++it)
    ++quarantine_entries;
  EXPECT_EQ(quarantine_entries, 1u);

  // A third startup must not re-quarantine already-quarantined evidence.
  PosixBackend third(dir.path());
  EXPECT_EQ(third.stats().files_quarantined, 0u);
}

TEST(PosixCrashConsistencyTest, CrashWhileRewritingPreservesThePreviousImage) {
  // create() over an existing file is a truncation — but the truncation
  // must be atomic with the publication.  Dying mid-rewrite leaves the
  // OLD image intact, not an empty or half-written final.
  testing::TempDir dir("posix_rewrite");
  auto faults = std::make_shared<FaultInjector>(3);
  PosixBackend backend(dir.path(), faults);

  FileHandle f;
  ASSERT_OK(backend.create("state.bin", &f));
  ASSERT_OK(backend.write(f, pattern_bytes(512, 1)));
  ASSERT_OK(backend.close(f));
  ASSERT_EQ(backend.read_file("state.bin"), pattern_bytes(512, 1));

  FaultSpec crash;
  crash.point = "posix.crash_on_close";
  crash.count = 1;
  faults->arm(crash);
  FileHandle g;
  ASSERT_OK(backend.create("state.bin", &g));
  ASSERT_OK(backend.write(g, pattern_bytes(512, 2)));
  ASSERT_OK(backend.close(g));  // dies before publishing v2

  EXPECT_EQ(backend.read_file("state.bin"), pattern_bytes(512, 1))
      << "a crashed rewrite corrupted the previously durable image";
  EXPECT_EQ(backend.file_size("state.bin"), 512u);
}

TEST(PosixCrashConsistencyTest, InjectedPwriteFailureIsAStatusError) {
  testing::TempDir dir("posix_pwrite");
  auto faults = std::make_shared<FaultInjector>(3);
  FaultSpec eio;
  eio.point = "posix.pwrite";
  eio.count = 1;
  faults->arm(eio);
  PosixBackend backend(dir.path(), faults);

  FileHandle f;
  ASSERT_OK(backend.create("a.bin", &f));
  EXPECT_STATUS(backend.write(f, pattern_bytes(64)), StatusCode::kIoError);
  // The failure was transient: the same handle works on the next call.
  ASSERT_OK(backend.write(f, pattern_bytes(64)));
  ASSERT_OK(backend.close(f));
  EXPECT_EQ(backend.file_size("a.bin"), 64u);
  EXPECT_EQ(backend.stats().writes, 1u);  // the failed call counted nothing
}

TEST(PosixCrashConsistencyTest, LeakedHandlesAreReclaimedAndCounted) {
  testing::TempDir dir("posix_leak");
  PosixBackend backend(dir.path());
  FileHandle a, b;
  ASSERT_OK(backend.create("leak/a.bin", &a));
  ASSERT_OK(backend.create("leak/b.bin", &b));
  ASSERT_OK(backend.write(a, pattern_bytes(128)));
  ASSERT_EQ(backend.open_handles(), 2u);

  EXPECT_EQ(backend.reclaim_leaked_handles(), 2u);
  EXPECT_EQ(backend.open_handles(), 0u);
  EXPECT_EQ(backend.stats().handles_reclaimed, 2u);
  // Unpublished means invisible: the leaked creates never became files.
  EXPECT_FALSE(backend.exists("leak/a.bin"));
  EXPECT_FALSE(backend.exists("leak/b.bin"));
  // Their torn temps surface — quarantined — on the next startup.
  PosixBackend restarted(dir.path());
  EXPECT_EQ(restarted.stats().files_quarantined, 2u);
}

// ---------------------------------------------------------------------------
// End to end: seeded client death through Runtime (dedicated-cores mode)
// ---------------------------------------------------------------------------

/// 4 clients + 1 dedicated core running a 4-worker stealing pool, posix
/// storage, two stored variables per iteration.  The fault plan kills
/// client 2 on its 5th transport event = publishing its SECOND block of
/// iteration 1, so at death the index holds exactly one unclosed block of
/// the corpse.
std::string cores_death_xml(const std::string& path,
                            const std::string& policy) {
  return R"(
    <simulation name="reclaim" cores_per_node="5" dedicated_cores="1"
                server_workers="4" steal="on" on_client_failure=")" +
         policy + R"(">
      <buffer size="8MiB" queue="256" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
        <variable name="field2" layout="grid"/>
      </data>
      <storage basename="reclaim" backend="posix" path=")" +
         path + R"("/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
      <faults seed="42">
        <fault point="client.die" target="2" after="4"/>
      </faults>
    </simulation>)";
}

struct DeathRunResult {
  core::ServerStats server;
  std::size_t files = 0;
  std::size_t iteration1_datasets = 0;
};

DeathRunResult run_cores_death_world(const std::string& policy) {
  constexpr int kIterations = 4;
  testing::TempDir dir("fault_e2e_" + policy);
  const core::Configuration cfg =
      core::Configuration::from_string(cores_death_xml(dir.path().string(),
                                                       policy));
  fsim::FileSystem fs(fsim::StorageConfig{}, fsim::TimeScale{1e-4, 0.01});

  DeathRunResult result;
  minimpi::run_world(5, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      result.server = rt.server_stats();
      return;
    }
    std::vector<double> field(8 * 8, 1.0 + comm.rank());
    for (int it = 0; it < kIterations; ++it) {
      // Client 2 dies inside its second write of iteration 1; from then
      // on every call degrades to a refused no-op — exactly what a
      // zombie thread would see.  Survivors must stay green.
      const Status w1 = rt.client().write("field", std::span<const double>(field));
      const Status w2 = rt.client().write("field2", std::span<const double>(field));
      const Status end = rt.client().end_iteration();
      if (comm.rank() != 2) {
        ASSERT_OK(w1);
        ASSERT_OK(w2);
        ASSERT_OK(end);
      }
    }
    rt.finalize();
  });

  PosixBackend disk(dir.path());
  const auto files = disk.list_files();
  result.files = files.size();
  for (const std::string& path : files) {
    if (path.find("it1") == std::string::npos) continue;
    const auto bytes = disk.read_file(path);
    if (!bytes.has_value()) continue;
    result.iteration1_datasets =
        h5lite::File::parse(*bytes).dataset_paths().size();
  }
  return result;
}

TEST(FaultEndToEndTest, ClientDeathReclaimIsDeterministicAcrossPolicies) {
  constexpr int kIterations = 4;
  const DeathRunResult drop = run_cores_death_world("drop_iteration");
  const DeathRunResult keep = run_cores_death_world("keep_partial");

  for (const DeathRunResult* r : {&drop, &keep}) {
    // The run terminated normally: the survivors closed every iteration
    // (the dead client is exempted from the close quorum), every image
    // drained to disk, nothing deadlocked.
    EXPECT_EQ(r->server.clients_aborted, 1u);
    EXPECT_EQ(r->server.iterations_completed,
              static_cast<std::uint64_t>(kIterations));
    EXPECT_EQ(r->files, static_cast<std::size_t>(kIterations));
  }

  // The policies diverge on exactly one block: the corpse's unclosed
  // iteration-1 contribution.  drop_iteration releases it (6 datasets =
  // 3 survivors x 2 variables); keep_partial persists it alongside the
  // survivors' blocks.
  EXPECT_EQ(drop.iteration1_datasets, 6u);
  EXPECT_EQ(keep.iteration1_datasets, 7u);

  // Reclaim accounting.  The fatal write's own block never reaches the
  // reclaim path — the dying client abandons it cleanly when publish
  // refuses, so the liveness ledger is already empty at abort time.
  // What remains is the corpse's *indexed* iteration-1 block: dropped
  // (>=1: the abort may also catch earlier-iteration blocks whose close
  // quorum is still in flight) under drop_iteration, kept under
  // keep_partial.
  EXPECT_GE(drop.server.blocks_reclaimed, 1u);
  EXPECT_EQ(keep.server.blocks_reclaimed, 0u);
  EXPECT_GT(drop.server.bytes_reclaimed, keep.server.bytes_reclaimed);
}

// ---------------------------------------------------------------------------
// End to end: client death in dedicated-nodes mode (MPI transport)
// ---------------------------------------------------------------------------

TEST(FaultEndToEndTest, MpiClientDeathLosesStagedFrameAndRunCompletes) {
  // SIGKILL semantics on the wire: whatever the dying client had staged
  // but not flushed is LOST — iteration 1's first write never reaches
  // the server, so even before any drop policy its image carries only
  // the survivors' blocks.  The abort frame still arrives (behind every
  // real frame), the server exempts the corpse from every close quorum,
  // and the run terminates.  keep_partial here so the pre-death
  // iteration-0 image deterministically keeps all four clients even when
  // the abort beats a slow survivor's close.
  constexpr int kIterations = 3;
  testing::TempDir dir("fault_e2e_mpi");
  const std::string xml = R"(
    <simulation name="mpideath" cores_per_node="4" dedicated_cores="1"
                dedicated_mode="nodes" dedicated_nodes="1"
                on_client_failure="keep_partial">
      <buffer size="8MiB" queue="256" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
        <variable name="field2" layout="grid"/>
      </data>
      <storage basename="mpideath" backend="posix" path=")" +
                          dir.path().string() + R"("/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
      <faults seed="99">
        <fault point="client.die" target="2" after="4"/>
      </faults>
    </simulation>)";
  const core::Configuration cfg = core::Configuration::from_string(xml);
  fsim::FileSystem fs(fsim::StorageConfig{}, fsim::TimeScale{1e-4, 0.01});

  core::ServerStats server_stats;
  minimpi::run_world(5, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      server_stats = rt.server_stats();
      return;
    }
    std::vector<double> field(8 * 8, 1.0 + comm.rank());
    for (int it = 0; it < kIterations; ++it) {
      const Status w1 = rt.client().write("field", std::span<const double>(field));
      const Status w2 = rt.client().write("field2", std::span<const double>(field));
      const Status end = rt.client().end_iteration();
      if (comm.rank() != 2) {
        ASSERT_OK(w1);
        ASSERT_OK(w2);
        ASSERT_OK(end);
      }
    }
    rt.finalize();
  });

  EXPECT_EQ(server_stats.clients_aborted, 1u);
  EXPECT_EQ(server_stats.iterations_completed,
            static_cast<std::uint64_t>(kIterations));

  PosixBackend disk(dir.path());
  const auto files = disk.list_files();
  ASSERT_EQ(files.size(), static_cast<std::size_t>(kIterations));
  for (const std::string& path : files) {
    const auto bytes = disk.read_file(path);
    ASSERT_TRUE(bytes.has_value()) << path;
    const std::size_t datasets =
        h5lite::File::parse(*bytes).dataset_paths().size();
    if (path.find("it0") != std::string::npos)
      EXPECT_EQ(datasets, 8u) << path;  // all 4 clients, pre-death
    else
      EXPECT_EQ(datasets, 6u) << path;  // survivors only; staged frame lost
  }
}

// ---------------------------------------------------------------------------
// End to end: kill the server mid-image-close; restart shows zero torn
// images
// ---------------------------------------------------------------------------

TEST(FaultEndToEndTest, ServerCrashDuringImageCloseSurvivesRecoveryIntact) {
  constexpr int kIterations = 4;
  testing::TempDir dir("fault_e2e_crash");
  const std::string xml = R"(
    <simulation name="crashy" cores_per_node="4" dedicated_cores="1">
      <buffer size="8MiB" queue="256" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
      </data>
      <storage basename="crashy" backend="posix" path=")" +
                          dir.path().string() + R"("/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
      <faults seed="5">
        <fault point="posix.crash_on_close" after="1" count="1"/>
      </faults>
    </simulation>)";
  const core::Configuration cfg = core::Configuration::from_string(xml);
  fsim::FileSystem fs(fsim::StorageConfig{}, fsim::TimeScale{1e-4, 0.01});

  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    std::vector<double> field(8 * 8, 0.5 * comm.rank());
    for (int it = 0; it < kIterations; ++it) {
      ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });

  // "Reboot" the storage node: the recovery scan must leave a root where
  // every visible file is a complete, parseable image — the crashed
  // iteration's file simply does not exist, torn bytes live only in
  // quarantine.
  PosixBackend restarted(dir.path());
  EXPECT_EQ(restarted.stats().files_quarantined, 1u);
  const auto files = restarted.list_files();
  EXPECT_EQ(files.size(), static_cast<std::size_t>(kIterations) - 1);
  for (const std::string& path : files) {
    EXPECT_EQ(path.find(".part-"), std::string::npos) << path;
    const auto bytes = restarted.read_file(path);
    ASSERT_TRUE(bytes.has_value()) << path;
    const h5lite::File image = h5lite::File::parse(*bytes);  // throws if torn
    EXPECT_EQ(image.dataset_paths().size(), 3u) << path;
  }
}

}  // namespace
}  // namespace dedicore
