// Tests for the shared-memory segment allocator and the bounded queue —
// including property tests over the allocator invariants and blocking
// semantics under concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "shm/bounded_queue.hpp"
#include "shm/segment.hpp"
#include "framework/test_infra.hpp"

namespace dedicore::shm {
namespace {

TEST(SegmentTest, AllocateAndFree) {
  Segment seg(1024);
  auto a = seg.try_allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 100u);
  EXPECT_EQ(seg.used(), 100u);
  seg.deallocate(*a);
  EXPECT_EQ(seg.used(), 0u);
  EXPECT_EQ(seg.free_bytes(), 1024u);
}

TEST(SegmentTest, ExhaustionReturnsNullopt) {
  Segment seg(256);
  auto a = seg.try_allocate(200);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(seg.try_allocate(100).has_value());
  EXPECT_EQ(seg.stats().failed_allocations, 1u);
  seg.deallocate(*a);
  EXPECT_TRUE(seg.try_allocate(100).has_value());
}

TEST(SegmentTest, AlignmentIsRespected) {
  Segment seg(4096);
  auto a = seg.try_allocate(3, 1);
  ASSERT_TRUE(a.has_value());
  auto b = seg.try_allocate(64, 64);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->offset % 64, 0u);
  seg.check_invariants();
}

TEST(SegmentTest, CoalescingReassemblesWholeSegment) {
  Segment seg(1000);
  std::vector<BlockRef> blocks;
  for (int i = 0; i < 8; ++i) {
    auto b = seg.try_allocate(100);
    ASSERT_TRUE(b.has_value());
    blocks.push_back(*b);
  }
  // Free in an interleaved order to exercise both-neighbour coalescing.
  for (int i : {1, 3, 5, 7, 0, 2, 4, 6}) seg.deallocate(blocks[static_cast<std::size_t>(i)]);
  seg.check_invariants();
  // A full-capacity allocation only succeeds when coalescing was perfect.
  auto whole = seg.try_allocate(1000, 1);
  EXPECT_TRUE(whole.has_value());
}

TEST(SegmentTest, ViewReadsBackWrites) {
  Segment seg(512);
  auto block = seg.try_allocate(16);
  ASSERT_TRUE(block.has_value());
  auto view = seg.view(*block);
  std::memset(view.data(), 0xAB, view.size());
  auto again = seg.view(*block);
  EXPECT_EQ(std::to_integer<int>(again[15]), 0xAB);
}

TEST(SegmentTest, TryWriteCopiesPayload) {
  Segment seg(512);
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  auto block = seg.try_write(payload);
  ASSERT_TRUE(block.has_value());
  auto view = seg.view(*block);
  EXPECT_EQ(std::to_integer<int>(view[1]), 2);
}

TEST(SegmentTest, PeakUsageTracksHighWater) {
  Segment seg(1024);
  auto a = seg.try_allocate(600);
  auto b = seg.try_allocate(300);
  ASSERT_TRUE(a && b);
  seg.deallocate(*a);
  seg.deallocate(*b);
  EXPECT_EQ(seg.stats().peak_used, 900u);
  EXPECT_EQ(seg.stats().allocations, 2u);
  EXPECT_EQ(seg.stats().frees, 2u);
}

TEST(SegmentTest, BlockingAllocateWaitsForSpace) {
  Segment seg(256);
  auto hog = seg.try_allocate(200);
  ASSERT_TRUE(hog.has_value());

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    seg.deallocate(*hog);
  });
  // Blocks until the releaser frees the hog block.
  auto waited = seg.allocate_blocking(150);
  releaser.join();
  ASSERT_TRUE(waited.has_value());
  EXPECT_EQ(waited->size, 150u);
}

TEST(SegmentTest, BlockingAllocateImpossibleSizeFailsFast) {
  Segment seg(128);
  EXPECT_FALSE(seg.allocate_blocking(1024).has_value());
}

TEST(SegmentTest, CloseUnblocksWaiters) {
  Segment seg(128);
  auto hog = seg.try_allocate(120);
  ASSERT_TRUE(hog.has_value());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    seg.close();
  });
  EXPECT_FALSE(seg.allocate_blocking(100).has_value());
  closer.join();
}

TEST(SegmentTest, OversizedAlignmentIsRejectedNotUndefined) {
  Segment seg(1024);
  // An alignment wider than the segment can never be satisfied; it must be
  // refused as a counted failure, not fed into the padding arithmetic.
  EXPECT_FALSE(seg.try_allocate(8, 2048).has_value());
  EXPECT_EQ(seg.stats().failed_allocations, 1u);
  // The extreme case: align_up(offset, 1 << 63) would wrap without a guard.
  EXPECT_FALSE(seg.try_allocate(8, 1ull << 63).has_value());
  // Blocking flavor fails fast instead of parking forever.
  EXPECT_FALSE(seg.allocate_blocking(8, 2048).has_value());
  seg.check_invariants();
  // The refusals left the segment fully intact.
  EXPECT_TRUE(seg.try_allocate(1024, 1).has_value());
}

TEST(SegmentTest, StatsAreLockFreeSnapshots) {
  Segment seg(4096);
  auto a = seg.try_allocate(1000);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(seg.used(), 1000u);
  EXPECT_EQ(seg.free_bytes(), 3096u);
  const SegmentStats s = seg.stats();
  EXPECT_EQ(s.used, 1000u);
  EXPECT_EQ(s.largest_free_block, 3096u);
  seg.deallocate(*a);
  EXPECT_EQ(seg.stats().largest_free_block, 4096u);
}

TEST(SegmentDeathTest, DoubleFreeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Segment seg(256);
  auto a = seg.try_allocate(64);
  ASSERT_TRUE(a.has_value());
  seg.deallocate(*a);
  EXPECT_DEATH(seg.deallocate(*a), "double-freed");
}

/// Property test: random allocate/free sequences keep every invariant and
/// never corrupt accounting.  Parameterized over segment sizes.
class SegmentPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentPropertyTest, RandomWorkloadKeepsInvariants) {
  const std::uint64_t capacity = GetParam();
  Segment seg(capacity);
  Rng rng(capacity ^ 0xDEADBEEFull);
  std::vector<BlockRef> live;
  std::uint64_t live_bytes = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool allocate = live.empty() || rng.chance(0.55);
    if (allocate) {
      const std::uint64_t size = 1 + rng.next_below(capacity / 4);
      const std::uint64_t alignment = 1ull << rng.next_below(7);
      auto block = seg.try_allocate(size, alignment);
      if (block) {
        EXPECT_EQ(block->offset % alignment, 0u);
        live.push_back(*block);
        live_bytes += size;
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      live_bytes -= live[pick].size;
      seg.deallocate(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(seg.used(), live_bytes);
    if (step % 100 == 0) seg.check_invariants();
  }
  for (const auto& block : live) seg.deallocate(block);
  seg.check_invariants();
  EXPECT_EQ(seg.used(), 0u);
  // After everything is freed the full capacity must be allocatable again.
  EXPECT_TRUE(seg.try_allocate(capacity, 1).has_value());
}

INSTANTIATE_TEST_SUITE_P(Capacities, SegmentPropertyTest,
                         ::testing::Values(1 << 10, 1 << 14, 1 << 18, 123457));

/// Property test against a reference bitmap model: every returned block
/// must land on bytes the model says are free, every failure must happen
/// only when the model confirms no aligned placement exists (the
/// completeness guarantee of the banded best-fit scan), and the
/// peak/failed/largest counters must track the model exactly.
TEST(SegmentBitmapPropertyTest, AllocatorAgreesWithBitmapModel) {
  constexpr std::uint64_t kCapacity = 1 << 16;
  Segment seg(kCapacity);
  Rng rng = dedicore::testing::make_rng();

  std::vector<char> bitmap(kCapacity, 0);  // 1 = byte handed out
  std::vector<BlockRef> live;
  std::uint64_t model_used = 0, model_peak = 0;
  std::uint64_t model_allocs = 0, model_frees = 0, model_failed = 0;

  // True iff some maximal free run admits an aligned placement of `size`.
  const auto model_has_fit = [&](std::uint64_t size, std::uint64_t alignment) {
    std::uint64_t run_start = 0;
    bool in_run = false;
    for (std::uint64_t i = 0; i <= kCapacity; ++i) {
      const bool free_byte = i < kCapacity && bitmap[i] == 0;
      if (free_byte && !in_run) {
        run_start = i;
        in_run = true;
      } else if (!free_byte && in_run) {
        in_run = false;
        const std::uint64_t aligned =
            (run_start + alignment - 1) / alignment * alignment;
        if (aligned < i && i - aligned >= size) return true;
      }
    }
    return false;
  };

  const auto model_largest_run = [&] {
    std::uint64_t best = 0, current = 0;
    for (std::uint64_t i = 0; i < kCapacity; ++i) {
      current = bitmap[i] == 0 ? current + 1 : 0;
      best = std::max(best, current);
    }
    return best;
  };

  for (int step = 0; step < 4000; ++step) {
    const bool allocate = live.empty() || rng.chance(0.6);
    if (allocate) {
      const std::uint64_t size = 1 + rng.next_below(kCapacity / 16);
      const std::uint64_t alignment = 1ull << rng.next_below(8);
      auto got = seg.try_allocate(size, alignment);
      if (!got) {
        ++model_failed;
        // Completeness: the allocator may only refuse when NO free run
        // admits the placement.
        ASSERT_FALSE(model_has_fit(size, alignment))
            << "refused size=" << size << " alignment=" << alignment
            << " although the bitmap has a fitting run (step " << step << ")";
      } else {
        ASSERT_EQ(got->offset % alignment, 0u);
        ASSERT_LE(got->offset + got->size, kCapacity);
        for (std::uint64_t i = got->offset; i < got->offset + got->size; ++i) {
          ASSERT_EQ(bitmap[i], 0) << "byte " << i << " double-allocated";
          bitmap[i] = 1;
        }
        live.push_back(*got);
        ++model_allocs;
        model_used += size;
        model_peak = std::max(model_peak, model_used);
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      const BlockRef block = live[pick];
      for (std::uint64_t i = block.offset; i < block.offset + block.size; ++i) {
        ASSERT_EQ(bitmap[i], 1);
        bitmap[i] = 0;
      }
      seg.deallocate(block);
      ++model_frees;
      model_used -= block.size;
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(seg.used(), model_used);
    if (step % 200 == 0) seg.check_invariants();
  }

  const SegmentStats stats = seg.stats();
  EXPECT_EQ(stats.used, model_used);
  EXPECT_EQ(stats.peak_used, model_peak);
  EXPECT_EQ(stats.allocations, model_allocs);
  EXPECT_EQ(stats.frees, model_frees);
  EXPECT_EQ(stats.failed_allocations, model_failed);
  EXPECT_EQ(stats.largest_free_block, model_largest_run());

  for (const auto& block : live) seg.deallocate(block);
  seg.check_invariants();
  EXPECT_EQ(seg.used(), 0u);
  EXPECT_TRUE(seg.try_allocate(kCapacity, 1).has_value());
}

TEST(SegmentTest, ConcurrentAllocFreeIsSafe) {
  Segment seg(1 << 20);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        auto block = seg.try_allocate(1 + rng.next_below(2048));
        if (!block) {
          ++failures;
          continue;
        }
        auto view = seg.view(*block);
        std::memset(view.data(), t, view.size());
        seg.deallocate(*block);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seg.used(), 0u);
  seg.check_invariants();
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_OK(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop().value(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, TryPushFullReturnsWouldBlock) {
  BoundedQueue<int> q(2);
  EXPECT_OK(q.try_push(1));
  EXPECT_OK(q.try_push(2));
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kWouldBlock);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  ASSERT_OK(q.try_push(1));
  ASSERT_OK(q.try_push(2));
  q.close();
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kClosed);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, BlockingPushWaitsForConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop().value(), 1);
  });
  EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
  consumer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, BlockingPopWaitsForProducer) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
  producer.join();
}

TEST(BoundedQueueTest, CloseUnblocksPoppers) {
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_FALSE(q.pop().has_value());
  closer.join();
}

TEST(BoundedQueueTest, ManyProducersOneConsumer) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushAllIsAllOrNothing) {
  BoundedQueue<int> q(4);
  std::vector<int> first{1, 2, 3};
  EXPECT_OK(q.try_push_all(std::span<int>(first)));
  EXPECT_EQ(q.size(), 3u);
  // Two more do not fit: nothing may be enqueued.
  std::vector<int> overflow{4, 5};
  EXPECT_EQ(q.try_push_all(std::span<int>(overflow)).code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(q.size(), 3u);
  std::vector<int> fits{4};
  EXPECT_OK(q.try_push_all(std::span<int>(fits)));
  for (int want : {1, 2, 3, 4}) EXPECT_EQ(q.try_pop().value(), want);
  // A batch wider than the capacity can never succeed: not WOULD_BLOCK
  // (which invites a retry loop that would spin forever) but a hard error.
  std::vector<int> impossible{1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_all(std::span<int>(impossible)).code(),
            StatusCode::kInvalidArgument);
  q.close();
  std::vector<int> late{9};
  EXPECT_EQ(q.try_push_all(std::span<int>(late)).code(), StatusCode::kClosed);
}

TEST(BoundedQueueTest, PushAllDeliversAcrossCapacityInOrder) {
  BoundedQueue<int> q(4);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  // The batch exceeds the capacity, so push_all must chunk, waiting for
  // the consumer in between — order preserved throughout.
  std::thread producer([&] {
    EXPECT_EQ(q.push_all(std::span<int>(items)), 100u);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop().value(), i);
  producer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PopAllDrainsEverythingQueued) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_OK(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_all(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  // Closed + empty: pop_all reports end-of-stream as 0.
  q.close();
  out.clear();
  EXPECT_EQ(q.pop_all(out), 0u);
}

TEST(BoundedQueueTest, PopAllRespectsMaxAndKeepsRemainder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_OK(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_all(out, 4), 4u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_all(out), 2u);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, BulkPushWakesEveryWaitingConsumer) {
  BoundedQueue<int> q(8);
  std::atomic<int> got{0};
  std::thread c1([&] { if (q.pop()) ++got; });
  std::thread c2([&] { if (q.pop()) ++got; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let both park
  std::vector<int> items{1, 2, 3, 4};
  EXPECT_OK(q.try_push_all(std::span<int>(items)));
  // One bulk delivery satisfies several waiters: both must wake (a single
  // notify_one would strand the second consumer and hang this join).
  c1.join();
  c2.join();
  EXPECT_EQ(got.load(), 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, BulkPopWakesEveryWaitingProducer) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));  // full
  std::thread p1([&] { EXPECT_TRUE(q.push(3)); });
  std::thread p2([&] { EXPECT_TRUE(q.push(4)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let both park
  std::vector<int> out;
  EXPECT_EQ(q.pop_all(out), 2u);  // frees two slots in one critical section
  p1.join();
  p2.join();
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(3);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 20; ++round) {
    while (q.try_push(next_push).is_ok()) ++next_push;
    EXPECT_EQ(q.try_pop().value(), next_pop++);
    EXPECT_EQ(q.try_pop().value(), next_pop++);
  }
}

}  // namespace
}  // namespace dedicore::shm
