// Tests for the shared-memory segment allocator and the bounded queue —
// including property tests over the allocator invariants and blocking
// semantics under concurrency.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "shm/bounded_queue.hpp"
#include "shm/segment.hpp"
#include "framework/test_infra.hpp"

namespace dedicore::shm {
namespace {

TEST(SegmentTest, AllocateAndFree) {
  Segment seg(1024);
  auto a = seg.try_allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 100u);
  EXPECT_EQ(seg.used(), 100u);
  seg.deallocate(*a);
  EXPECT_EQ(seg.used(), 0u);
  EXPECT_EQ(seg.free_bytes(), 1024u);
}

TEST(SegmentTest, ExhaustionReturnsNullopt) {
  Segment seg(256);
  auto a = seg.try_allocate(200);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(seg.try_allocate(100).has_value());
  EXPECT_EQ(seg.stats().failed_allocations, 1u);
  seg.deallocate(*a);
  EXPECT_TRUE(seg.try_allocate(100).has_value());
}

TEST(SegmentTest, AlignmentIsRespected) {
  Segment seg(4096);
  auto a = seg.try_allocate(3, 1);
  ASSERT_TRUE(a.has_value());
  auto b = seg.try_allocate(64, 64);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->offset % 64, 0u);
  seg.check_invariants();
}

TEST(SegmentTest, CoalescingReassemblesWholeSegment) {
  Segment seg(1000);
  std::vector<BlockRef> blocks;
  for (int i = 0; i < 8; ++i) {
    auto b = seg.try_allocate(100);
    ASSERT_TRUE(b.has_value());
    blocks.push_back(*b);
  }
  // Free in an interleaved order to exercise both-neighbour coalescing.
  for (int i : {1, 3, 5, 7, 0, 2, 4, 6}) seg.deallocate(blocks[static_cast<std::size_t>(i)]);
  seg.check_invariants();
  // A full-capacity allocation only succeeds when coalescing was perfect.
  auto whole = seg.try_allocate(1000, 1);
  EXPECT_TRUE(whole.has_value());
}

TEST(SegmentTest, ViewReadsBackWrites) {
  Segment seg(512);
  auto block = seg.try_allocate(16);
  ASSERT_TRUE(block.has_value());
  auto view = seg.view(*block);
  std::memset(view.data(), 0xAB, view.size());
  auto again = seg.view(*block);
  EXPECT_EQ(std::to_integer<int>(again[15]), 0xAB);
}

TEST(SegmentTest, TryWriteCopiesPayload) {
  Segment seg(512);
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  auto block = seg.try_write(payload);
  ASSERT_TRUE(block.has_value());
  auto view = seg.view(*block);
  EXPECT_EQ(std::to_integer<int>(view[1]), 2);
}

TEST(SegmentTest, PeakUsageTracksHighWater) {
  Segment seg(1024);
  auto a = seg.try_allocate(600);
  auto b = seg.try_allocate(300);
  ASSERT_TRUE(a && b);
  seg.deallocate(*a);
  seg.deallocate(*b);
  EXPECT_EQ(seg.stats().peak_used, 900u);
  EXPECT_EQ(seg.stats().allocations, 2u);
  EXPECT_EQ(seg.stats().frees, 2u);
}

TEST(SegmentTest, BlockingAllocateWaitsForSpace) {
  Segment seg(256);
  auto hog = seg.try_allocate(200);
  ASSERT_TRUE(hog.has_value());

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    seg.deallocate(*hog);
  });
  // Blocks until the releaser frees the hog block.
  auto waited = seg.allocate_blocking(150);
  releaser.join();
  ASSERT_TRUE(waited.has_value());
  EXPECT_EQ(waited->size, 150u);
}

TEST(SegmentTest, BlockingAllocateImpossibleSizeFailsFast) {
  Segment seg(128);
  EXPECT_FALSE(seg.allocate_blocking(1024).has_value());
}

TEST(SegmentTest, CloseUnblocksWaiters) {
  Segment seg(128);
  auto hog = seg.try_allocate(120);
  ASSERT_TRUE(hog.has_value());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    seg.close();
  });
  EXPECT_FALSE(seg.allocate_blocking(100).has_value());
  closer.join();
}

TEST(SegmentDeathTest, DoubleFreeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Segment seg(256);
  auto a = seg.try_allocate(64);
  ASSERT_TRUE(a.has_value());
  seg.deallocate(*a);
  EXPECT_DEATH(seg.deallocate(*a), "double-freed");
}

/// Property test: random allocate/free sequences keep every invariant and
/// never corrupt accounting.  Parameterized over segment sizes.
class SegmentPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentPropertyTest, RandomWorkloadKeepsInvariants) {
  const std::uint64_t capacity = GetParam();
  Segment seg(capacity);
  Rng rng(capacity ^ 0xDEADBEEFull);
  std::vector<BlockRef> live;
  std::uint64_t live_bytes = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool allocate = live.empty() || rng.chance(0.55);
    if (allocate) {
      const std::uint64_t size = 1 + rng.next_below(capacity / 4);
      const std::uint64_t alignment = 1ull << rng.next_below(7);
      auto block = seg.try_allocate(size, alignment);
      if (block) {
        EXPECT_EQ(block->offset % alignment, 0u);
        live.push_back(*block);
        live_bytes += size;
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      live_bytes -= live[pick].size;
      seg.deallocate(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(seg.used(), live_bytes);
    if (step % 100 == 0) seg.check_invariants();
  }
  for (const auto& block : live) seg.deallocate(block);
  seg.check_invariants();
  EXPECT_EQ(seg.used(), 0u);
  // After everything is freed the full capacity must be allocatable again.
  EXPECT_TRUE(seg.try_allocate(capacity, 1).has_value());
}

INSTANTIATE_TEST_SUITE_P(Capacities, SegmentPropertyTest,
                         ::testing::Values(1 << 10, 1 << 14, 1 << 18, 123457));

TEST(SegmentTest, ConcurrentAllocFreeIsSafe) {
  Segment seg(1 << 20);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        auto block = seg.try_allocate(1 + rng.next_below(2048));
        if (!block) {
          ++failures;
          continue;
        }
        auto view = seg.view(*block);
        std::memset(view.data(), t, view.size());
        seg.deallocate(*block);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seg.used(), 0u);
  seg.check_invariants();
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_OK(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop().value(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, TryPushFullReturnsWouldBlock) {
  BoundedQueue<int> q(2);
  EXPECT_OK(q.try_push(1));
  EXPECT_OK(q.try_push(2));
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kWouldBlock);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kClosed);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, BlockingPushWaitsForConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop().value(), 1);
  });
  EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
  consumer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, BlockingPopWaitsForProducer) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
  producer.join();
}

TEST(BoundedQueueTest, CloseUnblocksPoppers) {
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_FALSE(q.pop().has_value());
  closer.join();
}

TEST(BoundedQueueTest, ManyProducersOneConsumer) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(3);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 20; ++round) {
    while (q.try_push(next_push).is_ok()) ++next_push;
    EXPECT_EQ(q.try_pop().value(), next_pop++);
    EXPECT_EQ(q.try_pop().value(), next_pop++);
  }
}

}  // namespace
}  // namespace dedicore::shm
