// Tests for the simulation proxies: physics sanity (smoothness, stability,
// energy decay), weak-scaling properties, and the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cm1_proxy.hpp"
#include "sim/nek_proxy.hpp"
#include "sim/workload.hpp"

namespace dedicore::sim {
namespace {

TEST(Cm1ProxyTest, InitialStateHasBubble) {
  Cm1Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  Cm1Proxy proxy(cfg);
  const auto theta = proxy.theta();
  double max_theta = 0, min_theta = 1e9;
  for (float v : theta) {
    max_theta = std::max<double>(max_theta, v);
    min_theta = std::min<double>(min_theta, v);
  }
  EXPECT_GT(max_theta, 301.0);  // warm bubble
  EXPECT_GT(min_theta, 295.0);  // near base state elsewhere
}

TEST(Cm1ProxyTest, StepAdvancesAndKeepsFieldsFinite) {
  Cm1Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 12;
  Cm1Proxy proxy(cfg);
  for (int i = 0; i < 10; ++i) proxy.step();
  EXPECT_EQ(proxy.current_step(), 10);
  for (const auto& [name, field] : proxy.fields()) {
    for (float v : field) ASSERT_TRUE(std::isfinite(v)) << name;
  }
}

TEST(Cm1ProxyTest, DiffusionSmoothsTheField) {
  Cm1Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.wind_u = cfg.wind_v = 0.0;  // pure diffusion
  Cm1Proxy proxy(cfg);
  auto variance = [&] {
    double mean = 0;
    const auto t = proxy.theta();
    for (float v : t) mean += v;
    mean /= static_cast<double>(t.size());
    double var = 0;
    for (float v : t) var += (v - mean) * (v - mean);
    return var / static_cast<double>(t.size());
  };
  const double before = variance();
  for (int i = 0; i < 20; ++i) proxy.step();
  EXPECT_LT(variance(), before);  // diffusion reduces variance
}

TEST(Cm1ProxyTest, ThetaMassApproximatelyConservedUnderPureDiffusion) {
  Cm1Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.wind_u = cfg.wind_v = 0.0;
  Cm1Proxy proxy(cfg);
  const double before = proxy.theta_total();
  for (int i = 0; i < 10; ++i) proxy.step();
  // Neumann boundaries keep the Laplacian conservative to first order.
  EXPECT_NEAR(proxy.theta_total() / before, 1.0, 1e-3);
}

TEST(Cm1ProxyTest, RanksGetDistinctDomains) {
  Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 12;
  Cm1Proxy a(make_cm1_proxy_config(options, 0, 4));
  Cm1Proxy b(make_cm1_proxy_config(options, 1, 4));
  EXPECT_NE(std::vector<float>(a.theta().begin(), a.theta().end()),
            std::vector<float>(b.theta().begin(), b.theta().end()));
  EXPECT_EQ(a.global_offset()[0], 0u);
  EXPECT_EQ(b.global_offset()[0], 12u);
}

TEST(Cm1ProxyTest, FieldsExposeExactlyTheCm1Set) {
  Cm1Config cfg;
  Cm1Proxy proxy(cfg);
  const auto fields = proxy.fields();
  EXPECT_EQ(fields.size(), 5u);
  for (const char* name : {"theta", "qv", "u", "v", "w"})
    EXPECT_TRUE(fields.contains(name)) << name;
  const auto bytes = proxy.field_bytes();
  EXPECT_EQ(bytes.at("theta").size(),
            cfg.nx * cfg.ny * cfg.nz * sizeof(float));
}

TEST(Cm1ProxyTest, CalibratedStepTakesRequestedTime) {
  const auto start = std::chrono::steady_clock::now();
  Cm1Proxy::step_calibrated(0.02);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.019);
  EXPECT_LT(elapsed, 0.2);  // generous upper bound for a loaded machine
}

TEST(NekProxyTest, SpectralEnergyDecaysMonotonically) {
  NekConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  NekProxy proxy(cfg);
  double prev = proxy.spectral_energy();
  EXPECT_GT(prev, 0.0);
  for (int i = 0; i < 8; ++i) {
    proxy.step();
    const double e = proxy.spectral_energy();
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(NekProxyTest, FieldEvolvesBetweenSteps) {
  NekConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  NekProxy proxy(cfg);
  const std::vector<double> before(proxy.velocity_magnitude().begin(),
                                   proxy.velocity_magnitude().end());
  proxy.step();
  const std::vector<double> after(proxy.velocity_magnitude().begin(),
                                  proxy.velocity_magnitude().end());
  EXPECT_NE(before, after);
  for (double v : after) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0);  // it is a magnitude
  }
}

TEST(NekProxyTest, RanksSampleDifferentWindows) {
  NekConfig a_cfg;
  a_cfg.rank = 0;
  a_cfg.world_size = 2;
  NekConfig b_cfg = a_cfg;
  b_cfg.rank = 1;
  NekProxy a(a_cfg), b(b_cfg);
  EXPECT_NE(std::vector<double>(a.velocity_magnitude().begin(),
                                a.velocity_magnitude().end()),
            std::vector<double>(b.velocity_magnitude().begin(),
                                b.velocity_magnitude().end()));
}

// ---------------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------------

TEST(WorkloadTest, Cm1ConfigurationMatchesProxy) {
  Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 16;
  const core::Configuration cfg = make_cm1_configuration(options);
  EXPECT_EQ(cfg.variables().size(), 5u);
  EXPECT_EQ(cfg.cores_per_node(), 12);
  EXPECT_EQ(cfg.clients_per_node(), 11);
  const auto& layout = cfg.layout("grid3d");
  EXPECT_EQ(layout.byte_size(), 16u * 16 * 16 * 4);
  // One iteration per core = 5 fields of the grid.
  EXPECT_EQ(cfg.bytes_per_core_per_iteration(), 5u * 16 * 16 * 16 * 4);
  // The proxy produces exactly the payload the configuration expects.
  Cm1Proxy proxy(make_cm1_proxy_config(options, 0, 1));
  for (const auto& [name, bytes] : proxy.field_bytes())
    EXPECT_EQ(bytes.size(), cfg.layout_of(cfg.variable(name)).byte_size());
}

TEST(WorkloadTest, Cm1ConfigurationAppliesOptions) {
  Cm1WorkloadOptions options;
  options.dedicated_cores = 2;
  options.policy = core::BackpressurePolicy::kSkipIteration;
  options.codec = "xor+lzs";
  options.scheduler = "throttled";
  options.max_concurrent_nodes = 3;
  const core::Configuration cfg = make_cm1_configuration(options);
  EXPECT_EQ(cfg.dedicated_cores(), 2);
  EXPECT_EQ(cfg.policy(), core::BackpressurePolicy::kSkipIteration);
  EXPECT_EQ(cfg.storage().codec, "xor+lzs");
  EXPECT_EQ(cfg.storage().scheduler, "throttled");
}

TEST(WorkloadTest, NekConfigurationBindsVislite) {
  NekWorkloadOptions options;
  const core::Configuration cfg = make_nek_configuration(options);
  ASSERT_EQ(cfg.actions().size(), 1u);
  EXPECT_EQ(cfg.actions()[0].plugin, "vislite");
  EXPECT_EQ(cfg.actions()[0].params.at("variable"), "vel_mag");
  EXPECT_EQ(cfg.layout("spectral3d").dtype, h5lite::DType::kFloat64);
}

TEST(WorkloadTest, PaperScaleBytesPerCore) {
  // Formula correctness.
  EXPECT_EQ(cm1_bytes_per_core(24, 24, 24),
            24ull * 24 * 24 * 37 * 4);
  EXPECT_EQ(cm1_bytes_per_core(10, 10, 10, 5, 8), 1000ull * 5 * 8);
  // The EXPERIMENTS.md calibration (43 MB/core) corresponds to CM1's
  // Kraken per-core grids: ~37 3-D float32 fields of roughly 66^3 points.
  const std::uint64_t kraken_like = cm1_bytes_per_core(66, 66, 66);
  EXPECT_GT(kraken_like, 35ull << 20);
  EXPECT_LT(kraken_like, 55ull << 20);
}

}  // namespace
}  // namespace dedicore::sim
