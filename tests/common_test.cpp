// Tests for src/common: status, rng/distributions, statistics, tables,
// byte parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "framework/test_infra.hpp"

namespace dedicore {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::out_of_memory("segment full");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "segment full");
  EXPECT_EQ(s.to_string(), "OUT_OF_MEMORY: segment full");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(123);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(5.0, 6.5);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 6.5);
  }
}

TEST(RngTest, NextBelowIsUnbiasedAcrossRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);  // every residue appears
  for (auto v : seen) EXPECT_LT(v, 10u);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalIsPositiveWithHeavyTail) {
  Rng rng(17);
  double max_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    EXPECT_GT(x, 0.0);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_GT(max_seen, 10.0);  // tail reaches well past the median of 1
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.0, 64.0, 1.1);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 64.0 + 1e-9);
  }
}

TEST(RngTest, ChanceFrequencyMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  // Child and parent should diverge immediately.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

// ---------------------------------------------------------------------------
// OnlineStats / SampleSet / Histogram
// ---------------------------------------------------------------------------

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  OnlineStats a, b, all;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  const Summary sum = s.summary();
  EXPECT_EQ(sum.count, 100u);
  EXPECT_NEAR(sum.median, 50.5, 1e-9);
  EXPECT_NEAR(sum.p99, 99.01, 0.1);
}

TEST(SampleSetTest, SpreadIsMaxOverMin) {
  SampleSet s;
  s.add(0.1);
  s.add(100.0);
  EXPECT_NEAR(s.summary().spread(), 1000.0, 1e-6);
}

TEST(SampleSetTest, SingleSampleSummary) {
  SampleSet s;
  s.add(42.0);
  const Summary sum = s.summary();
  EXPECT_EQ(sum.count, 1u);
  EXPECT_DOUBLE_EQ(sum.min, 42.0);
  EXPECT_DOUBLE_EQ(sum.max, 42.0);
  EXPECT_DOUBLE_EQ(sum.median, 42.0);
  EXPECT_DOUBLE_EQ(sum.stddev, 0.0);
}

TEST(SampleSetTest, MergeConcatenates) {
  SampleSet a, b;
  a.add(1.0);
  b.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow (half-open)
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_FALSE(h.to_string().empty());
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_TRUE(testing::table_rows_equal(t, {{"alpha", "1"}, {"b", "22"}}));
  EXPECT_TRUE(testing::table_matches_golden(t,
                                            "name   value\n"
                                            "------------\n"
                                            "alpha  1\n"
                                            "b      22\n"));
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(9216), "9,216");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_speedup(3.5), "3.50x");
  EXPECT_EQ(fmt_percent(0.923), "92.3%");
}

// ---------------------------------------------------------------------------
// bytes
// ---------------------------------------------------------------------------

TEST(BytesTest, ParseDecimalAndBinaryUnits) {
  EXPECT_EQ(parse_bytes("4096"), 4096u);
  EXPECT_EQ(parse_bytes("2k"), 2000u);
  EXPECT_EQ(parse_bytes("64MB"), 64000000u);
  EXPECT_EQ(parse_bytes("1GiB"), kGiB);
  EXPECT_EQ(parse_bytes("1.5 MiB"), kMiB + kMiB / 2);
  EXPECT_EQ(parse_bytes(" 10 gb "), 10000000000u);
}

TEST(BytesTest, ParseRejectsGarbage) {
  EXPECT_THROW(parse_bytes(""), ConfigError);
  EXPECT_THROW(parse_bytes("abc"), ConfigError);
  EXPECT_THROW(parse_bytes("12XB"), ConfigError);
  EXPECT_THROW(parse_bytes("12 MB extra"), ConfigError);
}

TEST(BytesTest, FormatRoundTripsMagnitude) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kMiB + kMiB / 2), "1.50 MiB");
  EXPECT_EQ(format_bytes(2 * kGiB), "2.00 GiB");
  EXPECT_EQ(format_throughput_gbps(10e9), "10.00 GB/s");
}

}  // namespace
}  // namespace dedicore
