// Tests for the middleware core: block index, schedulers, plugins, and
// full client/server runs over minimpi at small scale.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/clock.hpp"
#include "core/baseline_io.hpp"
#include "core/block_index.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "core/scheduler.hpp"
#include "framework/test_infra.hpp"
#include "sim/workload.hpp"

namespace dedicore::core {
namespace {

fsim::StorageConfig test_storage() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 200e6;
  cfg.mds_op_cost = 1e-3;
  cfg.jitter_sigma = 0.0;
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;
  return cfg;
}

fsim::TimeScale test_scale() {
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  ts.quantum_sim = 0.01;
  return ts;
}

/// Small-node configuration: 3 cores per node, 1 dedicated.
Configuration small_config(BackpressurePolicy policy = BackpressurePolicy::kBlock,
                           std::uint64_t buffer = 8ull << 20) {
  Configuration cfg;
  cfg.set_simulation_name("test");
  cfg.set_architecture(3, 1);
  cfg.set_buffer(buffer, 64, policy);
  LayoutSpec layout;
  layout.name = "grid";
  layout.dtype = h5lite::DType::kFloat64;
  layout.extents = {8, 8, 8};
  cfg.add_layout(layout);
  VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  StorageSpec storage;
  storage.basename = "out";
  cfg.set_storage(storage);
  ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  cfg.validate();
  return cfg;
}

std::vector<double> make_field(double seed_value) {
  // CM1-like: a mostly-constant background with an active region.  The
  // constant majority is what makes simulation output compressible.
  std::vector<double> values(8 * 8 * 8, seed_value);
  for (std::size_t i = 0; i < values.size() / 4; ++i)
    values[i] = seed_value + std::sin(0.1 * static_cast<double>(i));
  return values;
}

// ---------------------------------------------------------------------------
// BlockIndex
// ---------------------------------------------------------------------------

TEST(BlockIndexTest, InsertAndQueryByVariableIteration) {
  BlockIndex index;
  for (int src = 2; src >= 0; --src) {
    BlockInfo info;
    info.variable = 1;
    info.source = src;
    info.iteration = 5;
    info.block = {static_cast<std::uint64_t>(src) * 100, 100};
    index.insert(info);
  }
  const auto blocks = index.blocks_of(1, 5);
  ASSERT_EQ(blocks.size(), 3u);
  // Ordered by source despite reversed insertion.
  EXPECT_EQ(blocks[0].source, 0);
  EXPECT_EQ(blocks[2].source, 2);
  EXPECT_TRUE(index.blocks_of(2, 5).empty());
  EXPECT_TRUE(index.blocks_of(1, 6).empty());
  EXPECT_EQ(index.total_bytes(), 300u);
}

TEST(BlockIndexTest, FindSpecificBlock) {
  BlockIndex index;
  BlockInfo info;
  info.variable = 3;
  info.source = 1;
  info.iteration = 2;
  info.block_id = 7;
  index.insert(info);
  EXPECT_TRUE(index.find(3, 2, 1, 7).has_value());
  EXPECT_FALSE(index.find(3, 2, 1, 8).has_value());
}

TEST(BlockIndexTest, ExtractRemovesOnlyThatIteration) {
  BlockIndex index;
  for (Iteration it : {1, 1, 2, 3}) {
    BlockInfo info;
    info.iteration = it;
    index.insert(info);
  }
  const auto extracted = index.extract_iteration(1);
  EXPECT_EQ(extracted.size(), 2u);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.blocks_of_iteration(1).size(), 0u);
  EXPECT_EQ(index.blocks_of_iteration(2).size(), 1u);
}

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

TEST(SchedulerTest, GreedyNeverBlocks) {
  GreedyScheduler greedy;
  greedy.acquire(0);
  greedy.acquire(1);  // no release needed first
  greedy.release(0);
  greedy.release(1);
  EXPECT_DOUBLE_EQ(greedy.total_wait_seconds(), 0.0);
}

TEST(SchedulerTest, ThrottledLimitsConcurrency) {
  ThrottledScheduler sched(2);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      ScheduleGuard guard(sched, t);
      const int now = ++active;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --active;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GT(sched.total_wait_seconds(), 0.0);
}

TEST(SchedulerTest, FactoryDispatches) {
  EXPECT_EQ(make_scheduler("greedy", 0)->name(), "greedy");
  EXPECT_EQ(make_scheduler("throttled", 2)->name(), "throttled");
  EXPECT_THROW(make_scheduler("fifo", 1), ConfigError);
}

// ---------------------------------------------------------------------------
// Plugin registry
// ---------------------------------------------------------------------------

TEST(PluginRegistryTest, BuiltinsAreRegistered) {
  register_builtin_plugins();
  for (const char* name : {"store", "stats", "script", "vislite"})
    EXPECT_TRUE(plugin_registered(name)) << name;
  EXPECT_FALSE(plugin_registered("nope"));
  EXPECT_THROW(make_plugin("nope", {}), ConfigError);
}

TEST(PluginRegistryTest, CustomPluginsCanRegister) {
  struct Probe final : Plugin {
    [[nodiscard]] std::string_view name() const noexcept override { return "probe"; }
    void run(PluginContext&) override {}
  };
  static bool registered = false;
  if (!registered) {
    register_plugin("test-probe", [](const auto&) { return std::make_unique<Probe>(); });
    registered = true;
  }
  EXPECT_TRUE(plugin_registered("test-probe"));
  EXPECT_EQ(make_plugin("test-probe", {})->name(), "probe");
  EXPECT_THROW(
      register_plugin("test-probe", [](const auto&) { return nullptr; }),
      ConfigError);
}

TEST(PluginTest, ScriptPluginRequiresExpr) {
  EXPECT_THROW(make_plugin("script", {}), ConfigError);
  EXPECT_NO_THROW(make_plugin("script", {{"expr", "1+1"}}));
}

TEST(PluginTest, VislitePluginRequiresVariable) {
  EXPECT_THROW(make_plugin("vislite", {}), ConfigError);
}

// ---------------------------------------------------------------------------
// Full runtime: clients + dedicated-core server over minimpi
// ---------------------------------------------------------------------------

struct RunOutcome {
  std::uint64_t files = 0;
  std::uint64_t server_bytes_written = 0;
  std::uint64_t server_iterations = 0;
  std::uint64_t client_skips = 0;
  double idle_fraction = 0.0;
  Summary client_write_time;
  std::vector<std::string> file_list;
};

/// Runs `iterations` of a tiny simulation through the middleware and
/// returns the combined outcome.  `world` = nodes * cores_per_node ranks.
/// `lockstep` inserts a client-comm barrier per iteration, like a real
/// bulk-synchronous simulation; required when the buffer is sized below
/// two full iterations, otherwise a free-running client can fill the
/// segment with its own future iterations and starve its node peers.
RunOutcome run_middleware(const Configuration& cfg, int nodes, int iterations,
                          fsim::FileSystem& fs,
                          double post_compute_sleep = 0.0,
                          bool lockstep = false) {
  const int world = nodes * cfg.cores_per_node();
  std::mutex mutex;
  RunOutcome outcome;
  SampleSet client_writes;

  minimpi::run_world(world, [&](minimpi::Comm& comm) {
    Runtime rt = Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      std::lock_guard<std::mutex> lock(mutex);
      const ServerStats& stats = rt.server_stats();
      outcome.server_bytes_written += stats.bytes_written;
      outcome.server_iterations += stats.iterations_completed;
      outcome.client_skips += stats.client_skips;
      outcome.idle_fraction = stats.idle_fraction();
      return;
    }
    Client& client = rt.client();
    const auto field = make_field(static_cast<double>(comm.rank()));
    for (int it = 0; it < iterations; ++it) {
      if (post_compute_sleep > 0.0) sleep_seconds(post_compute_sleep);
      if (lockstep) rt.client_comm().barrier();
      (void)client.write("field", std::span<const double>(field));
      ASSERT_OK(client.end_iteration());
    }
    rt.finalize();
    std::lock_guard<std::mutex> lock(mutex);
    const ClientStats stats = client.stats();
    if (stats.write_time.count > 0) client_writes.add(stats.write_time.median);
  });

  outcome.files = fs.file_count();
  outcome.file_list = fs.list_files();
  outcome.client_write_time = client_writes.summary();
  return outcome;
}

TEST(RuntimeTest, SingleNodeEndToEnd) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  const RunOutcome outcome = run_middleware(cfg, /*nodes=*/1, /*iterations=*/3, fs);
  // One aggregated file per node per iteration.
  EXPECT_EQ(outcome.files, 3u);
  EXPECT_EQ(outcome.server_iterations, 3u);
  EXPECT_GT(outcome.server_bytes_written, 0u);
  EXPECT_EQ(outcome.client_skips, 0u);
}

TEST(RuntimeTest, MultiNodeProducesPerNodeFiles) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  const RunOutcome outcome = run_middleware(cfg, /*nodes=*/2, /*iterations=*/2, fs);
  EXPECT_EQ(outcome.files, 4u);  // 2 nodes x 2 iterations
  for (const auto& path : outcome.file_list)
    EXPECT_EQ(path.find("out/node"), 0u) << path;
}

TEST(RuntimeTest, StoredFilesParseAndContainAllClients) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  run_middleware(cfg, /*nodes=*/1, /*iterations=*/1, fs);
  const auto content = fs.read_file("out/node0_s0_it0.h5l");
  ASSERT_TRUE(content.has_value());
  const h5lite::File file = h5lite::File::parse(*content);
  const h5lite::Group* group = file.find_group("field");
  ASSERT_NE(group, nullptr);
  // 2 clients on the node -> 2 blocks.
  EXPECT_EQ(group->datasets.size(), 2u);
  // Data round-trips: client rank 0's field has seed value 0 at element 0.
  const h5lite::Dataset* r0 = group->find_dataset("r0_b0");
  ASSERT_NE(r0, nullptr);
  const auto values = r0->read_as<double>();
  EXPECT_NEAR(values[0], make_field(0.0)[0], 1e-12);
}

TEST(RuntimeTest, WritesAreFastComparedToStorage) {
  // The client-visible write cost is a memcpy into shared memory; it must
  // be far below the modelled storage write time of the same data.
  fsim::StorageConfig storage = test_storage();
  storage.ost_bandwidth = 20e6;  // slow storage: 4KB/20MBps... per block
  fsim::FileSystem fs(storage, test_scale());
  const Configuration cfg = small_config();
  const RunOutcome outcome = run_middleware(cfg, 1, 3, fs, /*sleep=*/0.02);
  // Block writes (shm copies of 4 KiB) take microseconds.
  EXPECT_LT(outcome.client_write_time.max, 0.01);
}

TEST(RuntimeTest, DedicatedCoreIsMostlyIdleWhenComputeDominates) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  // 50 ms compute per iteration dwarfs the ~1 ms of I/O handling.
  const RunOutcome outcome = run_middleware(cfg, 1, 3, fs, /*sleep=*/0.05);
  EXPECT_GT(outcome.idle_fraction, 0.5);
}

TEST(RuntimeTest, TwoDedicatedCoresPartitionClients) {
  fsim::FileSystem fs(test_storage(), test_scale());
  Configuration cfg = small_config();
  cfg.set_architecture(4, 2);  // 2 clients, 2 servers
  cfg.validate();
  const RunOutcome outcome = run_middleware(cfg, 1, 2, fs);
  // Each server aggregates its own client's blocks into its own file.
  EXPECT_EQ(outcome.files, 4u);  // 2 servers x 2 iterations
  EXPECT_EQ(outcome.server_iterations, 4u);  // summed across both servers
}

TEST(RuntimeTest, SkipPolicyDropsIterationsUnderPressure) {
  fsim::StorageConfig storage = test_storage();
  storage.ost_bandwidth = 1e6;  // glacial storage
  storage.mds_op_cost = 50e-3;
  fsim::FileSystem fs(storage, test_scale());
  // Buffer fits ~2 blocks only: clients outrun the server immediately.
  Configuration cfg = small_config(BackpressurePolicy::kSkipIteration,
                                   2 * 8 * 8 * 8 * sizeof(double) + 1024);
  const RunOutcome outcome = run_middleware(cfg, 1, 8, fs);
  EXPECT_GT(outcome.client_skips, 0u);
  // Skipped iterations produce no files, so fewer than 8 appear.
  EXPECT_LT(outcome.files, 8u);
  EXPECT_GE(outcome.files, 1u);
}

TEST(RuntimeTest, AdaptivePolicyShedsOnlyLowPriorityBlocks) {
  // Two variables: "precious" (priority 1) and "bulk" (priority 0).  The
  // adaptive policy (the paper's future-work data selection) must deliver
  // every precious block and shed only bulk ones.  A SegmentPressure
  // fixture pins 1.5 blocks of the 3-block buffer, so every iteration has
  // room for exactly the precious block: bulk is shed deterministically
  // on every run — no reliance on racing a slow server.
  Configuration cfg;
  cfg.set_simulation_name("adaptive");
  cfg.set_architecture(2, 1);
  const std::uint64_t block_bytes = 8 * 8 * 8 * sizeof(double);
  cfg.set_buffer(3 * block_bytes, 64, BackpressurePolicy::kAdaptive);
  LayoutSpec layout;
  layout.name = "grid";
  layout.extents = {8, 8, 8};
  cfg.add_layout(layout);
  VariableSpec precious;
  precious.name = "precious";
  precious.layout = "grid";
  precious.priority = 1;
  cfg.add_variable(precious);
  VariableSpec bulk;
  bulk.name = "bulk";
  bulk.layout = "grid";
  cfg.add_variable(bulk);
  ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  StorageSpec sspec;
  sspec.basename = "adaptive";
  cfg.set_storage(sspec);
  cfg.validate();

  constexpr int kIterations = 10;
  fsim::FileSystem fs(test_storage(), test_scale());
  std::uint64_t precious_failures = 0;
  std::uint64_t dropped = 0;
  minimpi::run_world(2, [&](minimpi::Comm& comm) {
    Runtime rt = Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    // Pin 1.5 blocks: free space admits one precious block per iteration
    // (it is only released after the iteration completes server-side) and
    // never the bulk block on top of it.
    testing::SegmentPressure pressure(rt.node().segment(),
                                      block_bytes + block_bytes / 2);
    Client& client = rt.client();
    const auto field = make_field(1.0);
    for (int it = 0; it < kIterations; ++it) {
      if (!client.write("precious", std::span<const double>(field)).is_ok())
        ++precious_failures;
      (void)client.write("bulk", std::span<const double>(field));
      ASSERT_OK(client.end_iteration());
    }
    rt.finalize();
    dropped = client.stats().dropped_blocks;
  });

  EXPECT_EQ(precious_failures, 0u);           // priority > 0 never dropped
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(kIterations));  // every bulk shed

  // Every stored file contains exactly the precious variable.
  std::uint64_t precious_blocks = 0, bulk_blocks = 0;
  for (const auto& path : fs.list_files()) {
    const h5lite::File file = h5lite::File::parse(*fs.read_file(path));
    if (const auto* g = file.find_group("precious"))
      precious_blocks += g->datasets.size();
    if (const auto* g = file.find_group("bulk")) bulk_blocks += g->datasets.size();
  }
  EXPECT_EQ(precious_blocks, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(bulk_blocks, 0u);
}

TEST(ConfigTest, AdaptivePolicyParsesFromXml) {
  const Configuration cfg = Configuration::from_string(R"(
    <simulation cores_per_node="2" dedicated_cores="1">
      <buffer size="1MiB" policy="adaptive"/>
      <data>
        <layout name="l" dimensions="8"/>
        <variable name="hot" layout="l" priority="2"/>
        <variable name="cold" layout="l"/>
      </data>
    </simulation>)");
  EXPECT_EQ(cfg.policy(), BackpressurePolicy::kAdaptive);
  EXPECT_EQ(cfg.variable("hot").priority, 2);
  EXPECT_EQ(cfg.variable("cold").priority, 0);
  EXPECT_EQ(to_string(BackpressurePolicy::kAdaptive), "adaptive");
}

TEST(RuntimeTest, BlockPolicyNeverDropsData) {
  fsim::StorageConfig storage = test_storage();
  storage.ost_bandwidth = 5e6;
  fsim::FileSystem fs(storage, test_scale());
  Configuration cfg = small_config(BackpressurePolicy::kBlock,
                                   2 * 8 * 8 * 8 * sizeof(double) + 1024);
  const RunOutcome outcome =
      run_middleware(cfg, 1, 5, fs, /*post_compute_sleep=*/0.0,
                     /*lockstep=*/true);
  EXPECT_EQ(outcome.client_skips, 0u);
  EXPECT_EQ(outcome.files, 5u);  // everything eventually written
}

TEST(RuntimeTest, InvalidWorldSizeRejected) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();  // 3 cores per node
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    EXPECT_THROW(Runtime::initialize(cfg, comm, fs), ConfigError);
  });
}

TEST(RuntimeTest, WriteValidatesSizeAndName) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  minimpi::run_world(3, [&](minimpi::Comm& comm) {
    Runtime rt = Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    Client& client = rt.client();
    const std::vector<double> wrong_size(10, 1.0);
    EXPECT_EQ(client.write("field", std::span<const double>(wrong_size)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_THROW(
        (void)client.write("ghost", std::span<const double>(wrong_size)),
        ConfigError);
    rt.finalize();
  });
}

TEST(RuntimeTest, ZeroCopyAllocCommitRoundTrips) {
  fsim::FileSystem fs(test_storage(), test_scale());
  const Configuration cfg = small_config();
  minimpi::run_world(3, [&](minimpi::Comm& comm) {
    Runtime rt = Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    Client& client = rt.client();
    AllocatedBlock block = client.alloc("field");
    ASSERT_TRUE(block.valid());
    // Compute directly into the shared segment.
    auto* out = reinterpret_cast<double*>(block.view.data());
    for (std::size_t i = 0; i < 8 * 8 * 8; ++i)
      out[i] = static_cast<double>(i);
    EXPECT_OK(client.commit(block));
    EXPECT_OK(client.end_iteration());
    rt.finalize();
  });
  const auto content = fs.read_file("out/node0_s0_it0.h5l");
  ASSERT_TRUE(content.has_value());
  const h5lite::File file = h5lite::File::parse(*content);
  bool found = false;
  for (const auto& path : file.dataset_paths()) {
    const auto values = file.find_dataset(path)->read_as<double>();
    if (values[5] == 5.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RuntimeTest, SignalFiresBoundPlugin) {
  fsim::FileSystem fs(test_storage(), test_scale());
  Configuration cfg = small_config();
  ActionSpec script;
  script.event = "checkpoint";
  script.plugin = "script";
  script.params["expr"] = "mean(field)";
  cfg.add_action(script);
  cfg.validate();

  std::atomic<double> script_value{-1.0};
  minimpi::run_world(3, [&](minimpi::Comm& comm) {
    Runtime rt = Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      auto* plugin = dynamic_cast<ScriptPlugin*>(
          rt.server().find_plugin("checkpoint", "script"));
      ASSERT_NE(plugin, nullptr);
      script_value = plugin->last_value();
      return;
    }
    Client& client = rt.client();
    const auto field = make_field(1.0);
    (void)client.write("field", std::span<const double>(field));
    // Fire the user event; the blocks of the current iteration are live.
    EXPECT_OK(client.signal("checkpoint"));
    EXPECT_EQ(client.signal("unbound").code(), StatusCode::kNotFound);
    EXPECT_OK(client.end_iteration());
    rt.finalize();
  });
  // mean of make_field(1.0) over both clients' blocks: sin-mean ~ 1.0x.
  EXPECT_GT(script_value.load(), 0.5);
  EXPECT_LT(script_value.load(), 1.5);
}

TEST(RuntimeTest, CompressionPluginShrinksFiles) {
  fsim::FileSystem plain_fs(test_storage(), test_scale());
  fsim::FileSystem packed_fs(test_storage(), test_scale());
  const Configuration plain = small_config();
  Configuration packed = small_config();
  StorageSpec storage = packed.storage();
  storage.codec = "xor+lzs";
  packed.set_storage(storage);
  packed.validate();

  run_middleware(plain, 1, 1, plain_fs);
  run_middleware(packed, 1, 1, packed_fs);
  const auto plain_size = plain_fs.file_size("out/node0_s0_it0.h5l");
  const auto packed_size = packed_fs.file_size("out/node0_s0_it0.h5l");
  ASSERT_GT(plain_size, 0u);
  ASSERT_GT(packed_size, 0u);
  EXPECT_LT(packed_size, plain_size / 2);  // smooth data compresses well

  // And the compressed file still parses and round-trips.
  const h5lite::File file = h5lite::File::parse(*packed_fs.read_file("out/node0_s0_it0.h5l"));
  const h5lite::Group* group = file.find_group("field");
  ASSERT_NE(group, nullptr);
  const auto values = group->find_dataset("r0_b0")->read_as<double>();
  EXPECT_NEAR(values[3], make_field(0.0)[3], 1e-12);
}

}  // namespace
}  // namespace dedicore::core
