// Tests for the baseline I/O strategies: file-per-process and collective
// two-phase shared-file writes, including content round-trips and the
// metadata/contention behaviours the paper attributes to each.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline_io.hpp"
#include "framework/test_infra.hpp"
#include "h5lite/h5lite.hpp"
#include "minimpi/minimpi.hpp"
#include "storage/posix_backend.hpp"

namespace dedicore::core {
namespace {

fsim::StorageConfig quiet_storage() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 400e6;
  cfg.mds_op_cost = 1e-3;
  cfg.jitter_sigma = 0.0;
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;
  return cfg;
}

fsim::TimeScale fast_scale() {
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  ts.quantum_sim = 0.01;
  return ts;
}

Configuration two_var_config() {
  Configuration cfg;
  cfg.set_architecture(4, 0);  // baselines use every core for computation
  cfg.set_buffer(1 << 20, 64, BackpressurePolicy::kBlock);
  LayoutSpec grid;
  grid.name = "grid";
  grid.dtype = h5lite::DType::kFloat32;
  grid.extents = {16, 16};
  cfg.add_layout(grid);
  for (const char* name : {"alpha", "beta"}) {
    VariableSpec v;
    v.name = name;
    v.layout = "grid";
    cfg.add_variable(v);
  }
  cfg.validate();
  return cfg;
}

std::vector<float> rank_field(int rank, int salt) {
  std::vector<float> values(16 * 16);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(rank * 1000 + salt * 100) +
                std::sin(0.1f * static_cast<float>(i));
  return values;
}

IterationData data_of(const std::vector<float>& alpha,
                      const std::vector<float>& beta) {
  IterationData data;
  data.emplace("alpha", std::as_bytes(std::span<const float>(alpha)));
  data.emplace("beta", std::as_bytes(std::span<const float>(beta)));
  return data;
}

TEST(IterationDataTest, ValidationCatchesMistakes) {
  const Configuration cfg = two_var_config();
  const auto alpha = rank_field(0, 0);
  const auto beta = rank_field(0, 1);
  EXPECT_NO_THROW(validate_iteration_data(cfg, data_of(alpha, beta)));

  IterationData missing;
  missing.emplace("alpha", std::as_bytes(std::span<const float>(alpha)));
  EXPECT_THROW(validate_iteration_data(cfg, missing), ConfigError);

  IterationData wrong_name = data_of(alpha, beta);
  wrong_name.erase("beta");
  wrong_name.emplace("gamma", std::as_bytes(std::span<const float>(beta)));
  EXPECT_THROW(validate_iteration_data(cfg, wrong_name), ConfigError);

  const std::vector<float> short_field(10);
  IterationData wrong_size;
  wrong_size.emplace("alpha", std::as_bytes(std::span<const float>(alpha)));
  wrong_size.emplace("beta", std::as_bytes(std::span<const float>(short_field)));
  EXPECT_THROW(validate_iteration_data(cfg, wrong_size), ConfigError);
}

// ---------------------------------------------------------------------------
// File-per-process
// ---------------------------------------------------------------------------

TEST(FilePerProcessTest, OneFilePerRankPerIteration) {
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const Configuration cfg = two_var_config();
  FilePerProcessWriter writer(fs, cfg);

  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    const auto alpha = rank_field(comm.rank(), 0);
    const auto beta = rank_field(comm.rank(), 1);
    for (Iteration it = 0; it < 2; ++it) {
      const double stall =
          writer.write_iteration(comm.rank(), it, data_of(alpha, beta));
      EXPECT_GT(stall, 0.0);
    }
  });
  // The paper's complaint: files multiply with ranks x iterations.
  EXPECT_EQ(fs.file_count(), 8u);
  EXPECT_EQ(fs.stats().mds_operations, 8u);
}

TEST(FilePerProcessTest, FilesRoundTripPerRank) {
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const Configuration cfg = two_var_config();
  FilePerProcessWriter writer(fs, cfg, "myrun");
  const auto alpha = rank_field(3, 0);
  const auto beta = rank_field(3, 1);
  writer.write_iteration(3, 7, data_of(alpha, beta));

  const auto content = fs.read_file("myrun/rank3_it7.h5l");
  ASSERT_TRUE(content.has_value());
  const h5lite::File file = h5lite::File::parse(*content);
  EXPECT_EQ(std::get<std::int64_t>(file.root().attributes.at("rank")), 3);
  EXPECT_EQ(std::get<std::int64_t>(file.root().attributes.at("iteration")), 7);
  EXPECT_EQ(file.find_dataset("alpha")->read_as<float>(), alpha);
  EXPECT_EQ(file.find_dataset("beta")->read_as<float>(), beta);
}

// ---------------------------------------------------------------------------
// Collective two-phase
// ---------------------------------------------------------------------------

class CollectiveWriterTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWriterTest, SharedFileContainsEveryRanksData) {
  const int aggregator_group = GetParam();
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const Configuration cfg = two_var_config();
  CollectiveWriter writer(fs, cfg, aggregator_group);

  constexpr int kRanks = 6;
  minimpi::run_world(kRanks, [&](minimpi::Comm& comm) {
    const auto alpha = rank_field(comm.rank(), 0);
    const auto beta = rank_field(comm.rank(), 1);
    const double stall = writer.write_iteration(comm, 0, data_of(alpha, beta));
    EXPECT_GT(stall, 0.0);
  });

  // Exactly one shared file.
  EXPECT_EQ(fs.file_count(), 1u);
  const auto content = fs.read_file("collective/shared_it0.h5l");
  ASSERT_TRUE(content.has_value());
  const h5lite::File file = h5lite::File::parse(*content);
  for (int r = 0; r < kRanks; ++r) {
    const auto* alpha_ds = file.find_dataset("alpha/r" + std::to_string(r));
    ASSERT_NE(alpha_ds, nullptr) << "rank " << r;
    EXPECT_EQ(alpha_ds->read_as<float>(), rank_field(r, 0));
    const auto* beta_ds = file.find_dataset("beta/r" + std::to_string(r));
    ASSERT_NE(beta_ds, nullptr);
    EXPECT_EQ(beta_ds->read_as<float>(), rank_field(r, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AggregatorGroups, CollectiveWriterTest,
                         ::testing::Values(1, 2, 3, 6, 8));

TEST(CollectiveWriterTest, FewMdsOpsComparedToFilePerProcess) {
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const Configuration cfg = two_var_config();
  CollectiveWriter writer(fs, cfg, /*aggregator_group=*/4);
  minimpi::run_world(8, [&](minimpi::Comm& comm) {
    const auto alpha = rank_field(comm.rank(), 0);
    const auto beta = rank_field(comm.rank(), 1);
    writer.write_iteration(comm, 0, data_of(alpha, beta));
  });
  // 1 create + 2 aggregator opens + 1 header open = far fewer than the 8
  // creates file-per-process would need.
  EXPECT_LE(fs.stats().mds_operations, 5u);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(CollectiveWriterTest, MultipleIterationsMakeSeparateSharedFiles) {
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const Configuration cfg = two_var_config();
  CollectiveWriter writer(fs, cfg, 2);
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    const auto alpha = rank_field(comm.rank(), 0);
    const auto beta = rank_field(comm.rank(), 1);
    for (Iteration it = 0; it < 3; ++it)
      writer.write_iteration(comm, it, data_of(alpha, beta));
  });
  EXPECT_EQ(fs.file_count(), 3u);
  for (int it = 0; it < 3; ++it)
    EXPECT_TRUE(fs.exists("collective/shared_it" + std::to_string(it) + ".h5l"));
}

TEST(CollectiveWriterTest, RejectsBadAggregatorGroup) {
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  EXPECT_THROW(CollectiveWriter(fs, two_var_config(), 0), ConfigError);
}

// ---------------------------------------------------------------------------
// Real-disk persistence: the same writers through storage::PosixBackend
// (TempDir is load-bearing here — the files genuinely hit the filesystem)
// ---------------------------------------------------------------------------

class BaselinePosixTest : public dedicore::testing::TempDirTest {};

TEST_F(BaselinePosixTest, FilePerProcessWritesRealFilesThatRoundTrip) {
  storage::PosixBackend backend(temp_path());
  const Configuration cfg = two_var_config();
  FilePerProcessWriter writer(backend, cfg, "myrun");
  const auto alpha = rank_field(3, 0);
  const auto beta = rank_field(3, 1);
  writer.write_iteration(3, 7, data_of(alpha, beta));

  // The file exists on the actual filesystem under the scratch root...
  ASSERT_TRUE(std::filesystem::is_regular_file(
      temp_path() / "myrun/rank3_it7.h5l"));
  // ...and its on-disk bytes parse back to the same data.
  const auto content = backend.read_file("myrun/rank3_it7.h5l");
  ASSERT_TRUE(content.has_value());
  const h5lite::File file = h5lite::File::parse(*content);
  EXPECT_EQ(std::get<std::int64_t>(file.root().attributes.at("rank")), 3);
  EXPECT_EQ(file.find_dataset("alpha")->read_as<float>(), alpha);
  EXPECT_EQ(file.find_dataset("beta")->read_as<float>(), beta);
}

TEST_F(BaselinePosixTest, CollectiveSharedFileOnDiskMatchesSimImage) {
  const Configuration cfg = two_var_config();
  storage::PosixBackend posix(temp_path());
  fsim::FileSystem fs(quiet_storage(), fast_scale());

  for (int pass = 0; pass < 2; ++pass) {
    CollectiveWriter writer = pass == 0 ? CollectiveWriter(posix, cfg, 2)
                                        : CollectiveWriter(fs, cfg, 2);
    minimpi::run_world(4, [&](minimpi::Comm& comm) {
      const auto alpha = rank_field(comm.rank(), 0);
      const auto beta = rank_field(comm.rank(), 1);
      writer.write_iteration(comm, 0, data_of(alpha, beta));
    });
  }

  const auto disk = posix.read_file("collective/shared_it0.h5l");
  const auto sim = fs.read_file("collective/shared_it0.h5l");
  ASSERT_TRUE(disk.has_value());
  ASSERT_TRUE(sim.has_value());
  EXPECT_EQ(*disk, *sim);  // byte-identical across persistence layers

  const h5lite::File file = h5lite::File::parse(*disk);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(file.find_dataset("alpha/r" + std::to_string(r))->read_as<float>(),
              rank_field(r, 0));
}

TEST(BaselineComparisonTest, CollectiveStallsEveryRankTogether) {
  // With a barrier-terminated collective, per-rank stall times within one
  // iteration are nearly identical; with file-per-process they differ.
  fsim::StorageConfig storage = quiet_storage();
  storage.mds_op_cost = 5e-3;
  fsim::FileSystem fs(storage, fast_scale());
  const Configuration cfg = two_var_config();
  CollectiveWriter collective(fs, cfg, 2);

  std::mutex mutex;
  std::vector<double> stalls;
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    const auto alpha = rank_field(comm.rank(), 0);
    const auto beta = rank_field(comm.rank(), 1);
    const double stall = collective.write_iteration(comm, 0, data_of(alpha, beta));
    std::lock_guard<std::mutex> lock(mutex);
    stalls.push_back(stall);
  });
  ASSERT_EQ(stalls.size(), 4u);
  const auto [lo, hi] = std::minmax_element(stalls.begin(), stalls.end());
  // All ranks leave the barrier together: spread within scheduling noise.
  EXPECT_LT(*hi - *lo, 0.8 * *hi);
}

}  // namespace
}  // namespace dedicore::core
