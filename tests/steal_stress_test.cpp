// Stress for the work-stealing demux: concurrent client-ownership steals
// vs. leader handoff vs. end_of_stream shutdown, designed to run (and be
// run in CI) under ThreadSanitizer.
//
// The scenarios hammer the transitions the conformance suite only crosses
// once per run: a worker stealing a client at the same instant the leader
// routes a fresh batch to it, leadership bouncing between workers while
// ownership tokens migrate, shutdown racing a steal of the client whose
// stop is in flight, and the idle hook running while all of the above
// happens.  Assertions are the invariants that must hold under ANY
// interleaving: exactly-once delivery, per-(worker, client) order, and
// clean termination (every worker reaches nullopt — a hang here times the
// suite out, which is the failure signal for a lost wakeup).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "framework/test_infra.hpp"
#include "transport/shm_transport.hpp"

namespace dedicore {
namespace {

using transport::Event;
using transport::EventType;

Event block_event(int source, std::uint32_t block_id) {
  Event event;
  event.type = EventType::kBlockWritten;
  event.source = source;
  event.block_id = block_id;
  return event;
}

Event stop_event(int source) {
  Event event;
  event.type = EventType::kClientStop;
  event.source = source;
  return event;
}

struct RoundResult {
  std::size_t delivered = 0;
  std::uint64_t steals = 0;
  std::uint64_t idle_drains = 0;
  bool order_ok = true;
};

/// One full producer/pool/shutdown cycle: `clients` skewed producers
/// (client 0 sends `hot_blocks`, the rest `cold_blocks`), `workers`
/// consumers with stealing at threshold 1 (maximum migration churn), an
/// optional idle hook backed by a fake job pool.  Returns what the pool
/// observed; gtest assertions fire inside for per-event violations.
RoundResult run_round(int clients, int workers, std::uint32_t hot_blocks,
                      std::uint32_t cold_blocks, int idle_jobs) {
  auto fabric = std::make_shared<transport::ShmFabric>(
      /*segment_capacity=*/1 << 20, /*queue_count=*/1, /*queue_capacity=*/64);
  transport::ShmServerTransport server(fabric, 0);
  transport::WorkerPoolOptions options;
  options.steal = true;
  options.steal_threshold = 1;
  server.set_worker_count(workers, options);

  std::atomic<int> fake_jobs{idle_jobs};
  if (idle_jobs > 0) {
    // Stands in for WriteBehind::try_drain_one: claims one unit of idle
    // work until the pool of fake jobs is dry.
    server.set_idle_hook([&fake_jobs] {
      return fake_jobs.fetch_sub(1, std::memory_order_relaxed) > 0;
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    producers.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0);
      const std::uint32_t blocks = c == 0 ? hot_blocks : cold_blocks;
      for (std::uint32_t b = 0; b < blocks; ++b)
        ASSERT_TRUE(client.post(block_event(c, b)));
      ASSERT_TRUE(client.post(stop_event(c)));
    });
  }

  std::vector<std::vector<Event>> per_worker(
      static_cast<std::size_t>(workers));
  std::atomic<int> stops{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        per_worker[static_cast<std::size_t>(w)].push_back(*event);
        if (event->type == EventType::kClientStop &&
            stops.fetch_add(1) + 1 == clients) {
          server.end_of_stream();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : pool) t.join();

  RoundResult result;
  std::map<std::pair<int, std::uint32_t>, int> deliveries;
  for (int w = 0; w < workers; ++w) {
    std::map<int, std::uint32_t> last_id;
    for (const Event& event : per_worker[static_cast<std::size_t>(w)]) {
      ++result.delivered;
      if (event.type != EventType::kBlockWritten) continue;
      ++deliveries[{event.source, event.block_id}];
      auto [it, first] = last_id.try_emplace(event.source, event.block_id);
      if (!first) {
        result.order_ok &= event.block_id > it->second;
        it->second = event.block_id;
      }
    }
  }
  for (const auto& [key, count] : deliveries) result.order_ok &= count == 1;
  std::size_t expected_blocks =
      hot_blocks + static_cast<std::size_t>(clients - 1) * cold_blocks;
  EXPECT_EQ(deliveries.size(), expected_blocks);
  EXPECT_EQ(result.delivered,
            expected_blocks + static_cast<std::size_t>(clients));
  const auto stats = server.stats();
  result.steals = stats.steals;
  result.idle_drains = stats.idle_drains;
  return result;
}

// Many short rounds: each one is a complete lifecycle, so the steal /
// leader-handoff / end_of_stream windows are crossed hundreds of times per
// test under fresh state, which is where TSan finds ordering bugs.
TEST(StealStressTest, StealsVsLeaderHandoffVsShutdown) {
  std::uint64_t total_steals = 0;
  for (int round = 0; round < 40; ++round) {
    const RoundResult result = run_round(/*clients=*/6, /*workers=*/4,
                                         /*hot_blocks=*/96, /*cold_blocks=*/3,
                                         /*idle_jobs=*/0);
    EXPECT_TRUE(result.order_ok) << "round " << round;
    total_steals += result.steals;
  }
  // Any individual round may finish steal-free under an unlucky schedule;
  // across 40 skewed rounds at threshold 1 that is not plausible.
  EXPECT_GT(total_steals, 0u);
}

// The idle hook runs with the pool lock dropped while steals and shutdown
// proceed; the fake job pool must drain without deadlock or double-claim.
TEST(StealStressTest, IdleHookRacesStealsAndShutdown) {
  std::uint64_t total_idle = 0;
  for (int round = 0; round < 20; ++round) {
    const RoundResult result = run_round(/*clients=*/5, /*workers=*/4,
                                         /*hot_blocks=*/64, /*cold_blocks=*/2,
                                         /*idle_jobs=*/32);
    EXPECT_TRUE(result.order_ok) << "round " << round;
    total_idle += result.idle_drains;
  }
  // Parked workers must have picked up at least some of the fake jobs.
  EXPECT_GT(total_idle, 0u);
}

// Shutdown through close_intake (the shm-only hard close) instead of the
// stop protocol: producers race the closing queue, workers drain whatever
// was accepted.  The invariant is weaker — a prefix per client — but the
// teardown interleavings (close vs. steal vs. parked worker) are ones the
// stop protocol never produces.
TEST(StealStressTest, CloseIntakeRacesStealingPool) {
  for (int round = 0; round < 40; ++round) {
    auto fabric = std::make_shared<transport::ShmFabric>(
        1 << 20, /*queue_count=*/1, /*queue_capacity=*/32);
    transport::ShmServerTransport server(fabric, 0);
    transport::WorkerPoolOptions options;
    options.steal = true;
    options.steal_threshold = 1;
    constexpr int kWorkers = 3;
    constexpr int kClients = 4;
    server.set_worker_count(kWorkers, options);

    std::vector<std::thread> producers;
    std::array<std::atomic<std::uint32_t>, kClients> accepted{};
    for (int c = 0; c < kClients; ++c) {
      producers.emplace_back([&, c] {
        transport::ShmClientTransport client(fabric, 0);
        for (std::uint32_t b = 0; b < 64; ++b) {
          if (!client.post(block_event(c, b))) break;  // intake closed
          accepted[static_cast<std::size_t>(c)].store(b + 1);
        }
      });
    }
    std::vector<std::vector<Event>> per_worker(kWorkers);
    std::vector<std::thread> pool;
    for (int w = 0; w < kWorkers; ++w) {
      pool.emplace_back([&, w] {
        while (auto event = server.next_event(w))
          per_worker[static_cast<std::size_t>(w)].push_back(*event);
      });
    }
    std::this_thread::yield();
    server.close_intake();
    for (auto& t : producers) t.join();
    for (auto& t : pool) t.join();

    // Everything accepted by the queue was delivered exactly once, and
    // per client the delivered ids are exactly a prefix of what was sent.
    std::map<int, std::uint32_t> max_seen;
    std::map<std::pair<int, std::uint32_t>, int> deliveries;
    std::size_t delivered = 0;
    for (int w = 0; w < kWorkers; ++w) {
      for (const Event& event : per_worker[static_cast<std::size_t>(w)]) {
        ++delivered;
        ++deliveries[{event.source, event.block_id}];
        auto& top = max_seen[event.source];
        top = std::max(top, event.block_id + 1);
      }
    }
    for (const auto& [key, count] : deliveries)
      EXPECT_EQ(count, 1) << "round " << round;
    std::size_t accepted_total = 0;
    for (int c = 0; c < kClients; ++c) {
      const std::uint32_t sent = accepted[static_cast<std::size_t>(c)].load();
      accepted_total += sent;
      // Delivered ids form a contiguous prefix: count == max id + 1.
      const auto it = max_seen.find(c);
      const std::uint32_t seen = it == max_seen.end() ? 0 : it->second;
      EXPECT_LE(seen, sent) << "round " << round;
      std::uint32_t count_for_client = 0;
      for (const auto& [key, count] : deliveries)
        if (key.first == c) ++count_for_client;
      EXPECT_EQ(count_for_client, seen)
          << "client " << c << " has gaps, round " << round;
    }
    EXPECT_EQ(delivered, accepted_total) << "round " << round;
  }
}

}  // namespace
}  // namespace dedicore
