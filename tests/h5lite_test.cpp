// Tests for the h5lite container format: build/parse round trips,
// attributes, chunked + compressed layouts, shared-layout collective
// files, and corruption rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "framework/test_infra.hpp"
#include "h5lite/h5lite.hpp"

namespace dedicore::h5lite {
namespace {

std::vector<double> iota_doubles(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(H5LiteTest, DtypeSizes) {
  EXPECT_EQ(dtype_size(DType::kInt8), 1u);
  EXPECT_EQ(dtype_size(DType::kUInt16), 2u);
  EXPECT_EQ(dtype_size(DType::kFloat32), 4u);
  EXPECT_EQ(dtype_size(DType::kFloat64), 8u);
  EXPECT_EQ(dtype_name(DType::kFloat32), "float32");
}

TEST(H5LiteTest, EmptyFileRoundTrips) {
  FileBuilder builder;
  const auto image = std::move(builder).finalize();
  const File file = File::parse(image);
  EXPECT_TRUE(file.root().datasets.empty());
  EXPECT_TRUE(file.root().groups.empty());
}

TEST(H5LiteTest, SingleDatasetRoundTrip) {
  FileBuilder builder;
  const auto values = iota_doubles(24);
  const std::uint64_t dims[2] = {4, 6};
  builder.add_dataset(FileBuilder::kRoot, "field", dims,
                      std::span<const double>(values));
  const File file = File::parse(std::move(builder).finalize());
  const Dataset* ds = file.find_dataset("field");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->dtype, DType::kFloat64);
  ASSERT_EQ(ds->dims.size(), 2u);
  EXPECT_EQ(ds->dims[0], 4u);
  EXPECT_EQ(ds->element_count(), 24u);
  EXPECT_EQ(ds->read_as<double>(), values);
}

TEST(H5LiteTest, GroupsNestAndResolveByPath) {
  FileBuilder builder;
  const auto g1 = builder.create_group(FileBuilder::kRoot, "fields");
  const auto g2 = builder.create_group(g1, "winds");
  const auto values = iota_doubles(8);
  const std::uint64_t dims[1] = {8};
  builder.add_dataset(g2, "u", dims, std::span<const double>(values));
  const File file = File::parse(std::move(builder).finalize());
  EXPECT_NE(file.find_group("fields"), nullptr);
  EXPECT_NE(file.find_group("fields/winds"), nullptr);
  EXPECT_EQ(file.find_group("fields/missing"), nullptr);
  const Dataset* ds = file.find_dataset("fields/winds/u");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->read_as<double>(), values);
  EXPECT_EQ(file.find_dataset("fields/winds/v"), nullptr);
}

TEST(H5LiteTest, AttributesOfAllTypes) {
  FileBuilder builder;
  builder.set_attribute(FileBuilder::kRoot, "iteration", std::int64_t{42});
  builder.set_attribute(FileBuilder::kRoot, "dt", 0.25);
  builder.set_attribute(FileBuilder::kRoot, "name", std::string("cm1"));
  const File file = File::parse(std::move(builder).finalize());
  const auto& attrs = file.root().attributes;
  EXPECT_EQ(std::get<std::int64_t>(attrs.at("iteration")), 42);
  EXPECT_DOUBLE_EQ(std::get<double>(attrs.at("dt")), 0.25);
  EXPECT_EQ(std::get<std::string>(attrs.at("name")), "cm1");
}

TEST(H5LiteTest, MultipleDatasetsAndTypes) {
  FileBuilder builder;
  const std::vector<float> f{1.5f, 2.5f};
  const std::vector<std::int32_t> i{7, 8, 9};
  const std::uint64_t d2[1] = {2};
  const std::uint64_t d3[1] = {3};
  builder.add_dataset(FileBuilder::kRoot, "floats", d2, std::span<const float>(f));
  builder.add_dataset(FileBuilder::kRoot, "ints", d3, std::span<const std::int32_t>(i));
  const File file = File::parse(std::move(builder).finalize());
  EXPECT_EQ(file.find_dataset("floats")->read_as<float>(), f);
  EXPECT_EQ(file.find_dataset("ints")->read_as<std::int32_t>(), i);
  EXPECT_EQ(file.dataset_paths().size(), 2u);
}

TEST(H5LiteTest, DuplicateNamesRejected) {
  FileBuilder builder;
  builder.create_group(FileBuilder::kRoot, "g");
  EXPECT_THROW(builder.create_group(FileBuilder::kRoot, "g"), ConfigError);
  const auto values = iota_doubles(4);
  const std::uint64_t dims[1] = {4};
  builder.add_dataset(FileBuilder::kRoot, "d", dims, std::span<const double>(values));
  EXPECT_THROW(builder.add_dataset(FileBuilder::kRoot, "d", dims,
                                   std::span<const double>(values)),
               ConfigError);
}

TEST(H5LiteTest, SizeMismatchRejected) {
  FileBuilder builder;
  const auto values = iota_doubles(5);
  const std::uint64_t dims[1] = {4};  // 4 != 5
  EXPECT_THROW(builder.add_dataset(FileBuilder::kRoot, "d", dims,
                                   std::span<const double>(values)),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Chunked layouts
// ---------------------------------------------------------------------------

class ChunkedTest : public ::testing::TestWithParam<
                        std::tuple<std::vector<std::uint64_t>,
                                   std::vector<std::uint64_t>, compress::CodecId>> {};

TEST_P(ChunkedTest, RoundTripsExactly) {
  const auto& [dims, chunk_dims, codec] = GetParam();
  std::uint64_t n = 1;
  for (auto d : dims) n *= d;
  std::vector<double> values(n);
  for (std::uint64_t i = 0; i < n; ++i)
    values[i] = std::sin(0.05 * static_cast<double>(i)) * 100.0;

  FileBuilder builder;
  builder.add_dataset_chunked(FileBuilder::kRoot, "field", DType::kFloat64,
                              dims, chunk_dims,
                              std::as_bytes(std::span<const double>(values)),
                              codec);
  const File file = File::parse(std::move(builder).finalize());
  const Dataset* ds = file.find_dataset("field");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->read_as<double>(), values);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndCodecs, ChunkedTest,
    ::testing::Values(
        // 1-D, exact chunks
        std::make_tuple(std::vector<std::uint64_t>{64},
                        std::vector<std::uint64_t>{16}, compress::CodecId::kNone),
        // 1-D, ragged edge chunk
        std::make_tuple(std::vector<std::uint64_t>{100},
                        std::vector<std::uint64_t>{32}, compress::CodecId::kRle),
        // 2-D, ragged both ways
        std::make_tuple(std::vector<std::uint64_t>{33, 17},
                        std::vector<std::uint64_t>{8, 8},
                        compress::CodecId::kXorDelta),
        // 3-D CM1-like block, compressed
        std::make_tuple(std::vector<std::uint64_t>{24, 24, 24},
                        std::vector<std::uint64_t>{24, 24, 24},
                        compress::CodecId::kXorLzs),
        // 3-D with sub-chunks
        std::make_tuple(std::vector<std::uint64_t>{16, 16, 16},
                        std::vector<std::uint64_t>{8, 16, 5},
                        compress::CodecId::kLzs),
        // chunk larger than the dataset
        std::make_tuple(std::vector<std::uint64_t>{6, 6},
                        std::vector<std::uint64_t>{8, 8},
                        compress::CodecId::kXorLzs)));

TEST(H5LiteTest, CompressedChunksShrinkStoredSize) {
  const std::uint64_t dims[3] = {24, 24, 24};
  // Mostly-constant field with an active region (the compressible shape
  // of real simulation output).
  std::vector<double> smooth(24 * 24 * 24, 300.0);
  for (std::size_t i = 0; i < smooth.size() / 4; ++i)
    smooth[i] = 300.0 + std::sin(0.01 * static_cast<double>(i));
  FileBuilder builder;
  builder.add_dataset_chunked(FileBuilder::kRoot, "smooth", DType::kFloat64,
                              dims, dims,
                              std::as_bytes(std::span<const double>(smooth)),
                              compress::CodecId::kXorLzs);
  const File file = File::parse(std::move(builder).finalize());
  const Dataset* ds = file.find_dataset("smooth");
  ASSERT_NE(ds, nullptr);
  EXPECT_LT(ds->stored_size(), ds->byte_size() / 2);
  EXPECT_EQ(ds->read_as<double>(), smooth);
}

TEST(H5LiteTest, ChunkRankMismatchRejected) {
  FileBuilder builder;
  const auto values = iota_doubles(16);
  const std::uint64_t dims[2] = {4, 4};
  const std::uint64_t chunk1[1] = {4};
  EXPECT_THROW(builder.add_dataset_chunked(
                   FileBuilder::kRoot, "bad", DType::kFloat64, dims, chunk1,
                   std::as_bytes(std::span<const double>(values)),
                   compress::CodecId::kNone),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Corruption rejection
// ---------------------------------------------------------------------------

TEST(H5LiteTest, ParseRejectsBadMagic) {
  std::vector<std::byte> junk(64, std::byte{0});
  EXPECT_THROW(File::parse(junk), ConfigError);
}

TEST(H5LiteTest, ParseRejectsTruncatedImage) {
  FileBuilder builder;
  const auto values = iota_doubles(128);
  const std::uint64_t dims[1] = {128};
  builder.add_dataset(FileBuilder::kRoot, "d", dims, std::span<const double>(values));
  auto image = std::move(builder).finalize();
  image.resize(image.size() / 2);
  EXPECT_THROW(File::parse(image), ConfigError);
}

TEST(H5LiteTest, ParseRejectsTinyImages) {
  EXPECT_THROW(File::parse({}), ConfigError);
  EXPECT_THROW(File::parse(std::vector<std::byte>(8, std::byte{0})), ConfigError);
}

TEST(H5LiteTest, DatasetReadDetectsOutOfRangePayload) {
  FileBuilder builder;
  const auto values = iota_doubles(8);
  const std::uint64_t dims[1] = {8};
  builder.add_dataset(FileBuilder::kRoot, "d", dims, std::span<const double>(values));
  auto image = std::move(builder).finalize();
  // Corrupt the superblock's root offset to point into the payload — the
  // parser should fail loudly rather than misread.
  image[8] = std::byte{1};
  EXPECT_THROW(File::parse(image), ConfigError);
}

// ---------------------------------------------------------------------------
// Fuzz-style corruption table (PR 5 bounds audit)
//
// Every mutation of a valid image must either parse cleanly or throw
// ConfigError — never crash, over-read, or allocate absurdly.  The
// targeted rows pin the specific over-read/overflow fixes; the sweep rows
// chew through systematic truncations and byte flips.
// ---------------------------------------------------------------------------

/// A representative image: contiguous + chunked (compressed) datasets,
/// nested group, attributes of every type.
std::vector<std::byte> corpus_image() {
  FileBuilder builder;
  builder.set_attribute(FileBuilder::kRoot, "run", std::string("corpus"));
  builder.set_attribute(FileBuilder::kRoot, "step", std::int64_t{7});
  builder.set_attribute(FileBuilder::kRoot, "dt", 0.25);
  const auto values = iota_doubles(64);
  const std::uint64_t dims[2] = {8, 8};
  builder.add_dataset(FileBuilder::kRoot, "contig", dims,
                      std::span<const double>(values));
  const auto g = builder.create_group(FileBuilder::kRoot, "fields");
  const std::uint64_t chunk[2] = {3, 5};
  builder.add_dataset_chunked(g, "chunked", DType::kFloat64, dims, chunk,
                              std::as_bytes(std::span<const double>(values)),
                              compress::CodecId::kXorDelta);
  return std::move(builder).finalize();
}

std::uint64_t read_u64_at(const std::vector<std::byte>& image, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
             image[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

/// Parses and, when parsing succeeds, reads back every dataset — the
/// over-reads under audit live in Dataset::read just as much as in parse.
void parse_and_read_all(std::vector<std::byte> image) {
  const File file = File::parse(std::move(image));
  for (const auto& path : file.dataset_paths()) {
    const Dataset* ds = file.find_dataset(path);
    ASSERT_NE(ds, nullptr);
    (void)ds->read();
  }
}

void expect_rejected_or_clean(std::vector<std::byte> image) {
  try {
    parse_and_read_all(std::move(image));  // a harmless mutation is fine
  } catch (const ConfigError&) {
    // rejected with a precise error: the audited outcome
  }
}

struct CorruptionCase {
  const char* name;
  /// Mutates a fresh copy of the corpus image.
  void (*mutate)(std::vector<std::byte>&);
};

void put_u64_at(std::vector<std::byte>& image, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    image[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

const CorruptionCase kCorruptionTable[] = {
    {"superblock_root_offset_huge",
     [](std::vector<std::byte>& im) { put_u64_at(im, 8, UINT64_MAX - 4); }},
    {"superblock_root_offset_inside_superblock",
     [](std::vector<std::byte>& im) { put_u64_at(im, 8, 4); }},
    {"superblock_file_size_past_image",
     [](std::vector<std::byte>& im) { put_u64_at(im, 16, im.size() * 2); }},
    {"superblock_file_size_zero",
     [](std::vector<std::byte>& im) { put_u64_at(im, 16, 0); }},
    // data_offset + data_size wrapping past UINT64_MAX used to defeat the
    // additive range check in Dataset::read.
    {"contiguous_offset_wraps_u64",
     [](std::vector<std::byte>& im) {
       // The contiguous dataset's payload starts right after the
       // superblock, so its metadata record stores data_offset ==
       // kSuperblockSize.  Scan the metadata tree (starts at the
       // superblock's root offset) for that little-endian u64 and smash
       // it with a wrap-adjacent value.
       const std::uint64_t root = read_u64_at(im, 8);
       for (std::size_t at = static_cast<std::size_t>(root);
            at + 8 <= im.size(); ++at) {
         if (read_u64_at(im, at) == kSuperblockSize) {
           put_u64_at(im, at, UINT64_MAX - 8);
           return;
         }
       }
       FAIL() << "corpus layout changed: contiguous offset not found";
     }},
    {"truncate_into_metadata",
     [](std::vector<std::byte>& im) { im.resize(im.size() - im.size() / 4); }},
    {"truncate_to_superblock_boundary",
     [](std::vector<std::byte>& im) { im.resize(kSuperblockSize); }},
    {"zero_after_superblock",
     [](std::vector<std::byte>& im) {
       std::fill(im.begin() + kSuperblockSize, im.end(), std::byte{0});
     }},
};

class H5LiteCorruptionTest : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(H5LiteCorruptionTest, RejectedOrHarmless) {
  std::vector<std::byte> image = corpus_image();
  GetParam().mutate(image);
  expect_rejected_or_clean(std::move(image));
}

INSTANTIATE_TEST_SUITE_P(
    Targeted, H5LiteCorruptionTest, ::testing::ValuesIn(kCorruptionTable),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
      return std::string(info.param.name);
    });

/// Hand-crafts a minimal image holding one rank-1 float64 chunked dataset
/// with a single chunk: dims = {elems}, raw/stored as given, payload
/// offset pointing at the superblock (in range; content is irrelevant).
std::vector<std::byte> craft_chunked_image(std::uint64_t elems,
                                           std::uint64_t stored,
                                           std::uint64_t raw) {
  std::vector<std::byte> im(kSuperblockSize, std::byte{0});
  std::memcpy(im.data(), kMagic, 8);
  auto put_u8 = [&](std::uint8_t v) { im.push_back(static_cast<std::byte>(v)); };
  auto put_u16 = [&](std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v & 0xFF));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  };
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  };
  const std::uint64_t root_offset = im.size();  // metadata after the header
  put_u16(0);                // root group: empty name
  put_u16(0);                // no attributes
  put_u16(1);                // one dataset
  put_u16(4);                // dataset name "bomb"
  for (char ch : {'b', 'o', 'm', 'b'}) put_u8(static_cast<std::uint8_t>(ch));
  put_u16(0);                // no attributes
  put_u8(9);                 // dtype kFloat64
  put_u8(1);                 // rank 1
  put_u64(elems);            // dims
  put_u8(1);                 // chunked layout
  put_u64(elems);            // chunk_dims (one chunk covers everything)
  put_u8(0);                 // codec none
  put_u64(1);                // one chunk entry
  put_u64(kSuperblockSize);  // chunk offset (in range)
  put_u64(stored);
  put_u64(raw);
  put_u16(0);                // no child groups
  put_u64_at(im, 8, root_offset);
  put_u64_at(im, 16, im.size());
  return im;
}

TEST(H5LiteCorruptionTest, ChunkedDecodeBombIsRejectedAtParse) {
  // Benign control: a 2-element dataset whose raw (16) matches dims — the
  // crafted layout is structurally valid, so the hostile variant below is
  // rejected for its magnitudes, not for sloppy test bytes.
  EXPECT_NO_THROW(File::parse(craft_chunked_image(2, 16, 16)));

  // Hostile: dims = {2^40} with one chunk claiming raw = 2^43 bytes
  // (8 TiB).  The raw sum *equals* product(dims) * 8, so the partition
  // invariant holds by construction — only the plausibility cap (raw far
  // beyond any codec expansion of this tiny image) stands between parse
  // and an 8 TiB allocation in Dataset::read.
  EXPECT_THROW(File::parse(craft_chunked_image(1ull << 40, 0, 1ull << 43)),
               ConfigError);
}

TEST(H5LiteCorruptionSweepTest, EveryTruncationLengthIsRejectedOrClean) {
  const std::vector<std::byte> image = corpus_image();
  for (std::size_t keep = 0; keep < image.size(); keep += 7) {
    std::vector<std::byte> t(image.begin(),
                             image.begin() + static_cast<std::ptrdiff_t>(keep));
    expect_rejected_or_clean(std::move(t));
  }
}

TEST(H5LiteCorruptionSweepTest, RandomByteFlipsNeverEscapeConfigError) {
  const std::vector<std::byte> image = corpus_image();
  // Deterministic per-test stream (see tests/framework): reproducible with
  // DEDICORE_TEST_SEED on a failure.
  auto rng = dedicore::testing::make_rng();
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> mutant = image;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutant.size());
      mutant[at] ^= static_cast<std::byte>(1u << rng.next_below(8));
    }
    expect_rejected_or_clean(std::move(mutant));
  }
}

TEST(H5LiteCorruptionSweepTest, MetadataU64FieldsSmashedOneAtATime) {
  // Overwrite every byte position in the metadata tree with hostile u64
  // magnitudes (huge, wrap-adjacent, zero) — this is what shakes out
  // additive bounds checks that overflow.
  const std::vector<std::byte> image = corpus_image();
  const std::uint64_t hostile[] = {UINT64_MAX, UINT64_MAX - 7, UINT64_MAX / 2,
                                   0, static_cast<std::uint64_t>(image.size())};
  const auto root = static_cast<std::size_t>(read_u64_at(image, 8));
  for (std::size_t at = root; at + 8 <= image.size(); ++at) {
    for (std::uint64_t v : hostile) {
      std::vector<std::byte> mutant = image;
      put_u64_at(mutant, at, v);
      expect_rejected_or_clean(std::move(mutant));
    }
  }
}

// ---------------------------------------------------------------------------
// SharedLayout (collective shared files)
// ---------------------------------------------------------------------------

TEST(SharedLayoutTest, OffsetsAreDisjointAndAligned) {
  std::vector<SharedLayout::Decl> decls;
  for (int r = 0; r < 4; ++r)
    decls.push_back({"theta/r" + std::to_string(r), DType::kFloat32, {5, 3}});
  const SharedLayout layout(decls);
  ASSERT_EQ(layout.dataset_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(layout.payload_offset(i) % 8, 0u);
    EXPECT_EQ(layout.payload_size(i), 5u * 3u * 4u);
    if (i > 0) {
      EXPECT_GE(layout.payload_offset(i),
                layout.payload_offset(i - 1) + layout.payload_size(i - 1));
    }
  }
  EXPECT_GT(layout.total_size(), layout.metadata_offset());
}

TEST(SharedLayoutTest, AssembledFileParses) {
  // Simulate the collective write: payloads at their offsets, header and
  // metadata from the layout; the result must parse as a normal file.
  std::vector<SharedLayout::Decl> decls;
  decls.push_back({"alpha", DType::kFloat64, {4}});
  decls.push_back({"grp/beta", DType::kInt32, {3}});
  const SharedLayout layout(decls);

  std::vector<std::byte> image(layout.total_size());
  std::memcpy(image.data(), layout.header_image().data(), kSuperblockSize);
  const std::vector<double> alpha{1, 2, 3, 4};
  const std::vector<std::int32_t> beta{7, 8, 9};
  std::memcpy(image.data() + layout.payload_offset(0), alpha.data(), 32);
  std::memcpy(image.data() + layout.payload_offset(1), beta.data(), 12);
  std::memcpy(image.data() + layout.metadata_offset(),
              layout.metadata_image().data(), layout.metadata_image().size());

  const File file = File::parse(image);
  ASSERT_NE(file.find_dataset("alpha"), nullptr);
  EXPECT_EQ(file.find_dataset("alpha")->read_as<double>(), alpha);
  ASSERT_NE(file.find_dataset("grp/beta"), nullptr);
  EXPECT_EQ(file.find_dataset("grp/beta")->read_as<std::int32_t>(), beta);
}

TEST(SharedLayoutTest, EmptyDeclsRejected) {
  EXPECT_THROW(SharedLayout({}), ConfigError);
}

TEST(SharedLayoutTest, DeepPathsRejected) {
  std::vector<SharedLayout::Decl> decls;
  decls.push_back({"a/b/c", DType::kFloat64, {4}});
  EXPECT_THROW(SharedLayout(std::move(decls)), ConfigError);
}

TEST(SharedLayoutTest, IdenticalDeclsGiveIdenticalImages) {
  auto make = [] {
    std::vector<SharedLayout::Decl> decls;
    for (int r = 0; r < 3; ++r)
      decls.push_back({"v/r" + std::to_string(r), DType::kFloat32, {7}});
    return SharedLayout(decls);
  };
  const SharedLayout a = make(), b = make();
  EXPECT_EQ(a.header_image(), b.header_image());
  EXPECT_EQ(a.metadata_image(), b.metadata_image());
  EXPECT_EQ(a.total_size(), b.total_size());
}

}  // namespace
}  // namespace dedicore::h5lite
