// Tests for VisLite: isosurface extraction correctness (analytic shapes),
// rendering, statistics and the in-situ pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "viz/vislite.hpp"

namespace dedicore::viz {
namespace {

/// Builds a grid sampling f(x, y, z).
template <typename F>
std::vector<double> sample(std::uint64_t n, F&& f) {
  std::vector<double> out(n * n * n);
  std::size_t i = 0;
  for (std::uint64_t x = 0; x < n; ++x)
    for (std::uint64_t y = 0; y < n; ++y)
      for (std::uint64_t z = 0; z < n; ++z, ++i)
        out[i] = f(static_cast<double>(x), static_cast<double>(y),
                   static_cast<double>(z));
  return out;
}

TEST(VecTest, CrossAndDotAndNormalize) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  const Vec3 z = cross(x, y);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  const Vec3 n = normalized({3, 0, 4});
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.z, 0.8, 1e-12);
}

TEST(GridViewTest, ValidationCatchesMismatch) {
  std::vector<double> values(8);
  GridView ok{values, 2, 2, 2};
  EXPECT_NO_THROW(ok.validate());
  GridView bad{values, 2, 2, 3};
  EXPECT_DEATH(bad.validate(), "nx\\*ny\\*nz");
}

TEST(IsosurfaceTest, UniformFieldHasNoSurface) {
  const auto values = sample(8, [](double, double, double) { return 1.0; });
  GridView grid{values, 8, 8, 8};
  EXPECT_TRUE(extract_isosurface(grid, 0.5).empty());
  EXPECT_TRUE(extract_isosurface(grid, 1.5).empty());
  EXPECT_EQ(count_isosurface_triangles(grid, 0.5), 0u);
}

TEST(IsosurfaceTest, PlaneProducesFlatSurfaceAtRightHeight) {
  // f = x: isosurface f=3.5 is the plane x=3.5.
  const auto values = sample(8, [](double x, double, double) { return x; });
  GridView grid{values, 8, 8, 8};
  const auto triangles = extract_isosurface(grid, 3.5);
  ASSERT_FALSE(triangles.empty());
  for (const Triangle& tri : triangles)
    for (const Vec3& v : tri.v)
      EXPECT_NEAR(v.x, 3.5, 1e-9);
  // Every triangle's normal is +-x.
  for (const Triangle& tri : triangles) {
    const Vec3 n = tri.normal();
    EXPECT_NEAR(std::abs(n.x), 1.0, 1e-9);
  }
}

TEST(IsosurfaceTest, CountMatchesExtractionSize) {
  const auto values = sample(10, [](double x, double y, double z) {
    return std::sin(x * 0.7) + std::cos(y * 0.5) + std::sin(z * 0.9);
  });
  GridView grid{values, 10, 10, 10};
  for (double iso : {-0.5, 0.0, 0.5, 1.0}) {
    EXPECT_EQ(count_isosurface_triangles(grid, iso),
              extract_isosurface(grid, iso).size());
  }
}

TEST(IsosurfaceTest, SphereAreaApproximatesAnalytic) {
  // f = distance from center; isosurface f=r is a sphere of radius r.
  const std::uint64_t n = 20;
  const double c = (n - 1) / 2.0;
  const auto values = sample(n, [c](double x, double y, double z) {
    return std::sqrt((x - c) * (x - c) + (y - c) * (y - c) + (z - c) * (z - c));
  });
  GridView grid{values, n, n, n};
  const double radius = 6.0;
  const auto triangles = extract_isosurface(grid, radius);
  ASSERT_GT(triangles.size(), 100u);
  double area = 0.0;
  for (const Triangle& t : triangles) {
    const Vec3 c1 = cross(t.v[1] - t.v[0], t.v[2] - t.v[0]);
    area += 0.5 * std::sqrt(dot(c1, c1));
  }
  const double analytic = 4.0 * std::numbers::pi * radius * radius;
  EXPECT_NEAR(area, analytic, analytic * 0.1);
  // All vertices lie close to the sphere (linear interpolation error).
  for (const Triangle& t : triangles)
    for (const Vec3& v : t.v) {
      const double r = std::sqrt((v.x - c) * (v.x - c) + (v.y - c) * (v.y - c) +
                                 (v.z - c) * (v.z - c));
      EXPECT_NEAR(r, radius, 0.2);
    }
}

TEST(IsosurfaceTest, SurfaceIsClosedOnInteriorShapes) {
  // A closed surface has every interpolated vertex strictly inside the
  // volume, and moving the isovalue changes the area monotonically for a
  // sphere (bigger radius -> bigger area).
  const std::uint64_t n = 16;
  const double c = (n - 1) / 2.0;
  const auto values = sample(n, [c](double x, double y, double z) {
    return std::sqrt((x - c) * (x - c) + (y - c) * (y - c) + (z - c) * (z - c));
  });
  GridView grid{values, n, n, n};
  const auto small_surface = extract_isosurface(grid, 3.0);
  const auto big = extract_isosurface(grid, 5.0);
  EXPECT_GT(big.size(), small_surface.size());
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(RenderTest, EmptySceneIsBackground) {
  RenderOptions options;
  options.width = 16;
  options.height = 16;
  const Image img = render_triangles({}, {1, 1, 1}, options);
  EXPECT_EQ(img.width, 16);
  const auto px = img.pixel(8, 8);
  EXPECT_EQ(px[0], options.background[0]);
  EXPECT_EQ(px[2], options.background[2]);
}

TEST(RenderTest, TriangleCoversCenterPixels) {
  RenderOptions options;
  options.width = 32;
  options.height = 32;
  // A big triangle spanning the whole extent, facing the camera (z view).
  std::vector<Triangle> tris{Triangle{{Vec3{0, 0, 5}, Vec3{10, 0, 5}, Vec3{5, 10, 5}}}};
  const Image img = render_triangles(tris, {10, 10, 10}, options);
  const auto center = img.pixel(16, 12);
  EXPECT_NE(center[0], options.background[0]);  // lit surface color
  const auto corner = img.pixel(0, 0);
  EXPECT_EQ(corner[0], options.background[0]);  // outside the triangle
}

TEST(RenderTest, ZBufferKeepsNearestSurface) {
  RenderOptions options;
  options.width = 24;
  options.height = 24;
  options.surface_color = {200, 0, 0};
  // Two full-extent quads (as triangle pairs) at different depths with
  // different tilts: the nearer one (higher z under kZ view) must win.
  std::vector<Triangle> tris;
  auto add_quad = [&](double depth) {
    tris.push_back(Triangle{{Vec3{0, 0, depth}, Vec3{10, 0, depth}, Vec3{10, 10, depth}}});
    tris.push_back(Triangle{{Vec3{0, 0, depth}, Vec3{10, 10, depth}, Vec3{0, 10, depth}}});
  };
  add_quad(2.0);
  add_quad(8.0);
  const Image front_last = render_triangles(tris, {10, 10, 10}, options);
  std::reverse(tris.begin(), tris.end());
  const Image front_first = render_triangles(tris, {10, 10, 10}, options);
  // Same image regardless of submission order (z-buffer, not painter).
  EXPECT_EQ(front_last.rgb, front_first.rgb);
}

TEST(RenderTest, ViewAxesProduceDifferentProjections) {
  std::vector<Triangle> tris{Triangle{{Vec3{0, 0, 0}, Vec3{9, 0, 0}, Vec3{0, 9, 0}}}};
  RenderOptions oz;
  oz.width = oz.height = 16;
  RenderOptions ox = oz;
  ox.view_axis = Axis::kX;
  const Image iz = render_triangles(tris, {9, 9, 9}, oz);
  const Image ix = render_triangles(tris, {9, 9, 9}, ox);
  EXPECT_NE(iz.rgb, ix.rgb);  // the triangle is edge-on along x
}

TEST(RenderTest, PpmEncodingIsWellFormed) {
  Image img;
  img.width = 2;
  img.height = 2;
  img.rgb = {255, 0, 0, 0, 255, 0, 0, 0, 255, 9, 9, 9};
  const auto ppm = img.encode_ppm();
  const std::string header(reinterpret_cast<const char*>(ppm.data()), 11);
  EXPECT_EQ(header, "P6\n2 2\n255\n");
  EXPECT_EQ(ppm.size(), 11u + 12u);
  EXPECT_EQ(std::to_integer<int>(ppm[11]), 255);
}

// ---------------------------------------------------------------------------
// Statistics & pipeline
// ---------------------------------------------------------------------------

TEST(StatisticsTest, MatchesHandComputedValues) {
  const std::vector<double> v{1, 2, 3, 4};
  const FieldStatistics s = compute_statistics(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(s.l2_norm, std::sqrt(30.0), 1e-12);
}

TEST(StatisticsTest, EmptyInputIsZero) {
  const FieldStatistics s = compute_statistics({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PipelineTest, ProducesTrianglesStatsAndImage) {
  const auto values = sample(12, [](double x, double y, double z) {
    return std::sin(0.5 * x) * std::cos(0.5 * y) + 0.2 * z;
  });
  GridView grid{values, 12, 12, 12};
  RenderOptions options;
  options.width = options.height = 32;
  const PipelineResult result =
      run_insitu_pipeline(grid, compute_statistics(values).mean, options);
  EXPECT_GT(result.triangles, 0u);
  EXPECT_EQ(result.image.width, 32);
  EXPECT_EQ(result.statistics.count, values.size());
  EXPECT_GT(result.seconds, 0.0);
  // The rendered surface must have touched some pixels.
  int non_background = 0;
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      if (result.image.pixel(x, y)[0] != options.background[0]) ++non_background;
  EXPECT_GT(non_background, 10);
}

}  // namespace
}  // namespace dedicore::viz
