// Self-test for the shared test infrastructure: the framework is linked by
// every suite, so its helpers get first-class coverage of their own.
#include <cstdlib>
#include <fstream>
#include <string>

#include "framework/test_infra.hpp"

namespace dedicore::testing {
namespace {

TEST(StatusMacroTest, OkAndErrorPaths) {
  EXPECT_OK(Status::ok());
  ASSERT_OK(Status::ok());
  EXPECT_STATUS(Status::would_block("full"), StatusCode::kWouldBlock);
  EXPECT_FALSE(is_ok_pred("expr", Status::io_error("disk gone")));
  // Failure messages carry the full status rendering.
  const auto result = is_ok_pred("write()", Status::io_error("disk gone"));
  EXPECT_NE(std::string(result.message()).find("IO_ERROR: disk gone"),
            std::string::npos);
  EXPECT_FALSE(has_code_pred("s", "kClosed", Status::ok(), StatusCode::kClosed));
}

TEST(TempDirSelfTest, CreatesUniqueWritableDirsAndCleansUp) {
  std::filesystem::path kept;
  {
    TempDir a("framework_selftest");
    TempDir b("framework_selftest");
    EXPECT_NE(a.path(), b.path());
    EXPECT_TRUE(std::filesystem::is_directory(a.path()));
    std::ofstream(a.file("probe.txt")) << "hello";
    EXPECT_TRUE(std::filesystem::exists(a.file("probe.txt")));
    kept = a.path();
  }
  EXPECT_FALSE(std::filesystem::exists(kept));  // recursive cleanup ran
}

class TempDirFixtureTest : public TempDirTest {};

TEST_F(TempDirFixtureTest, FixtureProvidesScratchSpace) {
  std::ofstream(temp_file("scratch.bin")) << "x";
  EXPECT_TRUE(std::filesystem::exists(temp_path() / "scratch.bin"));
}

TEST(SeedSelfTest, StablePerTestAndDistinctAcrossTests) {
  const std::uint64_t here = test_seed();
  EXPECT_EQ(here, test_seed());  // stable within one test
  Rng a = make_rng();
  Rng b = make_rng();
  EXPECT_EQ(a.next_u64(), b.next_u64());  // same seed, same stream
  Rng other = make_rng(1);
  Rng base = make_rng();
  EXPECT_NE(base.next_u64(), other.next_u64());  // stream split diverges
}

TEST(SeedSelfTest, OtherTestNameGivesOtherSeed) {
  // The sibling test above hashes a different "Suite.Name" string, so its
  // seed must differ from ours.
  EXPECT_NE(test_seed(), 0u);
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(std::string(info->name()), "OtherTestNameGivesOtherSeed");
}

TEST(SeedSelfTest, EnvOverrideWins) {
  ::setenv("DEDICORE_TEST_SEED", "12345", 1);
  EXPECT_EQ(test_seed(), 12345u);
  ::unsetenv("DEDICORE_TEST_SEED");
  EXPECT_NE(test_seed(), 12345u);
}

TEST(GoldenTableSelfTest, ReportsFirstMismatch) {
  Table t({"k", "v"});
  t.add_row({"a", "1"});
  EXPECT_TRUE(table_rows_equal(t, {{"a", "1"}}));

  const auto wrong_cell = table_rows_equal(t, {{"a", "2"}});
  EXPECT_FALSE(wrong_cell);
  EXPECT_NE(std::string(wrong_cell.message()).find("row 0, column 1"),
            std::string::npos);

  const auto wrong_arity = table_rows_equal(t, {{"a", "1"}, {"b", "2"}});
  EXPECT_FALSE(wrong_arity);

  EXPECT_TRUE(table_matches_golden(t, "k  v\n----\na  1\n"));
  EXPECT_TRUE(table_matches_golden(t, "k  v   \n----\na  1\n"));  // rstrip
  const auto diff = table_matches_golden(t, "k  v\n----\na  9\n");
  EXPECT_FALSE(diff);
  EXPECT_NE(std::string(diff.message()).find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace dedicore::testing
