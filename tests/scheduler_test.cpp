// Edge-case coverage for core/scheduler.cpp beyond what core_test.cpp
// exercises: draining an empty admission queue, re-entrant
// release-and-reacquire cycles, FIFO ticket ordering, and teardown while
// waiters are still pending admission.
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "framework/test_infra.hpp"

namespace dedicore::core {
namespace {

TEST(SchedulerEdgeTest, EmptyDrainNeverBlocks) {
  // With no contention every acquire must be admitted immediately, and the
  // accumulated wait must stay negligible.
  ThrottledScheduler sched(4);
  for (int i = 0; i < 1000; ++i) {
    sched.acquire(i % 8);
    sched.release(i % 8);
  }
  EXPECT_LT(sched.total_wait_seconds(), 0.5);
}

TEST(SchedulerEdgeTest, ReentrantReacquireFromManyThreads) {
  // Each thread repeatedly releases and immediately re-acquires (the
  // per-iteration write-phase pattern).  The concurrency bound must hold
  // throughout and nothing may deadlock.
  constexpr int kThreads = 8;
  constexpr int kMaxConcurrent = 3;
  constexpr int kCycles = 200;
  ThrottledScheduler sched(kMaxConcurrent);
  std::atomic<int> active{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sched, &active, &max_seen, t] {
      for (int i = 0; i < kCycles; ++i) {
        ScheduleGuard guard(sched, t);
        const int now = active.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        active.fetch_sub(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(max_seen.load(), kMaxConcurrent);
  EXPECT_GT(max_seen.load(), 0);
}

TEST(SchedulerEdgeTest, SingleSlotSerializesAndIsFifo) {
  // max_concurrent == 1: admissions must come out in ticket (arrival)
  // order.  Arrival order is made deterministic by starting thread k only
  // after k-1 has provably taken its ticket (tickets_issued handshake).
  ThrottledScheduler sched(1);
  sched.acquire(0);  // ticket 0: hold the only slot so the threads queue up

  constexpr int kWaiters = 6;
  std::vector<int> admission_order;
  std::mutex order_mutex;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&, t] {
      ScheduleGuard guard(sched, t);
      std::lock_guard<std::mutex> lock(order_mutex);
      admission_order.push_back(t);
    });
    // Thread t must hold ticket t+1 before thread t+1 may take one.
    while (sched.tickets_issued() < static_cast<std::uint64_t>(t) + 2)
      std::this_thread::yield();
  }
  sched.release(0);
  for (auto& th : threads) th.join();

  ASSERT_EQ(admission_order.size(), static_cast<std::size_t>(kWaiters));
  for (int t = 0; t < kWaiters; ++t) EXPECT_EQ(admission_order[t], t);
}

TEST(SchedulerEdgeTest, PendingWaitersAllAdmittedAfterHolderReleases) {
  // "Shutdown with pending work": the slot holder finishes while several
  // nodes still wait for admission.  Every pending waiter must eventually
  // be admitted and the recorded wait time must cover their blocked spell.
  ThrottledScheduler sched(1);
  sched.acquire(99);

  std::atomic<int> completed{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&sched, &completed, t] {
      ScheduleGuard guard(sched, t);
      completed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(completed.load(), 0);  // all genuinely pending
  sched.release(99);
  for (auto& th : waiters) th.join();
  EXPECT_EQ(completed.load(), 4);
  EXPECT_GT(sched.total_wait_seconds(), 0.0);
}

TEST(SchedulerEdgeTest, GreedyIsReentrantAndFree) {
  GreedyScheduler greedy;
  for (int i = 0; i < 3; ++i) greedy.acquire(0);  // re-entrant: no state
  for (int i = 0; i < 3; ++i) greedy.release(0);
  EXPECT_EQ(greedy.total_wait_seconds(), 0.0);
}

TEST(SchedulerEdgeTest, FactoryPassesConcurrencyBound) {
  auto sched = make_scheduler("throttled", 2);
  std::atomic<int> active{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ScheduleGuard guard(*sched, t);
        const int now = active.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        active.fetch_sub(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(max_seen.load(), 2);
}

}  // namespace
}  // namespace dedicore::core
