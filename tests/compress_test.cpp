// Tests for the compression codecs: round-trip properties on adversarial
// and realistic inputs, ratio expectations on smooth fields, framing, and
// the fuzz-style corruption table guarding the frame decoder (a corrupt
// frame must be rejected with ConfigError — never crash, over-read, or
// size an allocation from a hostile header).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "compress/codec.hpp"

namespace dedicore::compress {
namespace {

std::vector<std::byte> to_bytes(const std::vector<double>& values) {
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

/// A smooth 1-D field resembling one pencil of a CM1 variable: a constant
/// base state with a smoothly varying active region.  Note the low
/// mantissa bits of a transcendental sequence are effectively random; it
/// is the constant/quiescent majority that makes simulation output
/// compressible, exactly as in real atmospheric fields.
std::vector<double> smooth_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n, 300.0);
  double phase = rng.uniform(0, 3.14);
  for (std::size_t i = 0; i < n / 5; ++i)
    out[i + n / 5] = 300.0 + 3.0 * std::sin(0.01 * static_cast<double>(i) + phase);
  return out;
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<CodecId, std::size_t>> {};

TEST_P(CodecRoundTripTest, RandomDataRoundTrips) {
  const auto [id, size] = GetParam();
  const Codec* codec = find_codec(id);
  ASSERT_NE(codec, nullptr);
  const auto input = random_bytes(size, size ^ 0x5a5a);
  const auto packed = codec->compress(input);
  const auto restored = codec->decompress(packed, input.size());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, SmoothFieldRoundTrips) {
  const auto [id, size] = GetParam();
  const Codec* codec = find_codec(id);
  ASSERT_NE(codec, nullptr);
  const auto input = to_bytes(smooth_field(size / 8 + 1, 42));
  const auto packed = codec->compress(input);
  const auto restored = codec->decompress(packed, input.size());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, ConstantDataRoundTripsAndShrinks) {
  const auto [id, size] = GetParam();
  if (size == 0) GTEST_SKIP();
  const Codec* codec = find_codec(id);
  const std::vector<std::byte> input(size, std::byte{0x3C});
  const auto packed = codec->compress(input);
  EXPECT_EQ(codec->decompress(packed, size), input);
  if (size >= 64) {
    EXPECT_LT(packed.size(), input.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllSizes, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(CodecId::kRle, CodecId::kXorDelta,
                                         CodecId::kLzs, CodecId::kXorLzs),
                       ::testing::Values(0, 1, 7, 8, 63, 1024, 65537)),
    [](const auto& info) {
      const CodecId id = std::get<0>(info.param);
      const std::size_t size = std::get<1>(info.param);
      const std::string base(codec_name(id));
      return (base == "xor+lzs" ? std::string("xorlzs") : base) + "_" +
             std::to_string(size);
    });

TEST(CodecTest, RepetitivePatternCompressesWithLzs) {
  std::vector<std::byte> input;
  const char* pattern = "dedicated-core-io:";
  for (int i = 0; i < 500; ++i)
    for (const char* p = pattern; *p; ++p)
      input.push_back(static_cast<std::byte>(*p));
  const Codec* lzs = find_codec(CodecId::kLzs);
  const auto packed = lzs->compress(input);
  EXPECT_LT(packed.size(), input.size() / 10);
  EXPECT_EQ(lzs->decompress(packed, input.size()), input);
}

TEST(CodecTest, SmoothFloatFieldReachesPaperLikeRatio) {
  // §IV.D reports a "600% compression ratio" on CM1 data.  A smooth field
  // under xor+lzs should land in that regime (>= 4x here).
  const auto input = to_bytes(smooth_field(64 * 1024, 7));
  const Codec* codec = find_codec(CodecId::kXorLzs);
  const auto packed = codec->compress(input);
  const double ratio = compression_ratio(input.size(), packed.size());
  EXPECT_GE(ratio, 4.0) << "got ratio " << ratio;
  EXPECT_EQ(codec->decompress(packed, input.size()), input);
}

TEST(CodecTest, XorBeatsRleOnSmoothData) {
  const auto input = to_bytes(smooth_field(16 * 1024, 9));
  const auto rle = find_codec(CodecId::kRle)->compress(input);
  const auto xor_rle = find_codec(CodecId::kXorDelta)->compress(input);
  EXPECT_LT(xor_rle.size(), rle.size());
}

TEST(CodecTest, DecompressRejectsCorruptPayloads) {
  const Codec* lzs = find_codec(CodecId::kLzs);
  const auto input = random_bytes(1024, 3);
  auto packed = lzs->compress(input);
  // Wrong raw size must be detected.
  EXPECT_THROW((void)lzs->decompress(packed, input.size() + 1), ConfigError);
  // Truncation must be detected.
  packed.resize(packed.size() / 2);
  EXPECT_THROW((void)lzs->decompress(packed, input.size()), ConfigError);
}

TEST(CodecTest, RleRejectsBadDistanceEncoding) {
  // A match token with distance 0 is never produced by the compressor.
  std::vector<std::byte> bogus{std::byte{9}, std::byte{0}};  // match len 4, dist 0
  EXPECT_THROW((void)find_codec(CodecId::kLzs)->decompress(bogus, 4), ConfigError);
}

TEST(CodecTest, RegistryLookups) {
  EXPECT_EQ(find_codec("rle")->name(), "rle");
  EXPECT_EQ(find_codec("xor")->name(), "xor");
  EXPECT_EQ(find_codec("lzs")->name(), "lzs");
  EXPECT_EQ(find_codec("xor+lzs")->name(), "xor+lzs");
  EXPECT_EQ(find_codec("zstd"), nullptr);
  EXPECT_EQ(find_codec(CodecId::kNone), nullptr);
  EXPECT_EQ(codec_id("none"), CodecId::kNone);
  EXPECT_EQ(codec_id(""), CodecId::kNone);
  EXPECT_EQ(codec_id("xor+lzs"), CodecId::kXorLzs);
  EXPECT_THROW(codec_id("bogus"), ConfigError);
  EXPECT_EQ(codec_name(CodecId::kNone), "none");
}

TEST(CodecTest, FrameRoundTripsAllCodecs) {
  const auto input = to_bytes(smooth_field(4096, 11));
  for (CodecId id : {CodecId::kNone, CodecId::kRle, CodecId::kXorDelta,
                     CodecId::kLzs, CodecId::kXorLzs}) {
    const auto frame = compress_frame(id, input);
    EXPECT_EQ(decompress_frame(frame), input) << "codec " << codec_name(id);
  }
}

TEST(CodecTest, FrameFallsBackToStoredOnIncompressibleData) {
  const auto input = random_bytes(4096, 17);
  const auto frame = compress_frame(CodecId::kXorLzs, input);
  // Never grows more than the 5-byte header.
  EXPECT_LE(frame.size(), input.size() + 5);
  EXPECT_EQ(decompress_frame(frame), input);
}

TEST(CodecTest, FrameRejectsTruncatedHeader) {
  std::vector<std::byte> tiny{std::byte{1}, std::byte{2}};
  EXPECT_THROW(decompress_frame(tiny), ConfigError);
}

TEST(CodecTest, CompressionRatioHelper) {
  EXPECT_DOUBLE_EQ(compression_ratio(600, 100), 6.0);
  // Degenerate cases are defined, not divided: zero compressed bytes for
  // a nonzero input is the 0.0 "no ratio" sentinel; the empty input
  // stored in zero bytes is the identity.
  EXPECT_DOUBLE_EQ(compression_ratio(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(compression_ratio(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(compression_ratio(0, 100), 0.0);
}

TEST(CodecTest, EmptyInputProducesEmptyOutput) {
  for (CodecId id : {CodecId::kRle, CodecId::kXorDelta, CodecId::kLzs,
                     CodecId::kXorLzs}) {
    const Codec* codec = find_codec(id);
    const auto packed = codec->compress({});
    EXPECT_TRUE(codec->decompress(packed, 0).empty());
  }
}

// ---------------------------------------------------------------------------
// Fuzz-style frame corruption table (mirrors h5lite_test's: every mutation
// of a valid frame must either decode cleanly or throw ConfigError)
// ---------------------------------------------------------------------------

void put_frame_u32(std::vector<std::byte>& frame, std::size_t at,
                   std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    frame[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

/// A frame over compressible data, so every codec id survives the
/// stored-fallback and the mutations hit real codec payloads.
std::vector<std::byte> corpus_frame(CodecId id) {
  return compress_frame(id, to_bytes(smooth_field(4096, 23)));
}

void expect_rejected_or_clean(const std::vector<std::byte>& frame) {
  try {
    const auto out = decompress_frame(frame);
    // A harmless mutation decodes to *something* bounded by the header's
    // (plausibility-capped) raw size; reaching here without a crash or a
    // giant allocation is the audited outcome.
    EXPECT_LE(out.size(),
              std::max<std::size_t>(64u << 20, frame.size() << 10));
  } catch (const ConfigError&) {
    // rejected with a precise error: the audited outcome
  }
}

struct FrameCorruptionCase {
  const char* name;
  void (*mutate)(std::vector<std::byte>&);
};

const FrameCorruptionCase kFrameCorruptionTable[] = {
    {"truncate_to_empty", [](std::vector<std::byte>& f) { f.clear(); }},
    {"truncate_inside_header", [](std::vector<std::byte>& f) { f.resize(3); }},
    {"truncate_to_header_only", [](std::vector<std::byte>& f) { f.resize(5); }},
    {"truncate_body_half",
     [](std::vector<std::byte>& f) { f.resize(5 + (f.size() - 5) / 2); }},
    {"raw_size_plus_one",
     [](std::vector<std::byte>& f) {
       put_frame_u32(f, 1, static_cast<std::uint32_t>(4096 * 8 + 1));
     }},
    {"raw_size_zero", [](std::vector<std::byte>& f) { put_frame_u32(f, 1, 0); }},
    // The decode bomb: a 4 GiB raw size over a few-KiB payload must be
    // rejected by the plausibility cap, not attempted.
    {"raw_size_decode_bomb",
     [](std::vector<std::byte>& f) { put_frame_u32(f, 1, 0xFFFFFFFFu); }},
    {"unknown_codec_id",
     [](std::vector<std::byte>& f) { f[0] = std::byte{0x7F}; }},
    {"codec_id_smashed_to_none",
     [](std::vector<std::byte>& f) { f[0] = std::byte{0}; }},
    {"first_body_byte_flipped",
     [](std::vector<std::byte>& f) {
       if (f.size() > 5) f[5] ^= std::byte{0xFF};
     }},
    {"last_body_byte_flipped",
     [](std::vector<std::byte>& f) { f.back() ^= std::byte{0xFF}; }},
};

class FrameCorruptionTest
    : public ::testing::TestWithParam<std::tuple<CodecId, FrameCorruptionCase>> {
};

TEST_P(FrameCorruptionTest, RejectedOrHarmless) {
  const auto [id, corruption] = GetParam();
  std::vector<std::byte> frame = corpus_frame(id);
  corruption.mutate(frame);
  expect_rejected_or_clean(frame);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, FrameCorruptionTest,
    ::testing::Combine(::testing::Values(CodecId::kNone, CodecId::kRle,
                                         CodecId::kXorDelta, CodecId::kLzs,
                                         CodecId::kXorLzs),
                       ::testing::ValuesIn(kFrameCorruptionTable)),
    [](const auto& info) {
      const std::string base(codec_name(std::get<0>(info.param)));
      return (base == "xor+lzs" ? std::string("xorlzs") : base) + "_" +
             std::get<1>(info.param).name;
    });

TEST(FrameCorruptionTest, EveryTruncationLengthIsRejectedOrClean) {
  const auto frame = corpus_frame(CodecId::kXorLzs);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::vector<std::byte> cut(frame.begin(),
                               frame.begin() + static_cast<std::ptrdiff_t>(len));
    expect_rejected_or_clean(cut);
  }
}

TEST(FrameCorruptionTest, RandomByteFlipsNeverEscapeConfigError) {
  const auto frame = corpus_frame(CodecId::kLzs);
  Rng rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> mutated = frame;
    const std::size_t at = rng.next_below(mutated.size());
    mutated[at] ^= static_cast<std::byte>(1u << rng.next_below(8));
    expect_rejected_or_clean(mutated);
  }
}

TEST(FrameCorruptionTest, DecodeBombIsRejectedBeforeAllocating) {
  // Hand-crafted hostile frame: RLE codec id, a 4 GiB raw size, and a
  // payload whose single token claims an enormous repeat run.  Both
  // guards must hold: the frame-level plausibility cap, and (for the
  // direct codec API, where h5lite pre-validates sizes) the
  // check-before-materialize token bound.
  std::vector<std::byte> frame{std::byte{1}};  // kRle
  for (int i = 0; i < 4; ++i) frame.push_back(std::byte{0xFF});  // raw = 4 GiB-1
  // varint control for a repeat run of ~2^40 bytes (odd control).
  const std::uint64_t control = ((1ull << 40) * 2) + 1;
  std::uint64_t v = control;
  while (v >= 0x80) {
    frame.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  frame.push_back(static_cast<std::byte>(v));
  frame.push_back(std::byte{0x42});  // the byte to repeat
  EXPECT_THROW((void)decompress_frame(frame), ConfigError);

  // Same hostile token straight through the codec API with a small
  // declared raw size: the token bound must fire before any insert.
  const std::span<const std::byte> body(frame.data() + 5, frame.size() - 5);
  EXPECT_THROW((void)find_codec(CodecId::kRle)->decompress(body, 64),
               ConfigError);
}

TEST(FrameCorruptionTest, EmptyCodecBodyWithNonzeroRawSizeRejected) {
  std::vector<std::byte> frame{std::byte{3}};  // kLzs
  frame.push_back(std::byte{16});              // raw_size = 16
  frame.push_back(std::byte{0});
  frame.push_back(std::byte{0});
  frame.push_back(std::byte{0});
  EXPECT_THROW((void)decompress_frame(frame), ConfigError);
}

// The emit path runs codecs concurrently on server workers (one EmitStage
// per node, many servers): the stateless-codec claim is now load-bearing
// and runs under TSan in CI.
TEST(CodecTest, CodecsAreThreadSafeUnderConcurrentUse) {
  const auto smooth = to_bytes(smooth_field(16 * 1024, 31));
  const auto noisy = random_bytes(16 * 1024, 37);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const auto& input = (t % 2 == 0) ? smooth : noisy;
      for (CodecId id : {CodecId::kRle, CodecId::kXorDelta, CodecId::kLzs,
                         CodecId::kXorLzs}) {
        const Codec* codec = find_codec(id);
        const auto packed = codec->compress(input);
        ASSERT_EQ(codec->decompress(packed, input.size()), input);
        const auto frame = compress_frame(id, input);
        ASSERT_EQ(decompress_frame(frame), input);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace dedicore::compress
