// Tests for the compression codecs: round-trip properties on adversarial
// and realistic inputs, ratio expectations on smooth fields, framing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "compress/codec.hpp"

namespace dedicore::compress {
namespace {

std::vector<std::byte> to_bytes(const std::vector<double>& values) {
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

/// A smooth 1-D field resembling one pencil of a CM1 variable: a constant
/// base state with a smoothly varying active region.  Note the low
/// mantissa bits of a transcendental sequence are effectively random; it
/// is the constant/quiescent majority that makes simulation output
/// compressible, exactly as in real atmospheric fields.
std::vector<double> smooth_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n, 300.0);
  double phase = rng.uniform(0, 3.14);
  for (std::size_t i = 0; i < n / 5; ++i)
    out[i + n / 5] = 300.0 + 3.0 * std::sin(0.01 * static_cast<double>(i) + phase);
  return out;
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<CodecId, std::size_t>> {};

TEST_P(CodecRoundTripTest, RandomDataRoundTrips) {
  const auto [id, size] = GetParam();
  const Codec* codec = find_codec(id);
  ASSERT_NE(codec, nullptr);
  const auto input = random_bytes(size, size ^ 0x5a5a);
  const auto packed = codec->compress(input);
  const auto restored = codec->decompress(packed, input.size());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, SmoothFieldRoundTrips) {
  const auto [id, size] = GetParam();
  const Codec* codec = find_codec(id);
  ASSERT_NE(codec, nullptr);
  const auto input = to_bytes(smooth_field(size / 8 + 1, 42));
  const auto packed = codec->compress(input);
  const auto restored = codec->decompress(packed, input.size());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, ConstantDataRoundTripsAndShrinks) {
  const auto [id, size] = GetParam();
  if (size == 0) GTEST_SKIP();
  const Codec* codec = find_codec(id);
  const std::vector<std::byte> input(size, std::byte{0x3C});
  const auto packed = codec->compress(input);
  EXPECT_EQ(codec->decompress(packed, size), input);
  if (size >= 64) {
    EXPECT_LT(packed.size(), input.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllSizes, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(CodecId::kRle, CodecId::kXorDelta,
                                         CodecId::kLzs, CodecId::kXorLzs),
                       ::testing::Values(0, 1, 7, 8, 63, 1024, 65537)),
    [](const auto& info) {
      const CodecId id = std::get<0>(info.param);
      const std::size_t size = std::get<1>(info.param);
      const std::string base(codec_name(id));
      return (base == "xor+lzs" ? std::string("xorlzs") : base) + "_" +
             std::to_string(size);
    });

TEST(CodecTest, RepetitivePatternCompressesWithLzs) {
  std::vector<std::byte> input;
  const char* pattern = "dedicated-core-io:";
  for (int i = 0; i < 500; ++i)
    for (const char* p = pattern; *p; ++p)
      input.push_back(static_cast<std::byte>(*p));
  const Codec* lzs = find_codec(CodecId::kLzs);
  const auto packed = lzs->compress(input);
  EXPECT_LT(packed.size(), input.size() / 10);
  EXPECT_EQ(lzs->decompress(packed, input.size()), input);
}

TEST(CodecTest, SmoothFloatFieldReachesPaperLikeRatio) {
  // §IV.D reports a "600% compression ratio" on CM1 data.  A smooth field
  // under xor+lzs should land in that regime (>= 4x here).
  const auto input = to_bytes(smooth_field(64 * 1024, 7));
  const Codec* codec = find_codec(CodecId::kXorLzs);
  const auto packed = codec->compress(input);
  const double ratio = compression_ratio(input.size(), packed.size());
  EXPECT_GE(ratio, 4.0) << "got ratio " << ratio;
  EXPECT_EQ(codec->decompress(packed, input.size()), input);
}

TEST(CodecTest, XorBeatsRleOnSmoothData) {
  const auto input = to_bytes(smooth_field(16 * 1024, 9));
  const auto rle = find_codec(CodecId::kRle)->compress(input);
  const auto xor_rle = find_codec(CodecId::kXorDelta)->compress(input);
  EXPECT_LT(xor_rle.size(), rle.size());
}

TEST(CodecTest, DecompressRejectsCorruptPayloads) {
  const Codec* lzs = find_codec(CodecId::kLzs);
  const auto input = random_bytes(1024, 3);
  auto packed = lzs->compress(input);
  // Wrong raw size must be detected.
  EXPECT_THROW((void)lzs->decompress(packed, input.size() + 1), ConfigError);
  // Truncation must be detected.
  packed.resize(packed.size() / 2);
  EXPECT_THROW((void)lzs->decompress(packed, input.size()), ConfigError);
}

TEST(CodecTest, RleRejectsBadDistanceEncoding) {
  // A match token with distance 0 is never produced by the compressor.
  std::vector<std::byte> bogus{std::byte{9}, std::byte{0}};  // match len 4, dist 0
  EXPECT_THROW((void)find_codec(CodecId::kLzs)->decompress(bogus, 4), ConfigError);
}

TEST(CodecTest, RegistryLookups) {
  EXPECT_EQ(find_codec("rle")->name(), "rle");
  EXPECT_EQ(find_codec("xor")->name(), "xor");
  EXPECT_EQ(find_codec("lzs")->name(), "lzs");
  EXPECT_EQ(find_codec("xor+lzs")->name(), "xor+lzs");
  EXPECT_EQ(find_codec("zstd"), nullptr);
  EXPECT_EQ(find_codec(CodecId::kNone), nullptr);
  EXPECT_EQ(codec_id("none"), CodecId::kNone);
  EXPECT_EQ(codec_id(""), CodecId::kNone);
  EXPECT_EQ(codec_id("xor+lzs"), CodecId::kXorLzs);
  EXPECT_THROW(codec_id("bogus"), ConfigError);
  EXPECT_EQ(codec_name(CodecId::kNone), "none");
}

TEST(CodecTest, FrameRoundTripsAllCodecs) {
  const auto input = to_bytes(smooth_field(4096, 11));
  for (CodecId id : {CodecId::kNone, CodecId::kRle, CodecId::kXorDelta,
                     CodecId::kLzs, CodecId::kXorLzs}) {
    const auto frame = compress_frame(id, input);
    EXPECT_EQ(decompress_frame(frame), input) << "codec " << codec_name(id);
  }
}

TEST(CodecTest, FrameFallsBackToStoredOnIncompressibleData) {
  const auto input = random_bytes(4096, 17);
  const auto frame = compress_frame(CodecId::kXorLzs, input);
  // Never grows more than the 5-byte header.
  EXPECT_LE(frame.size(), input.size() + 5);
  EXPECT_EQ(decompress_frame(frame), input);
}

TEST(CodecTest, FrameRejectsTruncatedHeader) {
  std::vector<std::byte> tiny{std::byte{1}, std::byte{2}};
  EXPECT_THROW(decompress_frame(tiny), ConfigError);
}

TEST(CodecTest, CompressionRatioHelper) {
  EXPECT_DOUBLE_EQ(compression_ratio(600, 100), 6.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 0), 0.0);
}

TEST(CodecTest, EmptyInputProducesEmptyOutput) {
  for (CodecId id : {CodecId::kRle, CodecId::kXorDelta, CodecId::kLzs,
                     CodecId::kXorLzs}) {
    const Codec* codec = find_codec(id);
    const auto packed = codec->compress({});
    EXPECT_TRUE(codec->decompress(packed, 0).empty());
  }
}

}  // namespace
}  // namespace dedicore::compress
