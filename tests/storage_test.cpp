// Storage-backend conformance + round-trip suite (mirrors the
// transport_test.cpp approach: one contract, every backend).
//
//   * Conformance: the StorageBackend contract of storage/backend.hpp run
//     against both SimBackend (filesystem simulator) and PosixBackend
//     (real files in a TempDir) — same content semantics, same
//     FileSystemStats-equivalent counters, write-after-close rejected
//     with a Status error, double close crashes.
//   * Round-trips: h5lite images written through PosixBackend into a real
//     TempDir re-read byte-identical to the fsim-produced image, in both
//     the file-per-process and the collective shared-file layouts.
//   * WriteBehind: async draining, byte-budget backpressure, shutdown
//     flush.
//   * End to end: a dedicated-cores Runtime with <storage backend="posix">
//     and server_workers=2 produces the same h5lite files on disk as the
//     sim-backed twin run, with the write-behind queue drained by the
//     worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <thread>
#include <vector>

#include "core/baseline_io.hpp"
#include "core/emit_stage.hpp"
#include "core/runtime.hpp"
#include "framework/test_infra.hpp"
#include "h5lite/h5lite.hpp"
#include "minimpi/minimpi.hpp"
#include "storage/crc32c.hpp"
#include "storage/placement.hpp"
#include "storage/posix_backend.hpp"
#include "storage/sharded_backend.hpp"
#include "storage/sim_backend.hpp"
#include "storage/write_behind.hpp"

namespace dedicore {
namespace {

using storage::FileHandle;
using storage::PosixBackend;
using storage::ShardedBackend;
using storage::ShardedOptions;
using storage::SimBackend;
using storage::StorageBackend;
using storage::WriteBehind;

fsim::StorageConfig quiet_storage() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 400e6;
  cfg.mds_op_cost = 1e-4;
  cfg.jitter_sigma = 0.0;
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;
  return cfg;
}

fsim::TimeScale fast_scale() { return fsim::TimeScale{1e-4, 0.01}; }

std::vector<std::byte> pattern_bytes(std::size_t n, int salt = 0) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(salt) * 7) % 251);
  return out;
}

// ---------------------------------------------------------------------------
// Conformance harness: both backends behind one factory
// ---------------------------------------------------------------------------

enum class Kind { kSim, kPosix, kSharded };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSim: return "sim";
    case Kind::kPosix: return "posix";
    case Kind::kSharded: return "sharded";
  }
  return "?";
}

/// Default root width for the sharded fixtures.  CI overrides it with
/// DEDICORE_SHARDED_ROOTS=4 to rerun the whole suite against a wider
/// layout; tests whose assertions depend on an exact width pass one
/// explicitly.
std::size_t default_sharded_root_count() {
  if (const char* env = std::getenv("DEDICORE_SHARDED_ROOTS")) {
    const int n = std::atoi(env);
    if (n >= 2 && n <= 8) return static_cast<std::size_t>(n);
  }
  return 3;
}

/// Sibling root directories under one scratch dir — the sharded fixture
/// layout (also used by the dedicated sharded tests below).  `count` 0
/// means the suite default (3, or DEDICORE_SHARDED_ROOTS).
std::vector<std::filesystem::path> sharded_roots(const testing::TempDir& dir,
                                                 std::size_t count = 0) {
  if (count == 0) count = default_sharded_root_count();
  std::vector<std::filesystem::path> roots;
  for (std::size_t i = 0; i < count; ++i)
    roots.push_back(dir.path() / ("r" + std::to_string(i)));
  return roots;
}

/// Owns whichever substrate the backend under test needs (simulator or
/// scratch directory) so each test gets a fresh, isolated instance.
struct BackendFixture {
  explicit BackendFixture(Kind kind) {
    if (kind == Kind::kSim) {
      fs = std::make_unique<fsim::FileSystem>(quiet_storage(), fast_scale());
      backend = std::make_unique<SimBackend>(*fs);
    } else if (kind == Kind::kPosix) {
      dir = std::make_unique<testing::TempDir>("storage_posix");
      backend = std::make_unique<PosixBackend>(dir->path());
    } else {
      // Deliberately awkward numbers: a 1000-byte stripe makes every
      // conformance payload multi-chunk with a short tail, and
      // replication 2 over 3 roots exercises the replica paths on the
      // whole contract, not just the dedicated integrity tests.
      dir = std::make_unique<testing::TempDir>("storage_sharded");
      ShardedOptions opts;
      opts.chunk_size = 1000;
      opts.replication = 2;
      backend = std::make_unique<ShardedBackend>(sharded_roots(*dir), opts);
    }
  }

  std::unique_ptr<fsim::FileSystem> fs;
  std::unique_ptr<testing::TempDir> dir;
  std::unique_ptr<StorageBackend> backend;
};

class StorageConformanceTest : public ::testing::TestWithParam<Kind> {};

TEST_P(StorageConformanceTest, CreateWriteCloseReadBack) {
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;

  const auto payload = pattern_bytes(4096);
  FileHandle f;
  ASSERT_OK(b.create("run/data.bin", &f));
  double seconds = -1.0;
  ASSERT_OK(b.write(f, payload, &seconds));
  EXPECT_GE(seconds, 0.0);
  ASSERT_OK(b.close(f));

  EXPECT_TRUE(b.exists("run/data.bin"));
  EXPECT_EQ(b.file_size("run/data.bin"), payload.size());
  const auto content = b.read_file("run/data.bin");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, payload);
}

TEST_P(StorageConformanceTest, AppendsGrowAndPwriteFillsSparseHoles) {
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;

  FileHandle f;
  ASSERT_OK(b.create("sparse.bin", &f));
  const auto chunk = pattern_bytes(64, 1);
  ASSERT_OK(b.write(f, chunk));
  ASSERT_OK(b.write(f, chunk));          // append semantics
  ASSERT_OK(b.pwrite(f, 200, chunk));    // hole between 128 and 200
  ASSERT_OK(b.close(f));

  EXPECT_EQ(b.file_size("sparse.bin"), 264u);
  const auto content = *b.read_file("sparse.bin");
  EXPECT_EQ(std::to_integer<int>(content[199]), 0);  // hole zero-filled
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), content.begin() + 200));
  // An append after a positional write past EOF continues from the new end.
  FileHandle g;
  ASSERT_OK(b.open("sparse.bin", &g));
  ASSERT_OK(b.write(g, chunk));
  ASSERT_OK(b.close(g));
  EXPECT_EQ(b.file_size("sparse.bin"), 264u + 64u);
}

TEST_P(StorageConformanceTest, CreateTruncatesExisting) {
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  FileHandle f;
  ASSERT_OK(b.create("f", &f));
  ASSERT_OK(b.write(f, pattern_bytes(128)));
  ASSERT_OK(b.close(f));
  FileHandle g;
  ASSERT_OK(b.create("f", &g));
  ASSERT_OK(b.close(g));
  EXPECT_EQ(b.file_size("f"), 0u);
  EXPECT_EQ(b.file_count(), 1u);
}

TEST_P(StorageConformanceTest, OpenMissingIsNotFound) {
  BackendFixture fx(GetParam());
  FileHandle f;
  EXPECT_STATUS(fx.backend->open("nope", &f), StatusCode::kNotFound);
  EXPECT_FALSE(fx.backend->exists("nope"));
  EXPECT_FALSE(fx.backend->read_file("nope").has_value());
  EXPECT_EQ(fx.backend->file_size("nope"), 0u);
}

TEST_P(StorageConformanceTest, ListFilesIsSortedWithSlashedPaths) {
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  for (const char* path : {"b/two.bin", "a/one.bin", "c.bin"}) {
    FileHandle f;
    ASSERT_OK(b.create(path, &f));
    ASSERT_OK(b.close(f));
  }
  const auto files = b.list_files();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "a/one.bin");
  EXPECT_EQ(files[1], "b/two.bin");
  EXPECT_EQ(files[2], "c.bin");
  EXPECT_EQ(b.file_count(), 3u);
}

TEST_P(StorageConformanceTest, WriteAfterCloseIsAStatusErrorNotUb) {
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  FileHandle f;
  ASSERT_OK(b.create("closed.bin", &f));
  ASSERT_OK(b.close(f));
  EXPECT_STATUS(b.write(f, pattern_bytes(16)), StatusCode::kFailedPrecondition);
  EXPECT_STATUS(b.pwrite(f, 0, pattern_bytes(16)),
                StatusCode::kFailedPrecondition);
  // The failed writes left no trace.
  EXPECT_EQ(b.file_size("closed.bin"), 0u);
  EXPECT_EQ(b.stats().writes, 0u);
}

TEST_P(StorageConformanceTest, BadPathsAreRejected) {
  // Every backend enforces the same path rule: a configuration that runs
  // green on the simulator must not start failing when flipped to posix.
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  FileHandle f;
  EXPECT_STATUS(b.create("", &f), StatusCode::kInvalidArgument);
  EXPECT_STATUS(b.create("/absolute/path", &f), StatusCode::kInvalidArgument);
  EXPECT_STATUS(b.create("../outside.bin", &f), StatusCode::kInvalidArgument);
  EXPECT_STATUS(b.create("a/../../outside.bin", &f),
                StatusCode::kInvalidArgument);
  EXPECT_STATUS(b.open("../outside.bin", &f), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.stats().files_created, 0u);
}

TEST_P(StorageConformanceTest, CountersMatchTheWorkload) {
  // The FileSystemStats-equivalent counters must be identical for both
  // backends given the same call sequence.
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  for (int i = 0; i < 3; ++i) {
    FileHandle f;
    ASSERT_OK(b.create("out/f" + std::to_string(i), &f));
    ASSERT_OK(b.write(f, pattern_bytes(1000, i)));
    ASSERT_OK(b.write(f, pattern_bytes(24, i)));
    ASSERT_OK(b.close(f));
  }
  const storage::StorageStats stats = b.stats();
  EXPECT_EQ(stats.files_created, 3u);
  EXPECT_EQ(stats.writes, 6u);
  EXPECT_EQ(stats.bytes_written, 3u * 1024u);
  EXPECT_GE(stats.write_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageConformanceTest,
                         ::testing::Values(Kind::kSim, Kind::kPosix,
                                           Kind::kSharded),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return kind_name(info.param);
                         });

class StorageConformanceDeathTest : public ::testing::TestWithParam<Kind> {};

TEST_P(StorageConformanceDeathTest, DoubleCloseAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  BackendFixture fx(GetParam());
  StorageBackend& b = *fx.backend;
  FileHandle f;
  ASSERT_OK(b.create("once.bin", &f));
  ASSERT_OK(b.close(f));
  EXPECT_DEATH(static_cast<void>(b.close(f)), "double close");
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageConformanceDeathTest,
                         ::testing::Values(Kind::kSim, Kind::kPosix,
                                           Kind::kSharded),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return kind_name(info.param);
                         });

// PosixBackend specifics: real directory layout.
TEST(PosixBackendTest, FilesLandUnderTheRootOnTheRealFilesystem) {
  testing::TempDir dir("storage_root");
  PosixBackend backend(dir.path());
  FileHandle f;
  ASSERT_OK(backend.create("node0/it3.h5l", &f));
  ASSERT_OK(backend.write(f, pattern_bytes(100)));
  ASSERT_OK(backend.close(f));
  EXPECT_TRUE(std::filesystem::is_regular_file(dir.path() / "node0/it3.h5l"));
  EXPECT_EQ(std::filesystem::file_size(dir.path() / "node0/it3.h5l"), 100u);
  EXPECT_EQ(backend.open_handles(), 0u);
}

// ---------------------------------------------------------------------------
// h5lite round-trips: PosixBackend vs the fsim-produced image
// ---------------------------------------------------------------------------

core::Configuration writer_config() {
  core::Configuration cfg;
  cfg.set_architecture(4, 0);
  cfg.set_buffer(1 << 20, 64, core::BackpressurePolicy::kBlock);
  core::LayoutSpec grid;
  grid.name = "grid";
  grid.dtype = h5lite::DType::kFloat32;
  grid.extents = {16, 16};
  cfg.add_layout(grid);
  core::VariableSpec v;
  v.name = "alpha";
  v.layout = "grid";
  cfg.add_variable(v);
  cfg.validate();
  return cfg;
}

std::vector<float> rank_field(int rank) {
  std::vector<float> values(16 * 16);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(rank * 100) + 0.5f * static_cast<float>(i);
  return values;
}

core::IterationData data_of(const std::vector<float>& alpha) {
  core::IterationData data;
  data.emplace("alpha", std::as_bytes(std::span<const float>(alpha)));
  return data;
}

/// File-per-process layout: the same writer drives both backends; every
/// posix file must be byte-identical to its fsim twin and re-parse from
/// the real disk bytes.
TEST(StorageRoundTripTest, FilePerProcessImagesAreByteIdenticalAcrossBackends) {
  const core::Configuration cfg = writer_config();
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  SimBackend sim(fs);
  testing::TempDir dir("storage_fpp");
  PosixBackend posix(dir.path());

  core::FilePerProcessWriter sim_writer(sim, cfg, "fpp");
  core::FilePerProcessWriter posix_writer(posix, cfg, "fpp");
  for (int rank = 0; rank < 4; ++rank) {
    const auto alpha = rank_field(rank);
    sim_writer.write_iteration(rank, 2, data_of(alpha));
    posix_writer.write_iteration(rank, 2, data_of(alpha));
  }

  ASSERT_EQ(posix.list_files(), sim.list_files());
  for (const std::string& path : posix.list_files()) {
    const auto sim_bytes = sim.read_file(path);
    const auto posix_bytes = posix.read_file(path);
    ASSERT_TRUE(sim_bytes.has_value());
    ASSERT_TRUE(posix_bytes.has_value());
    EXPECT_EQ(*posix_bytes, *sim_bytes) << path;

    const h5lite::File file = h5lite::File::parse(*posix_bytes);
    const auto* ds = file.find_dataset("alpha");
    ASSERT_NE(ds, nullptr);
    const std::int64_t rank =
        std::get<std::int64_t>(file.root().attributes.at("rank"));
    EXPECT_EQ(ds->read_as<float>(), rank_field(static_cast<int>(rank)));
  }
}

/// Collective shared-file layout: positional writes assemble one shared
/// file; the posix copy must match the fsim copy byte for byte.
TEST(StorageRoundTripTest, SharedFileImagesAreByteIdenticalAcrossBackends) {
  const core::Configuration cfg = writer_config();
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  SimBackend sim(fs);
  testing::TempDir dir("storage_shared");
  PosixBackend posix(dir.path());

  for (StorageBackend* backend : {static_cast<StorageBackend*>(&sim),
                                  static_cast<StorageBackend*>(&posix)}) {
    core::CollectiveWriter writer(*backend, cfg, /*aggregator_group=*/2,
                                  "collective");
    minimpi::run_world(4, [&](minimpi::Comm& comm) {
      const auto alpha = rank_field(comm.rank());
      writer.write_iteration(comm, 0, data_of(alpha));
    });
  }

  const auto sim_bytes = sim.read_file("collective/shared_it0.h5l");
  const auto posix_bytes = posix.read_file("collective/shared_it0.h5l");
  ASSERT_TRUE(sim_bytes.has_value());
  ASSERT_TRUE(posix_bytes.has_value());
  EXPECT_EQ(*posix_bytes, *sim_bytes);

  const h5lite::File file = h5lite::File::parse(*posix_bytes);
  for (int r = 0; r < 4; ++r) {
    const auto* ds = file.find_dataset("alpha/r" + std::to_string(r));
    ASSERT_NE(ds, nullptr);
    EXPECT_EQ(ds->read_as<float>(), rank_field(r));
  }
}

// ---------------------------------------------------------------------------
// WriteBehind
// ---------------------------------------------------------------------------

TEST(WriteBehindTest, DrainWritesEveryEnqueuedImage) {
  testing::TempDir dir("wb_drain");
  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 1 << 20);

  for (int i = 0; i < 5; ++i)
    queue.enqueue({"out/f" + std::to_string(i) + ".h5l", 0,
                   pattern_bytes(2048, i)});
  EXPECT_EQ(queue.pending_jobs(), 5u);
  queue.drain_all();
  EXPECT_EQ(queue.pending_jobs(), 0u);
  EXPECT_EQ(queue.pending_bytes(), 0u);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.jobs_enqueued, 5u);
  EXPECT_EQ(stats.jobs_written, 5u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_EQ(stats.bytes_written, 5u * 2048u);
  EXPECT_EQ(backend.file_count(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(*backend.read_file("out/f" + std::to_string(i) + ".h5l"),
              pattern_bytes(2048, i));
}

TEST(WriteBehindTest, FullBudgetMakesTheProducerDrainBeforeEnqueueing) {
  testing::TempDir dir("wb_pressure");
  PosixBackend backend(dir.path());
  // Budget fits exactly one job: the second enqueue finds it exhausted.
  WriteBehind queue(backend, 1024);

  queue.enqueue({"a.bin", 0, pattern_bytes(1024)});
  EXPECT_EQ(queue.pending_jobs(), 1u);
  // Backpressure without deadlock: instead of parking (the producer may
  // be the only thread able to reach a drain site), the second enqueue
  // drains a.bin itself, then queues b.bin.  The producer's stall is
  // real — it spent the time on disk work — which is exactly the
  // pipeline-slowdown the budget exists to cause.
  queue.enqueue({"b.bin", 0, pattern_bytes(1024, 1)});
  EXPECT_EQ(backend.file_size("a.bin"), 1024u);
  EXPECT_EQ(queue.stats().jobs_written, 1u);
  EXPECT_EQ(queue.pending_jobs(), 1u);

  queue.drain_all();
  EXPECT_EQ(backend.file_count(), 2u);
  EXPECT_EQ(queue.stats().jobs_written, 2u);
  EXPECT_EQ(queue.pending_bytes(), 0u);
}

TEST(WriteBehindTest, OversizedJobIsAdmittedAlone) {
  testing::TempDir dir("wb_oversize");
  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 64);  // budget smaller than the image
  queue.enqueue({"big.bin", 0, pattern_bytes(4096)});
  queue.drain_all();
  EXPECT_EQ(backend.file_size("big.bin"), 4096u);
  EXPECT_EQ(queue.stats().jobs_written, 1u);
}

TEST(WriteBehindTest, CompletionHookReportsDrainTimeVerdicts) {
  // Durability is counted when the backend answers, not at enqueue: a
  // job the backend rejects must surface through on_complete (and
  // jobs_failed), never as a phantom success.
  testing::TempDir dir("wb_verdicts");
  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 1 << 20);

  std::vector<Status> verdicts;
  auto record = [&](const Status& st) { verdicts.push_back(st); };
  queue.enqueue({"ok.bin", 0, pattern_bytes(128), record});
  queue.enqueue({"../escape.bin", 0, pattern_bytes(128), record});
  queue.drain_all();

  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_OK(verdicts[0]);
  EXPECT_EQ(verdicts[1].code(), StatusCode::kInvalidArgument);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.jobs_written, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(backend.file_count(), 1u);
}

TEST(WriteBehindTest, ProducerDrainsItselfWhenNoDrainerCanRun) {
  // A producer that is the only live thread must never park on a full
  // budget (the old formulation deadlocked here: nobody else could ever
  // reach a drain site).  With a budget below one image it drains the
  // queued job itself and proceeds.
  testing::TempDir dir("wb_self_drain");
  PosixBackend backend(dir.path());
  WriteBehind queue(backend, 256);
  for (int i = 0; i < 3; ++i)
    queue.enqueue({"f" + std::to_string(i) + ".bin", 0, pattern_bytes(1024, i)});
  queue.drain_all();
  EXPECT_EQ(backend.file_count(), 3u);
  EXPECT_EQ(queue.stats().jobs_written, 3u);
}

TEST(WriteBehindTest, CloseFlushesRemainingJobs) {
  testing::TempDir dir("wb_close");
  auto backend = std::make_unique<PosixBackend>(dir.path());
  {
    WriteBehind queue(*backend, 1 << 20);
    queue.enqueue({"late.bin", 0, pattern_bytes(512)});
    // Destructor closes and drains.
  }
  EXPECT_EQ(backend->file_size("late.bin"), 512u);
  // Cleanup ordering: the backend (holding the root) dies before TempDir
  // removes the directory — the fixture must not leak it.
  backend.reset();
}

// ---------------------------------------------------------------------------
// Integrity layer: CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVector) {
  // The canonical CRC32C check value (RFC 3720 appendix / every storage
  // system's self-test): crc32c("123456789") == 0xE3069283.
  const std::string nine = "123456789";
  EXPECT_EQ(storage::crc32c(std::as_bytes(std::span<const char>(nine.data(),
                                                                nine.size()))),
            0xE3069283u);
  EXPECT_EQ(storage::crc32c({}), 0u);
}

TEST(Crc32cTest, IncrementalExtendMatchesOneShot) {
  const auto data = pattern_bytes(4096, 3);
  const std::uint32_t whole = storage::crc32c(data);
  std::uint32_t crc = 0;
  std::span<const std::byte> view(data);
  for (std::size_t off = 0; off < view.size(); off += 997)
    crc = storage::crc32c_extend(
        crc, view.subspan(off, std::min<std::size_t>(997, view.size() - off)));
  EXPECT_EQ(crc, whole);
  // Sensitivity: one flipped bit anywhere changes the checksum.
  auto copy = data;
  copy[1234] ^= std::byte{0x10};
  EXPECT_NE(storage::crc32c(copy), whole);
}

// ---------------------------------------------------------------------------
// Placement layer
// ---------------------------------------------------------------------------

TEST(PlacementTest, RoundRobinIsDeterministicWithDistinctReplicas) {
  const std::vector<std::uint64_t> sizes = {512, 512, 512, 100};
  storage::Placement a(storage::PlacementPolicy::kRoundRobin, 4, 2, 42);
  storage::Placement b(storage::PlacementPolicy::kRoundRobin, 4, 2, 42);
  const auto pa = a.place("out/img.h5l", sizes);
  const auto pb = b.place("out/img.h5l", sizes);
  ASSERT_EQ(pa.size(), sizes.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].roots, pb[i].roots) << "chunk " << i;
    ASSERT_EQ(pa[i].roots.size(), 2u);
    EXPECT_NE(pa[i].roots[0], pa[i].roots[1]) << "replicas share a root";
  }
  // Consecutive chunks walk the roots cyclically.
  EXPECT_EQ(pa[1].roots[0], (pa[0].roots[0] + 1) % 4);
  EXPECT_EQ(pa[2].roots[0], (pa[1].roots[0] + 1) % 4);
}

TEST(PlacementTest, BalancedEvensOutBytesOutstanding) {
  storage::Placement p(storage::PlacementPolicy::kBalanced, 4, 1, 0);
  // A huge image first: root 0 (lowest index wins the tie) takes it.
  (void)p.place("huge", {1 << 20});
  // Subsequent chunks must avoid the loaded root until the others catch
  // up: place 3 MiB more in 64 KiB chunks, then check the spread.
  const std::vector<std::uint64_t> chunk(16, 64 << 10);
  for (int i = 0; i < 3; ++i)
    (void)p.place("img" + std::to_string(i), chunk);
  const auto assigned = p.assigned_bytes();
  const auto [lo, hi] = std::minmax_element(assigned.begin(), assigned.end());
  // Every root converges to within one chunk of the mean.
  EXPECT_LE(*hi - *lo, (64u << 10) + (1u << 20) / 4);
  // All roots participated.
  for (const auto bytes : assigned) EXPECT_GT(bytes, 0u);
}

// ---------------------------------------------------------------------------
// Sharded backend: layout, manifests, per-root stats, fault targeting
// ---------------------------------------------------------------------------

/// All on-disk copies of a root-relative name across the fixture's roots.
std::vector<std::filesystem::path> copies_of(
    const std::vector<std::filesystem::path>& roots, const std::string& rel) {
  std::vector<std::filesystem::path> out;
  for (const auto& root : roots)
    if (std::filesystem::exists(root / rel)) out.push_back(root / rel);
  return out;
}

void flip_byte(const std::filesystem::path& file, std::uint64_t offset) {
  std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(io.is_open()) << file;
  io.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  io.read(&c, 1);
  c = static_cast<char>(c ^ 0x20);
  io.seekp(static_cast<std::streamoff>(offset));
  io.write(&c, 1);
}

TEST(ShardedBackendTest, ChunksStripeAcrossRootsBehindOneManifest) {
  testing::TempDir dir("sharded_layout");
  const auto roots = sharded_roots(dir, 3);  // exactly 3: spread asserted
  ShardedOptions opts;
  opts.chunk_size = 512;
  ShardedBackend b(roots, opts);

  const auto payload = pattern_bytes(1800, 9);  // 4 chunks, short tail
  ASSERT_OK(storage::write_image(b, "out/img.bin", payload));

  // Physical layout: 4 chunk files spread over the roots, plus the
  // manifest; the logical namespace shows exactly one file.
  EXPECT_EQ(copies_of(roots, "out/img.bin.chunk-0").size(), 1u);
  EXPECT_EQ(copies_of(roots, "out/img.bin.chunk-3").size(), 1u);
  EXPECT_EQ(copies_of(roots, "out/img.bin.manifest").size(), 1u);
  EXPECT_EQ(b.list_files(), std::vector<std::string>{"out/img.bin"});
  EXPECT_EQ(b.file_size("out/img.bin"), payload.size());
  // Round-robin walks the roots cyclically: with 4 chunks on 3 roots
  // every root holds at least one chunk.
  for (const auto& root : roots) {
    std::size_t chunks = 0;
    for (int c = 0; c < 4; ++c)
      chunks += std::filesystem::exists(
          root / ("out/img.bin.chunk-" + std::to_string(c)));
    EXPECT_GE(chunks, 1u) << root;
  }
  // Verified read returns the exact bytes, not degraded.
  std::vector<std::byte> back;
  bool degraded = true;
  ASSERT_OK(b.read_image("out/img.bin", &back, &degraded));
  EXPECT_EQ(back, payload);
  EXPECT_FALSE(degraded);
}

TEST(ShardedBackendTest, TwinBackendsProduceIdenticalLayouts) {
  // Determinism under a seed: two independent stacks given the same
  // write sequence place every chunk file on the same root — the
  // property that makes twin-run comparisons (and layout debugging)
  // possible at all.
  for (const auto policy : {storage::PlacementPolicy::kRoundRobin,
                            storage::PlacementPolicy::kBalanced}) {
    testing::TempDir da("sharded_twin_a");
    testing::TempDir db("sharded_twin_b");
    ShardedOptions opts;
    opts.chunk_size = 512;
    opts.placement = policy;
    opts.placement_seed = 2026;
    ShardedBackend a(sharded_roots(da), opts);
    ShardedBackend b(sharded_roots(db), opts);
    for (int i = 0; i < 5; ++i) {
      const auto img = pattern_bytes(700 + 400 * static_cast<std::size_t>(i), i);
      ASSERT_OK(storage::write_image(a, "img" + std::to_string(i), img));
      ASSERT_OK(storage::write_image(b, "img" + std::to_string(i), img));
    }
    for (std::size_t r = 0; r < a.root_count(); ++r)
      EXPECT_EQ(a.root_backend(r).list_files(), b.root_backend(r).list_files())
          << placement_policy_name(policy) << " root " << r;
  }
}

TEST(ShardedBackendTest, PerRootStatsAccountPhysicalBytes) {
  testing::TempDir dir("sharded_stats");
  ShardedOptions opts;
  opts.chunk_size = 512;
  opts.replication = 2;
  ShardedBackend b(sharded_roots(dir), opts);

  const auto payload = pattern_bytes(1280, 4);  // chunks 512+512+256
  ASSERT_OK(storage::write_image(b, "img.bin", payload));

  // Logical stats stay image-granular (conformance parity with sim/posix).
  EXPECT_EQ(b.stats().files_created, 1u);
  EXPECT_EQ(b.stats().bytes_written, payload.size());
  // Physical per-root stats carry the replicated chunk bytes plus the two
  // manifest copies.
  std::uint64_t physical = 0, files = 0;
  for (const auto& rs : b.root_stats()) {
    physical += rs.bytes_written;
    files += rs.files_created;
  }
  EXPECT_GE(physical, 2 * payload.size());  // replication doubles the bytes
  EXPECT_EQ(files, 3u * 2u + 2u);           // 3 chunks x2 + 2 manifest copies
  const auto counters = b.counters();
  EXPECT_EQ(counters.chunks_written, 6u);
  EXPECT_EQ(counters.manifests_published, 1u);
  EXPECT_EQ(counters.degraded_chunk_writes, 0u);
  // The JSON snapshot exposes the whole stack.
  const std::string json = b.stats_json();
  EXPECT_NE(json.find("\"per_root\""), std::string::npos);
  EXPECT_NE(json.find("\"chunks_written\":6"), std::string::npos);
  EXPECT_NE(json.find("\"replication\":2"), std::string::npos);
}

TEST(PosixBackendTest, ErrorStatusesCarryRootAndOperation) {
  // Satellite: with N roots a bare "pwrite failed" is useless; every
  // PosixBackend error must name the operation and the root.
  testing::TempDir dir("posix_errmsg");
  auto faults = std::make_shared<fault::FaultInjector>(7);
  faults->arm({.point = "posix.pwrite", .count = 1});
  PosixBackend backend(dir.path(), faults);
  FileHandle f;
  ASSERT_OK(backend.create("a/img.bin", &f));
  const Status st = backend.write(f, pattern_bytes(64));
  ASSERT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("pwrite"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("[root " + dir.path().string() + "]"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("a/img.bin"), std::string::npos) << st.message();
  ASSERT_OK(backend.close(f));
}

TEST(ShardedBackendTest, FaultTargetingFailsOneRootOfMany) {
  // posix.* probes carry the root index as the fault target: a plan can
  // take down exactly one root.  With replication=2 every chunk still
  // lands (degraded) and reads recover the full image.
  testing::TempDir dir("sharded_fault_target");
  auto faults = std::make_shared<fault::FaultInjector>(11);
  faults->arm({.point = "posix.pwrite", .target = 1, .count = 100000});
  ShardedOptions opts;
  opts.chunk_size = 256;
  opts.replication = 2;
  ShardedBackend b(sharded_roots(dir, 2), opts, faults);

  const auto payload = pattern_bytes(1024, 5);  // 4 chunks, both roots planned
  ASSERT_OK(storage::write_image(b, "img.bin", payload));

  // Root 1 rejected every pwrite, so only root 0 holds data; each chunk
  // lost one planned replica.
  EXPECT_EQ(b.root_backend(1).stats().bytes_written, 0u);
  EXPECT_GT(b.root_backend(0).stats().bytes_written, 0u);
  EXPECT_EQ(b.counters().degraded_chunk_writes, 4u);
  EXPECT_GT(faults->fired("posix.pwrite"), 0u);

  // Degraded read: chunks whose primary was root 1 are served by the
  // surviving copy, byte-identical.
  std::vector<std::byte> back;
  bool degraded = false;
  ASSERT_OK(b.read_image("img.bin", &back, &degraded));
  EXPECT_EQ(back, payload);
  EXPECT_TRUE(degraded);
  EXPECT_GT(b.counters().degraded_reads, 0u);
}

// ---------------------------------------------------------------------------
// Integrity: corruption table over striped chunks (satellite)
// ---------------------------------------------------------------------------

struct CorruptionCase {
  const char* name;
  /// Applied to the single on-disk copy of chunk 1 (replication=1).
  void (*corrupt)(const std::filesystem::path& chunk);
};

class ShardedCorruptionTest
    : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(ShardedCorruptionTest, UnreplicatedCorruptionIsDataLoss) {
  testing::TempDir dir("sharded_corrupt");
  const auto roots = sharded_roots(dir);
  ShardedOptions opts;
  opts.chunk_size = 512;
  ShardedBackend b(roots, opts);
  const auto payload = pattern_bytes(1800, 7);
  ASSERT_OK(storage::write_image(b, "img.bin", payload));

  const auto copies = copies_of(roots, "img.bin.chunk-1");
  ASSERT_EQ(copies.size(), 1u);
  GetParam().corrupt(copies.front());

  std::vector<std::byte> back;
  const Status st = b.read_image("img.bin", &back);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.to_string();
  EXPECT_NE(st.message().find("chunk 1"), std::string::npos) << st.message();
  EXPECT_FALSE(b.read_file("img.bin").has_value());
  // The other chunks were untouched, so the error names chunk 1 and
  // nothing else: detection is precise, not a whole-image writeoff.
  EXPECT_EQ(st.message().find("chunk 0"), std::string::npos) << st.message();
}

INSTANTIATE_TEST_SUITE_P(
    Corruptions, ShardedCorruptionTest,
    ::testing::Values(
        CorruptionCase{"bitflip_first_byte",
                       [](const std::filesystem::path& p) { flip_byte(p, 0); }},
        CorruptionCase{"bitflip_mid",
                       [](const std::filesystem::path& p) {
                         flip_byte(p, 200);
                       }},
        CorruptionCase{"bitflip_last_byte",
                       [](const std::filesystem::path& p) {
                         flip_byte(p, std::filesystem::file_size(p) - 1);
                       }},
        CorruptionCase{"truncated_half",
                       [](const std::filesystem::path& p) {
                         std::filesystem::resize_file(
                             p, std::filesystem::file_size(p) / 2);
                       }},
        CorruptionCase{"truncated_empty",
                       [](const std::filesystem::path& p) {
                         std::filesystem::resize_file(p, 0);
                       }},
        CorruptionCase{"grown_tail",
                       [](const std::filesystem::path& p) {
                         std::filesystem::resize_file(
                             p, std::filesystem::file_size(p) + 16);
                       }},
        CorruptionCase{"deleted",
                       [](const std::filesystem::path& p) {
                         std::filesystem::remove(p);
                       }}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
      return info.param.name;
    });

TEST(ShardedBackendTest, CorruptManifestIsDataLossNotGarbage) {
  testing::TempDir dir("sharded_badmanifest");
  const auto roots = sharded_roots(dir);
  ShardedOptions opts;
  opts.chunk_size = 512;
  ShardedBackend b(roots, opts);
  ASSERT_OK(storage::write_image(b, "img.bin", pattern_bytes(1000, 2)));
  const auto manifests = copies_of(roots, "img.bin.manifest");
  ASSERT_EQ(manifests.size(), 1u);
  flip_byte(manifests.front(), 0);  // break the header line
  std::vector<std::byte> back;
  EXPECT_EQ(b.read_image("img.bin", &back).code(), StatusCode::kDataLoss);
}

TEST(ShardedBackendTest, ReplicationRecoversFromCorruptionByteIdentical) {
  testing::TempDir dir("sharded_recover");
  const auto roots = sharded_roots(dir);
  ShardedOptions opts;
  opts.chunk_size = 512;
  opts.replication = 2;
  ShardedBackend b(roots, opts);
  const auto payload = pattern_bytes(1800, 8);
  ASSERT_OK(storage::write_image(b, "img.bin", payload));

  // Corrupt every first copy of every chunk: reads must fall through to
  // the replicas and still return the exact original bytes.
  for (int c = 0; c < 4; ++c) {
    const auto copies =
        copies_of(roots, "img.bin.chunk-" + std::to_string(c));
    ASSERT_EQ(copies.size(), 2u) << "chunk " << c;
    flip_byte(copies.front(), 100);
  }
  std::vector<std::byte> back;
  bool degraded = false;
  ASSERT_OK(b.read_image("img.bin", &back, &degraded));
  EXPECT_EQ(back, payload);
  EXPECT_GE(b.counters().corrupt_chunks_detected, 1u);

  // Corrupt the surviving copies too: now it is data loss.
  for (int c = 0; c < 4; ++c)
    for (const auto& copy :
         copies_of(roots, "img.bin.chunk-" + std::to_string(c)))
      flip_byte(copy, 101);
  EXPECT_EQ(b.read_image("img.bin", &back).code(), StatusCode::kDataLoss);
}

TEST(ShardedBackendTest, LosingAWholeRootDegradesButServesReads) {
  testing::TempDir dir("sharded_rootloss");
  const auto roots = sharded_roots(dir);
  ShardedOptions opts;
  opts.chunk_size = 512;
  opts.replication = 2;
  const auto payload = pattern_bytes(2000, 6);
  {
    ShardedBackend writer(roots, opts);
    ASSERT_OK(storage::write_image(writer, "img.bin", payload));
  }
  // The disk holding root 1 dies.
  std::filesystem::remove_all(roots[1]);

  // A fresh stack over the same roots (restart) still serves the image
  // from the surviving replicas — including the replicated manifest.
  ShardedBackend reader(roots, opts);
  std::vector<std::byte> back;
  bool degraded = false;
  ASSERT_OK(reader.read_image("img.bin", &back, &degraded));
  EXPECT_EQ(back, payload);
  EXPECT_TRUE(reader.exists("img.bin"));
  EXPECT_EQ(reader.list_files(), std::vector<std::string>{"img.bin"});
}

// ---------------------------------------------------------------------------
// Manifest generations: overwrite correctness, hostile-manifest hardening
// ---------------------------------------------------------------------------

void write_text(const std::filesystem::path& file, const std::string& text) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << file;
  out << text;
}

std::string read_text(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(ShardedBackendTest, OverwriteServesNewestGenerationAndCleansStaleCopies) {
  // Balanced placement re-decides the manifest roots on every overwrite,
  // so the new manifest can land somewhere else entirely; the old copy
  // must neither survive (publish deletes strays) nor win (readers pick
  // the highest generation).
  testing::TempDir dir("sharded_overwrite");
  const auto roots = sharded_roots(dir, 2);
  ShardedOptions opts;
  opts.chunk_size = 512;
  opts.placement = storage::PlacementPolicy::kBalanced;
  ShardedBackend b(roots, opts);
  const auto v1 = pattern_bytes(1500, 1);
  const auto v2 = pattern_bytes(700, 2);
  ASSERT_OK(storage::write_image(b, "img.bin", v1));
  ASSERT_OK(storage::write_image(b, "filler.bin", pattern_bytes(4096, 3)));
  ASSERT_OK(storage::write_image(b, "img.bin", v2));

  // Exactly `replication` copies remain across ALL roots — wherever the
  // overwrite moved the manifest, no stale copy shadows the namespace —
  // and the surviving copy is the overwrite's generation.
  const auto manifests = copies_of(roots, "img.bin.manifest");
  ASSERT_EQ(manifests.size(), 1u);
  EXPECT_NE(read_text(manifests.front()).find("generation 2"),
            std::string::npos);
  const auto back = b.read_file("img.bin");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v2);
  EXPECT_EQ(b.file_size("img.bin"), v2.size());
  EXPECT_EQ(b.list_files(),
            (std::vector<std::string>{"filler.bin", "img.bin"}));
}

TEST(ShardedBackendTest, DegradedManifestPublishIsCountedAndNotShadowed) {
  // A publish that loses some (not all) manifest copies leaves an OLD
  // generation behind on the failed root.  With root 0 the failed one,
  // root-index-order loading would serve the stale generation-1 image;
  // the generation scan must serve generation 2 — and the degradation
  // must be visible in the counters.
  testing::TempDir dir("sharded_stale_manifest");
  const auto roots = sharded_roots(dir, 2);
  auto faults = std::make_shared<fault::FaultInjector>(13);
  ShardedOptions opts;
  opts.chunk_size = 512;
  opts.replication = 2;
  ShardedBackend b(roots, opts, faults);
  const auto v1 = pattern_bytes(900, 4);
  const auto v2 = pattern_bytes(1300, 5);
  ASSERT_OK(storage::write_image(b, "img.bin", v1));
  ASSERT_EQ(copies_of(roots, "img.bin.manifest").size(), 2u);

  // Root 0 stops accepting writes; the overwrite lands on root 1 only.
  faults->arm({.point = "posix.pwrite", .target = 0, .count = 100000});
  ASSERT_OK(storage::write_image(b, "img.bin", v2));
  EXPECT_EQ(b.counters().degraded_manifest_writes, 1u);
  EXPECT_NE(b.stats_json().find("\"degraded_manifest_writes\":1"),
            std::string::npos);

  // Root 0 still physically holds its generation-1 manifest…
  ASSERT_EQ(copies_of(roots, "img.bin.manifest").size(), 2u);
  // …but reads serve the newest generation, byte-identical.
  std::vector<std::byte> back;
  ASSERT_OK(b.read_image("img.bin", &back));
  EXPECT_EQ(back, v2);
  EXPECT_EQ(b.file_size("img.bin"), v2.size());
}

TEST(ShardedBackendTest, InconsistentManifestChunkSizesAreRejectedSafely) {
  testing::TempDir dir("sharded_forged_manifest");
  const auto roots = sharded_roots(dir);
  ShardedOptions opts;
  opts.chunk_size = 100;
  ShardedBackend b(roots, opts);
  ASSERT_OK(storage::write_image(b, "img.bin", pattern_bytes(100, 6)));
  const auto manifests = copies_of(roots, "img.bin.manifest");
  ASSERT_EQ(manifests.size(), 1u);

  // Sizes sum to `size` but disagree with chunk_size: reads copy
  // sizes[i] bytes at offset chunk_size*i, so accepting this manifest
  // would write 90 bytes at offset 100 into a 100-byte buffer.  It must
  // be rejected at parse time -> every copy corrupt -> kDataLoss.
  write_text(manifests.front(),
             "dedicore-sharded-manifest v2\n"
             "generation 7\n"
             "size 100\n"
             "chunk_size 100\n"
             "replication 1\n"
             "chunks 2\n"
             "chunk 0 10 00000000 0\n"
             "chunk 1 90 00000000 0\n");
  std::vector<std::byte> back;
  EXPECT_EQ(b.read_image("img.bin", &back).code(), StatusCode::kDataLoss);

  // An absurd chunk count whose allocation cannot succeed must fail the
  // parse like any other malformation — not terminate on bad_alloc.
  write_text(manifests.front(),
             "dedicore-sharded-manifest v2\n"
             "generation 7\n"
             "size 18446744073709551615\n"
             "chunk_size 1\n"
             "replication 1\n"
             "chunks 18446744073709551615\n");
  EXPECT_EQ(b.read_image("img.bin", &back).code(), StatusCode::kDataLoss);
}

TEST(ShardedBackendTest, PwriteOverflowingOffsetIsRejected) {
  testing::TempDir dir("sharded_pwrite_overflow");
  ShardedOptions opts;
  opts.chunk_size = 512;
  ShardedBackend b(sharded_roots(dir), opts);
  FileHandle f;
  ASSERT_OK(b.create("img.bin", &f));
  const auto payload = pattern_bytes(64, 7);
  // offset + size wrapping past UINT64_MAX must be rejected, not wrapped
  // into a small resize followed by an out-of-bounds copy.  UINT64_MAX is
  // a legitimate (if absurd) offset, no longer an append sentinel.
  EXPECT_EQ(b.pwrite(f, UINT64_MAX, payload).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(b.pwrite(f, UINT64_MAX - 10, payload).code(),
            StatusCode::kInvalidArgument);
  // Append and positional writes still work after the rejections.
  ASSERT_OK(b.write(f, payload));
  ASSERT_OK(b.pwrite(f, 0, payload));
  ASSERT_OK(b.close(f));
  EXPECT_EQ(b.file_size("img.bin"), payload.size());
  const auto back = b.read_file("img.bin");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

// ---------------------------------------------------------------------------
// Write-behind over the sharded stack: chunk-granular jobs
// ---------------------------------------------------------------------------

TEST(WriteBehindShardedTest, ImageJobsSplitIntoChunkJobs) {
  testing::TempDir dir("wb_sharded");
  ShardedOptions opts;
  opts.chunk_size = 256;
  ShardedBackend backend(sharded_roots(dir), opts);
  WriteBehind queue(backend, 1 << 20);

  std::atomic<int> completions{0};
  Status verdict = Status::internal("never ran");
  WriteBehind::Job job;
  job.path = "img.bin";
  job.image = pattern_bytes(1124, 3);  // 5 chunks (4 x 256 + 100)
  job.on_complete = [&](const Status& st) {
    verdict = st;
    ++completions;
  };
  queue.enqueue(std::move(job));

  // The queue holds one entry per chunk; nothing is visible yet — the
  // manifest is published by the drainer that finishes the last chunk.
  EXPECT_EQ(queue.pending_jobs(), 5u);
  EXPECT_EQ(queue.stats().jobs_enqueued, 5u);
  EXPECT_FALSE(backend.exists("img.bin"));

  // Drain from two threads: chunks of the same image write in parallel.
  std::thread other([&] { queue.drain_some(3); });
  queue.drain_all();
  other.join();

  EXPECT_EQ(completions.load(), 1);
  ASSERT_OK(verdict);
  EXPECT_EQ(queue.stats().jobs_written, 5u);
  EXPECT_EQ(queue.stats().bytes_written, 1124u);
  std::vector<std::byte> back;
  ASSERT_OK(backend.read_image("img.bin", &back));
  EXPECT_EQ(back, pattern_bytes(1124, 3));
}

TEST(WriteBehindShardedTest, ChunkFailureWithholdsTheManifest) {
  // A quarantined poison chunk must leave the image invisible — readers
  // can never see a partially-written sharded image — and the producer's
  // completion hook gets the failure exactly once.
  testing::TempDir dir("wb_sharded_poison");
  auto faults = std::make_shared<fault::FaultInjector>(3);
  // Root 1 rejects every pwrite; with replication=1 the chunks placed on
  // it fail all retries and are quarantined.
  faults->arm({.point = "posix.pwrite", .target = 1, .count = 100000});
  ShardedOptions opts;
  opts.chunk_size = 256;
  ShardedBackend backend(sharded_roots(dir, 2), opts, faults);
  WriteBehind queue(backend, 1 << 20, /*retries=*/2, faults);

  std::atomic<int> completions{0};
  Status verdict;
  WriteBehind::Job job;
  job.path = "img.bin";
  job.image = pattern_bytes(1024, 1);  // 4 chunks, ~half on root 1
  job.on_complete = [&](const Status& st) {
    verdict = st;
    ++completions;
  };
  queue.enqueue(std::move(job));
  queue.drain_all();

  EXPECT_EQ(completions.load(), 1);
  EXPECT_EQ(verdict.code(), StatusCode::kIoError) << verdict.to_string();
  EXPECT_FALSE(backend.exists("img.bin"));
  EXPECT_FALSE(backend.read_file("img.bin").has_value());
  const storage::WriteBehindStats wb = queue.stats();
  EXPECT_GT(wb.jobs_quarantined, 0u);
  EXPECT_GT(wb.retries, 0u);
  EXPECT_EQ(wb.jobs_written + wb.jobs_failed, wb.jobs_enqueued);
}

// ---------------------------------------------------------------------------
// End to end: Runtime with <storage backend="posix">, worker-pool drain
// ---------------------------------------------------------------------------

core::Configuration runtime_config(const std::string& backend,
                                   const std::string& path,
                                   int server_workers) {
  core::Configuration cfg;
  cfg.set_simulation_name("persist");
  cfg.set_architecture(/*cores_per_node=*/4, /*dedicated_cores=*/1);
  cfg.set_server_workers(server_workers);
  cfg.set_buffer(8ull << 20, 256, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.dtype = h5lite::DType::kFloat64;
  layout.extents = {8, 8};
  cfg.add_layout(layout);
  core::VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  core::StorageSpec storage;
  storage.basename = "persist";
  storage.backend = backend;
  storage.path = path;
  cfg.set_storage(storage);
  cfg.validate();
  return cfg;
}

/// Runs a 3-client dedicated-cores world for `iterations`, returns the
/// write-behind stats captured on the server rank (zero-initialized for
/// the sim backend, which has no queue).
storage::WriteBehindStats run_world_with(const core::Configuration& cfg,
                                         fsim::FileSystem& fs,
                                         int iterations) {
  storage::WriteBehindStats wb_stats;
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      if (rt.node().write_behind != nullptr)
        wb_stats = rt.node().write_behind->stats();
      return;
    }
    std::vector<double> field(8 * 8);
    for (int it = 0; it < iterations; ++it) {
      for (std::size_t i = 0; i < field.size(); ++i)
        field[i] = comm.rank() * 1000 + it * 10 + static_cast<double>(i);
      ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });
  return wb_stats;
}

/// When CI exports DEDICORE_STORAGE_ARTIFACT_DIR, copy the produced
/// h5lite files there so the workflow can upload them.
void export_artifacts(const std::filesystem::path& from) {
  const char* target = std::getenv("DEDICORE_STORAGE_ARTIFACT_DIR");
  if (target == nullptr || *target == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(target, ec);
  ASSERT_FALSE(ec) << "artifact dir: " << ec.message();
  std::filesystem::copy(from, target,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  EXPECT_FALSE(ec) << "artifact copy: " << ec.message();
}

TEST(StorageEndToEndTest, PosixRunMatchesSimRunWithWorkerPoolDrain) {
  constexpr int kIterations = 4;
  testing::TempDir dir("storage_e2e");

  // Twin runs: identical clients and data, sim vs posix persistence.  The
  // posix run uses a 2-worker server pool, so the write-behind queue is
  // drained by the pool (acceptance: >= 2 server workers).
  fsim::FileSystem sim_fs(quiet_storage(), fast_scale());
  run_world_with(runtime_config("sim", "", /*server_workers=*/1), sim_fs,
                 kIterations);

  fsim::FileSystem posix_fs(quiet_storage(), fast_scale());  // unused sink
  const storage::WriteBehindStats wb = run_world_with(
      runtime_config("posix", dir.path().string(), /*server_workers=*/2),
      posix_fs, kIterations);

  // Every enqueued image was drained before run_server returned.
  EXPECT_EQ(wb.jobs_enqueued, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(wb.jobs_written, wb.jobs_enqueued);
  EXPECT_EQ(wb.jobs_failed, 0u);

  // The posix run produced the same files with the same bytes on the real
  // filesystem.
  PosixBackend disk(dir.path());
  SimBackend sim(sim_fs);
  ASSERT_EQ(disk.list_files(), sim.list_files());
  ASSERT_EQ(disk.file_count(), static_cast<std::size_t>(kIterations));
  for (const std::string& path : disk.list_files()) {
    const auto disk_bytes = disk.read_file(path);
    const auto sim_bytes = sim.read_file(path);
    ASSERT_TRUE(disk_bytes.has_value());
    ASSERT_TRUE(sim_bytes.has_value());
    EXPECT_EQ(*disk_bytes, *sim_bytes) << path;
    // And the real-disk bytes are a valid h5lite image with every
    // client's block present.
    const h5lite::File file = h5lite::File::parse(*disk_bytes);
    EXPECT_EQ(file.dataset_paths().size(), 3u) << path;
  }

  export_artifacts(dir.path());
}

TEST(StorageEndToEndTest, XmlSelectsThePosixBackend) {
  testing::TempDir dir("storage_xml");
  const std::string xml = R"(
    <simulation name="xmlrun" cores_per_node="2" dedicated_cores="1">
      <buffer size="4MiB" queue="64" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
      </data>
      <storage basename="xmlrun" backend="posix" path=")" +
                          dir.path().string() + R"(" write_behind="1MiB"/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
    </simulation>)";
  const core::Configuration cfg = core::Configuration::from_string(xml);
  EXPECT_EQ(cfg.storage().backend, "posix");
  EXPECT_EQ(cfg.storage().write_behind_bytes, 1ull << 20);

  fsim::FileSystem fs(quiet_storage(), fast_scale());
  minimpi::run_world(2, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    std::vector<double> field(8 * 8, 1.5);
    ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });

  PosixBackend disk(dir.path());
  ASSERT_EQ(disk.file_count(), 1u);
  const auto bytes = disk.read_file(disk.list_files().front());
  ASSERT_TRUE(bytes.has_value());
  const h5lite::File file = h5lite::File::parse(*bytes);
  const auto* group = file.root().find_group("field");
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->datasets.size(), 1u);
  EXPECT_EQ(group->datasets.front().read_as<double>(),
            std::vector<double>(8 * 8, 1.5));
}

TEST(StorageEndToEndTest, TinyBudgetWithTwoStoreActionsDoesNotDeadlock) {
  // Two store actions fire back-to-back under the server's pipeline
  // mutex with a budget smaller than a single image: the second enqueue
  // finds the budget exhausted while holding the only path to a drain
  // site.  The producer-drains rule must turn that into forward progress
  // (the pre-fix queue parked the worker forever; CTest's timeout was
  // the only way out).
  testing::TempDir dir("storage_tiny_budget");
  core::Configuration cfg =
      runtime_config("posix", dir.path().string(), /*server_workers=*/1);
  core::ActionSpec second;
  second.event = "end_iteration";
  second.plugin = "store";
  second.params["basename"] = "persist2";
  cfg.add_action(second);
  core::StorageSpec storage = cfg.storage();
  storage.write_behind_bytes = 1024;  // < one image
  cfg.set_storage(storage);
  cfg.validate();

  fsim::FileSystem fs(quiet_storage(), fast_scale());
  const storage::WriteBehindStats wb = run_world_with(cfg, fs, 3);
  EXPECT_EQ(wb.jobs_written, 6u);
  EXPECT_EQ(wb.jobs_failed, 0u);
  PosixBackend disk(dir.path());
  EXPECT_EQ(disk.file_count(), 6u);  // both actions, every iteration
}

TEST(StorageEndToEndTest, PosixRequiresAPath) {
  core::Configuration cfg = runtime_config("posix", "x", 1);
  core::StorageSpec storage = cfg.storage();
  storage.path.clear();
  cfg.set_storage(storage);
  EXPECT_THROW(cfg.validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// End to end: Runtime over the sharded stack
// ---------------------------------------------------------------------------

/// runtime_config with `<storage roots=...>` swapped in for the path.
core::Configuration sharded_runtime_config(
    const std::vector<std::filesystem::path>& roots, int server_workers,
    std::uint64_t chunk_size = 512) {
  core::Configuration cfg = runtime_config("posix", "unused", server_workers);
  core::StorageSpec storage = cfg.storage();
  storage.path.clear();
  for (const auto& root : roots) storage.roots.push_back(root.string());
  storage.chunk_size = chunk_size;
  cfg.set_storage(storage);
  cfg.validate();
  return cfg;
}

TEST(StorageEndToEndTest, ShardedRunMatchesSingleRootRunByteForByte) {
  // Twin runs, identical clients and data: one single-root posix backend,
  // one 3-root sharded stack with multi-chunk images.  Readers must not
  // be able to tell them apart — same namespace, same bytes, same
  // decoded datasets.
  constexpr int kIterations = 3;
  testing::TempDir single_dir("storage_e2e_single");
  testing::TempDir sharded_dir("storage_e2e_sharded");
  const auto roots = sharded_roots(sharded_dir);

  fsim::FileSystem fs_a(quiet_storage(), fast_scale());
  run_world_with(
      runtime_config("posix", single_dir.path().string(), /*workers=*/1),
      fs_a, kIterations);

  fsim::FileSystem fs_b(quiet_storage(), fast_scale());
  const storage::WriteBehindStats wb = run_world_with(
      sharded_runtime_config(roots, /*server_workers=*/2), fs_b, kIterations);

  PosixBackend single(single_dir.path());
  ShardedBackend sharded(roots, [] {
    ShardedOptions opts;
    opts.chunk_size = 512;
    return opts;
  }());
  ASSERT_EQ(sharded.list_files(), single.list_files());
  ASSERT_EQ(sharded.file_count(), static_cast<std::size_t>(kIterations));
  for (const std::string& path : single.list_files()) {
    const auto single_bytes = single.read_file(path);
    const auto sharded_bytes = sharded.read_file(path);
    ASSERT_TRUE(single_bytes.has_value());
    ASSERT_TRUE(sharded_bytes.has_value());
    EXPECT_EQ(*sharded_bytes, *single_bytes) << path;
    // The reassembled image decodes: every client block, exact values.
    const h5lite::File file = h5lite::File::parse(*sharded_bytes);
    EXPECT_EQ(file.dataset_paths().size(), 3u) << path;
  }
  // Images larger than a chunk really were striped (chunk jobs > images).
  EXPECT_GT(wb.jobs_enqueued, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(wb.jobs_written, wb.jobs_enqueued);
  EXPECT_EQ(wb.jobs_failed, 0u);
}

TEST(StorageEndToEndTest, XmlSelectsTheShardedBackend) {
  testing::TempDir dir("storage_xml_sharded");
  const auto roots = sharded_roots(dir, 3);  // the XML names 3 roots
  const std::string xml = R"(
    <simulation name="xmlshard" cores_per_node="2" dedicated_cores="1">
      <buffer size="4MiB" queue="64" policy="block"/>
      <data>
        <layout name="grid" type="float64" dimensions="8,8"/>
        <variable name="field" layout="grid"/>
      </data>
      <storage basename="xmlshard" backend="posix" roots=")" +
                          roots[0].string() + ";" + roots[1].string() + ";" +
                          roots[2].string() +
                          R"(" chunk_size="1KiB" placement="balanced"
               placement_seed="7" replication="2"/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
    </simulation>)";
  const core::Configuration cfg = core::Configuration::from_string(xml);
  ASSERT_EQ(cfg.storage().roots.size(), 3u);
  EXPECT_EQ(cfg.storage().chunk_size, 1024u);
  EXPECT_EQ(cfg.storage().placement, "balanced");
  EXPECT_EQ(cfg.storage().placement_seed, 7u);
  EXPECT_EQ(cfg.storage().replication, 2);

  fsim::FileSystem fs(quiet_storage(), fast_scale());
  minimpi::run_world(2, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    std::vector<double> field(8 * 8, 2.25);
    ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });

  ShardedOptions opts;
  opts.chunk_size = 1024;
  opts.placement = storage::PlacementPolicy::kBalanced;
  opts.placement_seed = 7;
  opts.replication = 2;
  ShardedBackend disk(roots, opts);
  ASSERT_EQ(disk.file_count(), 1u);
  const auto bytes = disk.read_file(disk.list_files().front());
  ASSERT_TRUE(bytes.has_value());
  const h5lite::File file = h5lite::File::parse(*bytes);
  const auto* group = file.root().find_group("field");
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->datasets.size(), 1u);
  EXPECT_EQ(group->datasets.front().read_as<double>(),
            std::vector<double>(8 * 8, 2.25));
}

TEST(StorageEndToEndTest, ShardedConfigRulesRejectTypos) {
  const auto with_storage = [](auto mutate) {
    core::Configuration cfg = runtime_config("posix", "x", 1);
    core::StorageSpec storage = cfg.storage();
    mutate(storage);
    cfg.set_storage(storage);
    return cfg;
  };
  // roots + path is ambiguous.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.roots = {"a", "b"};
               }).validate(),
               ConfigError);
  // roots on a non-posix backend.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.backend = "sim";
                 s.path.clear();
                 s.roots = {"a", "b"};
               }).validate(),
               ConfigError);
  // replication cannot exceed the root count.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.path.clear();
                 s.roots = {"a", "b"};
                 s.replication = 3;
               }).validate(),
               ConfigError);
  // chunk_size below 512 bytes is read as a forgotten unit suffix.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.path.clear();
                 s.roots = {"a", "b"};
                 s.chunk_size = 100;
               }).validate(),
               ConfigError);
  // Unknown placement policy.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.path.clear();
                 s.roots = {"a", "b"};
                 s.placement = "striped";
               }).validate(),
               ConfigError);
  // Sharded attributes without roots are loud typos, not silent no-ops.
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.replication = 2;
               }).validate(),
               ConfigError);
  EXPECT_THROW(with_storage([](core::StorageSpec& s) {
                 s.chunk_size = 4096;
               }).validate(),
               ConfigError);
  // And the happy path still validates.
  EXPECT_NO_THROW(with_storage([](core::StorageSpec& s) {
                    s.path.clear();
                    s.roots = {"a", "b", "c"};
                    s.chunk_size = 4096;
                    s.placement = "balanced";
                    s.replication = 2;
                  }).validate());
}

// ---------------------------------------------------------------------------
// End to end: emit-path compression (spare-core codecs, §IV.D)
// ---------------------------------------------------------------------------

/// Like runtime_config, but with a 64x64 float64 layout so one block is
/// 32 KiB — big enough for the codecs to show a meaningful ratio — and the
/// given codec on <storage>.
core::Configuration compression_config(const std::string& path,
                                       const std::string& codec) {
  core::Configuration cfg;
  cfg.set_simulation_name("squeeze");
  cfg.set_architecture(/*cores_per_node=*/4, /*dedicated_cores=*/1);
  cfg.set_server_workers(1);
  cfg.set_buffer(8ull << 20, 256, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.dtype = h5lite::DType::kFloat64;
  layout.extents = {64, 64};
  cfg.add_layout(layout);
  core::VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  core::StorageSpec storage;
  storage.basename = "squeeze";
  storage.backend = "posix";
  storage.path = path;
  storage.codec = codec;
  cfg.set_storage(storage);
  cfg.validate();
  return cfg;
}

struct CompressionRunResult {
  core::ServerStats server;
  core::EmitStats emit;
  storage::WriteBehindStats wb;
};

/// Runs a 3-client world where every client fills `field` through
/// `fill(rank, it, i)`; captures the server-side compression counters.
template <typename Fill>
CompressionRunResult run_compression_world(const core::Configuration& cfg,
                                           int iterations, Fill fill) {
  CompressionRunResult result;
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      result.server = rt.server_stats();
      ASSERT_NE(rt.node().emit, nullptr);
      result.emit = rt.node().emit->stats();
      if (rt.node().write_behind != nullptr)
        result.wb = rt.node().write_behind->stats();
      return;
    }
    std::vector<double> field(64 * 64);
    for (int it = 0; it < iterations; ++it) {
      for (std::size_t i = 0; i < field.size(); ++i)
        field[i] = fill(comm.rank(), it, i);
      ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });
  return result;
}

/// CM1-like smooth field: row-structured with slow drift per iteration
/// and rank — the shape the paper compresses at 600%.
double smooth_value(int rank, int it, std::size_t i) {
  return 300.0 + static_cast<double>(i / 64) * 0.25 + it * 0.5 + rank;
}

/// Full-mantissa hash noise: no codec in the registry reaches a useful
/// ratio on this, so the adaptive probe must park the variable on raw.
double noisy_value(int rank, int it, std::size_t i) {
  double whole;
  return std::modf(std::sin(static_cast<double>(i) * 12.9898 + it * 78.233 +
                            rank * 37.719) *
                       43758.5453,
                   &whole);
}

TEST(CompressionEndToEndTest, TwinRunsShrinkBytesAndReadBackIdentical) {
  constexpr int kIterations = 3;
  testing::TempDir raw_dir("compress_e2e_raw");
  testing::TempDir comp_dir("compress_e2e_comp");

  // Twin runs: identical clients and data, uncompressed vs xor+lzs.
  run_compression_world(compression_config(raw_dir.path().string(), "none"),
                        kIterations, smooth_value);
  const CompressionRunResult comp = run_compression_world(
      compression_config(comp_dir.path().string(), "xor+lzs"), kIterations,
      smooth_value);

  PosixBackend raw(raw_dir.path());
  PosixBackend squeezed(comp_dir.path());
  ASSERT_EQ(raw.list_files(), squeezed.list_files());
  ASSERT_EQ(raw.file_count(), static_cast<std::size_t>(kIterations));

  std::uint64_t raw_total = 0;
  std::uint64_t squeezed_total = 0;
  for (const std::string& path : raw.list_files()) {
    const auto raw_bytes = raw.read_file(path);
    const auto comp_bytes = squeezed.read_file(path);
    ASSERT_TRUE(raw_bytes.has_value());
    ASSERT_TRUE(comp_bytes.has_value());
    raw_total += raw_bytes->size();
    squeezed_total += comp_bytes->size();

    // Decompress-on-read parity: the compressed file's datasets decode to
    // exactly the bytes the uncompressed twin stored.
    const h5lite::File plain = h5lite::File::parse(*raw_bytes);
    const h5lite::File packed = h5lite::File::parse(*comp_bytes);
    const auto* plain_group = plain.root().find_group("field");
    const auto* packed_group = packed.root().find_group("field");
    ASSERT_NE(plain_group, nullptr);
    ASSERT_NE(packed_group, nullptr);
    ASSERT_EQ(plain_group->datasets.size(), packed_group->datasets.size());
    for (std::size_t d = 0; d < plain_group->datasets.size(); ++d) {
      EXPECT_EQ(plain_group->datasets[d].read_as<double>(),
                packed_group->datasets[d].read_as<double>())
          << path << " dataset " << d;
    }
    // The planned codec is recorded on the group for readers.
    const auto attr = packed_group->attributes.find("codec");
    ASSERT_NE(attr, packed_group->attributes.end()) << path;
    EXPECT_EQ(std::get<std::string>(attr->second), "xor+lzs");
  }

  // The satellite floor: smooth CM1-like fields must clear 2x on disk.
  ASSERT_GT(raw_total, 0u);
  EXPECT_LT(squeezed_total, raw_total);
  EXPECT_GE(static_cast<double>(raw_total) / static_cast<double>(squeezed_total),
            2.0);

  // The counters tell the same story end to end: EmitStage and ServerStats
  // agree (one server on this node), and the achieved ratio matches disk.
  EXPECT_GT(comp.emit.datasets_compressed, 0u);
  EXPECT_EQ(comp.emit.adaptive_skips, 0u);
  EXPECT_GT(comp.emit.raw_bytes, comp.emit.stored_bytes);
  EXPECT_GE(comp.emit.achieved_ratio(), 2.0);
  EXPECT_EQ(comp.server.emit_raw_bytes, comp.emit.raw_bytes);
  EXPECT_EQ(comp.server.emit_stored_bytes, comp.emit.stored_bytes);
  EXPECT_EQ(comp.server.datasets_compressed, comp.emit.datasets_compressed);
  EXPECT_GE(comp.server.achieved_ratio(), 2.0);
  EXPECT_GE(comp.server.compress_seconds, 0.0);

  export_artifacts(comp_dir.path());
}

TEST(CompressionEndToEndTest, AdaptiveProbeStoresNoiseRaw) {
  // Hash-noise payloads with a 1.5 floor: the probe must measure a ratio
  // below min_ratio, park the variable on raw storage, and never spend a
  // full-dataset codec pass on it.
  testing::TempDir dir("compress_adaptive");
  core::Configuration cfg =
      compression_config(dir.path().string(), "xor+lzs");
  core::StorageSpec storage = cfg.storage();
  storage.min_ratio = 1.5;
  cfg.set_storage(storage);
  cfg.validate();

  const CompressionRunResult result =
      run_compression_world(cfg, /*iterations=*/2, noisy_value);

  EXPECT_GE(result.emit.probes, 1u);
  EXPECT_GE(result.emit.adaptive_skips, 1u);
  EXPECT_EQ(result.emit.datasets_compressed, 0u);
  EXPECT_GT(result.emit.datasets_stored_raw, 0u);
  EXPECT_EQ(result.server.datasets_compressed, 0u);
  EXPECT_GT(result.server.datasets_stored_raw, 0u);
  // Raw storage claims no compression win: stored tracks raw (plus image
  // framing), so the achieved ratio sits at ~1.
  EXPECT_LE(result.emit.achieved_ratio(), 1.1);
  PosixBackend disk(dir.path());
  EXPECT_EQ(disk.file_count(), 2u);
}

TEST(CompressionEndToEndTest, WriteBehindBudgetCountsPostCodecBytes) {
  // A 16 KiB budget is far below the ~96 KiB raw image but comfortably
  // above its compressed form.  If the queue accounted pre-codec bytes,
  // the high-water mark would blow past the budget on every iteration;
  // counting post-codec bytes keeps the whole run inside it.
  constexpr std::uint64_t kBudget = 16 * 1024;
  constexpr int kIterations = 3;
  testing::TempDir dir("compress_budget");
  core::Configuration cfg =
      compression_config(dir.path().string(), "xor+lzs");
  core::StorageSpec storage = cfg.storage();
  storage.write_behind_bytes = kBudget;
  cfg.set_storage(storage);
  cfg.validate();

  const CompressionRunResult result =
      run_compression_world(cfg, kIterations, smooth_value);

  EXPECT_EQ(result.wb.jobs_enqueued, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(result.wb.jobs_written, result.wb.jobs_enqueued);
  EXPECT_EQ(result.wb.jobs_failed, 0u);
  // The budget ledger saw only post-codec bytes...
  EXPECT_LT(result.wb.bytes_enqueued, result.emit.raw_bytes);
  // ...and never overflowed a budget several times smaller than one raw
  // image.
  EXPECT_LE(result.wb.max_pending_bytes, kBudget);
  PosixBackend disk(dir.path());
  EXPECT_EQ(disk.file_count(), static_cast<std::size_t>(kIterations));
}

TEST(CompressionEndToEndTest, PerVariableCodecOverridesStorageDefault) {
  // Storage default says raw; one variable opts into xor+lzs.  The mixed
  // run must compress exactly that variable's datasets.
  testing::TempDir dir("compress_per_var");
  core::Configuration cfg;
  cfg.set_simulation_name("mixed");
  cfg.set_architecture(/*cores_per_node=*/4, /*dedicated_cores=*/1);
  cfg.set_buffer(8ull << 20, 256, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.dtype = h5lite::DType::kFloat64;
  layout.extents = {64, 64};
  cfg.add_layout(layout);
  core::VariableSpec plain;
  plain.name = "plain";
  plain.layout = "grid";
  cfg.add_variable(plain);
  core::VariableSpec packed;
  packed.name = "packed";
  packed.layout = "grid";
  packed.codec = "xor+lzs";
  cfg.add_variable(packed);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  core::StorageSpec storage;
  storage.basename = "mixed";
  storage.backend = "posix";
  storage.path = dir.path().string();
  cfg.set_storage(storage);
  cfg.validate();

  core::EmitStats emit;
  fsim::FileSystem fs(quiet_storage(), fast_scale());
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      ASSERT_NE(rt.node().emit, nullptr);
      emit = rt.node().emit->stats();
      return;
    }
    std::vector<double> field(64 * 64);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = smooth_value(comm.rank(), 0, i);
    ASSERT_OK(rt.client().write("plain", std::span<const double>(field)));
    ASSERT_OK(rt.client().write("packed", std::span<const double>(field)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });

  // 3 clients, 1 iteration: 3 datasets per variable.
  EXPECT_EQ(emit.datasets_compressed, 3u);
  EXPECT_EQ(emit.datasets_stored_raw, 3u);

  PosixBackend disk(dir.path());
  ASSERT_EQ(disk.file_count(), 1u);
  const auto bytes = disk.read_file(disk.list_files().front());
  ASSERT_TRUE(bytes.has_value());
  const h5lite::File file = h5lite::File::parse(*bytes);
  const auto* plain_group = file.root().find_group("plain");
  const auto* packed_group = file.root().find_group("packed");
  ASSERT_NE(plain_group, nullptr);
  ASSERT_NE(packed_group, nullptr);
  EXPECT_EQ(std::get<std::string>(plain_group->attributes.at("codec")),
            "none");
  EXPECT_EQ(std::get<std::string>(packed_group->attributes.at("codec")),
            "xor+lzs");
  // Same payload, different footprint — and identical decoded values.
  ASSERT_EQ(plain_group->datasets.size(), 3u);
  ASSERT_EQ(packed_group->datasets.size(), 3u);
  std::uint64_t plain_stored = 0;
  std::uint64_t packed_stored = 0;
  for (std::size_t d = 0; d < 3; ++d) {
    plain_stored += plain_group->datasets[d].stored_size();
    packed_stored += packed_group->datasets[d].stored_size();
    EXPECT_EQ(plain_group->datasets[d].read_as<double>(),
              packed_group->datasets[d].read_as<double>());
  }
  EXPECT_LT(packed_stored, plain_stored);
}

}  // namespace
}  // namespace dedicore
