// The dedicated-I/O-rank worker pool, end to end through Runtime.
//
// The model layer simulates *full-width* I/O nodes (every core of a
// dedicated node serves); since this PR the runtime matches it: a
// dedicated I/O rank runs `server_workers` threads (default =
// cores_per_node) draining one MpiServerTransport concurrently, with each
// client pinned to one worker.  These tests drive the whole stack —
// Configuration -> Runtime -> Client/Server -> plugins -> fsim — and the
// wiring-time validation that guards the partition.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <vector>

#include "core/runtime.hpp"
#include "framework/test_infra.hpp"
#include "minimpi/minimpi.hpp"

namespace dedicore {
namespace {

core::Configuration nodes_config(int io_nodes, int server_workers,
                                 std::uint64_t buffer = 8ull << 20) {
  core::Configuration cfg;
  cfg.set_simulation_name("pool");
  cfg.set_architecture(/*cores_per_node=*/4, /*dedicated_cores=*/1);
  cfg.set_dedicated_mode(core::DedicatedMode::kNodes, io_nodes);
  cfg.set_server_workers(server_workers);
  cfg.set_buffer(buffer, 256, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.extents = {16, 16};
  cfg.add_layout(layout);
  core::VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  cfg.validate();
  return cfg;
}

fsim::FileSystem make_fs() {
  fsim::StorageConfig storage;
  storage.ost_count = 4;
  storage.ost_bandwidth = 400e6;
  storage.jitter_sigma = 0.0;
  storage.spike_probability = 0.0;
  storage.interference_on_rate = 0.0;
  return fsim::FileSystem(storage, fsim::TimeScale{1e-4, 0.01});
}

TEST(ServerWorkersTest, EffectiveWorkerDefaultsFollowTheModel) {
  core::Configuration cfg;
  cfg.set_architecture(12, 1);
  // Dedicated cores: one worker per dedicated core.
  EXPECT_EQ(cfg.effective_server_workers(), 1);
  // Dedicated nodes, auto: the full node width the model layer assumes.
  cfg.set_dedicated_mode(core::DedicatedMode::kNodes, 2);
  EXPECT_EQ(cfg.effective_server_workers(), 12);
  // An explicit setting wins in either mode.
  cfg.set_server_workers(5);
  EXPECT_EQ(cfg.effective_server_workers(), 5);
  cfg.set_dedicated_mode(core::DedicatedMode::kCores);
  EXPECT_EQ(cfg.effective_server_workers(), 5);
}

TEST(ServerWorkersTest, DedicatedNodesPoolCompletesEveryIteration) {
  // 6 clients -> 1 I/O rank running 4 workers; all iterations must
  // complete, all blocks must travel over MPI, and the per-server stats
  // must aggregate the whole pool's work.
  constexpr int kClients = 6;
  constexpr int kIterations = 5;
  core::Configuration cfg = nodes_config(/*io_nodes=*/1, /*server_workers=*/4);
  fsim::FileSystem fs = make_fs();

  core::ServerStats server_stats;
  std::vector<double> field(16 * 16, 0.25);
  minimpi::run_world(kClients + 1, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      server_stats = rt.server_stats();
      return;
    }
    for (int it = 0; it < kIterations; ++it) {
      ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });

  EXPECT_EQ(server_stats.workers, 4);
  EXPECT_EQ(server_stats.iterations_completed,
            static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(server_stats.blocks_received,
            static_cast<std::uint64_t>(kClients) * kIterations);
  EXPECT_EQ(server_stats.blocks_received_remote,
            static_cast<std::uint64_t>(kClients) * kIterations);
  // Every event was consumed by some worker: blocks + per-client closes +
  // per-client stops.
  EXPECT_EQ(server_stats.events_processed,
            static_cast<std::uint64_t>(kClients) * (kIterations + 1) +
                static_cast<std::uint64_t>(kClients) * kIterations);
  EXPECT_EQ(fs.file_count(), static_cast<std::uint64_t>(kIterations));
}

TEST(ServerWorkersTest, AutoWidthMatchesCoresPerNode) {
  // server_workers=0 (auto) on an I/O rank deploys cores_per_node workers.
  constexpr int kClients = 3;
  core::Configuration cfg = nodes_config(/*io_nodes=*/1, /*server_workers=*/0);
  fsim::FileSystem fs = make_fs();

  core::ServerStats server_stats;
  std::vector<double> field(16 * 16, 1.0);
  minimpi::run_world(kClients + 1, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      server_stats = rt.server_stats();
      return;
    }
    ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });
  EXPECT_EQ(server_stats.workers, cfg.cores_per_node());
  EXPECT_EQ(server_stats.iterations_completed, 1u);
}

TEST(ServerWorkersTest, CoresModePoolDrainsTheSharedQueue) {
  // An explicit server_workers in cores mode pools the dedicated core's
  // event loop over the shm backend — same contract, zero-copy path.
  constexpr int kIterations = 4;
  core::Configuration cfg;
  cfg.set_simulation_name("pool-cores");
  cfg.set_architecture(/*cores_per_node=*/4, /*dedicated_cores=*/1);
  cfg.set_server_workers(2);
  cfg.set_buffer(4ull << 20, 128, core::BackpressurePolicy::kBlock);
  core::LayoutSpec layout;
  layout.name = "grid";
  layout.extents = {8, 8};
  cfg.add_layout(layout);
  core::VariableSpec v;
  v.name = "field";
  v.layout = "grid";
  cfg.add_variable(v);
  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);
  cfg.validate();
  fsim::FileSystem fs = make_fs();

  core::ServerStats server_stats;
  std::vector<double> field(8 * 8, 3.5);
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
    if (rt.is_server()) {
      rt.run_server();
      server_stats = rt.server_stats();
      return;
    }
    for (int it = 0; it < kIterations; ++it) {
      ASSERT_OK(rt.client().write("field", std::span<const double>(field)));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });
  EXPECT_EQ(server_stats.workers, 2);
  EXPECT_EQ(server_stats.iterations_completed,
            static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(server_stats.blocks_received, 3u * kIterations);
  EXPECT_EQ(server_stats.blocks_received_remote, 0u);  // zero-copy path
}

// ---------------------------------------------------------------------------
// Wiring-time validation (satellite: Configuration::validate can only see
// dedicated_nodes > 0; the world partition is checked in runtime.cpp).
// ---------------------------------------------------------------------------

TEST(ServerWorkersTest, DedicatedNodesConsumingWholeWorldIsRejected) {
  fsim::FileSystem fs = make_fs();
  for (int io_nodes : {2, 3}) {  // == world size and > world size
    core::Configuration cfg = nodes_config(io_nodes, 1);
    std::atomic<int> rejected{0};
    minimpi::run_world(2, [&](minimpi::Comm& comm) {
      try {
        core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
        FAIL() << "partition with no compute ranks was accepted";
      } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("no compute ranks"),
                  std::string::npos)
            << e.what();
        ++rejected;
      }
    });
    // Every rank throws the same error — no survivor is left blocked in a
    // collective against ranks that bailed out.
    EXPECT_EQ(rejected.load(), 2);
  }
}

TEST(ServerWorkersTest, ZeroByteCreditShareIsRejected) {
  // A buffer smaller than the client count would hand out zero credit;
  // the wiring must surface the configuration error, not abort deep in
  // the transport.
  core::Configuration cfg = nodes_config(/*io_nodes=*/1, /*server_workers=*/1,
                                         /*buffer=*/2);
  fsim::FileSystem fs = make_fs();
  std::atomic<int> rejected{0};
  minimpi::run_world(4, [&](minimpi::Comm& comm) {
    try {
      core::Runtime rt = core::Runtime::initialize(cfg, comm, fs);
      if (rt.is_server()) rt.run_server();  // unreachable: all ranks throw
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("credit share"), std::string::npos)
          << e.what();
      ++rejected;
    }
  });
  EXPECT_EQ(rejected.load(), 4);
}

}  // namespace
}  // namespace dedicore
