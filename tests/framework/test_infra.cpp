#include "framework/test_infra.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <system_error>

#include "common/log.hpp"

namespace dedicore {
namespace testing {

// ---------------------------------------------------------------------------
// Status assertions
// ---------------------------------------------------------------------------

::testing::AssertionResult is_ok_pred(const char* expr, const Status& status) {
  if (status.is_ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr << " returned " << status.to_string();
}

::testing::AssertionResult has_code_pred(const char* status_expr,
                                         const char* code_expr,
                                         const Status& status,
                                         StatusCode want) {
  if (status.code() == want) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << status_expr << " returned " << status.to_string() << ", expected "
         << code_expr << " (" << status_code_name(want) << ")";
}

// ---------------------------------------------------------------------------
// Temporary directories
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_tempdir_counter{0};
}  // namespace

TempDir::TempDir(const std::string& tag) {
  const std::uint64_t nonce =
      g_tempdir_counter.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream name;
  name << tag << "_" << ::getpid() << "_" << nonce;
  path_ = std::filesystem::temp_directory_path() / name.str();
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  // Best-effort cleanup; never throw from a destructor.  On POSIX an open
  // file handle inside the directory does not block unlinking, but a file
  // created *between* remove_all's directory scan and its final rmdir
  // (e.g. a storage backend's write-behind drain racing the fixture) makes
  // the pass fail with ENOTEMPTY — so retry once after the first pass has
  // emptied everything it saw, and make any residual failure loud instead
  // of silently leaking scratch directories.
  std::error_code ec;
  for (int attempt = 0; attempt < 2; ++attempt) {
    ec.clear();
    std::filesystem::remove_all(path_, ec);
    if (!ec) return;
  }
  DEDICORE_LOG(kWarn) << "TempDir: failed to remove '" << path_.string()
                      << "': " << ec.message() << " (error code " << ec.value()
                      << "); scratch directory leaked";
}

std::filesystem::path TempDir::file(const std::string& name) const {
  return path_ / name;
}

TempDirTest::TempDirTest() : dir_("dedicore_fixture") {}

// ---------------------------------------------------------------------------
// Deterministic RNG seeding
// ---------------------------------------------------------------------------

namespace {
// FNV-1a: stable across platforms and runs, unlike std::hash.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

std::uint64_t test_seed() {
  if (const char* env = std::getenv("DEDICORE_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr) return 0x9e3779b97f4a7c15ull;  // outside a test body
  return fnv1a(std::string(info->test_suite_name()) + "." + info->name());
}

Rng make_rng(std::uint64_t stream) {
  return Rng(test_seed() ^ (stream * 0x9e3779b97f4a7c15ull));
}

// ---------------------------------------------------------------------------
// Golden-table comparison
// ---------------------------------------------------------------------------

::testing::AssertionResult table_rows_equal(
    const Table& table, const std::vector<std::vector<std::string>>& expected) {
  if (table.rows() != expected.size()) {
    return ::testing::AssertionFailure()
           << "table has " << table.rows() << " rows, expected "
           << expected.size() << "\nactual table:\n"
           << table.to_string();
  }
  for (std::size_t r = 0; r < expected.size(); ++r) {
    const auto& actual = table.row(r);
    if (actual.size() != expected[r].size()) {
      return ::testing::AssertionFailure()
             << "row " << r << " has " << actual.size()
             << " cells, expected " << expected[r].size()
             << "\nactual table:\n" << table.to_string();
    }
    for (std::size_t c = 0; c < expected[r].size(); ++c) {
      if (actual[c] != expected[r][c]) {
        return ::testing::AssertionFailure()
               << "first mismatch at row " << r << ", column " << c << ": got \""
               << actual[c] << "\", expected \"" << expected[r][c]
               << "\"\nactual table:\n" << table.to_string();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

namespace {
std::string rstrip(const std::string& s) {
  std::size_t end = s.find_last_not_of(" \t\r");
  return end == std::string::npos ? std::string() : s.substr(0, end + 1);
}
}  // namespace

::testing::AssertionResult table_matches_golden(const Table& table,
                                                const std::string& golden) {
  std::istringstream got(table.to_string());
  std::istringstream want(golden);
  std::string got_line, want_line;
  std::size_t lineno = 0;
  while (true) {
    const bool more_got = static_cast<bool>(std::getline(got, got_line));
    const bool more_want = static_cast<bool>(std::getline(want, want_line));
    if (!more_got && !more_want) return ::testing::AssertionSuccess();
    ++lineno;
    if (more_got != more_want || rstrip(got_line) != rstrip(want_line)) {
      return ::testing::AssertionFailure()
             << "golden mismatch at line " << lineno << "\n  actual:   \""
             << (more_got ? rstrip(got_line) : "<end of table>")
             << "\"\n  expected: \""
             << (more_want ? rstrip(want_line) : "<end of golden>")
             << "\"\nfull actual table:\n" << table.to_string();
    }
  }
}

SegmentPressure::SegmentPressure(shm::Segment& segment, std::uint64_t bytes)
    : segment_(segment), held_(segment.try_allocate(bytes)) {
  DEDICORE_CHECK(held_.has_value(),
                 "SegmentPressure: could not pin the requested bytes — "
                 "construct the fixture before the system under test "
                 "allocates");
}

SegmentPressure::~SegmentPressure() {
  if (held_) segment_.deallocate(*held_);
}

}  // namespace testing
}  // namespace dedicore
