// Shared test infrastructure linked by every suite.
//
// Provides the pieces each suite used to re-implement by hand:
//   - Status assertion macros (ASSERT_OK / EXPECT_OK / EXPECT_STATUS) that
//     print the full Status::to_string() on failure,
//   - a TempDir RAII helper plus a TempDirTest fixture with automatic
//     recursive cleanup,
//   - deterministic per-test RNG seeding (stable across runs, distinct per
//     test, overridable with DEDICORE_TEST_SEED for bisecting),
//   - golden-table comparison producing a readable diff of Table contents.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"

namespace dedicore {
namespace testing {

// ---------------------------------------------------------------------------
// Status assertions
// ---------------------------------------------------------------------------

/// Predicate-formatter behind ASSERT_OK / EXPECT_OK.
::testing::AssertionResult is_ok_pred(const char* expr, const Status& status);

/// Predicate-formatter behind EXPECT_STATUS: status must carry `want`.
::testing::AssertionResult has_code_pred(const char* status_expr,
                                         const char* code_expr,
                                         const Status& status,
                                         StatusCode want);

// ---------------------------------------------------------------------------
// Temporary directories
// ---------------------------------------------------------------------------

/// RAII temporary directory: created unique on construction, recursively
/// removed on destruction.  Safe to use outside a fixture.
class TempDir {
 public:
  /// `tag` becomes part of the directory name to ease post-mortem triage.
  explicit TempDir(const std::string& tag = "dedicore_test");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Absolute path of `name` inside the directory (not created).
  [[nodiscard]] std::filesystem::path file(const std::string& name) const;

 private:
  std::filesystem::path path_;
};

/// Fixture giving each test its own scratch directory, cleaned up afterwards.
class TempDirTest : public ::testing::Test {
 protected:
  TempDirTest();
  [[nodiscard]] const std::filesystem::path& temp_path() const noexcept {
    return dir_.path();
  }
  [[nodiscard]] std::filesystem::path temp_file(const std::string& name) const {
    return dir_.file(name);
  }

 private:
  TempDir dir_;
};

// ---------------------------------------------------------------------------
// Deterministic RNG seeding
// ---------------------------------------------------------------------------

/// Seed for the currently running test: a stable hash of
/// "SuiteName.TestName" so every test gets a distinct, reproducible stream.
/// Set DEDICORE_TEST_SEED=<n> to force one seed while bisecting a failure.
std::uint64_t test_seed();

/// Rng already seeded with test_seed().  Mix in `stream` to draw several
/// unrelated streams inside one test.
Rng make_rng(std::uint64_t stream = 0);

// ---------------------------------------------------------------------------
// Golden-table comparison
// ---------------------------------------------------------------------------

/// Compares a Table's cells against expected rows (header excluded); on
/// mismatch reports the first differing row/column and both renderings.
::testing::AssertionResult table_rows_equal(
    const Table& table, const std::vector<std::vector<std::string>>& expected);

/// Compares Table::to_string() to a golden rendering, ignoring trailing
/// whitespace per line; on mismatch shows a line-by-line diff marker.
::testing::AssertionResult table_matches_golden(const Table& table,
                                                const std::string& golden);

}  // namespace testing
}  // namespace dedicore

// Assert that a dedicore::Status-returning expression is OK.
#define ASSERT_OK(expr) \
  ASSERT_PRED_FORMAT1(::dedicore::testing::is_ok_pred, (expr))
#define EXPECT_OK(expr) \
  EXPECT_PRED_FORMAT1(::dedicore::testing::is_ok_pred, (expr))

// Expect that a Status-returning expression carries a specific code.
#define EXPECT_STATUS(expr, code) \
  EXPECT_PRED_FORMAT2(::dedicore::testing::has_code_pred, (expr), (code))
#define ASSERT_STATUS(expr, code) \
  ASSERT_PRED_FORMAT2(::dedicore::testing::has_code_pred, (expr), (code))
