// Shared test infrastructure linked by every suite.
//
// Provides the pieces each suite used to re-implement by hand:
//   - Status assertion macros (ASSERT_OK / EXPECT_OK / EXPECT_STATUS) that
//     print the full Status::to_string() on failure,
//   - a TempDir RAII helper plus a TempDirTest fixture with automatic
//     recursive cleanup,
//   - deterministic per-test RNG seeding (stable across runs, distinct per
//     test, overridable with DEDICORE_TEST_SEED for bisecting),
//   - golden-table comparison producing a readable diff of Table contents,
//   - deterministic timing/backpressure hooks: VirtualTimeScope (per-thread
//     virtual clocks, see common/clock.hpp) and SegmentPressure (pins
//     segment bytes so backpressure engages by construction, not by racing
//     the server).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "shm/segment.hpp"

namespace dedicore {
namespace testing {

// ---------------------------------------------------------------------------
// Status assertions
// ---------------------------------------------------------------------------

/// Predicate-formatter behind ASSERT_OK / EXPECT_OK.
::testing::AssertionResult is_ok_pred(const char* expr, const Status& status);

/// Predicate-formatter behind EXPECT_STATUS: status must carry `want`.
::testing::AssertionResult has_code_pred(const char* status_expr,
                                         const char* code_expr,
                                         const Status& status,
                                         StatusCode want);

// ---------------------------------------------------------------------------
// Temporary directories
// ---------------------------------------------------------------------------

/// RAII temporary directory: created unique on construction, recursively
/// removed on destruction (one retry for files that appear mid-removal;
/// a residual failure logs a warning with the error code rather than
/// leaking the directory silently).  Safe to use outside a fixture.
/// Destroy anything holding handles inside the directory — a
/// storage::PosixBackend, a WriteBehind queue — *before* the TempDir, as
/// the posix suites do, so cleanup never races a live writer.
class TempDir {
 public:
  /// `tag` becomes part of the directory name to ease post-mortem triage.
  explicit TempDir(const std::string& tag = "dedicore_test");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Absolute path of `name` inside the directory (not created).
  [[nodiscard]] std::filesystem::path file(const std::string& name) const;

 private:
  std::filesystem::path path_;
};

/// Fixture giving each test its own scratch directory, cleaned up afterwards.
class TempDirTest : public ::testing::Test {
 protected:
  TempDirTest();
  [[nodiscard]] const std::filesystem::path& temp_path() const noexcept {
    return dir_.path();
  }
  [[nodiscard]] std::filesystem::path temp_file(const std::string& name) const {
    return dir_.file(name);
  }

 private:
  TempDir dir_;
};

// ---------------------------------------------------------------------------
// Deterministic RNG seeding
// ---------------------------------------------------------------------------

/// Seed for the currently running test: a stable hash of
/// "SuiteName.TestName" so every test gets a distinct, reproducible stream.
/// Set DEDICORE_TEST_SEED=<n> to force one seed while bisecting a failure.
std::uint64_t test_seed();

/// Rng already seeded with test_seed().  Mix in `stream` to draw several
/// unrelated streams inside one test.
Rng make_rng(std::uint64_t stream = 0);

// ---------------------------------------------------------------------------
// Deterministic timing / backpressure hooks
// ---------------------------------------------------------------------------

/// Enables virtual time (common/clock.hpp) for the scope's lifetime: each
/// thread's sleeps advance its own virtual clock instantly, and Stopwatch
/// measures exactly what the thread slept.  Wall-clock comparisons become
/// exact (a path with no modelled waits measures 0) and modelled I/O costs
/// no real time.  Construct the FileSystem under test *inside* the scope
/// so its epoch is virtual too.  Not nestable; tests in one binary run
/// sequentially, so the global switch is safe.
class VirtualTimeScope {
 public:
  VirtualTimeScope() { set_virtual_time_enabled(true); }
  ~VirtualTimeScope() { set_virtual_time_enabled(false); }
  VirtualTimeScope(const VirtualTimeScope&) = delete;
  VirtualTimeScope& operator=(const VirtualTimeScope&) = delete;
};

/// Pins `bytes` of a segment for the fixture's lifetime, shrinking the
/// capacity the system under test can see.  This makes backpressure a
/// *construction* of the test rather than a race: size the remaining free
/// space to admit exactly the blocks that must succeed, and every
/// over-budget allocation fails deterministically on every run.
class SegmentPressure {
 public:
  SegmentPressure(shm::Segment& segment, std::uint64_t bytes);
  ~SegmentPressure();
  SegmentPressure(const SegmentPressure&) = delete;
  SegmentPressure& operator=(const SegmentPressure&) = delete;

 private:
  shm::Segment& segment_;
  std::optional<shm::BlockRef> held_;
};

// ---------------------------------------------------------------------------
// Golden-table comparison
// ---------------------------------------------------------------------------

/// Compares a Table's cells against expected rows (header excluded); on
/// mismatch reports the first differing row/column and both renderings.
::testing::AssertionResult table_rows_equal(
    const Table& table, const std::vector<std::vector<std::string>>& expected);

/// Compares Table::to_string() to a golden rendering, ignoring trailing
/// whitespace per line; on mismatch shows a line-by-line diff marker.
::testing::AssertionResult table_matches_golden(const Table& table,
                                                const std::string& golden);

}  // namespace testing
}  // namespace dedicore

// Assert that a dedicore::Status-returning expression is OK.
#define ASSERT_OK(expr) \
  ASSERT_PRED_FORMAT1(::dedicore::testing::is_ok_pred, (expr))
#define EXPECT_OK(expr) \
  EXPECT_PRED_FORMAT1(::dedicore::testing::is_ok_pred, (expr))

// Expect that a Status-returning expression carries a specific code.
#define EXPECT_STATUS(expr, code) \
  EXPECT_PRED_FORMAT2(::dedicore::testing::has_code_pred, (expr), (code))
#define ASSERT_STATUS(expr, code) \
  ASSERT_PRED_FORMAT2(::dedicore::testing::has_code_pred, (expr), (code))
