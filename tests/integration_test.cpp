// Cross-module integration tests: the CM1 proxy running through the full
// middleware against the filesystem simulator, baselines vs Damaris on the
// same workload, XML-configured end-to-end runs, and in-situ pipelines on
// the Nek proxy.
#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.hpp"
#include "core/baseline_io.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "framework/test_infra.hpp"
#include "h5lite/h5lite.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/nek_proxy.hpp"
#include "sim/workload.hpp"

namespace dedicore {
namespace {

using core::BackpressurePolicy;
using core::Configuration;
using core::Runtime;

fsim::StorageConfig small_storage() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 400e6;
  cfg.mds_op_cost = 1e-3;
  cfg.jitter_sigma = 0.1;
  cfg.spike_probability = 0.0;
  cfg.interference_on_rate = 0.0;
  return cfg;
}

fsim::TimeScale fast_scale() {
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  ts.quantum_sim = 0.01;
  return ts;
}

TEST(IntegrationTest, Cm1ThroughDamarisEndToEnd) {
  // 2 nodes x 3 cores (2 clients + 1 dedicated): the CM1 proxy computes
  // real physics, Damaris stores every field, files parse afterwards.
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 10;
  options.cores_per_node = 3;
  options.dedicated_cores = 1;
  options.buffer_size = 32ull << 20;
  const Configuration cfg = sim::make_cm1_configuration(options);
  fsim::FileSystem fs(small_storage(), fast_scale());

  constexpr int kIterations = 3;
  minimpi::run_world(6, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    minimpi::Comm& clients = rt.client_comm();
    sim::Cm1Proxy proxy(
        sim::make_cm1_proxy_config(options, clients.rank(), clients.size()));
    for (int it = 0; it < kIterations; ++it) {
      proxy.step();
      const auto offset = proxy.global_offset();
      for (const auto& [name, bytes] : proxy.field_bytes())
        ASSERT_OK(rt.client().write(name, bytes, offset));
      ASSERT_OK(rt.client().end_iteration());
      // The simulation also runs its own collectives on the client comm.
      const double sum = clients.allreduce_value(proxy.theta_total(),
                                                 std::plus<double>());
      EXPECT_GT(sum, 0.0);
    }
    rt.finalize();
  });

  // 2 nodes x 3 iterations of aggregated files.
  EXPECT_EQ(fs.file_count(), 6u);
  // Every file parses and contains all 5 CM1 fields x 2 clients.
  for (const auto& path : fs.list_files()) {
    const h5lite::File file = h5lite::File::parse(*fs.read_file(path));
    for (const char* var : {"theta", "qv", "u", "v", "w"}) {
      const h5lite::Group* group = file.find_group(var);
      ASSERT_NE(group, nullptr) << path << " missing " << var;
      EXPECT_EQ(group->datasets.size(), 2u);
    }
  }
}

TEST(IntegrationTest, Cm1ThroughDedicatedNodesEndToEnd) {
  // The same CM1 workload, deployed in dedicated-*nodes* mode: 4 client
  // ranks ship their blocks over MPI to 2 dedicated I/O ranks at the end
  // of the world (client c -> server c % 2).  Output must be equivalent to
  // the dedicated-cores run, and the server stats must show the blocks
  // actually traveled over the MPI transport.
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 10;
  options.dedicated_mode = core::DedicatedMode::kNodes;
  options.dedicated_nodes = 2;
  options.buffer_size = 32ull << 20;
  const Configuration cfg = sim::make_cm1_configuration(options);
  fsim::FileSystem fs(small_storage(), fast_scale());

  constexpr int kIterations = 3;
  constexpr int kClients = 4;
  std::atomic<std::uint64_t> remote_blocks{0};
  std::atomic<std::uint64_t> remote_bytes{0};
  minimpi::run_world(kClients + 2, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      remote_blocks += rt.server_stats().blocks_received_remote;
      remote_bytes += rt.server_stats().bytes_received_remote;
      return;
    }
    minimpi::Comm& clients = rt.client_comm();
    sim::Cm1Proxy proxy(
        sim::make_cm1_proxy_config(options, clients.rank(), clients.size()));
    for (int it = 0; it < kIterations; ++it) {
      proxy.step();
      for (const auto& [name, bytes] : proxy.field_bytes())
        ASSERT_OK(rt.client().write(name, bytes));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });

  // Every block crossed the interconnect: 4 clients x 5 fields x 3 its.
  EXPECT_EQ(remote_blocks.load(), 4u * 5u * 3u);
  const std::uint64_t block_bytes = 10 * 10 * 10 * sizeof(float);
  EXPECT_EQ(remote_bytes.load(), 4u * 5u * 3u * block_bytes);
  // 2 I/O nodes x 3 iterations of aggregated files.
  EXPECT_EQ(fs.file_count(), 6u);
  // Each file parses and contains all 5 CM1 fields x 2 clients per server.
  for (const auto& path : fs.list_files()) {
    const h5lite::File file = h5lite::File::parse(*fs.read_file(path));
    for (const char* var : {"theta", "qv", "u", "v", "w"}) {
      const h5lite::Group* group = file.find_group(var);
      ASSERT_NE(group, nullptr) << path << " missing " << var;
      EXPECT_EQ(group->datasets.size(), 2u);
    }
  }
}

TEST(IntegrationTest, XmlConfiguredRunMatchesProgrammatic) {
  const std::string xml = R"(
    <simulation name="xmlrun" cores_per_node="3" dedicated_cores="1">
      <buffer size="16MiB" queue="128" policy="block"/>
      <data>
        <layout name="g" type="float64" dimensions="6,6,6"/>
        <variable name="rho" layout="g"/>
      </data>
      <storage basename="xmlout"/>
      <actions><event name="end_iteration" plugin="store"/></actions>
    </simulation>)";
  const Configuration cfg = Configuration::from_string(xml);
  fsim::FileSystem fs(small_storage(), fast_scale());

  minimpi::run_world(3, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      return;
    }
    std::vector<double> rho(6 * 6 * 6, 1.25);
    ASSERT_OK(rt.client().write("rho", std::span<const double>(rho)));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });
  EXPECT_TRUE(fs.exists("xmlout/node0_s0_it0.h5l"));
  const h5lite::File file =
      h5lite::File::parse(*fs.read_file("xmlout/node0_s0_it0.h5l"));
  EXPECT_EQ(std::get<std::string>(file.root().attributes.at("simulation")),
            "xmlrun");
}

TEST(IntegrationTest, DamarisHidesIoThatStallsBaselines) {
  // Same workload, same storage; measure what the simulation experiences.
  // The baselines stall for the full storage time; Damaris clients only
  // pay the shared-memory copy.  Under virtual time (see VirtualTimeScope)
  // each thread's Stopwatch measures exactly its own modelled waits, so
  // the comparison is exact on every run: the baseline stall is the
  // modelled storage time (> 0) and the Damaris client stall — a path
  // with no modelled waits — is exactly 0.
  testing::VirtualTimeScope virtual_time;
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 12;
  options.cores_per_node = 3;
  const Configuration cfg = sim::make_cm1_configuration(options);

  Configuration baseline_cfg = cfg;  // same data model, no dedicated core
  baseline_cfg.set_architecture(3, 0);
  baseline_cfg.validate();

  // -- file-per-process stall
  auto measure_fpp = [&] {
    fsim::FileSystem fs(small_storage(), fast_scale());
    core::FilePerProcessWriter writer(fs, baseline_cfg);
    std::atomic<double> total{0.0};
    minimpi::run_world(3, [&](minimpi::Comm& world) {
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), 3));
      core::IterationData data;
      for (const auto& [name, bytes] : proxy.field_bytes()) data.emplace(name, bytes);
      const double stall = writer.write_iteration(world.rank(), 0, data);
      double expected = total.load();
      while (!total.compare_exchange_weak(expected, expected + stall)) {
      }
    });
    return total.load() / 3.0;
  };

  // -- Damaris stall (client-visible)
  auto measure_damaris = [&] {
    fsim::FileSystem fs(small_storage(), fast_scale());
    std::atomic<double> total{0.0};
    minimpi::run_world(3, [&](minimpi::Comm& world) {
      Runtime rt = Runtime::initialize(cfg, world, fs);
      if (rt.is_server()) {
        rt.run_server();
        return;
      }
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), 2));
      Stopwatch stall;
      for (const auto& [name, bytes] : proxy.field_bytes())
        ASSERT_OK(rt.client().write(name, bytes));
      ASSERT_OK(rt.client().end_iteration());
      const double mine = stall.elapsed_seconds();
      double expected = total.load();
      while (!total.compare_exchange_weak(expected, expected + mine)) {
      }
      rt.finalize();
    });
    return total.load() / 2.0;
  };

  const double fpp_stall = measure_fpp();
  const double damaris_stall = measure_damaris();
  // The baseline pays the modelled create + transfer time ...
  EXPECT_GT(fpp_stall, 0.0);
  // ... while the Damaris client never waits on modelled storage at all.
  EXPECT_EQ(damaris_stall, 0.0);
  EXPECT_LT(damaris_stall, fpp_stall * 0.5);
}

TEST(IntegrationTest, NekInSituPipelineOnDedicatedCore) {
  sim::NekWorkloadOptions options;
  options.nx = options.ny = options.nz = 12;
  options.cores_per_node = 3;
  options.render_size = 48;
  options.write_images = true;
  const Configuration cfg = sim::make_nek_configuration(options);
  fsim::FileSystem fs(small_storage(), fast_scale());

  std::atomic<std::uint64_t> triangles{0};
  std::atomic<std::uint64_t> images{0};
  minimpi::run_world(3, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      auto* plugin = dynamic_cast<core::VisLitePlugin*>(
          rt.server().find_plugin("end_iteration", "vislite"));
      ASSERT_NE(plugin, nullptr);
      triangles = plugin->totals().triangles;
      images = plugin->totals().images_written;
      return;
    }
    sim::NekConfig nek_cfg;
    nek_cfg.nx = nek_cfg.ny = nek_cfg.nz = 12;
    nek_cfg.rank = rt.client_comm().rank();
    nek_cfg.world_size = rt.client_comm().size();
    sim::NekProxy proxy(nek_cfg);
    for (int it = 0; it < 2; ++it) {
      proxy.step();
      ASSERT_OK(rt.client().write("vel_mag", proxy.field_bytes()));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });

  EXPECT_GT(triangles.load(), 0u);
  // 2 clients x 2 iterations = 4 rendered images stored as PPM files.
  EXPECT_EQ(images.load(), 4u);
  int ppm_files = 0;
  for (const auto& path : fs.list_files())
    if (path.ends_with(".ppm")) ++ppm_files;
  EXPECT_EQ(ppm_files, 4);
}

TEST(IntegrationTest, StatsPluginSeesPhysics) {
  // The stats plugin's per-variable mean must track the CM1 base state.
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 10;
  options.cores_per_node = 3;
  Configuration cfg = sim::make_cm1_configuration(options);
  core::ActionSpec stats_action;
  stats_action.event = "end_iteration";
  stats_action.plugin = "stats";
  cfg.add_action(stats_action);
  cfg.validate();

  fsim::FileSystem fs(small_storage(), fast_scale());
  std::atomic<double> theta_mean{0.0};
  minimpi::run_world(3, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      auto* plugin = dynamic_cast<core::StatsPlugin*>(
          rt.server().find_plugin("end_iteration", "stats"));
      ASSERT_NE(plugin, nullptr);
      theta_mean = plugin->latest().per_variable.at("theta").mean;
      return;
    }
    sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), 2));
    proxy.step();
    for (const auto& [name, bytes] : proxy.field_bytes())
      ASSERT_OK(rt.client().write(name, bytes));
    ASSERT_OK(rt.client().end_iteration());
    rt.finalize();
  });
  // Potential temperature hovers near the 300 K base state.
  EXPECT_NEAR(theta_mean.load(), 300.0, 2.0);
}

TEST(IntegrationTest, ManyIterationsStressSegmentReuse) {
  // Long run at tight buffer: every block is allocated and freed dozens of
  // times; the segment must end empty and no file may be lost.
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 8;
  options.cores_per_node = 3;
  options.buffer_size = 3 * 5 * 8 * 8 * 8 * sizeof(float) + 4096;
  const Configuration cfg = sim::make_cm1_configuration(options);
  fsim::FileSystem fs(small_storage(), fast_scale());

  constexpr int kIterations = 25;
  std::atomic<std::uint64_t> final_used{1};
  minimpi::run_world(3, [&](minimpi::Comm& world) {
    Runtime rt = Runtime::initialize(cfg, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      final_used = rt.node().segment().used();
      return;
    }
    sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), 2));
    for (int it = 0; it < kIterations; ++it) {
      // Lockstep like a real bulk-synchronous solver: with a buffer this
      // tight, a free-running client could otherwise fill the segment with
      // its own future iterations and starve its node peer.
      rt.client_comm().barrier();
      for (const auto& [name, bytes] : proxy.field_bytes())
        ASSERT_OK(rt.client().write(name, bytes));
      ASSERT_OK(rt.client().end_iteration());
    }
    rt.finalize();
  });
  EXPECT_EQ(final_used.load(), 0u);
  EXPECT_EQ(fs.file_count(), static_cast<std::size_t>(kIterations));
}

}  // namespace
}  // namespace dedicore
