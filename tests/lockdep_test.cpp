// Runtime lock-order (deadlock) detection: the lockdep layer inside
// dedicore::Mutex (common/sync.hpp).
//
// Two kinds of test live here:
//
//  1. Detector units against synthetic mutexes: a seeded ABBA inversion is
//     reported at its FIRST occurrence (naming both chains), a self-relock
//     is reported, try_lock imposes no ordering, clean hierarchies stay
//     silent, and one inversion reports exactly once.
//
//  2. Regression runs of the REAL lock stacks under lockdep: the pooled
//     shm transport draining into a write-behind queue via the idle hook
//     (the demux.pool -> write_behind.state -> posix.* stack), and the
//     sharded backend's chunk fan-out with its serialized completion
//     callbacks (write_behind.callback -> sharded.state -> posix.*).
//     These assert ZERO reports — the codebase's documented hierarchy
//     (docs/concurrency.md) holds on real interleavings.
//
// Lockdep state is process-global, so every test goes through the
// LockdepTest fixture: handler installed, graph reset, enabled on entry,
// restored on exit.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.hpp"
#include "framework/test_infra.hpp"
#include "shm/bounded_queue.hpp"
#include "storage/posix_backend.hpp"
#include "storage/sharded_backend.hpp"
#include "storage/write_behind.hpp"
#include "transport/shm_transport.hpp"
#include "transport/transport.hpp"

namespace dedicore {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::set_failure_handler(
        [this](const lockdep::Report& report) { reports_.push_back(report.message); });
    lockdep::reset();
    lockdep::set_enabled(true);
  }

  void TearDown() override {
    // Leave the graph clean for the next test and restore the aborting
    // default handler.
    lockdep::reset();
    lockdep::set_failure_handler(nullptr);
  }

  std::vector<std::string> reports_;
};

// ---------------------------------------------------------------------------
// Detector units
// ---------------------------------------------------------------------------

TEST_F(LockdepTest, AbbaInversionReportsAtFirstOccurrenceWithBothChains) {
  Mutex a("test.alpha");
  Mutex b("test.beta");

  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);  // records alpha -> beta
  }
  EXPECT_EQ(lockdep::report_count(), 0u);

  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // beta -> alpha closes the cycle: report NOW,
                          // even though nothing actually deadlocked
  }
  ASSERT_EQ(lockdep::report_count(), 1u);
  ASSERT_EQ(reports_.size(), 1u);
  // The report names both orders' chains.
  EXPECT_NE(reports_[0].find("test.beta -> test.alpha"), std::string::npos)
      << reports_[0];
  EXPECT_NE(reports_[0].find("'test.alpha' before 'test.beta'"),
            std::string::npos)
      << reports_[0];
}

TEST_F(LockdepTest, OneInversionReportsExactlyOnce) {
  Mutex a("test.once_a");
  Mutex b("test.once_b");
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  for (int i = 0; i < 3; ++i) {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  EXPECT_EQ(lockdep::report_count(), 1u);
}

TEST_F(LockdepTest, ThreeLockCycleAcrossThreadsIsDetected) {
  Mutex a("test.ring_a");
  Mutex b("test.ring_b");
  Mutex c("test.ring_c");

  // Each edge recorded by a DIFFERENT thread: the graph is global.
  std::thread([&] {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }).join();
  std::thread([&] {
    MutexLock hold_b(b);
    MutexLock hold_c(c);
  }).join();
  EXPECT_EQ(lockdep::report_count(), 0u);

  std::thread([&] {
    MutexLock hold_c(c);
    MutexLock hold_a(a);  // a->b->c->a
  }).join();
  ASSERT_EQ(lockdep::report_count(), 1u);
  EXPECT_NE(reports_[0].find("test.ring_c -> test.ring_a"), std::string::npos)
      << reports_[0];
}

TEST_F(LockdepTest, SelfRelockIsReportedBeforeTheDeadlock) {
  // The handler must intervene BEFORE the native lock call would block on
  // itself; throwing from it proves the report precedes the deadlock and
  // gets this thread out alive.
  struct Abort {};
  lockdep::set_failure_handler([](const lockdep::Report&) { throw Abort{}; });

  Mutex m("test.self");
  MutexLock hold(m);
  EXPECT_THROW(m.lock(), Abort);
  EXPECT_EQ(lockdep::report_count(), 1u);
}

TEST_F(LockdepTest, TryLockImposesNoOrderingEdge) {
  Mutex a("test.try_a");
  Mutex b("test.try_b");

  {
    MutexLock hold_a(a);
    ASSERT_TRUE(b.try_lock());  // cannot block -> no a->b edge
    b.unlock();
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // b->a is now the ONLY recorded order: no cycle
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
}

TEST_F(LockdepTest, SiblingInstancesOfOneClassDoNotFalsePositive) {
  // Two queues lock tail/head in the same class order; sequential use by
  // different threads must not look like an inversion.
  shm::BoundedQueue<int> q1(4);
  shm::BoundedQueue<int> q2(4);
  std::thread t1([&] {
    for (int i = 0; i < 8; ++i) {
      (void)q1.try_push(i);
      (void)q2.try_push(i);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 8; ++i) {
      (void)q2.try_pop();
      (void)q1.try_pop();
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(lockdep::report_count(), 0u);
}

TEST_F(LockdepTest, CondVarWaitKeepsTheMutexInTheHeldSet) {
  Mutex m("test.cv_mutex");
  Mutex inner("test.cv_inner");
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    {
      MutexLock lock(m);
      ready = true;
    }
    cv.notify_all();
  });
  {
    UniqueLock lock(m);
    while (!ready) cv.wait(lock);
    // Still holding m after the wait: this acquisition must record the
    // m -> inner edge (the held set survived the wait's unlock/relock).
    MutexLock nested(inner);
  }
  waker.join();
  {
    MutexLock hold_inner(inner);
    MutexLock hold_m(m);  // contradicts the edge recorded across the wait
  }
  EXPECT_EQ(lockdep::report_count(), 1u);
}

// ---------------------------------------------------------------------------
// Real lock stacks (regression: the documented hierarchy holds)
// ---------------------------------------------------------------------------

// The worker-pool stack: pooled shm transport, concurrent clients, idle
// workers draining a write-behind queue onto a posix backend — the
// demux.pool / queue.* / segment.state / shm.ledger / write_behind.* /
// posix.* classes all interleave here.  Zero reports expected.
TEST_F(LockdepTest, PooledTransportWithIdleDrainRunsInversionFree) {
  constexpr int kClients = 3;
  constexpr int kWorkers = 3;
  constexpr int kBlocks = 24;

  testing::TempDir dir("lockdep_pool");
  storage::PosixBackend backend(dir.path());
  storage::WriteBehind write_behind(backend, 1 << 20);

  auto fabric = std::make_shared<transport::ShmFabric>(
      /*segment_capacity=*/1 << 16, /*queue_count=*/1, /*queue_capacity=*/64);
  transport::ShmServerTransport server(fabric, 0);
  server.set_worker_count(kWorkers);
  server.set_idle_hook([&write_behind] { return write_behind.try_drain_one(); });

  std::atomic<int> stops{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (auto event = server.next_event(w)) {
        if (event->type == transport::EventType::kBlockWritten) {
          // Queue disk work from the consuming worker, as the server's
          // store pipeline does, then return the block.
          std::vector<std::byte> image(64, std::byte{0x5a});
          write_behind.enqueue({"blk_" + std::to_string(event->source) + "_" +
                                    std::to_string(event->block_id) + ".bin",
                                0, std::move(image)});
          server.release(event->block);
        } else if (event->type == transport::EventType::kClientStop) {
          if (stops.fetch_add(1) + 1 == kClients) server.end_of_stream();
        }
      }
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      transport::ShmClientTransport client(fabric, 0, /*client_index=*/c);
      for (std::uint32_t b = 0; b < kBlocks; ++b) {
        auto ref = client.acquire_blocking(128);
        ASSERT_TRUE(ref.has_value());
        transport::Event event;
        event.type = transport::EventType::kBlockWritten;
        event.source = c;
        event.block_id = b;
        event.block = *ref;
        ASSERT_TRUE(client.publish(event));
      }
      transport::Event stop;
      stop.type = transport::EventType::kClientStop;
      stop.source = c;
      ASSERT_TRUE(client.post(stop));
    });
  }

  for (auto& t : clients) t.join();
  for (auto& t : workers) t.join();
  write_behind.close();

  EXPECT_EQ(write_behind.stats().jobs_failed, 0u);
  EXPECT_EQ(lockdep::report_count(), 0u)
      << (reports_.empty() ? "" : reports_[0]);
}

// The sharded write-behind stack: chunk fan-out with concurrent drainers,
// completion tickets publishing manifests under the serialized-callback
// lock — write_behind.callback above sharded.state / placement.state /
// posix.handles / posix.file, sharded.image above all of them.  Zero
// reports expected.
TEST_F(LockdepTest, ShardedWriteBehindFanOutRunsInversionFree) {
  testing::TempDir dir("lockdep_sharded");
  std::vector<std::filesystem::path> roots;
  for (int r = 0; r < 3; ++r) {
    roots.push_back(dir.path() / ("root" + std::to_string(r)));
    std::filesystem::create_directories(roots.back());
  }
  storage::ShardedOptions opts;
  opts.chunk_size = 512;
  storage::ShardedBackend backend(roots, opts);
  storage::WriteBehind write_behind(backend, 1 << 20);

  std::atomic<int> completions{0};
  for (int i = 0; i < 6; ++i) {
    storage::WriteBehind::Job job;
    job.path = "img_" + std::to_string(i) + ".bin";
    job.image.assign(1800, std::byte{static_cast<unsigned char>(i)});
    job.on_complete = [&completions](const Status& st) {
      EXPECT_TRUE(st.is_ok()) << st.to_string();
      ++completions;
    };
    write_behind.enqueue(std::move(job));
  }

  // Concurrent drainers spread one image's chunks across threads.
  std::vector<std::thread> drainers;
  for (int d = 0; d < 3; ++d)
    drainers.emplace_back([&] { write_behind.drain_all(); });
  for (auto& t : drainers) t.join();
  write_behind.close();

  EXPECT_EQ(completions.load(), 6);
  EXPECT_EQ(backend.file_count(), 6u);
  EXPECT_EQ(lockdep::report_count(), 0u)
      << (reports_.empty() ? "" : reports_[0]);
}

}  // namespace
}  // namespace dedicore
