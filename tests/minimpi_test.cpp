// Tests for the thread-based MPI runtime: point-to-point semantics,
// collectives (parameterized over rank counts), communicator splitting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "minimpi/minimpi.hpp"

namespace dedicore::minimpi {
namespace {

TEST(MiniMpiTest, WorldHasRanksAndSize) {
  std::atomic<int> rank_sum{0};
  run_world(4, [&](Comm& world) {
    EXPECT_EQ(world.size(), 4);
    rank_sum += world.rank();
  });
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3);
}

TEST(MiniMpiTest, SingleRankWorldWorks) {
  run_world(1, [](Comm& world) {
    EXPECT_EQ(world.rank(), 0);
    world.barrier();
    EXPECT_EQ(world.bcast_value(41, 0), 41);
    EXPECT_EQ(world.allreduce_value(2, std::plus<int>()), 2);
  });
}

TEST(MiniMpiTest, SendRecvDeliversPayload) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      const double data[3] = {1.0, 2.0, 3.0};
      world.send(data, 3, 1, 7);
    } else {
      Message env;
      const auto received = world.recv_vector<double>(0, 7, &env);
      ASSERT_EQ(received.size(), 3u);
      EXPECT_DOUBLE_EQ(received[2], 3.0);
      EXPECT_EQ(env.source, 0);
      EXPECT_EQ(env.tag, 7);
    }
  });
}

TEST(MiniMpiTest, SendBytesPartsArrivesAsOneConcatenatedMessage) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::vector<std::byte>> parts;
      parts.push_back({std::byte{'a'}, std::byte{'b'}});
      parts.push_back({});  // empty parts are legal and contribute nothing
      parts.push_back({std::byte{'c'}, std::byte{'d'}, std::byte{'e'}});
      world.send_bytes_parts(std::move(parts), 1, 9);
      // Single-part batches take the move-through path.
      std::vector<std::vector<std::byte>> single;
      single.push_back({std::byte{'z'}});
      world.send_bytes_parts(std::move(single), 1, 9);
    } else {
      const Message first = world.recv(0, 9);
      ASSERT_EQ(first.payload.size(), 5u);  // ONE message, parts concatenated
      EXPECT_EQ(std::to_integer<char>(first.payload[0]), 'a');
      EXPECT_EQ(std::to_integer<char>(first.payload[4]), 'e');
      const Message second = world.recv(0, 9);
      ASSERT_EQ(second.payload.size(), 1u);
      EXPECT_EQ(std::to_integer<char>(second.payload[0]), 'z');
      // Exactly two messages total: nothing else is in flight.
      EXPECT_FALSE(world.try_recv(0, 9).has_value());
    }
  });
}

TEST(MiniMpiTest, TagMatchingIsSelective) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_value(111, 1, /*tag=*/1);
      world.send_value(222, 1, /*tag=*/2);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(world.recv_value<int>(0, 2), 222);
      EXPECT_EQ(world.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(MiniMpiTest, FifoOrderPerSenderAndTag) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 100; ++i) world.send_value(i, 1, 5);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(world.recv_value<int>(0, 5), i);
    }
  });
}

TEST(MiniMpiTest, WildcardSourceReceivesFromAnyone) {
  run_world(4, [](Comm& world) {
    if (world.rank() != 0) {
      world.send_value(world.rank(), 0, 3);
    } else {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        Message m = world.recv(kAnySource, 3);
        int value = 0;
        std::memcpy(&value, m.payload.data(), sizeof(int));
        sum += value;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(MiniMpiTest, TryRecvAndProbe) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      EXPECT_FALSE(world.try_recv(1, 9).has_value());
      EXPECT_FALSE(world.iprobe(1, 9).has_value());
      world.send_value(1, 1, 8);  // handshake
      const ProbeResult probe = world.probe(1, 9);
      EXPECT_EQ(probe.source, 1);
      EXPECT_EQ(probe.size, sizeof(int));
      // Probe does not consume:
      EXPECT_EQ(world.recv_value<int>(1, 9), 77);
    } else {
      (void)world.recv_value<int>(0, 8);
      world.send_value(77, 0, 9);
    }
  });
}

TEST(MiniMpiTest, NonblockingRequests) {
  run_world(2, [](Comm& world) {
    if (world.rank() == 0) {
      Request send = world.isend_bytes({}, 1, 4);
      EXPECT_TRUE(send.test());
      send.wait();
      Request recv = world.irecv(1, 6);
      Message m = recv.wait();
      EXPECT_EQ(m.source, 1);
    } else {
      (void)world.recv(0, 4);
      world.send_bytes({}, 0, 6);
    }
  });
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierSynchronizes) {
  const int n = GetParam();
  std::atomic<int> before{0}, after{0};
  run_world(n, [&](Comm& world) {
    ++before;
    world.barrier();
    // Everyone incremented `before` prior to anyone passing the barrier.
    EXPECT_EQ(before.load(), n);
    ++after;
  });
  EXPECT_EQ(after.load(), n);
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data;
      if (world.rank() == root) data = {root * 10, root * 10 + 1};
      world.bcast(data, root);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], root * 10);
      EXPECT_EQ(data[1], root * 10 + 1);
    }
  });
}

TEST_P(CollectiveTest, ReduceSumToEveryRoot) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    for (int root = 0; root < n; ++root) {
      const std::vector<std::int64_t> mine{world.rank(), 1};
      auto result = world.reduce(mine, root, std::plus<std::int64_t>());
      if (world.rank() == root) {
        ASSERT_EQ(result.size(), 2u);
        EXPECT_EQ(result[0], static_cast<std::int64_t>(n) * (n - 1) / 2);
        EXPECT_EQ(result[1], n);
      } else {
        EXPECT_TRUE(result.empty());
      }
    }
  });
}

TEST_P(CollectiveTest, AllreduceMinMax) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    const int lo = world.allreduce_value(world.rank(),
                                         [](int a, int b) { return std::min(a, b); });
    const int hi = world.allreduce_value(world.rank(),
                                         [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, n - 1);
  });
}

TEST_P(CollectiveTest, GatherPreservesRankOrder) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    const std::vector<int> mine{world.rank()};
    const auto all = world.gather(mine, 0);
    if (world.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST_P(CollectiveTest, GathervVariableSizes) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    std::vector<int> mine(static_cast<std::size_t>(world.rank()) + 1, world.rank());
    std::vector<std::size_t> counts;
    const auto all = world.gatherv(mine, 0, &counts);
    if (world.rank() == 0) {
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(n));
      std::size_t expected_total = 0;
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(counts[static_cast<std::size_t>(i)],
                  static_cast<std::size_t>(i) + 1);
        expected_total += static_cast<std::size_t>(i) + 1;
      }
      EXPECT_EQ(all.size(), expected_total);
    }
  });
}

TEST_P(CollectiveTest, ScanComputesPrefixSums) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    const int prefix = world.scan_value(world.rank() + 1, std::plus<int>());
    EXPECT_EQ(prefix, (world.rank() + 1) * (world.rank() + 2) / 2);
  });
}

TEST_P(CollectiveTest, AlltoallExchangesPersonalizedData) {
  const int n = GetParam();
  run_world(n, [&](Comm& world) {
    std::vector<std::vector<std::byte>> blocks(static_cast<std::size_t>(n));
    for (int dst = 0; dst < n; ++dst)
      blocks[static_cast<std::size_t>(dst)] = {
          static_cast<std::byte>(world.rank()), static_cast<std::byte>(dst)};
    const auto received = world.alltoall_bytes(std::move(blocks));
    ASSERT_EQ(received.size(), static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      ASSERT_EQ(received[static_cast<std::size_t>(src)].size(), 2u);
      EXPECT_EQ(std::to_integer<int>(received[static_cast<std::size_t>(src)][0]), src);
      EXPECT_EQ(std::to_integer<int>(received[static_cast<std::size_t>(src)][1]),
                world.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(MiniMpiTest, SplitGroupsByColor) {
  run_world(6, [](Comm& world) {
    // Even/odd split, keyed by descending world rank.
    Comm sub = world.split(world.rank() % 2, -world.rank());
    EXPECT_EQ(sub.size(), 3);
    // Key ordering: highest world rank becomes rank 0.
    const auto members = sub.gather(std::vector<int>{world.rank()}, 0);
    if (sub.rank() == 0) {
      ASSERT_EQ(members.size(), 3u);
      EXPECT_GT(members[0], members[1]);
      EXPECT_GT(members[1], members[2]);
    }
    // The sub-communicator is fully functional.
    const int total = sub.allreduce_value(world.rank(), std::plus<int>());
    const int expected = world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_EQ(total, expected);
  });
}

TEST(MiniMpiTest, SplitWithNegativeColorExcludes) {
  run_world(4, [](Comm& world) {
    Comm sub = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    if (world.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(MiniMpiTest, SplitByNodeMakesUniformNodes) {
  run_world(8, [](Comm& world) {
    Comm node = world.split_by_node(4);
    EXPECT_EQ(node.size(), 4);
    EXPECT_EQ(node.rank(), world.rank() % 4);
    // Sub-collectives stay node-local.
    const int node_sum = node.allreduce_value(1, std::plus<int>());
    EXPECT_EQ(node_sum, 4);
  });
}

TEST(MiniMpiTest, NestedSplitsWork) {
  run_world(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    EXPECT_EQ(quarter.allreduce_value(1, std::plus<int>()), 2);
  });
}

TEST(MiniMpiTest, RankBodyExceptionsPropagate) {
  EXPECT_THROW(run_world(3,
                         [](Comm& world) {
                           if (world.rank() == 2)
                             throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

TEST(MiniMpiTest, LargePayloadsSurvive) {
  run_world(2, [](Comm& world) {
    const std::size_t n = 1 << 20;  // 8 MiB of doubles
    if (world.rank() == 0) {
      std::vector<double> data(n);
      std::iota(data.begin(), data.end(), 0.0);
      world.send(data.data(), data.size(), 1, 2);
    } else {
      const auto data = world.recv_vector<double>(0, 2);
      ASSERT_EQ(data.size(), n);
      EXPECT_DOUBLE_EQ(data[n - 1], static_cast<double>(n - 1));
    }
  });
}

TEST(MiniMpiTest, WtimeIsMonotonic) {
  const double a = Comm::wtime();
  const double b = Comm::wtime();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace dedicore::minimpi
