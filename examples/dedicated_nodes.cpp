// Dedicated I/O *nodes*: the same one-line-per-variable API, deployed over
// the MPI transport instead of shared memory.
//
// A world of 8 ranks: 6 run the simulation, the last 2 act as dedicated
// I/O nodes (dedicated_mode="nodes").  Client rank c ships its blocks over
// minimpi point-to-point to I/O rank 6 + (c % 2); each I/O rank re-homes
// the payloads in its own segment, aggregates them into one h5lite file
// per iteration, and returns flow credit as it releases blocks — the
// credit budget is the distributed analogue of the bounded shared segment.
//
// Each I/O rank models a whole I/O *node*: it drains its intake with a
// pool of server workers (server_workers="3" here; default is the full
// cores_per_node width).  Client ownership is a transferable token: an
// idle worker steals the most-backlogged client from the busiest peer
// (steal="on", the default; steal_threshold sets the minimum backlog
// worth migrating), so per-client ordering survives the concurrency but
// one hot client cannot serialize the pool.  Workers with nothing to
// consume or steal drain the storage write-behind queue instead of
// sleeping — the steals/idle-drain counters below show both mechanisms.
//
// Build & run:   ./examples/dedicated_nodes
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"

using namespace dedicore;

int main() {
  // Identical data model to quickstart; only the deployment line differs.
  const core::Configuration config = core::Configuration::from_string(R"(
    <simulation name="dedicated_nodes" dedicated_mode="nodes" dedicated_nodes="2"
                server_workers="3" steal="on" steal_threshold="2">
      <buffer size="16MiB" queue="256" policy="block"/>
      <data>
        <layout name="block" type="float64" dimensions="32,32"/>
        <variable name="temperature" layout="block"/>
      </data>
      <storage basename="ion"/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
    </simulation>)");

  fsim::StorageConfig storage;
  storage.ost_count = 4;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  constexpr int kWorld = 8;
  constexpr int kIterations = 3;
  minimpi::run_world(kWorld, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);

    if (rt.is_server()) {
      rt.run_server();  // the dedicated I/O node's event loop
      const auto& stats = rt.server_stats();
      std::printf(
          "[io-node %d] iterations=%llu blocks_over_mpi=%llu "
          "bytes_over_mpi=%llu files=%llu idle=%.1f%% steals=%llu "
          "idle_drains=%llu\n",
          rt.node_id(),
          static_cast<unsigned long long>(stats.iterations_completed),
          static_cast<unsigned long long>(stats.blocks_received_remote),
          static_cast<unsigned long long>(stats.bytes_received_remote),
          static_cast<unsigned long long>(stats.files_written),
          stats.idle_fraction() * 100.0,
          static_cast<unsigned long long>(stats.steals),
          static_cast<unsigned long long>(stats.idle_drain_jobs));
      return;
    }

    // --- the "simulation": every core of the compute ranks computes ---
    std::vector<double> temperature(32 * 32);
    for (int it = 0; it < kIterations; ++it) {
      for (std::size_t i = 0; i < temperature.size(); ++i)
        temperature[i] = 300.0 + it + 0.01 * static_cast<double>(i);
      (void)rt.client().write("temperature",
                              std::span<const double>(temperature));
      (void)rt.client().end_iteration();
    }
    rt.finalize();
  });

  std::printf("files written by the dedicated I/O nodes:\n");
  for (const auto& path : fs.list_files()) {
    std::printf("  %s (%llu bytes)\n", path.c_str(),
                static_cast<unsigned long long>(fs.file_size(path)));
  }
  return 0;
}
