// Using the dedicated cores' idle time for compression (§IV.D).
//
// Runs the same CM1 workload twice — once storing raw, once with the
// xor+lzs codec enabled in the storage plugin — and compares file sizes
// and the simulation-visible cost.  The paper's claim: a 600% compression
// ratio "without any overhead on the simulation", because the compression
// runs on cores the simulation does not use.
//
// Usage: ./examples/compression_pipeline [iterations] [grid]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compress/codec.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;

namespace {

struct RunResult {
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
  double median_client_stall = 0.0;
  double idle_fraction = 0.0;
};

RunResult run(const std::string& codec, int iterations, std::uint64_t grid) {
  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = grid;
  options.cores_per_node = 4;
  options.codec = codec;
  const core::Configuration config = sim::make_cm1_configuration(options);

  fsim::StorageConfig storage;
  storage.ost_count = 8;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  std::mutex mutex;
  SampleSet stalls;
  RunResult result;

  minimpi::run_world(4, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      std::lock_guard<std::mutex> lock(mutex);
      result.idle_fraction = rt.server_stats().idle_fraction();
      if (auto* store = dynamic_cast<core::StorePlugin*>(
              rt.server().find_plugin("end_iteration", "store"))) {
        result.raw_bytes = store->totals().raw_bytes;
        result.stored_bytes = store->totals().stored_bytes;
      }
      return;
    }
    sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(
        options, rt.client_comm().rank(), rt.client_comm().size()));
    for (int it = 0; it < iterations; ++it) {
      proxy.step();
      Stopwatch stall;
      for (const auto& [name, bytes] : proxy.field_bytes())
        (void)rt.client().write(name, bytes);
      (void)rt.client().end_iteration();
      std::lock_guard<std::mutex> lock(mutex);
      stalls.add(stall.elapsed_seconds());
    }
    rt.finalize();
  });
  result.median_client_stall = stalls.summary().median;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t grid = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;

  std::printf("CM1 workload, %d iterations, %llu^3 floats per core, "
              "3 clients + 1 dedicated core\n\n",
              iterations, static_cast<unsigned long long>(grid));

  const RunResult raw = run("none", iterations, grid);
  const RunResult packed = run("xor+lzs", iterations, grid);

  Table table({"mode", "payload", "stored", "ratio", "client stall (median)",
               "dedicated idle"});
  table.add_row({"raw", format_bytes(raw.raw_bytes),
                 format_bytes(raw.stored_bytes), "1.00x",
                 fmt_double(raw.median_client_stall * 1e6, 1) + " us",
                 fmt_percent(raw.idle_fraction)});
  table.add_row({"xor+lzs", format_bytes(packed.raw_bytes),
                 format_bytes(packed.stored_bytes),
                 fmt_speedup(compress::compression_ratio(packed.raw_bytes,
                                                         packed.stored_bytes)),
                 fmt_double(packed.median_client_stall * 1e6, 1) + " us",
                 fmt_percent(packed.idle_fraction)});
  table.print(std::cout, "compression on the dedicated core");

  std::printf("\nThe simulation-visible stall is unchanged: compression runs "
              "on core time the simulation never sees (paper: 600%% ratio, "
              "no overhead).\n");
  return 0;
}
