// Nek5000-like solver with SYNCHRONOUS in-situ visualization — the
// VisIt-style integration the paper compares against (§V.C).
//
// Everything the dedicated core does for free in nek5000_insitu.cpp is
// done here inside the simulation loop, by the simulation cores, stalling
// the solver: build the grid view, pick the isovalue, extract the
// isosurface, configure the renderer, rasterize, encode, open the file,
// write it, close it — and coordinate all of that across ranks.  The
// `// vislite-api` markers tag each line of visualization plumbing that
// the simulation's author has to write and maintain; bench_usability
// counts them against the `// damaris-api` markers of the Damaris version.
//
// Usage: ./examples/nek5000_vislite_direct [ranks] [iterations]
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/nek_proxy.hpp"
#include "viz/vislite.hpp"

using namespace dedicore;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 4;

  fsim::StorageConfig storage;
  storage.ost_count = 8;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  std::printf("Nek5000 proxy + SYNCHRONOUS VisLite: %d ranks, %d iterations\n",
              ranks, iterations);

  std::mutex mutex;
  SampleSet iteration_times;
  std::uint64_t total_triangles = 0;

  minimpi::run_world(ranks, [&](minimpi::Comm& world) {
    sim::NekConfig nek;
    nek.nx = nek.ny = nek.nz = 16;
    nek.rank = world.rank();
    nek.world_size = world.size();
    sim::NekProxy proxy(nek);

    for (int it = 0; it < iterations; ++it) {
      Stopwatch step_time;
      proxy.step();

      // ---- synchronous visualization: the solver stalls through all of
      // this, every rank, every iteration ----------------------------------
      const auto field = proxy.velocity_magnitude();                   // vislite-api
      viz::GridView grid{field, 16, 16, 16};                           // vislite-api
      grid.validate();                                                 // vislite-api
      const viz::FieldStatistics stats =                               // vislite-api
          viz::compute_statistics(field);                              // vislite-api
      // Agree on one global isovalue, which costs a collective.       // vislite-api
      const double local_sum = stats.mean * static_cast<double>(stats.count);  // vislite-api
      const double global_sum =                                        // vislite-api
          world.allreduce_value(local_sum, std::plus<double>());       // vislite-api
      const auto global_count = world.allreduce_value(                 // vislite-api
          static_cast<std::uint64_t>(stats.count), std::plus<std::uint64_t>());  // vislite-api
      const double isovalue = global_sum / static_cast<double>(global_count);   // vislite-api
      const auto triangles = viz::extract_isosurface(grid, isovalue);  // vislite-api
      viz::RenderOptions options;                                      // vislite-api
      options.width = 96;                                              // vislite-api
      options.height = 96;                                             // vislite-api
      options.view_axis = viz::Axis::kZ;                               // vislite-api
      const viz::Vec3 extent{15, 15, 15};                              // vislite-api
      const viz::Image image =                                         // vislite-api
          viz::render_triangles(triangles, extent, options);           // vislite-api
      const auto ppm = image.encode_ppm();                             // vislite-api
      const std::string path = "viz_direct/r" +                        // vislite-api
                               std::to_string(world.rank()) + "_it" +  // vislite-api
                               std::to_string(it) + ".ppm";            // vislite-api
      const fsim::FileHandle file = fs.create(path);                   // vislite-api
      fs.write(file, ppm);                                             // vislite-api
      fs.close(file);                                                  // vislite-api
      world.barrier();  // keep ranks in lockstep like VisIt's update   // vislite-api
      // ---------------------------------------------------------------------

      std::lock_guard<std::mutex> lock(mutex);
      iteration_times.add(step_time.elapsed_seconds());
      total_triangles += triangles.size();
    }
  });

  const Summary times = iteration_times.summary();
  std::printf("\nsimulation iteration time: median %.2fms (p99 %.2fms) — "
              "includes the visualization stall\n",
              times.median * 1e3, times.p99 * 1e3);
  std::printf("rendered %llu triangles; %zu images under viz_direct/\n",
              static_cast<unsigned long long>(total_triangles),
              fs.file_count());
  return 0;
}
