// Nek5000-like CFD solver with in-situ visualization on dedicated cores.
//
// Reproduces §V.C.1 of the paper: the simulation itself never stops for
// visualization — the "vislite" plugin (isosurface + rendering) runs on
// the dedicated core against the shared-memory data and writes PPM images
// through the filesystem.  Compare with nek5000_vislite_direct.cpp, which
// performs the exact same pipeline synchronously inside the simulation
// loop (the VisIt-style integration the paper argues against).
//
// The `// damaris-api` markers tag every line of middleware integration;
// bench_usability counts them against the direct version (§V.C.2).
//
// Usage: ./examples/nek5000_insitu [nodes] [cores_per_node] [iterations]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/nek_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  const int cores_per_node = argc > 2 ? std::atoi(argv[2]) : 4;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 4;

  sim::NekWorkloadOptions options;                                   // damaris-api
  options.nx = options.ny = options.nz = 16;
  options.cores_per_node = cores_per_node;
  options.write_images = true;
  options.render_size = 96;
  const core::Configuration config = sim::make_nek_configuration(options);  // damaris-api

  fsim::StorageConfig storage;
  storage.ost_count = 8;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  std::printf("Nek5000 proxy + in-situ VisLite on dedicated cores: %d nodes, "
              "%d iterations\n", nodes, iterations);

  std::mutex mutex;
  SampleSet iteration_times;
  core::VisLitePlugin::Totals viz_totals;

  minimpi::run_world(nodes * cores_per_node, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);  // damaris-api
    if (rt.is_server()) {                                             // damaris-api
      rt.run_server();                                                // damaris-api
      std::lock_guard<std::mutex> lock(mutex);
      if (auto* plugin = dynamic_cast<core::VisLitePlugin*>(
              rt.server().find_plugin("end_iteration", "vislite"))) {
        const auto t = plugin->totals();
        viz_totals.invocations += t.invocations;
        viz_totals.blocks_rendered += t.blocks_rendered;
        viz_totals.triangles += t.triangles;
        viz_totals.images_written += t.images_written;
        viz_totals.pipeline_seconds += t.pipeline_seconds;
      }
      return;
    }

    sim::NekConfig nek;
    nek.nx = nek.ny = nek.nz = 16;
    nek.rank = rt.client_comm().rank();
    nek.world_size = rt.client_comm().size();
    sim::NekProxy proxy(nek);

    for (int it = 0; it < iterations; ++it) {
      Stopwatch step_time;
      proxy.step();  // the solver — no visualization code in this loop
      (void)rt.client().write("vel_mag", proxy.field_bytes());        // damaris-api
      (void)rt.client().end_iteration();                              // damaris-api
      std::lock_guard<std::mutex> lock(mutex);
      iteration_times.add(step_time.elapsed_seconds());
    }
    rt.finalize();                                                    // damaris-api
  });

  const Summary times = iteration_times.summary();
  std::printf("\nsimulation iteration time: median %.2fms (p99 %.2fms) — "
              "unaffected by visualization\n",
              times.median * 1e3, times.p99 * 1e3);
  std::printf("dedicated cores rendered %llu isosurface blocks "
              "(%llu triangles) into %llu PPM images, spending %.2fs of "
              "otherwise-idle core time\n",
              static_cast<unsigned long long>(viz_totals.blocks_rendered),
              static_cast<unsigned long long>(viz_totals.triangles),
              static_cast<unsigned long long>(viz_totals.images_written),
              viz_totals.pipeline_seconds);

  int images = 0;
  for (const auto& path : fs.list_files())
    if (path.ends_with(".ppm")) ++images;
  std::printf("%d images on the filesystem under viz/\n", images);
  return 0;
}
