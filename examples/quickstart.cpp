// Quickstart: the smallest complete Damaris-style run.
//
// One SMP node with 4 cores: 3 run the "simulation" (they just fill a
// field), 1 is dedicated to I/O.  The dedicated core aggregates all three
// clients' blocks into one h5lite file per iteration, asynchronously.
//
// By default the files land in the filesystem *simulator* (modelled
// durations, in-memory content).  Pass a directory to persist them for
// real through the posix storage backend — the h5lite files then appear
// on your actual disk, emitted by the dedicated core's write-behind queue:
//
// Build & run:   ./examples/quickstart [output-dir]
#include <cstdio>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "storage/posix_backend.hpp"

using namespace dedicore;

int main(int argc, char** argv) {
  const std::string output_dir = argc > 1 ? argv[1] : "";

  // The data model comes from an XML description, as in Damaris/ADIOS.
  // storage backend="posix" path="..." switches every persisted byte from
  // the simulator to real files, with no change to the simulation code.
  const std::string storage_element =
      output_dir.empty()
          ? R"(<storage basename="quickstart"/>)"
          : R"(<storage basename="quickstart" backend="posix" path=")" +
                output_dir + R"(" write_behind="8MiB"/>)";
  const core::Configuration config = core::Configuration::from_string(R"(
    <simulation name="quickstart" cores_per_node="4" dedicated_cores="1">
      <buffer size="16MiB" queue="256" policy="block"/>
      <data>
        <layout name="block" type="float64" dimensions="32,32"/>
        <variable name="temperature" layout="block"/>
      </data>
      )" + storage_element + R"(
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
    </simulation>)");

  // A simulated parallel filesystem (4 OSTs + 1 metadata server); unused
  // for persistence when the posix backend is selected.
  fsim::StorageConfig storage;
  storage.ost_count = 4;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;  // 1 simulated second = 1 ms of wall time
  fsim::FileSystem fs(storage, scale);

  constexpr int kIterations = 3;
  minimpi::run_world(4, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);  // damaris-api

    if (rt.is_server()) {   // damaris-api
      rt.run_server();      // damaris-api — the dedicated core's event loop
      const auto& stats = rt.server_stats();
      std::printf("[server] iterations=%llu bytes_written=%llu idle=%.1f%%\n",
                  static_cast<unsigned long long>(stats.iterations_completed),
                  static_cast<unsigned long long>(stats.bytes_written),
                  stats.idle_fraction() * 100.0);
      return;
    }

    // --- the "simulation" ---
    std::vector<double> temperature(32 * 32);
    for (int it = 0; it < kIterations; ++it) {
      for (std::size_t i = 0; i < temperature.size(); ++i)
        temperature[i] = 300.0 + it + 0.01 * static_cast<double>(i);

      // One line per variable, one line per time step: that is the whole
      // integration cost of the middleware (§V.C.2 of the paper).
      (void)rt.client().write(
          "temperature", std::span<const double>(temperature));  // damaris-api
      (void)rt.client().end_iteration();  // damaris-api
    }
    rt.finalize();  // damaris-api
  });

  if (output_dir.empty()) {
    std::printf("files written through the dedicated core (simulated fs):\n");
    for (const auto& path : fs.list_files()) {
      std::printf("  %s (%llu bytes)\n", path.c_str(),
                  static_cast<unsigned long long>(fs.file_size(path)));
    }
    std::printf("pass an output directory to write them to real disk\n");
  } else {
    storage::PosixBackend disk(output_dir);
    std::printf("files written through the dedicated core to %s:\n",
                output_dir.c_str());
    for (const auto& path : disk.list_files()) {
      std::printf("  %s (%llu bytes)\n", path.c_str(),
                  static_cast<unsigned long long>(disk.file_size(path)));
    }
  }
  return 0;
}
