// Quickstart: the smallest complete Damaris-style run.
//
// One SMP node with 4 cores: 3 run the "simulation" (they just fill a
// field), 1 is dedicated to I/O.  The dedicated core aggregates all three
// clients' blocks into one h5lite file per iteration, asynchronously.
//
// Build & run:   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"

using namespace dedicore;

int main() {
  // The data model comes from an XML description, as in Damaris/ADIOS.
  const core::Configuration config = core::Configuration::from_string(R"(
    <simulation name="quickstart" cores_per_node="4" dedicated_cores="1">
      <buffer size="16MiB" queue="256" policy="block"/>
      <data>
        <layout name="block" type="float64" dimensions="32,32"/>
        <variable name="temperature" layout="block"/>
      </data>
      <storage basename="quickstart"/>
      <actions>
        <event name="end_iteration" plugin="store"/>
      </actions>
    </simulation>)");

  // A simulated parallel filesystem (4 OSTs + 1 metadata server).
  fsim::StorageConfig storage;
  storage.ost_count = 4;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;  // 1 simulated second = 1 ms of wall time
  fsim::FileSystem fs(storage, scale);

  constexpr int kIterations = 3;
  minimpi::run_world(4, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);  // damaris-api

    if (rt.is_server()) {   // damaris-api
      rt.run_server();      // damaris-api — the dedicated core's event loop
      const auto& stats = rt.server_stats();
      std::printf("[server] iterations=%llu bytes_written=%llu idle=%.1f%%\n",
                  static_cast<unsigned long long>(stats.iterations_completed),
                  static_cast<unsigned long long>(stats.bytes_written),
                  stats.idle_fraction() * 100.0);
      return;
    }

    // --- the "simulation" ---
    std::vector<double> temperature(32 * 32);
    for (int it = 0; it < kIterations; ++it) {
      for (std::size_t i = 0; i < temperature.size(); ++i)
        temperature[i] = 300.0 + it + 0.01 * static_cast<double>(i);

      // One line per variable, one line per time step: that is the whole
      // integration cost of the middleware (§V.C.2 of the paper).
      rt.client().write("temperature", std::span<const double>(temperature));  // damaris-api
      rt.client().end_iteration();  // damaris-api
    }
    rt.finalize();  // damaris-api
  });

  std::printf("files written through the dedicated core:\n");
  for (const auto& path : fs.list_files()) {
    std::printf("  %s (%llu bytes)\n", path.c_str(),
                static_cast<unsigned long long>(fs.file_size(path)));
  }
  return 0;
}
