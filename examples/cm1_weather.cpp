// CM1-like atmospheric simulation writing through dedicated cores.
//
// Mirrors the paper's main evaluation workload: a weak-scaled
// thermal-bubble simulation (theta, qv, u, v, w) whose every-iteration
// output is handled asynchronously by one dedicated core per node, with
// per-variable statistics computed in situ on the spare core time.
//
// Usage: ./examples/cm1_weather [nodes] [cores_per_node] [iterations] [grid]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/builtin_plugins.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  const int cores_per_node = argc > 2 ? std::atoi(argv[2]) : 4;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 4;
  const std::uint64_t grid = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 16;

  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = grid;
  options.cores_per_node = cores_per_node;
  options.dedicated_cores = 1;
  options.buffer_size = 128ull << 20;
  core::Configuration config = sim::make_cm1_configuration(options);

  // Wire the in-situ statistics plugin next to the storage plugin.
  core::ActionSpec stats_action;
  stats_action.event = "end_iteration";
  stats_action.plugin = "stats";
  config.add_action(stats_action);
  config.validate();

  fsim::StorageConfig storage;
  storage.ost_count = 8;
  storage.ost_bandwidth = 300e6;
  fsim::TimeScale scale;
  scale.real_per_sim = 1e-3;
  fsim::FileSystem fs(storage, scale);

  const int world_size = nodes * cores_per_node;
  const int clients = nodes * (cores_per_node - 1);
  std::printf("CM1 proxy: %d nodes x %d cores (%d compute + %d dedicated), "
              "%llu^3 per core, %d iterations\n",
              nodes, cores_per_node, clients, nodes,
              static_cast<unsigned long long>(grid), iterations);

  std::mutex mutex;
  SampleSet write_stalls;
  double idle_sum = 0.0;
  int servers = 0;
  core::StatsPlugin::Entry last_stats;

  Stopwatch wall;
  minimpi::run_world(world_size, [&](minimpi::Comm& world) {
    core::Runtime rt = core::Runtime::initialize(config, world, fs);
    if (rt.is_server()) {
      rt.run_server();
      std::lock_guard<std::mutex> lock(mutex);
      idle_sum += rt.server_stats().idle_fraction();
      ++servers;
      if (auto* plugin = dynamic_cast<core::StatsPlugin*>(
              rt.server().find_plugin("end_iteration", "stats"))) {
        if (!plugin->latest().per_variable.empty()) last_stats = plugin->latest();
      }
      return;
    }

    minimpi::Comm& sim_comm = rt.client_comm();
    sim::Cm1Proxy proxy(
        sim::make_cm1_proxy_config(options, sim_comm.rank(), sim_comm.size()));
    for (int it = 0; it < iterations; ++it) {
      proxy.step();  // real advection-diffusion physics

      Stopwatch stall;
      const auto offset = proxy.global_offset();
      for (const auto& [name, bytes] : proxy.field_bytes())
        (void)rt.client().write(name, bytes, offset);
      (void)rt.client().end_iteration();
      const double visible = stall.elapsed_seconds();

      std::lock_guard<std::mutex> lock(mutex);
      write_stalls.add(visible);
    }
    rt.finalize();
  });
  const double elapsed = wall.elapsed_seconds();

  const Summary stalls = write_stalls.summary();
  std::printf("\nrun time %.2fs; client-visible write stall per iteration: "
              "median %.1fus, p99 %.1fus (storage writes ran hidden)\n",
              elapsed, stalls.median * 1e6, stalls.p99 * 1e6);
  std::printf("dedicated cores idle on average: %.1f%%\n",
              servers > 0 ? idle_sum / servers * 100.0 : 0.0);

  Table table({"variable", "min", "mean", "max"});
  for (const auto& [name, s] : last_stats.per_variable)
    table.add_row({name, fmt_double(s.min, 3), fmt_double(s.mean, 3),
                   fmt_double(s.max, 3)});
  table.print(std::cout, "in-situ statistics (iteration " +
                             std::to_string(last_stats.iteration) + ")");

  std::printf("\n%zu aggregated files on the parallel filesystem (vs %d the "
              "file-per-process approach would create)\n",
              fs.file_count(), clients * iterations);
  return 0;
}
