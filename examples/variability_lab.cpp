// Variability lab: watch I/O jitter hit the baselines and miss Damaris.
//
// Small real-thread experiment (§IV.B): the same CM1-shaped output is
// written with file-per-process, collective two-phase, and dedicated-core
// I/O against a filesystem with heavy-tailed jitter and background
// interference.  The table reports the per-rank, per-iteration stall
// distribution; baselines spread over orders of magnitude while the
// Damaris stall is a flat shared-memory copy.
//
// Usage: ./examples/variability_lab [ranks] [iterations]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/baseline_io.hpp"
#include "core/runtime.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "sim/cm1_proxy.hpp"
#include "sim/workload.hpp"

using namespace dedicore;

namespace {

fsim::StorageConfig jittery_storage() {
  fsim::StorageConfig cfg;
  cfg.ost_count = 4;
  cfg.ost_bandwidth = 150e6;
  cfg.mds_op_cost = 4e-3;
  cfg.jitter_sigma = 0.4;       // heavy-tailed per-op slowdowns
  cfg.spike_probability = 0.05;
  cfg.spike_max = 40.0;
  cfg.interference_on_rate = 0.3;   // other jobs hammer the OSTs
  cfg.interference_off_rate = 0.6;
  cfg.interference_share = 0.5;
  return cfg;
}

fsim::TimeScale fast_scale() {
  fsim::TimeScale ts;
  ts.real_per_sim = 1e-3;
  ts.quantum_sim = 0.01;
  return ts;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 5;

  sim::Cm1WorkloadOptions options;
  options.nx = options.ny = options.nz = 16;
  options.cores_per_node = 4;
  core::Configuration damaris_cfg = sim::make_cm1_configuration(options);
  core::Configuration baseline_cfg = damaris_cfg;
  baseline_cfg.set_architecture(4, 0);  // baselines compute on all cores
  baseline_cfg.validate();

  std::printf("%d ranks, %d iterations, CM1-shaped output, jittery storage\n",
              ranks, iterations);

  std::mutex mutex;
  SampleSet fpp_stalls, collective_stalls, damaris_stalls;

  auto data_of = [](const sim::Cm1Proxy& proxy) {
    core::IterationData data;
    for (const auto& [name, bytes] : proxy.field_bytes()) data.emplace(name, bytes);
    return data;
  };

  {  // file-per-process
    fsim::FileSystem fs(jittery_storage(), fast_scale());
    core::FilePerProcessWriter writer(fs, baseline_cfg);
    minimpi::run_world(ranks, [&](minimpi::Comm& world) {
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), ranks));
      for (int it = 0; it < iterations; ++it) {
        proxy.step();
        const double stall =
            writer.write_iteration(world.rank(), it, data_of(proxy));
        std::lock_guard<std::mutex> lock(mutex);
        fpp_stalls.add(stall);
      }
    });
  }

  {  // collective two-phase
    fsim::FileSystem fs(jittery_storage(), fast_scale());
    core::CollectiveWriter writer(fs, baseline_cfg, /*aggregator_group=*/4);
    minimpi::run_world(ranks, [&](minimpi::Comm& world) {
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(options, world.rank(), ranks));
      for (int it = 0; it < iterations; ++it) {
        proxy.step();
        const double stall = writer.write_iteration(world, it, data_of(proxy));
        std::lock_guard<std::mutex> lock(mutex);
        collective_stalls.add(stall);
      }
    });
  }

  {  // dedicated cores
    fsim::FileSystem fs(jittery_storage(), fast_scale());
    minimpi::run_world(ranks, [&](minimpi::Comm& world) {
      core::Runtime rt = core::Runtime::initialize(damaris_cfg, world, fs);
      if (rt.is_server()) {
        rt.run_server();
        return;
      }
      sim::Cm1Proxy proxy(sim::make_cm1_proxy_config(
          options, rt.client_comm().rank(), rt.client_comm().size()));
      for (int it = 0; it < iterations; ++it) {
        proxy.step();
        Stopwatch stall;
        for (const auto& [name, bytes] : proxy.field_bytes())
          (void)rt.client().write(name, bytes);
        (void)rt.client().end_iteration();
        const double visible = stall.elapsed_seconds();
        std::lock_guard<std::mutex> lock(mutex);
        damaris_stalls.add(visible);
      }
      rt.finalize();
    });
  }

  Table table({"approach", "min (ms)", "median (ms)", "p99 (ms)", "max (ms)",
               "max/min"});
  auto add = [&](const std::string& name, const SampleSet& samples) {
    const Summary s = samples.summary();
    table.add_row({name, fmt_double(s.min * 1e3, 2), fmt_double(s.median * 1e3, 2),
                   fmt_double(s.p99 * 1e3, 2), fmt_double(s.max * 1e3, 2),
                   fmt_double(s.spread(), 1) + "x"});
  };
  add("file-per-process", fpp_stalls);
  add("collective", collective_stalls);
  add("damaris (dedicated)", damaris_stalls);
  table.print(std::cout, "per-rank per-iteration I/O stall");

  std::printf("\nBaselines inherit the storage system's jitter; the "
              "dedicated-core stall is a constant-time memcpy (§IV.B).\n");
  return 0;
}
