// VisLite — in-situ analysis and visualization substrate.
//
// Stands in for the VisIt/libsim coupling of §V: an isosurface extractor
// (marching tetrahedra over structured grids) and a small orthographic
// software renderer producing PPM images.  Two integration modes are
// exercised by the experiments:
//
//  * synchronous in-situ (the VisIt baseline): the simulation calls the
//    pipeline itself and stalls while the image is computed;
//  * Damaris in-situ: the "vislite" plugin runs the same pipeline on the
//    dedicated core, overlapped with computation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace dedicore::viz {

/// Non-owning view of a 3-D scalar field on a regular grid, row-major
/// (z-fastest: index = (x*ny + y)*nz + z).
struct GridView {
  std::span<const double> values;
  std::uint64_t nx = 0, ny = 0, nz = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return nx * ny * nz; }
  [[nodiscard]] double at(std::uint64_t x, std::uint64_t y,
                          std::uint64_t z) const noexcept {
    return values[(x * ny + y) * nz + z];
  }
  void validate() const;
};

struct Vec3 {
  double x = 0, y = 0, z = 0;
  friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(Vec3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
};

Vec3 cross(Vec3 a, Vec3 b);
double dot(Vec3 a, Vec3 b);
Vec3 normalized(Vec3 v);

struct Triangle {
  std::array<Vec3, 3> v;
  [[nodiscard]] Vec3 normal() const;
};

/// Marching-tetrahedra isosurface extraction: each grid cell is split into
/// six tetrahedra; every tetrahedron crossing the isovalue emits one or
/// two triangles with vertices linearly interpolated along edges.
/// Positions are in grid coordinates ([0,nx-1] etc.).
std::vector<Triangle> extract_isosurface(const GridView& grid, double isovalue);

/// Count-only variant (no geometry materialized); used when only the
/// complexity metric is needed.
std::uint64_t count_isosurface_triangles(const GridView& grid, double isovalue);

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

struct Image {
  int width = 0, height = 0;
  std::vector<std::uint8_t> rgb;  ///< width*height*3, row-major from top

  [[nodiscard]] std::array<std::uint8_t, 3> pixel(int x, int y) const;
  /// Binary PPM (P6) encoding of the image.
  [[nodiscard]] std::vector<std::byte> encode_ppm() const;
};

enum class Axis { kX, kY, kZ };

struct RenderOptions {
  int width = 256;
  int height = 256;
  Axis view_axis = Axis::kZ;        ///< orthographic projection direction
  Vec3 light = {0.3, 0.4, 0.85};    ///< normalized at use
  std::array<std::uint8_t, 3> surface_color = {220, 90, 40};
  std::array<std::uint8_t, 3> background = {16, 16, 32};
};

/// Z-buffered flat-shaded orthographic projection of the triangle soup.
/// `extent` is the grid bounding box (nx-1, ny-1, nz-1) used to fit the
/// geometry to the viewport.
Image render_triangles(std::span<const Triangle> triangles, Vec3 extent,
                       const RenderOptions& options);

// ---------------------------------------------------------------------------
// Field statistics (the "statistical analysis plugin" role)
// ---------------------------------------------------------------------------

struct FieldStatistics {
  std::uint64_t count = 0;
  double min = 0, max = 0, mean = 0, stddev = 0;
  double l2_norm = 0;
};

FieldStatistics compute_statistics(std::span<const double> values);

/// Full in-situ pipeline result.
struct PipelineResult {
  std::uint64_t triangles = 0;
  FieldStatistics statistics;
  Image image;
  double seconds = 0.0;  ///< wall time spent in the pipeline
};

/// isosurface + statistics + rendering in one call — what both the
/// synchronous baseline and the Damaris plugin execute.
PipelineResult run_insitu_pipeline(const GridView& grid, double isovalue,
                                   const RenderOptions& options = {});

}  // namespace dedicore::viz
