#include "viz/vislite.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/clock.hpp"

namespace dedicore::viz {

void GridView::validate() const {
  DEDICORE_CHECK(nx >= 2 && ny >= 2 && nz >= 2,
                 "GridView: isosurface needs at least 2 points per axis");
  DEDICORE_CHECK(values.size() == size(), "GridView: values size != nx*ny*nz");
}

Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

Vec3 normalized(Vec3 v) {
  const double len = std::sqrt(dot(v, v));
  if (len <= 0.0) return {0, 0, 1};
  return v * (1.0 / len);
}

Vec3 Triangle::normal() const {
  return normalized(cross(v[1] - v[0], v[2] - v[0]));
}

namespace {

/// The six tetrahedra of a unit cell, as corner indices 0..7 where corner
/// bits are (x<<2)|(y<<1)|z.
constexpr int kTets[6][4] = {
    {0, 5, 1, 6}, {0, 1, 3, 6}, {0, 3, 2, 6},
    {0, 2, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6},
};
// Corner 7 is (x=1,y=1,z=1)?  Corner numbering: bit2 = x, bit1 = y, bit0 = z.
// The table above uses the classic body-diagonal (0 -> 6) decomposition
// with 6 = (1,1,0); all six tets share the 0-6 diagonal.

Vec3 corner_position(std::uint64_t x, std::uint64_t y, std::uint64_t z, int corner) {
  return {static_cast<double>(x + ((corner >> 2) & 1)),
          static_cast<double>(y + ((corner >> 1) & 1)),
          static_cast<double>(z + (corner & 1))};
}

double corner_value(const GridView& g, std::uint64_t x, std::uint64_t y,
                    std::uint64_t z, int corner) {
  return g.at(x + ((corner >> 2) & 1), y + ((corner >> 1) & 1),
              z + (corner & 1));
}

Vec3 interpolate_edge(Vec3 p0, double v0, Vec3 p1, double v1, double iso) {
  const double denom = v1 - v0;
  const double t = std::abs(denom) < 1e-300 ? 0.5 : (iso - v0) / denom;
  const double tc = std::clamp(t, 0.0, 1.0);
  return p0 + (p1 - p0) * tc;
}

/// Emits the triangles of one tetrahedron into `out` (or only counts when
/// out == nullptr).  Returns the triangle count (0, 1 or 2).
int march_tetrahedron(const std::array<Vec3, 4>& p, const std::array<double, 4>& v,
                      double iso, std::vector<Triangle>* out) {
  int mask = 0;
  for (int i = 0; i < 4; ++i)
    if (v[i] >= iso) mask |= 1 << i;
  if (mask == 0 || mask == 0xF) return 0;

  auto edge = [&](int a, int b) { return interpolate_edge(p[a], v[a], p[b], v[b], iso); };
  auto emit = [&](Vec3 a, Vec3 b, Vec3 c) {
    if (out != nullptr) out->push_back(Triangle{{a, b, c}});
  };

  // Normalize to the cases with one or two corners above the isovalue.
  const bool invert = __builtin_popcount(static_cast<unsigned>(mask)) > 2;
  const int m = invert ? mask ^ 0xF : mask;

  switch (m) {
    // One corner above: a single triangle cuts it off.
    case 0x1: emit(edge(0, 1), edge(0, 2), edge(0, 3)); return 1;
    case 0x2: emit(edge(1, 0), edge(1, 3), edge(1, 2)); return 1;
    case 0x4: emit(edge(2, 0), edge(2, 1), edge(2, 3)); return 1;
    case 0x8: emit(edge(3, 0), edge(3, 2), edge(3, 1)); return 1;
    // Two corners above: a quad, split into two triangles.
    case 0x3: {  // corners 0,1
      const Vec3 a = edge(0, 2), b = edge(0, 3), c = edge(1, 3), d = edge(1, 2);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    case 0x5: {  // corners 0,2
      const Vec3 a = edge(0, 1), b = edge(0, 3), c = edge(2, 3), d = edge(2, 1);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    case 0x9: {  // corners 0,3
      const Vec3 a = edge(0, 1), b = edge(0, 2), c = edge(3, 2), d = edge(3, 1);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    case 0x6: {  // corners 1,2
      const Vec3 a = edge(1, 0), b = edge(1, 3), c = edge(2, 3), d = edge(2, 0);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    case 0xA: {  // corners 1,3
      const Vec3 a = edge(1, 0), b = edge(1, 2), c = edge(3, 2), d = edge(3, 0);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    case 0xC: {  // corners 2,3
      const Vec3 a = edge(2, 0), b = edge(2, 1), c = edge(3, 1), d = edge(3, 0);
      emit(a, b, c);
      emit(a, c, d);
      return 2;
    }
    default:
      DEDICORE_CHECK(false, "march_tetrahedron: unreachable mask");
      return 0;
  }
}

template <typename PerTet>
void walk_cells(const GridView& grid, PerTet&& per_tet) {
  for (std::uint64_t x = 0; x + 1 < grid.nx; ++x) {
    for (std::uint64_t y = 0; y + 1 < grid.ny; ++y) {
      for (std::uint64_t z = 0; z + 1 < grid.nz; ++z) {
        // Cheap cull: a cell whose corner range misses the isovalue emits
        // nothing; handled inside per_tet via corner values.
        for (const auto& tet : kTets) {
          std::array<Vec3, 4> p;
          std::array<double, 4> v;
          for (int i = 0; i < 4; ++i) {
            p[static_cast<std::size_t>(i)] = corner_position(x, y, z, tet[i]);
            v[static_cast<std::size_t>(i)] = corner_value(grid, x, y, z, tet[i]);
          }
          per_tet(p, v);
        }
      }
    }
  }
}

}  // namespace

std::vector<Triangle> extract_isosurface(const GridView& grid, double isovalue) {
  grid.validate();
  std::vector<Triangle> out;
  walk_cells(grid, [&](const std::array<Vec3, 4>& p, const std::array<double, 4>& v) {
    march_tetrahedron(p, v, isovalue, &out);
  });
  return out;
}

std::uint64_t count_isosurface_triangles(const GridView& grid, double isovalue) {
  grid.validate();
  std::uint64_t count = 0;
  walk_cells(grid, [&](const std::array<Vec3, 4>& p, const std::array<double, 4>& v) {
    count += static_cast<std::uint64_t>(march_tetrahedron(p, v, isovalue, nullptr));
  });
  return count;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::array<std::uint8_t, 3> Image::pixel(int x, int y) const {
  DEDICORE_CHECK(x >= 0 && x < width && y >= 0 && y < height,
                 "Image::pixel out of range");
  const std::size_t at = (static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(x)) * 3;
  return {rgb[at], rgb[at + 1], rgb[at + 2]};
}

std::vector<std::byte> Image::encode_ppm() const {
  std::string header = "P6\n" + std::to_string(width) + " " +
                       std::to_string(height) + "\n255\n";
  std::vector<std::byte> out(header.size() + rgb.size());
  std::memcpy(out.data(), header.data(), header.size());
  std::memcpy(out.data() + header.size(), rgb.data(), rgb.size());
  return out;
}

namespace {

/// Maps a world point to (u, v, depth) for the given view axis.
void project(Vec3 p, Axis axis, double& u, double& v, double& depth) {
  switch (axis) {
    case Axis::kX: u = p.y; v = p.z; depth = p.x; break;
    case Axis::kY: u = p.x; v = p.z; depth = p.y; break;
    case Axis::kZ: u = p.x; v = p.y; depth = p.z; break;
  }
}

}  // namespace

Image render_triangles(std::span<const Triangle> triangles, Vec3 extent,
                       const RenderOptions& options) {
  DEDICORE_CHECK(options.width > 0 && options.height > 0,
                 "render: image dimensions must be positive");
  Image img;
  img.width = options.width;
  img.height = options.height;
  img.rgb.assign(static_cast<std::size_t>(options.width) *
                     static_cast<std::size_t>(options.height) * 3,
                 0);
  for (int y = 0; y < options.height; ++y)
    for (int x = 0; x < options.width; ++x)
      for (int c = 0; c < 3; ++c)
        img.rgb[(static_cast<std::size_t>(y) * static_cast<std::size_t>(options.width) +
                 static_cast<std::size_t>(x)) * 3 + static_cast<std::size_t>(c)] =
            options.background[static_cast<std::size_t>(c)];

  // World-to-viewport: fit the extent with a 5% margin, preserving aspect.
  double eu = 1, ev = 1, edepth = 1;
  project(extent, options.view_axis, eu, ev, edepth);
  eu = std::max(eu, 1e-9);
  ev = std::max(ev, 1e-9);
  const double scale = 0.9 * std::min(options.width / eu, options.height / ev);
  const double off_u = (options.width - scale * eu) / 2.0;
  const double off_v = (options.height - scale * ev) / 2.0;

  std::vector<double> zbuf(static_cast<std::size_t>(options.width) *
                               static_cast<std::size_t>(options.height),
                           -std::numeric_limits<double>::infinity());
  const Vec3 light = normalized(options.light);

  for (const Triangle& tri : triangles) {
    double u[3], v[3], d[3];
    for (int i = 0; i < 3; ++i) {
      project(tri.v[static_cast<std::size_t>(i)], options.view_axis, u[i], v[i], d[i]);
      u[i] = u[i] * scale + off_u;
      v[i] = v[i] * scale + off_v;
    }
    const double shade =
        0.25 + 0.75 * std::abs(dot(tri.normal(), light));  // two-sided

    const int min_x = std::max(0, static_cast<int>(std::floor(std::min({u[0], u[1], u[2]}))));
    const int max_x = std::min(options.width - 1,
                               static_cast<int>(std::ceil(std::max({u[0], u[1], u[2]}))));
    const int min_y = std::max(0, static_cast<int>(std::floor(std::min({v[0], v[1], v[2]}))));
    const int max_y = std::min(options.height - 1,
                               static_cast<int>(std::ceil(std::max({v[0], v[1], v[2]}))));

    const double denom = (v[1] - v[2]) * (u[0] - u[2]) + (u[2] - u[1]) * (v[0] - v[2]);
    if (std::abs(denom) < 1e-12) continue;  // degenerate in projection

    for (int py = min_y; py <= max_y; ++py) {
      for (int px = min_x; px <= max_x; ++px) {
        const double cu = px + 0.5, cv = py + 0.5;
        const double w0 = ((v[1] - v[2]) * (cu - u[2]) + (u[2] - u[1]) * (cv - v[2])) / denom;
        const double w1 = ((v[2] - v[0]) * (cu - u[2]) + (u[0] - u[2]) * (cv - v[2])) / denom;
        const double w2 = 1.0 - w0 - w1;
        if (w0 < 0 || w1 < 0 || w2 < 0) continue;
        const double depth = w0 * d[0] + w1 * d[1] + w2 * d[2];
        const std::size_t at = static_cast<std::size_t>(py) *
                                   static_cast<std::size_t>(options.width) +
                               static_cast<std::size_t>(px);
        if (depth <= zbuf[at]) continue;
        zbuf[at] = depth;
        for (int c = 0; c < 3; ++c)
          img.rgb[at * 3 + static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(
              std::clamp(shade * options.surface_color[static_cast<std::size_t>(c)],
                         0.0, 255.0));
      }
    }
  }
  return img;
}

// ---------------------------------------------------------------------------
// Statistics & pipeline
// ---------------------------------------------------------------------------

FieldStatistics compute_statistics(std::span<const double> values) {
  FieldStatistics s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = s.max = values[0];
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    sum_sq += v * v;
  }
  const auto n = static_cast<double>(values.size());
  s.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  s.l2_norm = std::sqrt(sum_sq);
  return s;
}

PipelineResult run_insitu_pipeline(const GridView& grid, double isovalue,
                                   const RenderOptions& options) {
  Stopwatch timer;
  PipelineResult result;
  result.statistics = compute_statistics(grid.values);
  std::vector<Triangle> triangles = extract_isosurface(grid, isovalue);
  result.triangles = triangles.size();
  const Vec3 extent{static_cast<double>(grid.nx - 1),
                    static_cast<double>(grid.ny - 1),
                    static_cast<double>(grid.nz - 1)};
  result.image = render_triangles(triangles, extent, options);
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace dedicore::viz
