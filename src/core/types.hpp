// Core identifiers and the event vocabulary of the Damaris-style runtime.
//
// Simulation cores talk to the dedicated cores of their node through a
// bounded shared message queue (shm::BoundedQueue<Event>); data travels
// separately through the shared-memory segment and is referenced from
// events by BlockRef handles — the zero/one-copy design the paper credits
// for Damaris's low write latency.
#pragma once

#include <cstdint>
#include <string>

#include "shm/segment.hpp"

namespace dedicore::core {

using VariableId = std::uint32_t;
using Iteration = std::int64_t;

/// What a queue message means to the dedicated core.
enum class EventType : std::uint8_t {
  kBlockWritten,   ///< a data block is ready in the segment
  kEndIteration,   ///< the source rank finished iteration `iteration`
  kUserSignal,     ///< user-defined event; `signal_id` selects the action
  kIterationSkipped,  ///< source rank dropped this iteration (backpressure)
  kClientStop,     ///< the source rank is shutting down
};

/// Fixed-size message traveling through the shared queue.
struct Event {
  EventType type = EventType::kBlockWritten;
  int source = -1;            ///< writer's rank in the node communicator
  Iteration iteration = 0;
  VariableId variable = 0;    ///< kBlockWritten only
  std::uint32_t block_id = 0; ///< distinguishes multiple blocks per (var, it, src)
  std::uint32_t signal_id = 0;  ///< kUserSignal only
  shm::BlockRef block;        ///< kBlockWritten only
  /// Global element offsets of the block within the variable's grid.
  std::uint64_t global_offset[4] = {0, 0, 0, 0};
};

/// Metadata describing one data block in the segment, as kept by the
/// server-side index ("all data blocks are indexed in a metadata structure
/// that helps searching for particular blocks").
struct BlockInfo {
  VariableId variable = 0;
  int source = -1;
  Iteration iteration = 0;
  std::uint32_t block_id = 0;
  shm::BlockRef block;
  /// Global position of this block within the variable's global grid
  /// (element offsets per dimension, rank-major); used by storage and viz
  /// plugins to stitch per-process sub-domains together.
  std::uint64_t global_offset[4] = {0, 0, 0, 0};
};

/// What to do when the shared segment or queue is full (§V.C.1): block the
/// simulation until the dedicated core catches up, or drop (skip) the
/// iteration's output to preserve the simulation's pace.
///
/// kAdaptive implements the paper's stated future work — "more elaborate
/// techniques that will select portions of data carrying important
/// scientific value are now being considered": under pressure, writes of
/// variables with priority 0 are dropped individually while variables
/// with priority > 0 keep the blocking guarantee, so the important data
/// always reaches storage and the simulation never stalls on the rest.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,
  kSkipIteration,
  kAdaptive,
};

std::string to_string(EventType type);
std::string to_string(BackpressurePolicy policy);

}  // namespace dedicore::core
