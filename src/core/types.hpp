// Core identifiers and the event vocabulary of the Damaris-style runtime.
//
// The vocabulary itself (Event, EventType, BackpressurePolicy,
// DedicatedMode) lives in transport/message.hpp — it is the contract the
// pluggable transports carry; core re-exports it and adds the server-side
// metadata type.
#pragma once

#include <cstdint>
#include <string>

#include "shm/segment.hpp"
#include "transport/message.hpp"

namespace dedicore::core {

using VariableId = transport::VariableId;
using Iteration = transport::Iteration;
using EventType = transport::EventType;
using Event = transport::Event;
using BackpressurePolicy = transport::BackpressurePolicy;
using DedicatedMode = transport::DedicatedMode;

/// Metadata describing one data block held by a server, as kept by the
/// server-side index ("all data blocks are indexed in a metadata structure
/// that helps searching for particular blocks").  The block may be
/// locally resident (shared segment) or received over MPI — either way the
/// BlockRef resolves through the server's transport.
struct BlockInfo {
  VariableId variable = 0;
  int source = -1;
  Iteration iteration = 0;
  std::uint32_t block_id = 0;
  shm::BlockRef block;
  /// Global position of this block within the variable's global grid
  /// (element offsets per dimension, rank-major); used by storage and viz
  /// plugins to stitch per-process sub-domains together.
  std::uint64_t global_offset[4] = {0, 0, 0, 0};
};

std::string to_string(EventType type);
std::string to_string(BackpressurePolicy policy);
std::string to_string(DedicatedMode mode);

}  // namespace dedicore::core
