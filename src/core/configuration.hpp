// XML-driven configuration of the middleware.
//
// "Data management in Damaris is based on a high-level description of the
// data, coming from an external XML file in a way similar to ADIOS.  This
// file contains the description of variables, along with their
// relationships such as dimension scales, meshes and data layouts.  It
// also contains the configuration of the different plugins."
//
// Accepted document shape (see examples/config/*.xml):
//
//   <simulation name="cm1" cores_per_node="12" dedicated_cores="1"
//               server_workers="0"   <!-- 0 = auto: full node width on
//                                         dedicated I/O nodes, 1 per
//                                         dedicated core -->
//               steal="on" steal_threshold="2">  <!-- pooled servers:
//                                         work-stealing client assignment
//                                         (off = static c-mod-N pinning) -->
//     <buffer size="64MiB" queue="1024" policy="block"/>
//     <data>
//       <layout name="grid3d" type="float32" dimensions="64,64,64"/>
//       <mesh name="atm" type="rectilinear" coordinates="x,y,z"/>
//       <variable name="theta" layout="grid3d" mesh="atm" group="fields"
//                 codec="xor+lzs"/>  <!-- per-variable override of the
//                                         storage-level codec -->
//     </data>
//     <storage basename="cm1" codec="none" min_ratio="1.25"
//              stripe_count="2" scheduler="greedy" max_concurrent="0"
//              backend="sim" path="" write_behind="0"/>
//     <!-- backend="posix" path="/scratch/run42" writes real files through
//          the async write-behind queue; backend="sim" (default) keeps the
//          filesystem simulator's modelled, in-memory persistence --->
//     <actions>
//       <event name="end_iteration" plugin="store"/>
//       <event name="snapshot" plugin="vislite">
//         <param key="variable" value="theta"/>
//       </event>
//     </actions>
//   </simulation>
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/types.hpp"
#include "h5lite/h5lite.hpp"
#include "xml/xml.hpp"

namespace dedicore::core {

/// What a server does with a dead client's partial iteration (the blocks
/// it published before dying, still unclosed):
/// kDropIteration (default) — release them immediately; an incomplete
///   iteration's data is worthless downstream and would pin segment space.
/// kKeepPartial — leave them indexed; they persist with the iteration when
///   the surviving clients close it (best-effort output).
/// XML: <simulation on_client_failure="drop_iteration|keep_partial">.
enum class ClientFailurePolicy : std::uint8_t {
  kDropIteration,
  kKeepPartial,
};

/// The run's fault-injection plan: a seed plus the armed fault specs,
/// parsed from <faults seed="42"><fault point="client.die" target="3"
/// after="5"/></faults>.  Point names are validated against
/// fault::FaultInjector's registry at configuration time.
struct FaultsSpec {
  std::uint64_t seed = 0;
  std::vector<fault::FaultSpec> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
};

/// Shape of the blocks one simulation core writes for a variable.
struct LayoutSpec {
  std::string name;
  h5lite::DType dtype = h5lite::DType::kFloat64;
  std::vector<std::uint64_t> extents;  ///< per-core block extents

  [[nodiscard]] std::uint64_t element_count() const noexcept;
  [[nodiscard]] std::uint64_t byte_size() const noexcept;
};

/// Mesh metadata linking coordinate variables (consumed by the viz plugin).
struct MeshSpec {
  std::string name;
  std::string type = "rectilinear";
  std::vector<std::string> coordinates;
};

struct VariableSpec {
  std::string name;
  std::string layout;
  std::string mesh;     ///< optional
  std::string group;    ///< optional dataset group in the output files
  bool store = true;    ///< whether the storage plugin persists it
  /// Per-variable codec for the emit-path transform stage; "" inherits
  /// <storage codec>.  Validated at configuration time, like the storage
  /// codec.  XML: <variable name="theta" codec="xor+lzs"/>.
  std::string codec;
  /// Scientific importance under the adaptive backpressure policy:
  /// priority > 0 is never dropped; priority 0 may be shed under pressure.
  int priority = 0;
  VariableId id = 0;    ///< assigned at parse time (index order)
};

/// One <event> binding: when `event` fires, run `plugin` with `params`.
struct ActionSpec {
  std::string event;
  std::string plugin;
  std::map<std::string, std::string> params;
};

struct StorageSpec {
  std::string basename = "output";
  std::string codec = "none";     ///< default chunk codec for stored datasets
  /// Adaptive-skip threshold of the emit-path transform stage: when a
  /// sampled probe of a variable compresses below this ratio the server
  /// stores it raw (compression that does not pay is pure cycle waste).
  /// Must be >= 1.0.  XML: <storage min_ratio="1.25">.
  double min_ratio = 1.25;
  int stripe_count = 0;           ///< 0 = filesystem default
  std::string scheduler = "greedy";  ///< "greedy" | "throttled"
  int max_concurrent_nodes = 0;   ///< "throttled" only; 0 = unlimited
  /// Persistence backend: "sim" (filesystem simulator, in-memory content)
  /// or "posix" (real files under `path`, emitted through an async
  /// write-behind queue drained by the server workers).
  std::string backend = "sim";
  std::string path;               ///< posix single-root directory
  /// Sharded multi-root layout (XML: <storage roots="a;b;c">): images are
  /// striped across these directories through the four-layer
  /// chunking/placement/integrity/backend stack (storage::ShardedBackend).
  /// Mutually exclusive with `path`; requires backend "posix".
  std::vector<std::string> roots;
  /// Stripe size of the sharded layout; 0 = default (1 MiB).  XML accepts
  /// size suffixes: <storage chunk_size="4MiB">.
  std::uint64_t chunk_size = 0;
  /// Chunk placement policy: "round_robin" | "balanced" (bytes
  /// outstanding per root).  Deterministic under `placement_seed`.
  std::string placement = "round_robin";
  std::uint64_t placement_seed = 0;
  /// Copies per chunk on distinct roots (1..root count); 2 enables
  /// degraded reads when a root is missing or a checksum fails.
  int replication = 1;
  /// Byte budget of the posix write-behind queue (pending images); 0 =
  /// auto (the node's <buffer size>).  XML: <storage write_behind="32MiB">.
  std::uint64_t write_behind_bytes = 0;
  /// Write-behind retry budget for *transient* backend failures (EIO):
  /// total attempts per job before it is quarantined as poison.  Backoff
  /// between attempts is bounded exponential.  XML: <storage retries="3">.
  int retries = 3;
};

class Configuration {
 public:
  /// Parses and validates; throws ConfigError with a precise message on
  /// any inconsistency (unknown layout/mesh, bad sizes, ...).
  static Configuration from_xml(const xml::Node& root);
  static Configuration from_string(const std::string& document);
  static Configuration from_file(const std::string& path);

  [[nodiscard]] const std::string& simulation_name() const noexcept { return name_; }
  [[nodiscard]] int cores_per_node() const noexcept { return cores_per_node_; }
  [[nodiscard]] int dedicated_cores() const noexcept { return dedicated_cores_; }
  [[nodiscard]] int clients_per_node() const noexcept {
    return cores_per_node_ - dedicated_cores_;
  }

  /// Deployment topology: dedicated cores on every node (shared-memory
  /// transport, the paper's design) or dedicated I/O nodes at the end of
  /// the world (MPI transport).  XML: <simulation dedicated_mode="nodes"
  /// dedicated_nodes="2">.
  [[nodiscard]] DedicatedMode dedicated_mode() const noexcept {
    return dedicated_mode_;
  }
  /// Number of world ranks acting as I/O nodes (kNodes mode only).
  [[nodiscard]] int dedicated_nodes() const noexcept { return dedicated_nodes_; }

  /// Server worker threads per dedicated rank, as configured (0 = auto).
  /// XML: <simulation server_workers="4">.
  [[nodiscard]] int server_workers() const noexcept { return server_workers_; }

  /// Work stealing in pooled servers: with steal on (the default), an
  /// idle worker takes over the longest-backlogged client of the busiest
  /// peer instead of sleeping; off reverts to static c-mod-N pinning.
  /// XML: <simulation steal="on|off" steal_threshold="2">.
  [[nodiscard]] bool steal_enabled() const noexcept { return steal_enabled_; }
  /// Minimum per-client backlog (queued events) before that client is
  /// worth migrating; below it a steal would ping-pong ownership.
  [[nodiscard]] int steal_threshold() const noexcept { return steal_threshold_; }

  /// The worker-pool width the runtime actually deploys per server rank.
  /// Auto (0) resolves to the width the model layer assumes: a dedicated
  /// I/O *node* is a full node (cores_per_node workers — see
  /// model/replay.cpp's dedicated-nodes strategy), while a dedicated
  /// *core* is exactly one core (1 worker).
  [[nodiscard]] int effective_server_workers() const noexcept {
    if (server_workers_ > 0) return server_workers_;
    return dedicated_mode_ == DedicatedMode::kNodes ? cores_per_node_ : 1;
  }

  [[nodiscard]] std::uint64_t buffer_size() const noexcept { return buffer_size_; }
  [[nodiscard]] std::size_t queue_capacity() const noexcept { return queue_capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

  /// Disposal of a dead client's partial iteration (see the enum).
  [[nodiscard]] ClientFailurePolicy on_client_failure() const noexcept {
    return on_client_failure_;
  }

  /// The run's fault-injection plan; empty on healthy runs.
  [[nodiscard]] const FaultsSpec& faults() const noexcept { return faults_; }

  [[nodiscard]] const std::vector<LayoutSpec>& layouts() const noexcept { return layouts_; }
  [[nodiscard]] const std::vector<MeshSpec>& meshes() const noexcept { return meshes_; }
  [[nodiscard]] const std::vector<VariableSpec>& variables() const noexcept { return variables_; }
  [[nodiscard]] const std::vector<ActionSpec>& actions() const noexcept { return actions_; }
  [[nodiscard]] const StorageSpec& storage() const noexcept { return storage_; }

  [[nodiscard]] const LayoutSpec& layout(const std::string& name) const;
  [[nodiscard]] const VariableSpec& variable(const std::string& name) const;
  [[nodiscard]] const VariableSpec& variable(VariableId id) const;
  [[nodiscard]] const LayoutSpec& layout_of(const VariableSpec& v) const {
    return layout(v.layout);
  }
  [[nodiscard]] const MeshSpec* mesh(const std::string& name) const noexcept;

  /// Sum of one iteration's output across one core (all stored variables).
  [[nodiscard]] std::uint64_t bytes_per_core_per_iteration() const noexcept;

  // Programmatic construction (used by tests and the model layer).
  Configuration() = default;
  void set_architecture(int cores_per_node, int dedicated_cores);
  void set_dedicated_mode(DedicatedMode mode, int dedicated_nodes = 1);
  /// 0 = auto (see effective_server_workers()).
  void set_server_workers(int workers) { server_workers_ = workers; }
  void set_steal(bool enabled, int threshold = 2) {
    steal_enabled_ = enabled;
    steal_threshold_ = threshold;
  }
  void set_buffer(std::uint64_t size, std::size_t queue_capacity,
                  BackpressurePolicy policy);
  void add_layout(LayoutSpec layout);
  void add_mesh(MeshSpec mesh);
  void add_variable(VariableSpec variable);
  void add_action(ActionSpec action);
  void set_storage(StorageSpec storage);
  void set_simulation_name(std::string name) { name_ = std::move(name); }
  void set_on_client_failure(ClientFailurePolicy policy) {
    on_client_failure_ = policy;
  }
  void set_faults(FaultsSpec faults) { faults_ = std::move(faults); }
  /// Cross-checks references; called by from_xml, call it after manual
  /// construction too.
  void validate() const;

 private:
  std::string name_ = "simulation";
  int cores_per_node_ = 12;
  int dedicated_cores_ = 1;
  DedicatedMode dedicated_mode_ = DedicatedMode::kCores;
  int dedicated_nodes_ = 1;
  int server_workers_ = 0;  ///< 0 = auto-resolve per deployment mode
  bool steal_enabled_ = true;
  int steal_threshold_ = 2;
  std::uint64_t buffer_size_ = 64ull << 20;
  std::size_t queue_capacity_ = 1024;
  BackpressurePolicy policy_ = BackpressurePolicy::kBlock;
  std::vector<LayoutSpec> layouts_;
  std::vector<MeshSpec> meshes_;
  std::vector<VariableSpec> variables_;
  std::vector<ActionSpec> actions_;
  StorageSpec storage_;
  ClientFailurePolicy on_client_failure_ = ClientFailurePolicy::kDropIteration;
  FaultsSpec faults_;
};

}  // namespace dedicore::core
