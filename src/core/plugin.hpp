// Plugin system of the dedicated-core service.
//
// "The second strength of Damaris consists in a plugin system which makes
// the design of custom data management services straightforward."  Plugins
// are bound to events in the XML configuration (<actions><event
// name="end_iteration" plugin="store"/>); the server instantiates one
// plugin object per binding and fires it when the event triggers.
//
// Built-in plugins (registered by the library itself):
//   "store"    — aggregate the iteration's blocks into one h5lite file per
//                dedicated core (optionally compressed, see `codec` param);
//   "stats"    — per-variable min/max/mean/sum, kept queryable;
//   "vislite"  — in-situ isosurface + rendering through src/viz;
//   "script"   — tiny expression interpreter for user-defined reductions
//                (the stand-in for Damaris's Python plugin support).
//
// User plugins register a factory under a unique name at startup.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/types.hpp"
#include "transport/transport.hpp"

namespace dedicore::core {

struct NodeRuntime;
struct ServerStats;

/// Everything a plugin may touch when it fires.
struct PluginContext {
  NodeRuntime& node;          ///< index, filesystem, config
  /// The server's transport endpoint: the only way to reach block
  /// payloads, which may be locally resident or received over MPI.
  transport::ServerTransport* transport = nullptr;
  int server_index = 0;       ///< which dedicated core of the node runs this
  Iteration iteration = 0;    ///< iteration the trigger belongs to
  const Event* trigger = nullptr;  ///< the raw event (signals); may be null
  const std::map<std::string, std::string>* params = nullptr;  ///< XML params
  ServerStats* stats = nullptr;    ///< for accounting bytes written etc.

  [[nodiscard]] std::string param_or(const std::string& key,
                                     const std::string& fallback) const {
    if (params == nullptr) return fallback;
    auto it = params->find(key);
    return it == params->end() ? fallback : it->second;
  }

  /// Read-only payload of a block delivered to this server.
  [[nodiscard]] std::span<const std::byte> block_view(
      const shm::BlockRef& block) const {
    DEDICORE_CHECK(transport != nullptr, "PluginContext: no transport");
    return transport->view(block);
  }
};

class Plugin {
 public:
  virtual ~Plugin() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Fired by the server on the dedicated core.  The blocks of
  /// `context.iteration` are in `context.node.index(server)`; the plugin
  /// must not deallocate them (the server does, after the whole pipeline).
  virtual void run(PluginContext& context) = 0;
};

using PluginFactory = std::function<std::unique_ptr<Plugin>(
    const std::map<std::string, std::string>& params)>;

/// Registers a factory; throws ConfigError if the name is taken.
void register_plugin(const std::string& name, PluginFactory factory);

/// Instantiates a plugin; throws ConfigError for unknown names.
std::unique_ptr<Plugin> make_plugin(const std::string& name,
                                    const std::map<std::string, std::string>& params);

/// True when a factory exists.
bool plugin_registered(const std::string& name);

/// Registers the built-in plugins ("store", "stats", "script", "vislite").
/// Idempotent; called by Runtime::initialize.
void register_builtin_plugins();

}  // namespace dedicore::core
