#include "core/server.hpp"

#include <thread>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace dedicore::core {

Server::Server(std::shared_ptr<NodeRuntime> node, int server_index,
               std::unique_ptr<transport::ServerTransport> transport,
               int client_count, int worker_count)
    : node_(std::move(node)),
      server_index_(server_index),
      transport_(std::move(transport)),
      client_count_(client_count),
      worker_count_(worker_count) {
  DEDICORE_CHECK(server_index >= 0 &&
                     server_index < static_cast<int>(node_->indexes.size()),
                 "Server: server_index out of range");
  DEDICORE_CHECK(transport_ != nullptr, "Server: null transport");
  // client_count may be 0 (more servers than clients): run() returns
  // immediately on such a server.
  DEDICORE_CHECK(client_count >= 0, "Server: negative client count");
  DEDICORE_CHECK(worker_count >= 1, "Server: worker count must be >= 1");
  register_builtin_plugins();
  for (const auto& action : node_->config.actions())
    actions_.push_back(BoundAction{action, make_plugin(action.plugin, action.params)});
}

Server::~Server() = default;

Plugin* Server::find_plugin(const std::string& event,
                            const std::string& plugin_name) {
  for (auto& bound : actions_)
    if (bound.spec.event == event && bound.spec.plugin == plugin_name)
      return bound.plugin.get();
  return nullptr;
}

void Server::run() {
  stats_.workers = worker_count_;
  if (client_count_ > 0) {
    if (worker_count_ == 1) {
      // Classic single-threaded event loop: no pool, no end_of_stream —
      // the loop simply stops once the last client's stop is consumed.
      WorkerLedger ledger;
      worker_loop(0, ledger);
      stats_.idle_seconds += ledger.idle_seconds;
      stats_.busy_seconds += ledger.busy_seconds;
      stats_.events_processed += ledger.events;
    } else {
      transport::WorkerPoolOptions assignment;
      assignment.steal = node_->config.steal_enabled();
      assignment.steal_threshold = node_->config.steal_threshold();
      transport_->set_worker_count(worker_count_, assignment);
      // Idle-worker write-behind drain: a worker parked in next_event()
      // with nothing to consume or steal performs disk writes instead of
      // sleeping, overlapping drain with event waits.  The pool, not the
      // iteration-completing worker, is the drain bandwidth here — see
      // complete_iteration().
      if (node_->write_behind != nullptr) {
        idle_drain_active_ = true;
        transport_->set_idle_hook(
            [wb = node_->write_behind.get()] { return wb->try_drain_one(); });
      }
      std::vector<WorkerLedger> ledgers(
          static_cast<std::size_t>(worker_count_));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(worker_count_));
      for (int w = 0; w < worker_count_; ++w)
        pool.emplace_back([this, w, &ledgers] {
          worker_loop(w, ledgers[static_cast<std::size_t>(w)]);
        });
      for (auto& t : pool) t.join();
      // The pool has drained: folding ledgers and reading transport stats
      // below cannot race a live worker.
      for (const WorkerLedger& ledger : ledgers) {
        stats_.idle_seconds += ledger.idle_seconds;
        stats_.busy_seconds += ledger.busy_seconds;
        stats_.events_processed += ledger.events;
      }
    }
  }
  // Final drain: the write-behind queue may still hold images enqueued by
  // the last iterations (workers only drain opportunistically).  Flushing
  // before returning means a caller that inspects the backend after
  // run_server() sees every file the run produced.
  if (node_->write_behind != nullptr) node_->write_behind->drain_all();

  const transport::TransportStats t = transport_->stats();
  stats_.blocks_received_remote = t.blocks_received_remote;
  stats_.bytes_received_remote = t.bytes_received_remote;
  stats_.steals = t.steals;
  stats_.idle_drain_jobs = t.idle_drains;
  // Fold in what the transport's own reclaim freed (the liveness ledger's
  // acquired-but-unpublished blocks) on top of the indexed blocks the
  // abort handler dropped.
  stats_.blocks_reclaimed += t.blocks_reclaimed;
  stats_.bytes_reclaimed += t.bytes_reclaimed;
  // Quiescent, but the (uncontended) lock keeps pipeline_times_'s
  // GUARDED_BY provable.
  MutexLock state(state_mutex_);
  stats_.pipeline_time = pipeline_times_.summary();
}

void Server::worker_loop(int worker, WorkerLedger& ledger) {
  while (!done_.load(std::memory_order_acquire)) {
    Stopwatch idle;
    auto event = transport_->next_event(worker);
    ledger.idle_seconds += idle.elapsed_seconds();
    if (!event) break;  // transport closed/ended and drained
    Stopwatch busy;
    handle(*event);
    ledger.busy_seconds += busy.elapsed_seconds();
    ++ledger.events;
  }
}

void Server::handle(const Event& event) {
  switch (event.type) {
    case EventType::kBlockWritten: {
      // A zombie block — published by a client whose abort was already
      // consumed (the demux only guarantees pre-abort events precede the
      // abort; stragglers may trail it) — is released, never indexed: its
      // segment space / flow credit returns immediately.
      bool zombie = false;
      {
        MutexLock state(state_mutex_);
        if (dead_clients_.count(event.source)) {
          zombie = true;
          ++stats_.blocks_reclaimed;
          stats_.bytes_reclaimed += event.block.size;
        }
      }
      if (zombie) {
        transport_->release(event.block);
        break;
      }
      BlockInfo info;
      info.variable = event.variable;
      info.source = event.source;
      info.iteration = event.iteration;
      info.block_id = event.block_id;
      info.block = event.block;
      for (int i = 0; i < 4; ++i) info.global_offset[i] = event.global_offset[i];
      node_->indexes[static_cast<std::size_t>(server_index_)]->insert(info);
      MutexLock state(state_mutex_);
      ++stats_.blocks_received;
      stats_.bytes_received += event.block.size;
      break;
    }
    case EventType::kEndIteration:
    case EventType::kIterationSkipped: {
      bool completes = false;
      {
        MutexLock state(state_mutex_);
        if (event.type == EventType::kIterationSkipped) ++stats_.client_skips;
        std::set<int>& closed = iteration_closes_[event.iteration];
        closed.insert(event.source);
        if (iteration_satisfied_locked(closed)) {
          iteration_closes_.erase(event.iteration);
          completes = true;
        }
      }
      // Outside the state lock: the pipeline can run long, and other
      // workers must keep indexing/closing unrelated iterations meanwhile.
      if (completes) complete_iteration(event.iteration);
      break;
    }
    case EventType::kUserSignal: {
      const auto id = static_cast<std::size_t>(event.signal_id);
      DEDICORE_CHECK(id < node_->signal_names.size(),
                     "Server: signal id out of range");
      MutexLock pipeline(pipeline_mutex_);
      fire(node_->signal_names[id], event.iteration, &event);
      break;
    }
    case EventType::kClientStop: {
      bool last = false;
      {
        MutexLock state(state_mutex_);
        ++stopped_clients_;
        last = all_clients_finished_locked();
      }
      if (last) {
        // Ordered shutdown: every client's stop is its final event and
        // stops arrive after all that client's data (per-client FIFO), so
        // at this point every event of the run has been handled.  Mark the
        // run done and wake the other workers out of next_event().
        done_.store(true, std::memory_order_release);
        if (worker_count_ > 1) transport_->end_of_stream();
      }
      break;
    }
    case EventType::kClientAborted: {
      handle_client_abort(event.source);
      break;
    }
  }
}

bool Server::iteration_satisfied_locked(
    const std::set<int>& closed_sources) const {
  std::size_t effective = closed_sources.size();
  for (int dead : dead_clients_)
    if (!closed_sources.count(dead)) ++effective;
  return effective >= static_cast<std::size_t>(client_count_);
}

void Server::handle_client_abort(int source) {
  // The abort was a gated control: every event this client published
  // before dying has been delivered AND processed (the demux's barrier),
  // so the index already holds its full pre-death contribution and the
  // reclaim below cannot race its own intake.
  DEDICORE_LOG(kWarn) << "node " << node_->node_id << " server "
                      << server_index_ << ": client " << source
                      << " died; reclaiming";

  // 1. Mark dead FIRST so the transport stops crediting the corpse (MPI)
  //    before any of its blocks are released below, and this server's
  //    workers treat stragglers as zombies.
  {
    MutexLock state(state_mutex_);
    if (!dead_clients_.insert(source).second) return;  // duplicate abort
    ++stats_.clients_aborted;
  }
  transport_->reclaim_client(source);

  // 2. The client's partial data, per policy.  drop_iteration: its
  //    indexed blocks are released now — an incomplete iteration's data is
  //    worthless downstream, and holding it pins segment space forever.
  //    keep_partial: the blocks stay indexed and persist with whatever
  //    iteration they belong to when the survivors close it.
  if (node_->config.on_client_failure() == ClientFailurePolicy::kDropIteration) {
    auto& index = *node_->indexes[static_cast<std::size_t>(server_index_)];
    std::uint64_t blocks = 0, bytes = 0;
    for (const auto& info : index.extract_client(source)) {
      ++blocks;
      bytes += info.block.size;
      transport_->release(info.block);
    }
    MutexLock state(state_mutex_);
    stats_.blocks_reclaimed += blocks;
    stats_.bytes_reclaimed += bytes;
  }

  // 3. Reconcile open iterations: ones only waiting on the corpse's close
  //    complete now, and the run terminates if every client has stopped
  //    or died.
  std::vector<Iteration> newly_complete;
  bool last = false;
  {
    MutexLock state(state_mutex_);
    for (auto it = iteration_closes_.begin(); it != iteration_closes_.end();) {
      if (iteration_satisfied_locked(it->second)) {
        newly_complete.push_back(it->first);
        it = iteration_closes_.erase(it);
      } else {
        ++it;
      }
    }
    last = all_clients_finished_locked();
  }
  for (Iteration iteration : newly_complete) complete_iteration(iteration);
  if (last) {
    done_.store(true, std::memory_order_release);
    if (worker_count_ > 1) transport_->end_of_stream();
  }
}

void Server::fire(const std::string& event_name, Iteration iteration,
                  const Event* trigger) {
  for (auto& bound : actions_) {
    if (bound.spec.event != event_name) continue;
    PluginContext context{*node_, transport_.get(), server_index_, iteration,
                          trigger, &bound.spec.params, &stats_};
    bound.plugin->run(context);
  }
}

void Server::complete_iteration(Iteration iteration) {
  Stopwatch pipeline;
  {
    // Plugins are not required to be thread-safe: at most one pipeline per
    // server at a time, even when iterations complete on several workers.
    MutexLock serialize(pipeline_mutex_);
    fire("end_iteration", iteration, nullptr);
  }

  // Release the iteration's blocks: the plugins are done with them.  The
  // transport frees segment space (shm) or returns flow credit (mpi).
  auto& index = *node_->indexes[static_cast<std::size_t>(server_index_)];
  for (const auto& block : index.extract_iteration(iteration))
    transport_->release(block.block);

  {
    MutexLock state(state_mutex_);
    ++stats_.iterations_completed;
    pipeline_times_.add(pipeline.elapsed_seconds());
  }

  // Opportunistic write-behind drain, *after* the blocks are released:
  // the disk write happens on this worker's time but no longer gates the
  // credit/segment return to clients.  With a worker pool the idle hook
  // owns the drain instead — workers parked in next_event perform the
  // disk writes while this one returns to the (possibly backlogged)
  // event stream, so drain overlaps intake rather than stalling it.  A
  // small batch keeps the single-worker loop from absorbing the whole
  // backlog while events queue up.
  if (node_->write_behind != nullptr && !idle_drain_active_)
    node_->write_behind->drain_some(4);

  DEDICORE_LOG(kDebug) << "node " << node_->node_id << " server "
                       << server_index_ << " completed iteration " << iteration;
}

}  // namespace dedicore::core
