// The two state-of-the-art I/O approaches the paper compares against
// (§II): file-per-process and collective ("two-phase") I/O into a single
// shared file.  Both run *synchronously on the simulation cores* — the
// simulation stalls for their full duration, which is exactly what Damaris
// removes.
//
// Both writers produce real h5lite files through a storage::StorageBackend,
// so their outputs can be read back, counted (the "huge amount of files
// that are simply impossible to post-process") and verified — through the
// filesystem simulator (modelled durations, in-memory content) or straight
// to disk via storage::PosixBackend.  The fsim::FileSystem constructors
// are conveniences that wrap the simulator in an owned SimBackend.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/configuration.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"
#include "storage/backend.hpp"

namespace dedicore::core {

/// Per-variable payloads of one rank for one iteration.  Must contain
/// exactly the configuration's stored variables, each matching its layout
/// size.
using IterationData = std::map<std::string, std::span<const std::byte>>;

/// Validates `data` against the configuration; throws ConfigError.
void validate_iteration_data(const Configuration& config,
                             const IterationData& data);

/// File-per-process: each rank writes its own independent file.  No
/// synchronization — but one serialized metadata-server create per rank
/// per iteration, and as many files as ranks.
class FilePerProcessWriter {
 public:
  FilePerProcessWriter(storage::StorageBackend& backend, Configuration config,
                       std::string basename = "fpp");
  FilePerProcessWriter(fsim::FileSystem& fs, Configuration config,
                       std::string basename = "fpp");

  /// Writes one iteration's data; returns the wall-clock seconds the
  /// calling rank was stalled (create + write + close).
  double write_iteration(int rank, Iteration iteration,
                         const IterationData& data);

 private:
  std::unique_ptr<storage::StorageBackend> owned_;  ///< fsim convenience only
  storage::StorageBackend& backend_;
  Configuration config_;
  std::string basename_;
};

/// Collective two-phase I/O into one shared file per iteration: ranks ship
/// their data to aggregators (one per `aggregator_group` consecutive
/// ranks); aggregators write contiguous regions of the shared file at
/// offsets precomputed by h5lite::SharedLayout.  The call is collective
/// over `comm` and ends with a barrier, like MPI-IO collective writes.
class CollectiveWriter {
 public:
  CollectiveWriter(storage::StorageBackend& backend, Configuration config,
                   int aggregator_group = 8,
                   std::string basename = "collective");
  CollectiveWriter(fsim::FileSystem& fs, Configuration config,
                   int aggregator_group = 8,
                   std::string basename = "collective");

  /// Collective; returns the wall-clock seconds this rank was stalled.
  double write_iteration(minimpi::Comm& comm, Iteration iteration,
                         const IterationData& data);

 private:
  std::unique_ptr<storage::StorageBackend> owned_;  ///< fsim convenience only
  storage::StorageBackend& backend_;
  Configuration config_;
  int aggregator_group_;
  std::string basename_;
};

}  // namespace dedicore::core
