#include "core/runtime.hpp"

#include <mutex>
#include <unordered_map>

namespace dedicore::core {

namespace {

/// Same-address-space handoff: a creator publishes a shared_ptr under an
/// id, peers fetch it by id received through the communicator.
class HandoffRegistry {
 public:
  std::uint64_t publish(std::shared_ptr<void> object) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_id_++;
    objects_.emplace(id, std::move(object));
    return id;
  }

  std::shared_ptr<void> fetch(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = objects_.find(id);
    DEDICORE_CHECK(it != objects_.end(), "handoff: unknown id");
    return it->second;
  }

  void retire(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    objects_.erase(id);
  }

  static HandoffRegistry& instance() {
    static HandoffRegistry r;
    return r;
  }

 private:
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<void>> objects_;
  std::uint64_t next_id_ = 1;
};

/// Creator (rank 0 of `comm`) publishes, everyone ends up with the object.
template <typename T>
std::shared_ptr<T> share_over(minimpi::Comm& comm, std::shared_ptr<T> object) {
  std::uint64_t id = 0;
  if (comm.rank() == 0) id = HandoffRegistry::instance().publish(object);
  id = comm.bcast_value(id, 0);
  std::shared_ptr<T> out =
      std::static_pointer_cast<T>(HandoffRegistry::instance().fetch(id));
  comm.barrier();  // everyone holds a reference now
  if (comm.rank() == 0) HandoffRegistry::instance().retire(id);
  return out;
}

}  // namespace

Runtime Runtime::initialize(const Configuration& config, minimpi::Comm& world,
                            fsim::FileSystem& fs,
                            std::shared_ptr<IoScheduler> scheduler) {
  config.validate();
  const int cpn = config.cores_per_node();
  if (world.size() % cpn != 0)
    throw ConfigError("world size " + std::to_string(world.size()) +
                      " is not a multiple of cores_per_node " +
                      std::to_string(cpn));

  // Global scheduler: built by world rank 0 unless provided.
  if (world.rank() == 0 && scheduler == nullptr)
    scheduler = make_scheduler(config.storage().scheduler,
                               config.storage().max_concurrent_nodes);
  scheduler = share_over(world, std::move(scheduler));

  const int node_id = world.rank() / cpn;
  const int node_rank = world.rank() % cpn;
  minimpi::Comm node_comm = world.split_by_node(cpn);

  // The node's first rank builds the shared state.
  std::shared_ptr<NodeRuntime> node;
  if (node_comm.rank() == 0)
    node = std::make_shared<NodeRuntime>(config, node_id, &fs, scheduler);
  node = share_over(node_comm, std::move(node));

  Runtime rt;
  rt.node_ = node;

  const bool is_client = node_rank < config.clients_per_node();
  // Clients get color 0 so the simulation can run world-like collectives
  // among computation cores only; servers get their own color.
  rt.client_comm_ = world.split(is_client ? 0 : 1, world.rank());

  if (is_client) {
    rt.client_ = std::make_unique<Client>(node, node_rank);
  } else {
    const int server_index = node_rank - config.clients_per_node();
    rt.server_ = std::make_unique<Server>(node, server_index);
  }
  return rt;
}

Client& Runtime::client() {
  DEDICORE_CHECK(client_ != nullptr, "Runtime::client on a server rank");
  return *client_;
}

void Runtime::run_server() {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::run_server on a client rank");
  server_->run();
}

const ServerStats& Runtime::server_stats() const {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::server_stats on a client rank");
  return server_->stats();
}

Server& Runtime::server() {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::server on a client rank");
  return *server_;
}

void Runtime::finalize() {
  if (client_ != nullptr) client_->stop();
}

}  // namespace dedicore::core
