#include "core/runtime.hpp"

#include <unordered_map>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "transport/mpi_transport.hpp"
#include "transport/shm_transport.hpp"

namespace dedicore::core {

namespace {

/// Same-address-space handoff: a creator publishes a shared_ptr under an
/// id, peers fetch it by id received through the communicator.
class HandoffRegistry {
 public:
  std::uint64_t publish(std::shared_ptr<void> object) {
    MutexLock lock(mutex_);
    const std::uint64_t id = next_id_++;
    objects_.emplace(id, std::move(object));
    return id;
  }

  std::shared_ptr<void> fetch(std::uint64_t id) {
    MutexLock lock(mutex_);
    auto it = objects_.find(id);
    DEDICORE_CHECK(it != objects_.end(), "handoff: unknown id");
    return it->second;
  }

  void retire(std::uint64_t id) {
    MutexLock lock(mutex_);
    objects_.erase(id);
  }

  static HandoffRegistry& instance() {
    static HandoffRegistry r;
    return r;
  }

 private:
  /// Leaf lock: each registry method is a self-contained critical section.
  Mutex mutex_{"runtime.handoff"};
  std::unordered_map<std::uint64_t, std::shared_ptr<void>> objects_
      DEDICORE_GUARDED_BY(mutex_);
  std::uint64_t next_id_ DEDICORE_GUARDED_BY(mutex_) = 1;
};

/// Creator (rank 0 of `comm`) publishes, everyone ends up with the object.
template <typename T>
std::shared_ptr<T> share_over(minimpi::Comm& comm, std::shared_ptr<T> object) {
  std::uint64_t id = 0;
  if (comm.rank() == 0) id = HandoffRegistry::instance().publish(object);
  id = comm.bcast_value(id, 0);
  std::shared_ptr<T> out =
      std::static_pointer_cast<T>(HandoffRegistry::instance().fetch(id));
  comm.barrier();  // everyone holds a reference now
  if (comm.rank() == 0) HandoffRegistry::instance().retire(id);
  return out;
}

}  // namespace

/// Dedicated-cores mode (the paper's design): the last `dedicated_cores`
/// ranks of every node serve their node mates over shared memory.
Runtime Runtime::initialize_cores_mode(const Configuration& config,
                                       minimpi::Comm& world,
                                       fsim::FileSystem& fs,
                                       std::shared_ptr<IoScheduler> scheduler) {
  const int cpn = config.cores_per_node();
  if (world.size() % cpn != 0)
    throw ConfigError("world size " + std::to_string(world.size()) +
                      " is not a multiple of cores_per_node " +
                      std::to_string(cpn));

  const int node_id = world.rank() / cpn;
  const int node_rank = world.rank() % cpn;
  minimpi::Comm node_comm = world.split_by_node(cpn);

  // The node's first rank builds the shared state.
  std::shared_ptr<NodeRuntime> node;
  if (node_comm.rank() == 0)
    node = std::make_shared<NodeRuntime>(config, node_id, &fs, scheduler);
  node = share_over(node_comm, std::move(node));

  Runtime rt;
  rt.node_ = node;

  const bool is_client = node_rank < config.clients_per_node();
  // Clients get color 0 so the simulation can run world-like collectives
  // among computation cores only; servers get their own color.
  rt.client_comm_ = world.split(is_client ? 0 : 1, world.rank());

  if (is_client) {
    rt.client_ = std::make_unique<Client>(
        node, node_rank,
        std::make_unique<transport::ShmClientTransport>(
            node->fabric, node->server_of_client(node_rank), node_rank,
            node->faults));
  } else {
    const int server_index = node_rank - config.clients_per_node();
    rt.server_ = std::make_unique<Server>(
        node, server_index,
        std::make_unique<transport::ShmServerTransport>(node->fabric,
                                                        server_index),
        node->clients_of_server(server_index),
        config.effective_server_workers());
  }
  return rt;
}

/// Dedicated-nodes mode: the last `dedicated_nodes` ranks of the *world*
/// act as I/O nodes; every other rank computes and ships its blocks over
/// MPI to the I/O rank serving it (round-robin).
Runtime Runtime::initialize_nodes_mode(const Configuration& config,
                                       minimpi::Comm& world,
                                       fsim::FileSystem& fs,
                                       std::shared_ptr<IoScheduler> scheduler) {
  const int io_ranks = config.dedicated_nodes();
  // Configuration::validate() can only check dedicated_nodes > 0 — the
  // world size is a wiring-time fact.  Reject partitions with zero (or
  // negative) compute ranks here, on every rank, before any split: a
  // partial failure would leave the survivors deadlocked in collectives.
  if (io_ranks >= world.size())
    throw ConfigError(
        "dedicated_mode=nodes: dedicated_nodes=" + std::to_string(io_ranks) +
        " must be smaller than the world size (" +
        std::to_string(world.size()) +
        "); this run would have no compute ranks left");
  const int clients = world.size() - io_ranks;
  // Count of client ranks c in [0, clients) with c % io_ranks == server;
  // 0 when there are fewer clients than I/O ranks (such a server's run()
  // returns immediately).
  const auto clients_of = [&](int server) {
    return (clients - server + io_ranks - 1) / io_ranks;
  };

  // Credit sizing checks run on EVERY rank, against the most-loaded
  // server (server 0 takes the ceiling of the round-robin), so either the
  // whole world proceeds or the whole world throws — client-only throws
  // would strand the server ranks in run_server() waiting for stops.
  const std::uint64_t min_share =
      config.buffer_size() / static_cast<std::uint64_t>(clients_of(0));
  if (min_share == 0)
    throw ConfigError(
        "dedicated_mode=nodes: <buffer size> (" +
        std::to_string(config.buffer_size()) +
        " bytes) is smaller than the number of clients per I/O node (" +
        std::to_string(clients_of(0)) +
        "), leaving a zero-byte credit share; grow the buffer");
  // A block can never exceed the client's credit budget (in cores mode
  // the whole shared segment is the bound); surface that as the
  // configuration error it is instead of a permanent write failure.
  for (const LayoutSpec& layout : config.layouts()) {
    const std::uint64_t layout_aligned =
        (layout.byte_size() + 7) & ~std::uint64_t{7};
    if (layout_aligned > min_share)
      throw ConfigError(
          "dedicated_mode=nodes: layout '" + layout.name + "' (" +
          std::to_string(layout.byte_size()) +
          " bytes) exceeds the per-client credit share (" +
          std::to_string(min_share) +
          " bytes = buffer / clients-per-io-node); grow <buffer size> or "
          "add I/O nodes");
  }

  Runtime rt;
  const bool is_server = world.rank() >= clients;
  rt.client_comm_ = world.split(is_server ? 1 : 0, world.rank());

  if (is_server) {
    const int server = world.rank() - clients;
    // node_id = server index: output paths stay distinct per I/O node.
    auto node = std::make_shared<NodeRuntime>(config, server, &fs, scheduler,
                                              NodeRuntime::Role::kIoNode);
    rt.node_ = node;
    // A dedicated I/O rank models a whole I/O *node*: run a pool of
    // server workers (default: cores_per_node, matching the model layer's
    // full-width I/O nodes) draining the one MPI transport concurrently.
    rt.server_ = std::make_unique<Server>(
        node, /*server_index=*/0,
        std::make_unique<transport::MpiServerTransport>(world, node->fabric),
        clients_of(server), config.effective_server_workers());
  } else {
    auto node = std::make_shared<NodeRuntime>(config, world.rank(), &fs,
                                              scheduler,
                                              NodeRuntime::Role::kClientOnly);
    rt.node_ = node;
    const int server = world.rank() % io_ranks;
    // Each client gets an equal share of its server's segment as flow
    // credit — the distributed analogue of the shared bounded segment
    // (validated against the worst-case server above).
    const std::uint64_t share =
        config.buffer_size() / static_cast<std::uint64_t>(clients_of(server));
    rt.client_ = std::make_unique<Client>(
        node, world.rank(),
        std::make_unique<transport::MpiClientTransport>(
            world, clients + server, share, node->faults));
  }
  return rt;
}

Runtime Runtime::initialize(const Configuration& config, minimpi::Comm& world,
                            fsim::FileSystem& fs,
                            std::shared_ptr<IoScheduler> scheduler) {
  config.validate();

  // Global scheduler: built by world rank 0 unless provided.
  if (world.rank() == 0 && scheduler == nullptr)
    scheduler = make_scheduler(config.storage().scheduler,
                               config.storage().max_concurrent_nodes);
  scheduler = share_over(world, std::move(scheduler));

  return config.dedicated_mode() == DedicatedMode::kNodes
             ? initialize_nodes_mode(config, world, fs, std::move(scheduler))
             : initialize_cores_mode(config, world, fs, std::move(scheduler));
}

Client& Runtime::client() {
  DEDICORE_CHECK(client_ != nullptr, "Runtime::client on a server rank");
  return *client_;
}

void Runtime::run_server() {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::run_server on a client rank");
  server_->run();
}

const ServerStats& Runtime::server_stats() const {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::server_stats on a client rank");
  return server_->stats();
}

Server& Runtime::server() {
  DEDICORE_CHECK(server_ != nullptr, "Runtime::server on a client rank");
  return *server_;
}

void Runtime::finalize() {
  if (client_ != nullptr) client_->stop();
}

}  // namespace dedicore::core
