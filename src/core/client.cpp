#include "core/client.hpp"

#include <cstring>

#include "common/clock.hpp"

namespace dedicore::core {

Client::Client(std::shared_ptr<NodeRuntime> node, int client_index,
               std::unique_ptr<transport::ClientTransport> transport)
    : node_(std::move(node)),
      client_index_(client_index),
      transport_(std::move(transport)) {
  DEDICORE_CHECK(client_index >= 0, "Client: negative client_index");
  DEDICORE_CHECK(transport_ != nullptr, "Client: null transport");
}

Client::~Client() { stop(); }

std::optional<shm::BlockRef> Client::acquire_block(std::uint64_t size,
                                                   int priority) {
  switch (node_->config.policy()) {
    case BackpressurePolicy::kBlock:
      return transport_->acquire_blocking(size);
    case BackpressurePolicy::kSkipIteration: {
      auto ref = transport_->try_acquire(size);
      if (!ref) skipping_ = true;  // drop the rest of this iteration's output
      return ref;
    }
    case BackpressurePolicy::kAdaptive: {
      // Important variables keep the blocking guarantee; the rest is shed
      // block-by-block under pressure ("select portions of data carrying
      // important scientific value").
      if (priority > 0) return transport_->acquire_blocking(size);
      auto ref = transport_->try_acquire(size);
      if (!ref) ++dropped_blocks_;
      return ref;
    }
  }
  return std::nullopt;
}

Status Client::write(const std::string& variable,
                     std::span<const std::byte> data,
                     std::span<const std::uint64_t> global_offset) {
  Stopwatch timer;
  const VariableSpec& spec = node_->config.variable(variable);
  const LayoutSpec& layout = node_->config.layout_of(spec);
  if (data.size() != layout.byte_size())
    return Status::invalid_argument(
        "write('" + variable + "'): got " + std::to_string(data.size()) +
        " bytes, layout '" + layout.name + "' expects " +
        std::to_string(layout.byte_size()));
  if (global_offset.size() > 4)
    return Status::invalid_argument("global_offset has more than 4 entries");
  if (skipping_)
    return Status::aborted("iteration " + std::to_string(iteration_) +
                           " dropped by skip policy");

  auto ref = acquire_block(data.size(), spec.priority);
  if (!ref) {
    switch (node_->config.policy()) {
      case BackpressurePolicy::kSkipIteration:
        return Status::aborted("segment full; iteration dropped");
      case BackpressurePolicy::kAdaptive:
        return Status::aborted("segment full; low-priority block shed");
      case BackpressurePolicy::kBlock:
        break;
    }
    return Status::closed("transport closed");
  }
  std::memcpy(transport_->view(*ref).data(), data.data(), data.size());

  Event event;
  event.type = EventType::kBlockWritten;
  event.source = client_index_;
  event.iteration = iteration_;
  event.variable = spec.id;
  event.block_id = block_counters_[spec.id]++;
  event.block = *ref;
  for (std::size_t i = 0; i < global_offset.size(); ++i)
    event.global_offset[i] = global_offset[i];

  if (node_->config.policy() == BackpressurePolicy::kBlock ||
      (node_->config.policy() == BackpressurePolicy::kAdaptive &&
       spec.priority > 0)) {
    if (!transport_->publish(event)) {
      transport_->abandon(*ref);
      return Status::closed("event channel closed");
    }
  } else {
    const Status published = transport_->try_publish(event);
    if (!published) {
      transport_->abandon(*ref);
      if (node_->config.policy() == BackpressurePolicy::kAdaptive) {
        ++dropped_blocks_;
        return Status::aborted("event channel full; block shed");
      }
      skipping_ = true;
      return Status::aborted("event channel full; iteration dropped");
    }
  }

  ++writes_;
  bytes_written_ += data.size();
  write_times_.add(timer.elapsed_seconds());
  return Status::ok();
}

AllocatedBlock Client::alloc(const std::string& variable,
                             std::span<const std::uint64_t> global_offset) {
  const VariableSpec& spec = node_->config.variable(variable);
  const LayoutSpec& layout = node_->config.layout_of(spec);
  AllocatedBlock out;
  if (skipping_) return out;
  if (global_offset.size() > 4)
    throw ConfigError("alloc: global_offset has more than 4 entries");

  auto ref = acquire_block(layout.byte_size(), spec.priority);
  if (!ref) return out;
  out.block = *ref;
  out.view = transport_->view(*ref);
  out.variable = spec.id;
  for (std::size_t i = 0; i < global_offset.size(); ++i)
    out.global_offset[i] = global_offset[i];
  return out;
}

Status Client::commit(const AllocatedBlock& block) {
  Stopwatch timer;
  if (!block.valid())
    return Status::failed_precondition("commit of an invalid AllocatedBlock");

  Event event;
  event.type = EventType::kBlockWritten;
  event.source = client_index_;
  event.iteration = iteration_;
  event.variable = block.variable;
  event.block_id = block_counters_[block.variable]++;
  event.block = block.block;
  for (std::size_t i = 0; i < 4; ++i)
    event.global_offset[i] = block.global_offset[i];

  if (node_->config.policy() == BackpressurePolicy::kBlock) {
    if (!transport_->publish(event)) {
      transport_->abandon(block.block);
      return Status::closed("event channel closed");
    }
  } else {
    const Status published = transport_->try_publish(event);
    if (!published) {
      transport_->abandon(block.block);
      skipping_ = true;
      return Status::aborted("event channel full; iteration dropped");
    }
  }
  ++writes_;
  bytes_written_ += block.block.size;
  write_times_.add(timer.elapsed_seconds());
  return Status::ok();
}

Status Client::signal(const std::string& event_name) {
  const int id = node_->signal_id(event_name);
  if (id < 0)
    return Status::not_found("no action bound to event '" + event_name + "'");
  Event event;
  event.type = EventType::kUserSignal;
  event.source = client_index_;
  event.iteration = iteration_;
  event.signal_id = static_cast<std::uint32_t>(id);
  if (!transport_->post(event)) return Status::closed("event channel closed");
  return Status::ok();
}

Status Client::end_iteration() {
  Stopwatch timer;
  Event event;
  event.source = client_index_;
  event.iteration = iteration_;
  event.type = skipping_ ? EventType::kIterationSkipped
                         : EventType::kEndIteration;
  if (skipping_) ++skipped_iterations_;
  if (!transport_->post(event)) return Status::closed("event channel closed");
  // The iteration close is the transport's flush point: everything the
  // iteration staged (the MPI backend batches publishes into one wire
  // frame) must be on its way before the simulation resumes computing.
  transport_->flush();

  skipping_ = false;
  block_counters_.clear();
  ++iteration_;
  end_iteration_times_.add(timer.elapsed_seconds());
  return Status::ok();
}

void Client::stop() {
  if (stopped_) return;
  stopped_ = true;
  Event event;
  event.type = EventType::kClientStop;
  event.source = client_index_;
  event.iteration = iteration_;
  transport_->post(event);
  transport_->flush();
}

ClientStats Client::stats() const {
  ClientStats s;
  s.writes = writes_;
  s.bytes_written = bytes_written_;
  s.iterations = static_cast<std::uint64_t>(iteration_);
  s.skipped_iterations = skipped_iterations_;
  s.dropped_blocks = dropped_blocks_;
  s.write_time = write_times_.summary();
  s.end_iteration_time = end_iteration_times_.summary();
  return s;
}

}  // namespace dedicore::core
