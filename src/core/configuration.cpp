#include "core/configuration.hpp"

#include <algorithm>
#include <cmath>

#include "common/bytes.hpp"
#include "compress/codec.hpp"
#include "storage/placement.hpp"

namespace dedicore::core {

std::string to_string(EventType type) {
  switch (type) {
    case EventType::kBlockWritten: return "block_written";
    case EventType::kEndIteration: return "end_iteration";
    case EventType::kUserSignal: return "user_signal";
    case EventType::kIterationSkipped: return "iteration_skipped";
    case EventType::kClientStop: return "client_stop";
    case EventType::kClientAborted: return "client_aborted";
  }
  return "?";
}

std::string to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kSkipIteration: return "skip";
    case BackpressurePolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

std::string to_string(DedicatedMode mode) {
  switch (mode) {
    case DedicatedMode::kCores: return "cores";
    case DedicatedMode::kNodes: return "nodes";
  }
  return "?";
}

std::uint64_t LayoutSpec::element_count() const noexcept {
  std::uint64_t n = 1;
  for (auto e : extents) n *= e;
  return n;
}

std::uint64_t LayoutSpec::byte_size() const noexcept {
  return element_count() * h5lite::dtype_size(dtype);
}

namespace {

h5lite::DType parse_dtype(const std::string& text) {
  if (text == "int8") return h5lite::DType::kInt8;
  if (text == "int16") return h5lite::DType::kInt16;
  if (text == "int32" || text == "int") return h5lite::DType::kInt32;
  if (text == "int64" || text == "long") return h5lite::DType::kInt64;
  if (text == "uint8") return h5lite::DType::kUInt8;
  if (text == "uint16") return h5lite::DType::kUInt16;
  if (text == "uint32") return h5lite::DType::kUInt32;
  if (text == "uint64") return h5lite::DType::kUInt64;
  if (text == "float32" || text == "float") return h5lite::DType::kFloat32;
  if (text == "float64" || text == "double") return h5lite::DType::kFloat64;
  throw ConfigError("unknown data type '" + text + "'");
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : text) {
    if (ch == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(ch))) {
      current += ch;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::vector<std::uint64_t> parse_dimensions(const std::string& text) {
  std::vector<std::uint64_t> out;
  for (const auto& item : split_list(text)) {
    try {
      const long long v = std::stoll(item);
      if (v <= 0) throw std::invalid_argument("non-positive");
      out.push_back(static_cast<std::uint64_t>(v));
    } catch (const std::exception&) {
      throw ConfigError("bad dimension '" + item + "' in '" + text + "'");
    }
  }
  if (out.empty()) throw ConfigError("empty dimension list '" + text + "'");
  if (out.size() > 4) throw ConfigError("at most 4 dimensions supported");
  return out;
}

}  // namespace

Configuration Configuration::from_xml(const xml::Node& root) {
  if (root.name() != "simulation")
    throw ConfigError("configuration root must be <simulation>, found <" +
                      root.name() + ">");
  Configuration cfg;
  cfg.name_ = root.attribute_or("name", "simulation");
  cfg.cores_per_node_ = static_cast<int>(root.attribute_int("cores_per_node", 12));
  cfg.dedicated_cores_ = static_cast<int>(root.attribute_int("dedicated_cores", 1));
  const std::string mode = root.attribute_or("dedicated_mode", "cores");
  if (mode == "cores") {
    cfg.dedicated_mode_ = DedicatedMode::kCores;
  } else if (mode == "nodes") {
    cfg.dedicated_mode_ = DedicatedMode::kNodes;
  } else {
    throw ConfigError("dedicated_mode must be 'cores' or 'nodes', got '" +
                      mode + "'");
  }
  cfg.dedicated_nodes_ =
      static_cast<int>(root.attribute_int("dedicated_nodes", 1));
  cfg.server_workers_ =
      static_cast<int>(root.attribute_int("server_workers", 0));
  const std::string steal = root.attribute_or("steal", "on");
  if (steal == "on") {
    cfg.steal_enabled_ = true;
  } else if (steal == "off") {
    cfg.steal_enabled_ = false;
  } else {
    throw ConfigError("steal must be 'on' or 'off', got '" + steal + "'");
  }
  cfg.steal_threshold_ =
      static_cast<int>(root.attribute_int("steal_threshold", 2));
  const std::string on_failure =
      root.attribute_or("on_client_failure", "drop_iteration");
  if (on_failure == "drop_iteration") {
    cfg.on_client_failure_ = ClientFailurePolicy::kDropIteration;
  } else if (on_failure == "keep_partial") {
    cfg.on_client_failure_ = ClientFailurePolicy::kKeepPartial;
  } else {
    throw ConfigError(
        "on_client_failure must be 'drop_iteration' or 'keep_partial', got '" +
        on_failure + "'");
  }

  if (const xml::Node* buffer = root.child("buffer")) {
    cfg.buffer_size_ = parse_bytes(buffer->attribute_or("size", "64MiB"));
    cfg.queue_capacity_ =
        static_cast<std::size_t>(buffer->attribute_int("queue", 1024));
    const std::string policy = buffer->attribute_or("policy", "block");
    if (policy == "block") {
      cfg.policy_ = BackpressurePolicy::kBlock;
    } else if (policy == "skip") {
      cfg.policy_ = BackpressurePolicy::kSkipIteration;
    } else if (policy == "adaptive") {
      cfg.policy_ = BackpressurePolicy::kAdaptive;
    } else {
      throw ConfigError(
          "buffer policy must be 'block', 'skip' or 'adaptive', got '" +
          policy + "'");
    }
  }

  if (const xml::Node* data = root.child("data")) {
    for (const xml::Node* n : data->children_named("layout")) {
      LayoutSpec l;
      l.name = n->require_attribute("name");
      l.dtype = parse_dtype(n->attribute_or("type", "float64"));
      l.extents = parse_dimensions(n->require_attribute("dimensions"));
      cfg.add_layout(std::move(l));
    }
    for (const xml::Node* n : data->children_named("mesh")) {
      MeshSpec m;
      m.name = n->require_attribute("name");
      m.type = n->attribute_or("type", "rectilinear");
      m.coordinates = split_list(n->attribute_or("coordinates", ""));
      cfg.add_mesh(std::move(m));
    }
    for (const xml::Node* n : data->children_named("variable")) {
      VariableSpec v;
      v.name = n->require_attribute("name");
      v.layout = n->require_attribute("layout");
      v.mesh = n->attribute_or("mesh", "");
      v.group = n->attribute_or("group", "");
      v.store = n->attribute_bool("store", true);
      v.codec = n->attribute_or("codec", "");
      v.priority = static_cast<int>(n->attribute_int("priority", 0));
      cfg.add_variable(std::move(v));
    }
  }

  if (const xml::Node* storage = root.child("storage")) {
    StorageSpec s;
    s.basename = storage->attribute_or("basename", "output");
    s.codec = storage->attribute_or("codec", "none");
    s.min_ratio = storage->attribute_double("min_ratio", s.min_ratio);
    s.stripe_count = static_cast<int>(storage->attribute_int("stripe_count", 0));
    s.scheduler = storage->attribute_or("scheduler", "greedy");
    s.max_concurrent_nodes =
        static_cast<int>(storage->attribute_int("max_concurrent", 0));
    s.backend = storage->attribute_or("backend", "sim");
    s.path = storage->attribute_or("path", "");
    // Sharded layout: ';'-separated root directories.
    const std::string roots = storage->attribute_or("roots", "");
    for (std::size_t begin = 0; begin < roots.size();) {
      std::size_t end = roots.find(';', begin);
      if (end == std::string::npos) end = roots.size();
      s.roots.push_back(roots.substr(begin, end - begin));
      begin = end + 1;
    }
    s.chunk_size = parse_bytes(storage->attribute_or("chunk_size", "0"));
    s.placement = storage->attribute_or("placement", "round_robin");
    s.placement_seed =
        static_cast<std::uint64_t>(storage->attribute_int("placement_seed", 0));
    s.replication =
        static_cast<int>(storage->attribute_int("replication", s.replication));
    s.write_behind_bytes = parse_bytes(storage->attribute_or("write_behind", "0"));
    s.retries = static_cast<int>(storage->attribute_int("retries", s.retries));
    cfg.set_storage(std::move(s));
  }

  if (const xml::Node* faults = root.child("faults")) {
    FaultsSpec plan;
    plan.seed =
        static_cast<std::uint64_t>(faults->attribute_int("seed", 0));
    for (const xml::Node* n : faults->children_named("fault")) {
      fault::FaultSpec f;
      f.point = n->require_attribute("point");
      f.target = static_cast<int>(n->attribute_int("target", -1));
      f.after = static_cast<std::uint64_t>(n->attribute_int("after", 0));
      f.count = static_cast<std::uint64_t>(n->attribute_int("count", 1));
      f.probability = n->attribute_double("probability", 1.0);
      f.magnitude = static_cast<std::uint64_t>(n->attribute_int("magnitude", 0));
      plan.faults.push_back(std::move(f));
    }
    cfg.set_faults(std::move(plan));
  }

  if (const xml::Node* actions = root.child("actions")) {
    for (const xml::Node* n : actions->children_named("event")) {
      ActionSpec a;
      a.event = n->require_attribute("name");
      a.plugin = n->require_attribute("plugin");
      for (const xml::Node* p : n->children_named("param"))
        a.params[p->require_attribute("key")] = p->attribute_or("value", "");
      cfg.add_action(std::move(a));
    }
  }

  cfg.validate();
  return cfg;
}

Configuration Configuration::from_string(const std::string& document) {
  return from_xml(xml::parse(document));
}

Configuration Configuration::from_file(const std::string& path) {
  return from_xml(xml::parse_file(path));
}

void Configuration::set_architecture(int cores_per_node, int dedicated_cores) {
  cores_per_node_ = cores_per_node;
  dedicated_cores_ = dedicated_cores;
}

void Configuration::set_dedicated_mode(DedicatedMode mode, int dedicated_nodes) {
  dedicated_mode_ = mode;
  dedicated_nodes_ = dedicated_nodes;
}

void Configuration::set_buffer(std::uint64_t size, std::size_t queue_capacity,
                               BackpressurePolicy policy) {
  buffer_size_ = size;
  queue_capacity_ = queue_capacity;
  policy_ = policy;
}

void Configuration::add_layout(LayoutSpec layout) {
  layouts_.push_back(std::move(layout));
}

void Configuration::add_mesh(MeshSpec mesh) { meshes_.push_back(std::move(mesh)); }

void Configuration::add_variable(VariableSpec variable) {
  variable.id = static_cast<VariableId>(variables_.size());
  variables_.push_back(std::move(variable));
}

void Configuration::add_action(ActionSpec action) {
  actions_.push_back(std::move(action));
}

void Configuration::set_storage(StorageSpec storage) {
  storage_ = std::move(storage);
}

const LayoutSpec& Configuration::layout(const std::string& name) const {
  auto it = std::find_if(layouts_.begin(), layouts_.end(),
                         [&](const LayoutSpec& l) { return l.name == name; });
  if (it == layouts_.end()) throw ConfigError("unknown layout '" + name + "'");
  return *it;
}

const VariableSpec& Configuration::variable(const std::string& name) const {
  auto it = std::find_if(variables_.begin(), variables_.end(),
                         [&](const VariableSpec& v) { return v.name == name; });
  if (it == variables_.end()) throw ConfigError("unknown variable '" + name + "'");
  return *it;
}

const VariableSpec& Configuration::variable(VariableId id) const {
  if (id >= variables_.size())
    throw ConfigError("variable id " + std::to_string(id) + " out of range");
  return variables_[id];
}

const MeshSpec* Configuration::mesh(const std::string& name) const noexcept {
  auto it = std::find_if(meshes_.begin(), meshes_.end(),
                         [&](const MeshSpec& m) { return m.name == name; });
  return it == meshes_.end() ? nullptr : &*it;
}

std::uint64_t Configuration::bytes_per_core_per_iteration() const noexcept {
  std::uint64_t total = 0;
  for (const auto& v : variables_) {
    if (!v.store) continue;
    for (const auto& l : layouts_)
      if (l.name == v.layout) total += l.byte_size();
  }
  return total;
}

void Configuration::validate() const {
  if (cores_per_node_ <= 0)
    throw ConfigError("cores_per_node must be positive");
  if (dedicated_cores_ < 0 || dedicated_cores_ >= cores_per_node_)
    throw ConfigError("dedicated_cores must be in [0, cores_per_node)");
  if (dedicated_nodes_ <= 0)
    throw ConfigError("dedicated_nodes must be positive");
  if (server_workers_ < 0)
    throw ConfigError("server_workers must be >= 0 (0 = auto)");
  // Sanity cap: a typo like server_workers="500000" would otherwise pass
  // here and kill the I/O rank at thread-spawn time while the other ranks
  // proceed into collectives and block forever.
  if (server_workers_ > 1024)
    throw ConfigError("server_workers must be <= 1024 (got " +
                      std::to_string(server_workers_) + ")");
  if (steal_threshold_ < 1)
    throw ConfigError("steal_threshold must be >= 1 (got " +
                      std::to_string(steal_threshold_) + ")");
  // Same typo-guard reasoning as server_workers: a threshold larger than
  // any plausible backlog silently disables stealing, which the operator
  // almost certainly did not mean.
  if (steal_threshold_ > 1 << 20)
    throw ConfigError("steal_threshold must be <= 2^20 (got " +
                      std::to_string(steal_threshold_) + ")");
  if (buffer_size_ == 0) throw ConfigError("buffer size must be non-zero");
  if (queue_capacity_ == 0) throw ConfigError("queue capacity must be non-zero");

  std::vector<std::string> seen;
  for (const auto& l : layouts_) {
    if (std::find(seen.begin(), seen.end(), l.name) != seen.end())
      throw ConfigError("duplicate layout '" + l.name + "'");
    seen.push_back(l.name);
    if (l.extents.empty() || l.extents.size() > 4)
      throw ConfigError("layout '" + l.name + "' must have 1..4 dimensions");
    for (auto e : l.extents)
      if (e == 0) throw ConfigError("layout '" + l.name + "' has a zero extent");
  }
  seen.clear();
  for (const auto& v : variables_) {
    if (std::find(seen.begin(), seen.end(), v.name) != seen.end())
      throw ConfigError("duplicate variable '" + v.name + "'");
    seen.push_back(v.name);
    (void)layout(v.layout);  // throws if missing
    if (!v.mesh.empty() && mesh(v.mesh) == nullptr)
      throw ConfigError("variable '" + v.name + "' references unknown mesh '" +
                        v.mesh + "'");
    // A bad per-variable codec must fail here, not at the first write.
    try {
      (void)compress::codec_id(v.codec);
    } catch (const ConfigError&) {
      throw ConfigError("variable '" + v.name + "' references unknown codec '" +
                        v.codec + "'");
    }
  }
  for (const auto& m : meshes_)
    for (const auto& coord : m.coordinates)
      (void)variable(coord);  // coordinates must be declared variables
  for (const auto& a : actions_) {
    if (a.event.empty() || a.plugin.empty())
      throw ConfigError("actions need both an event name and a plugin name");
    // A plugin's `codec` param (the store plugin's per-action override)
    // used to surface only when the first write ran; validate it with the
    // rest of the configuration.
    if (auto it = a.params.find("codec"); it != a.params.end()) {
      try {
        (void)compress::codec_id(it->second);
      } catch (const ConfigError&) {
        throw ConfigError("action '" + a.event + "' (plugin '" + a.plugin +
                          "') references unknown codec '" + it->second + "'");
      }
    }
  }
  if (storage_.scheduler != "greedy" && storage_.scheduler != "throttled")
    throw ConfigError("storage scheduler must be 'greedy' or 'throttled'");
  if (storage_.scheduler == "throttled" && storage_.max_concurrent_nodes <= 0)
    throw ConfigError("throttled scheduler requires max_concurrent > 0");
  if (storage_.backend != "sim" && storage_.backend != "posix")
    throw ConfigError("storage backend must be 'sim' or 'posix', got '" +
                      storage_.backend + "'");
  if (storage_.backend == "posix" && storage_.path.empty() &&
      storage_.roots.empty())
    throw ConfigError("storage backend 'posix' requires a path attribute "
                      "(single root) or roots (sharded multi-root layout)");
  if (!storage_.roots.empty()) {
    if (storage_.backend != "posix")
      throw ConfigError("storage roots (sharded layout) requires backend "
                        "'posix', got '" + storage_.backend + "'");
    if (!storage_.path.empty())
      throw ConfigError("storage path and roots are mutually exclusive: use "
                        "path for a single root, roots for the sharded "
                        "layout");
    for (const auto& root : storage_.roots)
      if (root.empty())
        throw ConfigError("storage roots contains an empty entry (check the "
                          "';' separators)");
    if (storage_.replication < 1 ||
        storage_.replication > static_cast<int>(storage_.roots.size()))
      throw ConfigError("storage replication must be within [1, root count "
                        "= " + std::to_string(storage_.roots.size()) +
                        "], got " + std::to_string(storage_.replication));
    (void)storage::placement_policy_from_name(storage_.placement);  // throws
    // A typo'd "512" where "512KiB" was meant would shatter every image
    // into thousands of chunk files; refuse stripes below 512 bytes.
    if (storage_.chunk_size != 0 && storage_.chunk_size < 512)
      throw ConfigError("storage chunk_size must be 0 (default) or >= 512 "
                        "bytes, got " +
                        std::to_string(storage_.chunk_size));
  } else {
    // Sharded-only attributes on a non-sharded configuration are a typo,
    // not a no-op: fail loudly like every other config inconsistency.
    if (storage_.replication != 1)
      throw ConfigError("storage replication requires a sharded roots "
                        "layout");
    if (storage_.chunk_size != 0)
      throw ConfigError("storage chunk_size requires a sharded roots layout");
    if (storage_.placement != "round_robin")
      throw ConfigError("storage placement requires a sharded roots layout");
  }
  (void)compress::codec_id(storage_.codec);  // throws on unknown codec
  // `!(x >= 1.0)` (rather than `x < 1.0`) also rejects NaN.
  if (!(storage_.min_ratio >= 1.0) || !std::isfinite(storage_.min_ratio))
    throw ConfigError("storage min_ratio must be a finite value >= 1.0");
  if (storage_.retries < 1)
    throw ConfigError("storage retries must be >= 1 (got " +
                      std::to_string(storage_.retries) + ")");
  // Same typo-guard reasoning as server_workers: an absurd retry budget
  // times the backoff cap turns one bad disk into an invisible multi-hour
  // stall of the drain path.
  if (storage_.retries > 100)
    throw ConfigError("storage retries must be <= 100 (got " +
                      std::to_string(storage_.retries) + ")");
  // A typo'd injection point must fail the run at configuration time, not
  // silently arm a fault that never fires.
  for (const auto& f : faults_.faults) {
    if (!fault::FaultInjector::known_point(f.point)) {
      std::string known;
      for (auto p : fault::FaultInjector::known_points()) {
        if (!known.empty()) known += ", ";
        known += p;
      }
      throw ConfigError("fault: unknown injection point '" + f.point +
                        "' (known: " + known + ")");
    }
    if (!(f.probability >= 0.0) || !(f.probability <= 1.0))
      throw ConfigError("fault '" + f.point +
                        "': probability must be within [0, 1]");
    if (f.count == 0)
      throw ConfigError("fault '" + f.point + "': count must be >= 1");
  }
}

}  // namespace dedicore::core
