// Cross-node I/O scheduling strategies for the dedicated cores (§IV.D).
//
// With one dedicated core per node all flushing at the same moment, the
// storage system sees the same burst a synchronous approach produces —
// just asynchronously.  The paper reports that a "better I/O scheduling
// schema" raised aggregate throughput from 10 GB/s to 12.7 GB/s; the
// mechanism is admission control: bound how many nodes write concurrently
// so each admitted stream runs near full stripe bandwidth.
//
//  * GreedyScheduler    — no admission control (baseline Damaris);
//  * ThrottledScheduler — counting semaphore with FIFO wakeup, at most
//    `max_concurrent` nodes in their write phase at once.
//
// One scheduler instance is shared by all server cores of a run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::core {

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  /// Blocks until this node may start writing; pair with release(node_id)
  /// when the write phase ends (or use ScheduleGuard).
  virtual void acquire(int node_id) = 0;
  virtual void release(int node_id) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Cumulative time spent waiting for admission, across all nodes (s).
  [[nodiscard]] virtual double total_wait_seconds() const = 0;
};

/// RAII admission guard.
class ScheduleGuard {
 public:
  ScheduleGuard(IoScheduler& scheduler, int node_id)
      : scheduler_(&scheduler), node_id_(node_id) {
    scheduler_->acquire(node_id_);
  }
  ~ScheduleGuard() {
    if (scheduler_ != nullptr) scheduler_->release(node_id_);
  }
  ScheduleGuard(const ScheduleGuard&) = delete;
  ScheduleGuard& operator=(const ScheduleGuard&) = delete;

 private:
  IoScheduler* scheduler_;
  int node_id_;
};

class GreedyScheduler final : public IoScheduler {
 public:
  void acquire(int) override {}
  void release(int) override {}
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] double total_wait_seconds() const override { return 0.0; }
};

class ThrottledScheduler final : public IoScheduler {
 public:
  explicit ThrottledScheduler(int max_concurrent);

  void acquire(int node_id) override;
  void release(int node_id) override;
  [[nodiscard]] std::string name() const override { return "throttled"; }
  [[nodiscard]] double total_wait_seconds() const override;

  /// Number of acquire() calls that have taken a ticket so far (admitted or
  /// still waiting).  Lets callers and tests observe queue build-up.
  [[nodiscard]] std::uint64_t tickets_issued() const;

 private:
  const int max_concurrent_;
  /// Leaf lock: admission state only; never held across a write phase
  /// (acquire/release bracket the caller's I/O, the lock does not).
  mutable Mutex mutex_{"core.scheduler"};
  CondVar admitted_;
  int active_ DEDICORE_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_ticket_ DEDICORE_GUARDED_BY(mutex_) = 0;  // FIFO fairness
  std::uint64_t serving_ DEDICORE_GUARDED_BY(mutex_) = 0;
  double total_wait_ DEDICORE_GUARDED_BY(mutex_) = 0.0;
};

/// Factory from the <storage scheduler=.../> configuration.
std::shared_ptr<IoScheduler> make_scheduler(const std::string& name,
                                            int max_concurrent);

}  // namespace dedicore::core
