// Simulation-side API — the calls a simulation inserts around its
// computation loop.  The paper's usability claim is that instrumenting an
// application with Damaris takes "one line per data object":
//
//   client.write("theta", theta_view);          // each output variable
//   client.end_iteration();                     // once per time step
//
// write() costs one shared-memory copy (~the 0.1 s the paper measures at
// CM1's sizes); alloc()/commit() is the zero-copy variant where the
// simulation computes directly into the segment.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "common/stats.hpp"
#include "core/node_runtime.hpp"
#include "transport/transport.hpp"

namespace dedicore::core {

/// Zero-copy write in progress: the simulation fills `view` then commits.
struct AllocatedBlock {
  shm::BlockRef block;
  std::span<std::byte> view;
  VariableId variable = 0;
  std::uint64_t global_offset[4] = {0, 0, 0, 0};
  [[nodiscard]] bool valid() const noexcept { return !block.is_null(); }
};

/// Per-client observability (feeds the variability experiment E2).
struct ClientStats {
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t iterations = 0;
  std::uint64_t skipped_iterations = 0;
  std::uint64_t dropped_blocks = 0;  ///< adaptive policy: low-priority sheds
  Summary write_time;        ///< seconds per write() call
  Summary end_iteration_time;
};

class Client {
 public:
  /// `client_index` is this rank's index among its server's clients
  /// (node-local in dedicated-cores mode, world-wide in dedicated-nodes
  /// mode); `transport` is the endpoint toward that server.
  Client(std::shared_ptr<NodeRuntime> node, int client_index,
         std::unique_ptr<transport::ClientTransport> transport);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Copies `data` into the shared segment and notifies the dedicated
  /// core.  `global_offset` (up to 4 entries, optional) places the block
  /// in the variable's global grid.
  ///
  /// Returns OK; ABORTED when the current iteration was dropped by the
  /// skip policy; INVALID_ARGUMENT on size mismatch with the layout.
  Status write(const std::string& variable, std::span<const std::byte> data,
               std::span<const std::uint64_t> global_offset = {});

  template <typename T>
  Status write(const std::string& variable, std::span<const T> values,
               std::span<const std::uint64_t> global_offset = {}) {
    return write(variable, std::as_bytes(values), global_offset);
  }

  /// Zero-copy: reserves the block and returns a writable view into the
  /// segment.  Returns an invalid AllocatedBlock when the iteration is
  /// being skipped.
  AllocatedBlock alloc(const std::string& variable,
                       std::span<const std::uint64_t> global_offset = {});

  /// Publishes a block obtained from alloc().
  Status commit(const AllocatedBlock& block);

  /// Fires a user-defined event (must be bound in <actions>).
  Status signal(const std::string& event);

  /// Closes the iteration: notifies the dedicated core (or reports the
  /// skip) and advances the iteration counter.
  Status end_iteration();

  /// Tells the dedicated core this client is done (sent once; idempotent).
  void stop();

  [[nodiscard]] Iteration iteration() const noexcept { return iteration_; }
  [[nodiscard]] bool iteration_skipped() const noexcept { return skipping_; }
  [[nodiscard]] ClientStats stats() const;

  /// Data-path counters of the underlying transport (shipped bytes etc.).
  [[nodiscard]] transport::TransportStats transport_stats() const {
    return transport_->stats();
  }

 private:
  /// Acquires per the backpressure policy; engages skip mode (or sheds a
  /// low-priority block under the adaptive policy) on failure.
  std::optional<shm::BlockRef> acquire_block(std::uint64_t size, int priority);

  std::shared_ptr<NodeRuntime> node_;
  int client_index_;
  std::unique_ptr<transport::ClientTransport> transport_;
  Iteration iteration_ = 0;
  bool skipping_ = false;
  bool stopped_ = false;
  std::map<VariableId, std::uint32_t> block_counters_;  ///< per-iteration

  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t skipped_iterations_ = 0;
  std::uint64_t dropped_blocks_ = 0;
  SampleSet write_times_;
  SampleSet end_iteration_times_;
};

}  // namespace dedicore::core
