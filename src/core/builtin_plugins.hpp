// Built-in plugins of the dedicated-core service.  Exposed as concrete
// classes (not just registry names) so tests and examples can inspect
// their results after a run through Server::find_plugin.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "core/plugin.hpp"
#include "viz/vislite.hpp"

namespace dedicore::core {

/// "store": aggregates the iteration's blocks into one h5lite file per
/// dedicated core — "Damaris is able to group the output of multiple
/// processes into bigger files without the communication overhead of a
/// collective I/O approach".
///
/// Each dataset flows through the node's EmitStage (emit-path transform
/// stage): codec precedence is the `codec` param here, then the
/// variable's `codec` attribute, then <storage codec>; an adaptive probe
/// stores a variable raw when its sample compresses below
/// <storage min_ratio>.
///
/// Params: `codec` (overrides every configured codec), `basename`
/// (overrides <storage basename>).
class StorePlugin final : public Plugin {
 public:
  explicit StorePlugin(const std::map<std::string, std::string>& params);

  [[nodiscard]] std::string_view name() const noexcept override { return "store"; }
  void run(PluginContext& context) override;

  struct Totals {
    std::uint64_t files = 0;         ///< images durably written (counted at
                                     ///< drain time on the write-behind path)
    std::uint64_t failed_writes = 0; ///< images the backend rejected (async
                                     ///< path; logged by the queue)
    std::uint64_t raw_bytes = 0;     ///< block payloads aggregated
    std::uint64_t stored_bytes = 0;  ///< image bytes persisted (post-codec)
    /// Wall time the pipeline spent emitting: inside backend write calls
    /// on the synchronous (sim) path, inside enqueue() on the write-behind
    /// (posix) path — where it only grows when backpressure engages.
    double write_seconds = 0.0;
    double schedule_wait_seconds = 0.0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  std::string codec_override_;
  std::string basename_override_;
  /// Leaf lock over the aggregate counters (one per plugin instance).
  mutable Mutex mutex_{"plugin.store"};
  Totals totals_ DEDICORE_GUARDED_BY(mutex_);
};

/// "stats": per-variable min/max/mean/stddev per iteration, kept for the
/// most recent iterations (ring of 16).
class StatsPlugin final : public Plugin {
 public:
  explicit StatsPlugin(const std::map<std::string, std::string>&) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "stats"; }
  void run(PluginContext& context) override;

  struct Entry {
    Iteration iteration = -1;
    std::map<std::string, viz::FieldStatistics> per_variable;
  };
  /// Latest computed entry (empty variable map before the first run).
  [[nodiscard]] Entry latest() const;
  [[nodiscard]] std::vector<Entry> history() const;

 private:
  mutable Mutex mutex_{"plugin.stats"};
  std::vector<Entry> history_ DEDICORE_GUARDED_BY(mutex_);
};

/// "script": evaluates a tiny arithmetic expression over the iteration's
/// data — the stand-in for Damaris's Python plugin support.  Grammar:
///
///   expr   := term (('+'|'-') term)*
///   term   := factor (('*'|'/') factor)*
///   factor := NUMBER | FUNC '(' IDENT ')' | '(' expr ')' | '-' factor
///   FUNC   := min | max | mean | sum
///
/// Params: `expr` (required), e.g. "mean(theta) - 0.5*max(qv)".
class ScriptPlugin final : public Plugin {
 public:
  explicit ScriptPlugin(const std::map<std::string, std::string>& params);

  [[nodiscard]] std::string_view name() const noexcept override { return "script"; }
  void run(PluginContext& context) override;

  /// Result of the most recent evaluation (NaN before the first run).
  [[nodiscard]] double last_value() const;
  [[nodiscard]] Iteration last_iteration() const;

 private:
  std::string expression_;
  mutable Mutex mutex_{"plugin.script"};
  double last_value_ DEDICORE_GUARDED_BY(mutex_);
  Iteration last_iteration_ DEDICORE_GUARDED_BY(mutex_) = -1;
};

/// "vislite": the in-situ pipeline (isosurface + statistics + rendering)
/// on the dedicated core.  Params: `variable` (required, must be 3-D),
/// `isovalue` ("mean" or a number, default mean), `width`, `height`,
/// `write_image` ("true" stores PPMs through the filesystem).
class VisLitePlugin final : public Plugin {
 public:
  explicit VisLitePlugin(const std::map<std::string, std::string>& params);

  [[nodiscard]] std::string_view name() const noexcept override { return "vislite"; }
  void run(PluginContext& context) override;

  struct Totals {
    std::uint64_t invocations = 0;
    std::uint64_t blocks_rendered = 0;
    std::uint64_t triangles = 0;
    std::uint64_t images_written = 0;
    double pipeline_seconds = 0.0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  std::string variable_;
  std::string isovalue_spec_;
  int width_, height_;
  bool write_image_;
  mutable Mutex mutex_{"plugin.vislite"};
  Totals totals_ DEDICORE_GUARDED_BY(mutex_);
};

/// Decodes a block's payload to doubles according to the variable layout
/// (float32/float64 only); shared by stats/script/vislite.  The payload is
/// resolved through the context's server transport, so it works for both
/// locally-resident and MPI-received blocks.
std::vector<double> block_as_doubles(const PluginContext& context,
                                     const BlockInfo& block);

}  // namespace dedicore::core
