#include "core/baseline_io.hpp"

#include <algorithm>
#include <cstring>

#include "common/clock.hpp"
#include "h5lite/h5lite.hpp"
#include "storage/sim_backend.hpp"

namespace dedicore::core {

namespace {

/// Baseline writers run synchronously on the simulation cores, so a
/// backend failure is a hard experiment failure — surface it immediately.
void check_storage(const Status& status, const char* what) {
  if (status.is_ok()) return;
  throw ConfigError(std::string(what) + ": " + status.to_string());
}

/// Stored variables in configuration order (the deterministic order both
/// writers and the shared layout rely on).
std::vector<const VariableSpec*> stored_variables(const Configuration& config) {
  std::vector<const VariableSpec*> out;
  for (const auto& v : config.variables())
    if (v.store) out.push_back(&v);
  return out;
}

}  // namespace

void validate_iteration_data(const Configuration& config,
                             const IterationData& data) {
  const auto vars = stored_variables(config);
  if (data.size() != vars.size())
    throw ConfigError("iteration data must contain exactly the stored variables (" +
                      std::to_string(vars.size()) + "), got " +
                      std::to_string(data.size()));
  for (const VariableSpec* v : vars) {
    auto it = data.find(v->name);
    if (it == data.end())
      throw ConfigError("iteration data is missing variable '" + v->name + "'");
    const LayoutSpec& layout = config.layout_of(*v);
    if (it->second.size() != layout.byte_size())
      throw ConfigError("variable '" + v->name + "': got " +
                        std::to_string(it->second.size()) + " bytes, layout '" +
                        layout.name + "' expects " +
                        std::to_string(layout.byte_size()));
  }
}

// ---------------------------------------------------------------------------
// FilePerProcessWriter
// ---------------------------------------------------------------------------

FilePerProcessWriter::FilePerProcessWriter(storage::StorageBackend& backend,
                                           Configuration config,
                                           std::string basename)
    : backend_(backend), config_(std::move(config)),
      basename_(std::move(basename)) {
  config_.validate();
}

FilePerProcessWriter::FilePerProcessWriter(fsim::FileSystem& fs,
                                           Configuration config,
                                           std::string basename)
    : owned_(std::make_unique<storage::SimBackend>(fs)), backend_(*owned_),
      config_(std::move(config)), basename_(std::move(basename)) {
  config_.validate();
}

double FilePerProcessWriter::write_iteration(int rank, Iteration iteration,
                                             const IterationData& data) {
  validate_iteration_data(config_, data);
  Stopwatch timer;

  h5lite::FileBuilder builder;
  builder.set_attribute(h5lite::FileBuilder::kRoot, "rank",
                        static_cast<std::int64_t>(rank));
  builder.set_attribute(h5lite::FileBuilder::kRoot, "iteration",
                        static_cast<std::int64_t>(iteration));
  for (const VariableSpec* var : stored_variables(config_)) {
    const LayoutSpec& layout = config_.layout_of(*var);
    builder.add_dataset(h5lite::FileBuilder::kRoot, var->name, layout.dtype,
                        layout.extents, data.at(var->name));
  }
  const std::vector<std::byte> image = std::move(builder).finalize();

  const std::string path = basename_ + "/rank" + std::to_string(rank) + "_it" +
                           std::to_string(iteration) + ".h5l";
  check_storage(storage::write_image(backend_, path, image,
                                     config_.storage().stripe_count),
                "file-per-process write");
  return timer.elapsed_seconds();
}

// ---------------------------------------------------------------------------
// CollectiveWriter
// ---------------------------------------------------------------------------

CollectiveWriter::CollectiveWriter(storage::StorageBackend& backend,
                                   Configuration config,
                                   int aggregator_group, std::string basename)
    : backend_(backend), config_(std::move(config)),
      aggregator_group_(aggregator_group), basename_(std::move(basename)) {
  config_.validate();
  if (aggregator_group_ <= 0)
    throw ConfigError("CollectiveWriter: aggregator_group must be positive");
}

CollectiveWriter::CollectiveWriter(fsim::FileSystem& fs, Configuration config,
                                   int aggregator_group, std::string basename)
    : owned_(std::make_unique<storage::SimBackend>(fs)), backend_(*owned_),
      config_(std::move(config)),
      aggregator_group_(aggregator_group), basename_(std::move(basename)) {
  config_.validate();
  if (aggregator_group_ <= 0)
    throw ConfigError("CollectiveWriter: aggregator_group must be positive");
}

double CollectiveWriter::write_iteration(minimpi::Comm& comm,
                                         Iteration iteration,
                                         const IterationData& data) {
  validate_iteration_data(config_, data);
  Stopwatch timer;

  const int size = comm.size();
  const int rank = comm.rank();
  const auto vars = stored_variables(config_);

  // All ranks deterministically build the same shared layout: one dataset
  // per (variable, rank), variable-major so a group of consecutive ranks
  // owns a contiguous file region per variable.
  std::vector<h5lite::SharedLayout::Decl> decls;
  decls.reserve(vars.size() * static_cast<std::size_t>(size));
  for (const VariableSpec* var : vars) {
    const LayoutSpec& layout = config_.layout_of(*var);
    for (int r = 0; r < size; ++r) {
      h5lite::SharedLayout::Decl d;
      d.path = var->name + "/r" + std::to_string(r);
      d.dtype = layout.dtype;
      d.dims = layout.extents;
      decls.push_back(std::move(d));
    }
  }
  const h5lite::SharedLayout layout(std::move(decls));
  auto decl_index = [&](std::size_t var_idx, int r) {
    return var_idx * static_cast<std::size_t>(size) + static_cast<std::size_t>(r);
  };

  const std::string path =
      basename_ + "/shared_it" + std::to_string(iteration) + ".h5l";

  // Phase 0: rank 0 creates the file; everyone else learns it is ready.
  const int base_tag = 2000 + static_cast<int>(iteration % 1000) * 8;
  if (rank == 0) {
    storage::FileHandle file;
    check_storage(backend_.create(path, &file, config_.storage().stripe_count),
                  "collective: create shared file");
    check_storage(backend_.close(file), "collective: close shared file");
  }
  comm.barrier();

  // Phase 1 (exchange): ship each variable's payload to the aggregator.
  const int aggregator = rank - (rank % aggregator_group_);
  const bool is_aggregator = rank == aggregator;
  const int group_size = std::min(aggregator_group_, size - aggregator);

  if (!is_aggregator) {
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const auto payload = data.at(vars[v]->name);
      std::vector<std::byte> bytes(payload.begin(), payload.end());
      comm.send_bytes(std::move(bytes), aggregator,
                      base_tag + static_cast<int>(v % 8));
    }
  } else {
    storage::FileHandle file;
    check_storage(backend_.open(path, &file), "collective: shared file vanished");

    // Gather the group's payloads per variable, then write the contiguous
    // region covering the group's datasets in one positional write.
    for (std::size_t v = 0; v < vars.size(); ++v) {
      std::vector<std::vector<std::byte>> parts(
          static_cast<std::size_t>(group_size));
      const auto own = data.at(vars[v]->name);
      parts[0].assign(own.begin(), own.end());
      for (int m = 1; m < group_size; ++m) {
        minimpi::Message msg =
            comm.recv(aggregator + m, base_tag + static_cast<int>(v % 8));
        parts[static_cast<std::size_t>(msg.source - aggregator)] =
            std::move(msg.payload);
      }

      const std::uint64_t region_begin = layout.payload_offset(decl_index(v, aggregator));
      const std::size_t last = decl_index(v, aggregator + group_size - 1);
      const std::uint64_t region_end =
          layout.payload_offset(last) + layout.payload_size(last);
      std::vector<std::byte> region(region_end - region_begin);
      for (int m = 0; m < group_size; ++m) {
        const std::uint64_t at =
            layout.payload_offset(decl_index(v, aggregator + m)) - region_begin;
        std::memcpy(region.data() + at,
                    parts[static_cast<std::size_t>(m)].data(),
                    parts[static_cast<std::size_t>(m)].size());
      }
      check_storage(backend_.pwrite(file, region_begin, region),
                    "collective: region write");
    }
    check_storage(backend_.close(file), "collective: aggregator close");
  }

  // Phase 2: rank 0 writes the header + metadata tree, making the file
  // parseable; then the collective completes with a barrier.
  if (rank == 0) {
    storage::FileHandle file;
    check_storage(backend_.open(path, &file), "collective: shared file vanished");
    check_storage(backend_.pwrite(file, 0, layout.header_image()),
                  "collective: header write");
    check_storage(backend_.pwrite(file, layout.metadata_offset(),
                                  layout.metadata_image()),
                  "collective: metadata write");
    check_storage(backend_.close(file), "collective: header close");
  }
  comm.barrier();
  return timer.elapsed_seconds();
}

}  // namespace dedicore::core
