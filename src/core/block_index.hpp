// Server-side metadata index over the data blocks in the shared segment.
//
// "All data blocks are indexed in a metadata structure that helps
// searching for particular blocks from data management services."  Plugins
// query by variable / iteration / source; the server inserts on
// kBlockWritten events and clears an iteration after its pipeline ran.
#pragma once

#include <optional>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "core/types.hpp"

namespace dedicore::core {

class BlockIndex {
 public:
  void insert(BlockInfo info);

  /// All blocks of one iteration (any variable, any source), in insertion
  /// order (stable per source).
  [[nodiscard]] std::vector<BlockInfo> blocks_of_iteration(Iteration it) const;

  /// All blocks of (variable, iteration), ordered by (source, block_id).
  [[nodiscard]] std::vector<BlockInfo> blocks_of(VariableId variable,
                                                 Iteration it) const;

  /// A specific block, if present.
  [[nodiscard]] std::optional<BlockInfo> find(VariableId variable, Iteration it,
                                              int source,
                                              std::uint32_t block_id) const;

  /// Removes (and returns) everything belonging to an iteration; the
  /// caller deallocates the segment blocks.
  std::vector<BlockInfo> extract_iteration(Iteration it);

  /// Removes (and returns) everything a client published, across all
  /// iterations still indexed — the drop_iteration reclaim path when that
  /// client dies; the caller deallocates the segment blocks.
  std::vector<BlockInfo> extract_client(int source);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

 private:
  /// Leaf lock: every method is a self-contained critical section.
  mutable Mutex mutex_{"core.block_index"};
  std::vector<BlockInfo> blocks_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::core
