// Per-rank entry point of the middleware — the equivalent of
// damaris_initialize() in the original system.
//
// Given the world communicator and the XML configuration, initialize():
//  * carves per-node communicators (cores_per_node consecutive ranks);
//  * designates the last `dedicated_cores` ranks of each node as servers
//    and the rest as clients;
//  * builds one NodeRuntime per node (segment + queues + indexes), created
//    by the node's first rank and shared with its peers;
//  * creates the global I/O scheduler on world rank 0 and shares it;
//  * hands each rank its role object.
//
// Typical use inside a simulation's main:
//
//   auto rt = core::Runtime::initialize(config, world, fs);
//   if (rt.is_server()) { rt.run_server(); return; }
//   auto& client = rt.client();
//   for (int step = 0; step < n; ++step) {
//     compute(rt.client_comm());
//     client.write("theta", data);
//     client.end_iteration();
//   }
//   rt.finalize();
#pragma once

#include <memory>

#include "core/client.hpp"
#include "core/configuration.hpp"
#include "core/node_runtime.hpp"
#include "core/server.hpp"
#include "fsim/filesystem.hpp"
#include "minimpi/minimpi.hpp"

namespace dedicore::core {

class Runtime {
 public:
  /// Collective over `world` (all ranks must call it with an identical
  /// configuration).  world.size() must be a multiple of cores_per_node.
  /// `scheduler` may be pre-built (shared across an experiment); by
  /// default it is constructed from the configuration on rank 0.
  static Runtime initialize(const Configuration& config, minimpi::Comm& world,
                            fsim::FileSystem& fs,
                            std::shared_ptr<IoScheduler> scheduler = nullptr);

  Runtime(Runtime&&) = default;

  [[nodiscard]] bool is_server() const noexcept { return server_ != nullptr; }
  [[nodiscard]] int node_id() const noexcept { return node_->node_id; }

  /// Client-side handle; aborts when called on a server rank.
  [[nodiscard]] Client& client();

  /// Communicator spanning only the computation cores — the simulation
  /// runs its own collectives on this, never on world (the dedicated
  /// cores are invisible to it).  Invalid on server ranks.
  [[nodiscard]] minimpi::Comm& client_comm() noexcept { return client_comm_; }

  /// Runs the dedicated-core event loop; returns when all of this
  /// server's clients called finalize()/stop().  Server ranks only.
  void run_server();

  /// Server statistics (valid after run_server returned).
  [[nodiscard]] const ServerStats& server_stats() const;
  [[nodiscard]] Server& server();

  /// Shared node state (segment stats, config) — both roles.
  [[nodiscard]] NodeRuntime& node() noexcept { return *node_; }
  [[nodiscard]] const std::shared_ptr<NodeRuntime>& node_ptr() const noexcept {
    return node_;
  }

  /// Client ranks: send the stop event (idempotent).  Must be called
  /// before the world's threads join so servers terminate.
  void finalize();

 private:
  Runtime() = default;

  static Runtime initialize_cores_mode(const Configuration& config,
                                       minimpi::Comm& world,
                                       fsim::FileSystem& fs,
                                       std::shared_ptr<IoScheduler> scheduler);
  static Runtime initialize_nodes_mode(const Configuration& config,
                                       minimpi::Comm& world,
                                       fsim::FileSystem& fs,
                                       std::shared_ptr<IoScheduler> scheduler);

  std::shared_ptr<NodeRuntime> node_;
  std::unique_ptr<Client> client_;
  std::unique_ptr<Server> server_;
  minimpi::Comm client_comm_;
};

}  // namespace dedicore::core
