#include "core/block_index.hpp"

#include <algorithm>

namespace dedicore::core {

void BlockIndex::insert(BlockInfo info) {
  MutexLock lock(mutex_);
  blocks_.push_back(info);
}

std::vector<BlockInfo> BlockIndex::blocks_of_iteration(Iteration it) const {
  MutexLock lock(mutex_);
  std::vector<BlockInfo> out;
  for (const auto& b : blocks_)
    if (b.iteration == it) out.push_back(b);
  return out;
}

std::vector<BlockInfo> BlockIndex::blocks_of(VariableId variable,
                                             Iteration it) const {
  MutexLock lock(mutex_);
  std::vector<BlockInfo> out;
  for (const auto& b : blocks_)
    if (b.variable == variable && b.iteration == it) out.push_back(b);
  std::sort(out.begin(), out.end(), [](const BlockInfo& a, const BlockInfo& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.block_id < b.block_id;
  });
  return out;
}

std::optional<BlockInfo> BlockIndex::find(VariableId variable, Iteration it,
                                          int source,
                                          std::uint32_t block_id) const {
  MutexLock lock(mutex_);
  for (const auto& b : blocks_)
    if (b.variable == variable && b.iteration == it && b.source == source &&
        b.block_id == block_id)
      return b;
  return std::nullopt;
}

std::vector<BlockInfo> BlockIndex::extract_iteration(Iteration it) {
  MutexLock lock(mutex_);
  std::vector<BlockInfo> out;
  auto keep = blocks_.begin();
  for (auto& b : blocks_) {
    if (b.iteration == it) {
      out.push_back(b);
    } else {
      *keep++ = b;
    }
  }
  blocks_.erase(keep, blocks_.end());
  return out;
}

std::vector<BlockInfo> BlockIndex::extract_client(int source) {
  MutexLock lock(mutex_);
  std::vector<BlockInfo> out;
  auto keep = blocks_.begin();
  for (auto& b : blocks_) {
    if (b.source == source) {
      out.push_back(b);
    } else {
      *keep++ = b;
    }
  }
  blocks_.erase(keep, blocks_.end());
  return out;
}

std::size_t BlockIndex::size() const {
  MutexLock lock(mutex_);
  return blocks_.size();
}

std::uint64_t BlockIndex::total_bytes() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& b : blocks_) total += b.block.size;
  return total;
}

}  // namespace dedicore::core
