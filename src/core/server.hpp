// The dedicated-core event loop.
//
// A Server runs on a core that "does not run the simulation's code, but
// handles asynchronous I/O operations on behalf of the other cores".  It
// pops events from its shared queue, indexes incoming blocks, and when all
// of its clients have closed an iteration it fires the configured plugin
// pipeline (storage, compression, analysis, visualization), then releases
// the iteration's blocks from the segment.
//
// The loop keeps an idle/busy ledger: the paper measures dedicated cores
// idle 92–99 % of the time (§IV.D), which is what makes piggybacking
// compression and in-situ analysis free.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "compress/codec.hpp"
#include "core/node_runtime.hpp"
#include "core/plugin.hpp"
#include "transport/transport.hpp"

namespace dedicore::core {

struct ServerStats {
  /// Worker threads that drained this server's transport (1 = the classic
  /// single-threaded event loop).  idle/busy below are summed across the
  /// pool, so idle_fraction() keeps meaning "share of worker-time spent
  /// blocked on an empty intake".
  int workers = 1;
  double idle_seconds = 0.0;   ///< blocked on an empty queue
  double busy_seconds = 0.0;   ///< indexing, plugins, frees
  std::uint64_t events_processed = 0;
  std::uint64_t blocks_received = 0;
  std::uint64_t bytes_received = 0;
  /// Blocks/bytes whose payload traveled over MPI (dedicated-nodes mode;
  /// zero on the shared-memory transport, where only handles move).
  std::uint64_t blocks_received_remote = 0;
  std::uint64_t bytes_received_remote = 0;
  std::uint64_t iterations_completed = 0;
  std::uint64_t client_skips = 0;      ///< kIterationSkipped events seen
  /// Work-stealing pool counters (zero with a single worker or steal
  /// off): clients whose ownership migrated to an idle worker, and
  /// write-behind jobs drained by workers parked in next_event with
  /// nothing to consume or steal.
  std::uint64_t steals = 0;
  std::uint64_t idle_drain_jobs = 0;
  std::uint64_t bytes_written = 0;     ///< accounted by storage plugins
  std::uint64_t files_written = 0;     ///< durably persisted (drain-time on
                                       ///< the write-behind path)
  /// Images the storage backend rejected on the async write-behind path
  /// (disk full, I/O error).  Zero on a healthy run; a non-zero value
  /// means output was dropped — the run completed but is NOT fully
  /// persisted.  (The synchronous sim path aborts on the same condition.)
  std::uint64_t storage_failures = 0;
  /// Fault tolerance: clients that died mid-run (kClientAborted consumed)
  /// and the segment blocks / bytes returned by the reclaim path — both
  /// the indexed blocks dropped under on_client_failure="drop_iteration"
  /// and the acquired-but-unpublished blocks freed from the transport's
  /// liveness ledger.
  std::uint64_t clients_aborted = 0;
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t bytes_reclaimed = 0;
  // Emit-path compression (the §IV.D spare-cycle story): dataset payload
  // bytes that entered this server's transform stage vs the bytes the
  // codecs left in the images, and the dedicated-core seconds spent
  // compressing.  emit_raw_bytes counts only store-plugin payloads, so
  // achieved_ratio() is the paper's raw/stored figure (600% == 6.0).
  std::uint64_t emit_raw_bytes = 0;
  std::uint64_t emit_stored_bytes = 0;
  std::uint64_t datasets_compressed = 0;  ///< emitted through a codec
  std::uint64_t datasets_stored_raw = 0;  ///< raw (no codec / adaptive skip)
  double compress_seconds = 0.0;          ///< spare cycles spent in codecs
  Summary pipeline_time;               ///< seconds per completed iteration

  [[nodiscard]] double idle_fraction() const noexcept {
    const double total = idle_seconds + busy_seconds;
    return total > 0.0 ? idle_seconds / total : 0.0;
  }

  [[nodiscard]] double achieved_ratio() const noexcept {
    return compress::compression_ratio(emit_raw_bytes, emit_stored_bytes);
  }
};

class Server {
 public:
  /// `server_index` selects this server's index within the node (always 0
  /// on a dedicated I/O rank); `transport` is the event intake + block
  /// residency, `client_count` the number of clients whose stop events end
  /// the run.  Plugins are instantiated from the configuration's actions.
  /// `worker_count` > 1 runs the event loop on a pool of that many worker
  /// threads draining the one transport concurrently (dedicated-nodes
  /// mode: the runtime's answer to a full-width I/O node) — clients stay
  /// pinned to one worker each, and the plugin pipeline is serialized per
  /// server (plugins need not be thread-safe).
  Server(std::shared_ptr<NodeRuntime> node, int server_index,
         std::unique_ptr<transport::ServerTransport> transport,
         int client_count, int worker_count = 1);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes events until every client of this server has sent
  /// kClientStop (and all their iterations have been completed).  With a
  /// worker pool, shutdown is ordered: the worker that consumes the final
  /// stop signals end_of_stream(), the pool drains and joins, and only
  /// then are stats folded — no credit/queue teardown races a live worker.
  void run();

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }

  /// The plugin instance bound to (event, plugin-name), for post-run
  /// inspection by tests and examples; nullptr when not bound.
  [[nodiscard]] Plugin* find_plugin(const std::string& event,
                                    const std::string& plugin_name);

 private:
  struct BoundAction {
    ActionSpec spec;
    std::unique_ptr<Plugin> plugin;
  };

  /// Per-worker time/event ledger, folded into stats_ after the pool
  /// joins so the hot loop never contends on shared counters.
  struct WorkerLedger {
    double idle_seconds = 0.0;
    double busy_seconds = 0.0;
    std::uint64_t events = 0;
  };

  void worker_loop(int worker, WorkerLedger& ledger);
  void handle(const Event& event);
  void handle_client_abort(int source);
  void complete_iteration(Iteration iteration);
  void fire(const std::string& event_name, Iteration iteration,
            const Event* trigger);

  /// With state_mutex_ held: true when every client still alive has closed
  /// the iteration — dead clients are treated as having closed everything
  /// (their partial contribution was already dropped or kept per policy).
  [[nodiscard]] bool iteration_satisfied_locked(
      const std::set<int>& closed_sources) const
      DEDICORE_REQUIRES(state_mutex_);
  /// With state_mutex_ held: true once every client has either stopped or
  /// died — the run's termination condition.
  [[nodiscard]] bool all_clients_finished_locked() const
      DEDICORE_REQUIRES(state_mutex_) {
    return stopped_clients_ + static_cast<int>(dead_clients_.size()) >=
           client_count_;
  }

  std::shared_ptr<NodeRuntime> node_;
  int server_index_;
  std::unique_ptr<transport::ServerTransport> transport_;
  int client_count_;
  int worker_count_;
  std::vector<BoundAction> actions_;
  /// Deliberately NOT lock-annotated: the field has three owners in three
  /// phases — the event counters mutate under state_mutex_, the storage /
  /// emit counters mutate through PluginContext inside the pipeline (so
  /// under pipeline_mutex_), and run() folds worker ledgers and transport
  /// totals in after the pool has joined (quiescent, no lock).  No single
  /// GUARDED_BY is true for all of it; the per-phase discipline above is
  /// the invariant.
  ServerStats stats_;
  SampleSet pipeline_times_ DEDICORE_GUARDED_BY(state_mutex_);

  /// Guards the cross-worker bookkeeping (iteration_closes_,
  /// stopped_clients_, dead_clients_, the event counters in stats_,
  /// pipeline_times_).  Never held across a plugin run, a transport call,
  /// or pipeline_mutex_ — it is a leaf in the lock hierarchy.
  mutable Mutex state_mutex_{"server.state"};
  /// Serializes the plugin pipeline per server: workers parallelize event
  /// intake and indexing, but plugins are not required to be thread-safe,
  /// so at most one pipeline (or signal action) runs at a time.  Plugins
  /// call into the transport, the emit stage, and the write-behind queue
  /// while it is held, so server.pipeline sits ABOVE those classes in the
  /// lock hierarchy; it never nests with server.state in either order.
  Mutex pipeline_mutex_{"server.pipeline"};
  /// Set by the worker that consumes the final kClientStop; workers check
  /// it between events so the pool winds down without another blocking
  /// next_event() on an already-finished stream.
  std::atomic<bool> done_{false};
  /// True when the pooled transport's idle hook drains write-behind jobs
  /// (then complete_iteration skips its inline drain — idle workers own
  /// the disk, the completing worker returns to the event stream).
  /// Written once in run() before the pool spawns, immutable after — no
  /// lock needed.
  bool idle_drain_active_ = false;

  // Iteration bookkeeping: iteration -> the client sources that closed it
  // (end or skip).  Sets rather than counts so a client's death can be
  // reconciled against the iterations it never got to close.
  std::map<Iteration, std::set<int>> iteration_closes_
      DEDICORE_GUARDED_BY(state_mutex_);
  int stopped_clients_ DEDICORE_GUARDED_BY(state_mutex_) = 0;
  /// Sources whose kClientAborted was consumed.
  std::set<int> dead_clients_ DEDICORE_GUARDED_BY(state_mutex_);
};

}  // namespace dedicore::core
