#include "core/emit_stage.hpp"

#include <algorithm>

#include "common/clock.hpp"

namespace dedicore::core {

EmitStage::EmitStage(const Configuration& config)
    : default_codec_(config.storage().codec),
      min_ratio_(config.storage().min_ratio),
      decisions_(config.variables().size()) {}

compress::CodecId EmitStage::resolve_codec(
    const VariableSpec& var, const std::string& override_name) const {
  if (!override_name.empty()) return compress::codec_id(override_name);
  if (!var.codec.empty()) return compress::codec_id(var.codec);
  return compress::codec_id(default_codec_);
}

compress::CodecId EmitStage::plan(const VariableSpec& var,
                                  compress::CodecId requested,
                                  std::span<const std::byte> sample) {
  if (requested == compress::CodecId::kNone) return requested;
  {
    MutexLock lock(mutex_);
    if (var.id < decisions_.size()) {
      Decision& decision = decisions_[var.id];
      if (decision.decided && decision.emits_since_probe < kReprobePeriod) {
        ++decision.emits_since_probe;
        return decision.codec;
      }
    }
  }

  // Probe outside the lock: compressing the sample is the expensive part,
  // and a concurrent probe of the same variable is merely redundant (last
  // decision wins), never wrong.
  const compress::Codec* codec = compress::find_codec(requested);
  DEDICORE_CHECK(codec != nullptr, "emit stage: unresolvable codec");
  const auto probe = sample.first(std::min(sample.size(), kSampleBytes));
  Stopwatch timer;
  const auto packed = codec->compress(probe);
  const double seconds = timer.elapsed_seconds();
  const double ratio = compress::compression_ratio(probe.size(), packed.size());
  // An empty sample carries no evidence — keep the requested codec (the
  // per-chunk stored fallback already bounds the downside to a few bytes).
  const bool skip = !probe.empty() && ratio < min_ratio_;
  const compress::CodecId planned =
      skip ? compress::CodecId::kNone : requested;

  MutexLock lock(mutex_);
  ++stats_.probes;
  stats_.probe_seconds += seconds;
  if (skip) ++stats_.adaptive_skips;
  if (var.id < decisions_.size()) {
    Decision& decision = decisions_[var.id];
    decision.decided = true;
    decision.codec = planned;
    decision.emits_since_probe = 0;
  }
  return planned;
}

EmitStage::Emitted EmitStage::emit_dataset(h5lite::FileBuilder& builder,
                                           h5lite::FileBuilder::GroupId group,
                                           const std::string& name,
                                           const LayoutSpec& layout,
                                           std::span<const std::byte> payload,
                                           compress::CodecId codec) {
  Emitted emitted;
  emitted.raw_bytes = payload.size();
  emitted.compressed = codec != compress::CodecId::kNone;
  const std::size_t before = builder.data_bytes();
  Stopwatch timer;
  if (emitted.compressed) {
    // Chunked emit: the builder compresses per chunk and falls back to a
    // stored chunk wherever the codec does not pay, so an "emitted
    // through a codec" dataset never grows beyond raw + chunk headers.
    builder.add_dataset_chunked(group, name, layout.dtype, layout.extents,
                                layout.extents, payload, codec);
    emitted.seconds = timer.elapsed_seconds();
  } else {
    builder.add_dataset(group, name, layout.dtype, layout.extents, payload);
  }
  emitted.stored_bytes = builder.data_bytes() - before;

  MutexLock lock(mutex_);
  stats_.raw_bytes += emitted.raw_bytes;
  stats_.stored_bytes += emitted.stored_bytes;
  stats_.compress_seconds += emitted.seconds;
  if (emitted.compressed) {
    ++stats_.datasets_compressed;
  } else {
    ++stats_.datasets_stored_raw;
  }
  return emitted;
}

EmitStats EmitStage::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace dedicore::core
