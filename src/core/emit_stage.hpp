// The emit-path transform stage: compression on the dedicated core.
//
// §IV.D's signature claim is that dedicated cores have spare cycles left
// after absorbing I/O — enough to compress the simulation's output
// "achieving a 600% compression ratio without any overhead on the
// simulation".  The EmitStage is where that happens: it sits between the
// plugin pipeline and the WriteBehind/StorageBackend, turning each
// dataset payload into (possibly compressed) h5lite image bytes before
// they are queued for disk.  Because it runs inside the plugin pipeline
// on the dedicated core, the cycles it burns are exactly the idle cycles
// the paper measured (92–99 %), and the bytes it removes shrink what the
// write-behind byte budget has to account for — backpressure couples in
// *after* compression, on the bytes actually queued.
//
// Codec selection, per dataset:
//   1. the store action's `codec` param (strongest override),
//   2. the variable's `codec` attribute,
//   3. the storage-level `codec` attribute (the default).
//
// Adaptive skip: not every field pays for compression (checkpoint noise,
// already-packed data).  Before committing a variable to a codec the
// stage compresses a bounded sample of its first block; if the sampled
// ratio lands below <storage min_ratio> the variable is stored raw and
// the decision is cached, re-probed every kReprobePeriod emits so a
// variable whose content becomes compressible gets another chance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "compress/codec.hpp"
#include "core/configuration.hpp"
#include "h5lite/h5lite.hpp"

namespace dedicore::core {

/// Node-wide transform-stage counters (all servers of the node feed the
/// same instance; reads get a consistent snapshot).
struct EmitStats {
  std::uint64_t datasets_compressed = 0;  ///< emitted through a codec
  std::uint64_t datasets_stored_raw = 0;  ///< emitted uncompressed
  std::uint64_t adaptive_skips = 0;   ///< probe decisions that parked a
                                      ///< variable on raw storage
  std::uint64_t probes = 0;           ///< sampling runs performed
  std::uint64_t raw_bytes = 0;        ///< dataset payload bytes in
  std::uint64_t stored_bytes = 0;     ///< image bytes out (post-codec)
  double compress_seconds = 0.0;      ///< dedicated-core cycles spent
                                      ///< inside codec emits
  double probe_seconds = 0.0;         ///< cycles spent sampling

  /// Achieved ratio as the paper quotes it (600% == 6.0).
  [[nodiscard]] double achieved_ratio() const noexcept {
    return compress::compression_ratio(raw_bytes, stored_bytes);
  }
};

class EmitStage {
 public:
  /// Probe sample size: enough to see a field's structure, small enough
  /// that a probe never dominates an emit.
  static constexpr std::size_t kSampleBytes = 64 * 1024;
  /// Cached skip/compress decisions are re-probed after this many emits
  /// of the variable.
  static constexpr std::uint64_t kReprobePeriod = 16;

  explicit EmitStage(const Configuration& config);

  /// The codec requested for `var` before the adaptive decision:
  /// plugin-param override > variable codec > storage codec.  Throws
  /// ConfigError on an unknown override name (variable/storage names were
  /// already validated with the configuration).
  [[nodiscard]] compress::CodecId resolve_codec(
      const VariableSpec& var, const std::string& override_name) const;

  /// The adaptive decision: the codec to actually emit `var` with, given
  /// a representative payload (callers pass the iteration's first block).
  /// Compresses a bounded prefix sample on the first call and every
  /// kReprobePeriod emits; returns kNone (store raw) when the sampled
  /// ratio is below the configured min_ratio.  Thread-safe.
  [[nodiscard]] compress::CodecId plan(const VariableSpec& var,
                                       compress::CodecId requested,
                                       std::span<const std::byte> sample);

  /// Per-dataset outcome of an emit, for the caller's own accounting
  /// (ServerStats, plugin totals).
  struct Emitted {
    std::uint64_t raw_bytes = 0;     ///< payload bytes in
    std::uint64_t stored_bytes = 0;  ///< image bytes this dataset added
    double seconds = 0.0;            ///< emit wall time (codec emits only)
    bool compressed = false;         ///< emitted through a codec
  };

  /// Emits one dataset into `builder` with the planned codec and accounts
  /// it.  The builder is the caller's (one per plugin run); only the
  /// shared counters are synchronized.
  Emitted emit_dataset(h5lite::FileBuilder& builder,
                       h5lite::FileBuilder::GroupId group,
                       const std::string& name, const LayoutSpec& layout,
                       std::span<const std::byte> payload,
                       compress::CodecId codec);

  [[nodiscard]] EmitStats stats() const;
  [[nodiscard]] double min_ratio() const noexcept { return min_ratio_; }

 private:
  /// Sticky per-variable decision, indexed by VariableId.
  struct Decision {
    bool decided = false;
    compress::CodecId codec = compress::CodecId::kNone;
    std::uint64_t emits_since_probe = 0;
  };

  std::string default_codec_;
  double min_ratio_;
  /// Leaf lock: released before any codec emit runs (compression happens
  /// outside the critical section; only counters/decisions live under it).
  mutable Mutex mutex_{"core.emit_stage"};
  EmitStats stats_ DEDICORE_GUARDED_BY(mutex_);
  std::vector<Decision> decisions_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::core
