#include "core/builtin_plugins.hpp"

#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/emit_stage.hpp"
#include "core/server.hpp"
#include "h5lite/h5lite.hpp"
#include "storage/backend.hpp"
#include "storage/write_behind.hpp"

namespace dedicore::core {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

struct Registry {
  /// Leaf lock: registration/lookup are self-contained critical sections.
  Mutex mutex{"plugin.registry"};
  std::map<std::string, PluginFactory> factories DEDICORE_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_plugin(const std::string& name, PluginFactory factory) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  if (r.factories.contains(name))
    throw ConfigError("plugin '" + name + "' already registered");
  r.factories.emplace(name, std::move(factory));
}

std::unique_ptr<Plugin> make_plugin(
    const std::string& name, const std::map<std::string, std::string>& params) {
  register_builtin_plugins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  auto it = r.factories.find(name);
  if (it == r.factories.end())
    throw ConfigError("unknown plugin '" + name + "'");
  return it->second(params);
}

bool plugin_registered(const std::string& name) {
  register_builtin_plugins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  return r.factories.contains(name);
}

void register_builtin_plugins() {
  static const bool once = [] {
    register_plugin("store", [](const auto& params) {
      return std::make_unique<StorePlugin>(params);
    });
    register_plugin("stats", [](const auto& params) {
      return std::make_unique<StatsPlugin>(params);
    });
    register_plugin("script", [](const auto& params) {
      return std::make_unique<ScriptPlugin>(params);
    });
    register_plugin("vislite", [](const auto& params) {
      return std::make_unique<VisLitePlugin>(params);
    });
    return true;
  }();
  (void)once;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::vector<double> block_as_doubles(const PluginContext& context,
                                     const BlockInfo& block) {
  const VariableSpec& var = context.node.config.variable(block.variable);
  const LayoutSpec& layout = context.node.config.layout_of(var);
  const auto view = context.block_view(block.block);
  std::vector<double> out;
  if (layout.dtype == h5lite::DType::kFloat64) {
    out.resize(view.size() / sizeof(double));
    std::memcpy(out.data(), view.data(), out.size() * sizeof(double));
  } else if (layout.dtype == h5lite::DType::kFloat32) {
    std::vector<float> tmp(view.size() / sizeof(float));
    std::memcpy(tmp.data(), view.data(), tmp.size() * sizeof(float));
    out.assign(tmp.begin(), tmp.end());
  } else {
    throw ConfigError("plugin: variable '" + var.name +
                      "' is not a floating-point field");
  }
  return out;
}

// ---------------------------------------------------------------------------
// StorePlugin
// ---------------------------------------------------------------------------

StorePlugin::StorePlugin(const std::map<std::string, std::string>& params) {
  if (auto it = params.find("codec"); it != params.end()) codec_override_ = it->second;
  if (auto it = params.find("basename"); it != params.end())
    basename_override_ = it->second;
}

void StorePlugin::run(PluginContext& context) {
  NodeRuntime& node = context.node;
  DEDICORE_CHECK(node.storage != nullptr,
                 "store plugin requires a storage backend");
  DEDICORE_CHECK(node.emit != nullptr,
                 "store plugin requires the emit-path transform stage");
  auto& index = *node.indexes[static_cast<std::size_t>(context.server_index)];
  EmitStage& emit = *node.emit;

  const std::string basename =
      basename_override_.empty() ? node.config.storage().basename
                                 : basename_override_;

  // Aggregate every stored variable's blocks into one file image, each
  // dataset flowing through the emit-path transform stage (per-variable
  // codec resolution + the adaptive store-raw decision) on this dedicated
  // core — compression happens *before* the image reaches the
  // write-behind queue, so the byte budget sees post-codec bytes.
  h5lite::FileBuilder builder;
  builder.set_attribute(h5lite::FileBuilder::kRoot, "simulation",
                        node.config.simulation_name());
  builder.set_attribute(h5lite::FileBuilder::kRoot, "iteration",
                        static_cast<std::int64_t>(context.iteration));
  builder.set_attribute(h5lite::FileBuilder::kRoot, "node",
                        static_cast<std::int64_t>(node.node_id));

  std::uint64_t raw_bytes = 0;
  std::uint64_t emit_stored_bytes = 0;
  std::uint64_t datasets_compressed = 0;
  std::uint64_t datasets_stored_raw = 0;
  double compress_seconds = 0.0;
  bool any = false;
  for (const VariableSpec& var : node.config.variables()) {
    if (!var.store) continue;
    const auto blocks = index.blocks_of(var.id, context.iteration);
    if (blocks.empty()) continue;
    any = true;
    const LayoutSpec& layout = node.config.layout_of(var);
    const compress::CodecId requested =
        emit.resolve_codec(var, codec_override_);
    // One adaptive decision per (variable, firing), sampled on the first
    // block; EmitStage caches it across firings and re-probes periodically.
    compress::CodecId planned = compress::CodecId::kNone;
    bool planned_known = false;
    const auto group = builder.create_group(h5lite::FileBuilder::kRoot, var.name);
    builder.set_attribute(group, "layout", layout.name);
    builder.set_attribute(group, "dtype", std::string(h5lite::dtype_name(layout.dtype)));
    for (const BlockInfo& block : blocks) {
      const auto view = context.block_view(block.block);
      if (!planned_known) {
        planned = emit.plan(var, requested, view);
        builder.set_attribute(group, "codec",
                              std::string(compress::codec_name(planned)));
        planned_known = true;
      }
      const std::string dataset_name =
          "r" + std::to_string(block.source) + "_b" + std::to_string(block.block_id);
      const EmitStage::Emitted emitted = emit.emit_dataset(
          builder, group, dataset_name, layout, view, planned);
      raw_bytes += emitted.raw_bytes;
      emit_stored_bytes += emitted.stored_bytes;
      compress_seconds += emitted.seconds;
      if (emitted.compressed) {
        ++datasets_compressed;
      } else {
        ++datasets_stored_raw;
      }
    }
  }
  if (!any) return;  // every client skipped this iteration

  if (context.stats != nullptr) {
    // Serialized per server by the pipeline mutex; the async drain
    // callbacks touch disjoint ServerStats fields.
    context.stats->emit_raw_bytes += raw_bytes;
    context.stats->emit_stored_bytes += emit_stored_bytes;
    context.stats->datasets_compressed += datasets_compressed;
    context.stats->datasets_stored_raw += datasets_stored_raw;
    context.stats->compress_seconds += compress_seconds;
  }

  std::vector<std::byte> image = std::move(builder).finalize();
  const std::string path = basename + "/node" + std::to_string(node.node_id) +
                           "_s" + std::to_string(context.server_index) +
                           "_it" + std::to_string(context.iteration) + ".h5l";

  Stopwatch wait;
  ScheduleGuard guard(*node.scheduler, node.node_id);
  const double waited = wait.elapsed_seconds();

  const std::uint64_t image_bytes = image.size();
  Stopwatch io;
  if (node.write_behind != nullptr) {
    // Async emit: hand the image to the write-behind queue and return, so
    // iteration completion (and the block release that returns credit to
    // clients) never waits on the disk.  A full queue blocks here — the
    // pipeline stall *is* the backpressure path.  Durability is counted
    // at *drain* time through the completion hook: an enqueued image a
    // full disk later rejects must not show up as a file written.
    storage::WriteBehind::Job job;
    job.path = path;
    job.stripe_count = node.config.storage().stripe_count;
    job.image = std::move(image);
    ServerStats* server_stats = context.stats;  // outlives the final drain
    job.on_complete = [this, server_stats, image_bytes](const Status& st) {
      MutexLock lock(mutex_);
      if (!st.is_ok()) {
        ++totals_.failed_writes;
        // Make the drop visible to whoever reads the run's stats: a
        // non-zero storage_failures says "completed but not fully
        // persisted".  (The queue already logged the Status.)
        if (server_stats != nullptr) ++server_stats->storage_failures;
        return;
      }
      ++totals_.files;
      totals_.stored_bytes += image_bytes;
      if (server_stats != nullptr) {
        server_stats->bytes_written += image_bytes;
        ++server_stats->files_written;
      }
    };
    node.write_behind->enqueue(std::move(job));
  } else {
    const Status st = storage::write_image(
        *node.storage, path, image, node.config.storage().stripe_count);
    if (!st.is_ok())
      DEDICORE_LOG(kError) << "store plugin: " << st.to_string();
    DEDICORE_CHECK(st.is_ok(), "store plugin: storage write failed (see log)");
  }
  const double io_seconds = io.elapsed_seconds();

  const bool persisted_inline = node.write_behind == nullptr;
  {
    MutexLock lock(mutex_);
    totals_.raw_bytes += raw_bytes;
    totals_.write_seconds += io_seconds;
    totals_.schedule_wait_seconds += waited;
    if (persisted_inline) {
      ++totals_.files;
      totals_.stored_bytes += image_bytes;
    }
  }
  if (persisted_inline && context.stats != nullptr) {
    context.stats->bytes_written += image_bytes;
    ++context.stats->files_written;
  }
}

StorePlugin::Totals StorePlugin::totals() const {
  MutexLock lock(mutex_);
  return totals_;
}

// ---------------------------------------------------------------------------
// StatsPlugin
// ---------------------------------------------------------------------------

void StatsPlugin::run(PluginContext& context) {
  NodeRuntime& node = context.node;
  auto& index = *node.indexes[static_cast<std::size_t>(context.server_index)];
  Entry entry;
  entry.iteration = context.iteration;
  for (const VariableSpec& var : node.config.variables()) {
    const auto blocks = index.blocks_of(var.id, context.iteration);
    if (blocks.empty()) continue;
    const LayoutSpec& layout = node.config.layout_of(var);
    if (layout.dtype != h5lite::DType::kFloat32 &&
        layout.dtype != h5lite::DType::kFloat64)
      continue;  // stats only for floating-point fields
    std::vector<double> all;
    for (const BlockInfo& block : blocks) {
      auto values = block_as_doubles(context, block);
      all.insert(all.end(), values.begin(), values.end());
    }
    entry.per_variable[var.name] = viz::compute_statistics(all);
  }
  MutexLock lock(mutex_);
  history_.push_back(std::move(entry));
  if (history_.size() > 16) history_.erase(history_.begin());
}

StatsPlugin::Entry StatsPlugin::latest() const {
  MutexLock lock(mutex_);
  return history_.empty() ? Entry{} : history_.back();
}

std::vector<StatsPlugin::Entry> StatsPlugin::history() const {
  MutexLock lock(mutex_);
  return history_;
}

// ---------------------------------------------------------------------------
// ScriptPlugin
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent evaluator for the plugin's expression language.
class ScriptEvaluator {
 public:
  ScriptEvaluator(std::string_view text, PluginContext& context)
      : text_(text), context_(context) {}

  double evaluate() {
    const double value = expr();
    skip_ws();
    if (pos_ != text_.size())
      throw ConfigError("script: trailing characters in expression");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double value = term();
    for (;;) {
      if (consume('+')) value += term();
      else if (consume('-')) value -= term();
      else return value;
    }
  }

  double term() {
    double value = factor();
    for (;;) {
      if (consume('*')) value *= factor();
      else if (consume('/')) value /= factor();
      else return value;
    }
  }

  double factor() {
    skip_ws();
    if (consume('-')) return -factor();
    if (consume('(')) {
      const double value = expr();
      if (!consume(')')) throw ConfigError("script: missing ')'");
      return value;
    }
    if (pos_ < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.')) {
      std::size_t used = 0;
      const double value = std::stod(std::string(text_.substr(pos_)), &used);
      pos_ += used;
      return value;
    }
    // function '(' variable ')'
    std::string func;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
      func += text_[pos_++];
    if (func.empty()) throw ConfigError("script: expected a value");
    if (!consume('(')) throw ConfigError("script: expected '(' after '" + func + "'");
    skip_ws();
    std::string variable;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
      variable += text_[pos_++];
    if (!consume(')')) throw ConfigError("script: missing ')' after variable");
    return apply(func, variable);
  }

  double apply(const std::string& func, const std::string& variable) {
    NodeRuntime& node = context_.node;
    const VariableSpec& var = node.config.variable(variable);
    auto& index = *node.indexes[static_cast<std::size_t>(context_.server_index)];
    const auto blocks = index.blocks_of(var.id, context_.iteration);
    if (blocks.empty()) return std::numeric_limits<double>::quiet_NaN();
    double acc_min = std::numeric_limits<double>::infinity();
    double acc_max = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const BlockInfo& block : blocks) {
      for (double v : block_as_doubles(context_, block)) {
        acc_min = std::min(acc_min, v);
        acc_max = std::max(acc_max, v);
        sum += v;
        ++count;
      }
    }
    if (func == "min") return acc_min;
    if (func == "max") return acc_max;
    if (func == "sum") return sum;
    if (func == "mean") return count > 0 ? sum / static_cast<double>(count) : 0.0;
    throw ConfigError("script: unknown function '" + func + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  PluginContext& context_;
};

}  // namespace

ScriptPlugin::ScriptPlugin(const std::map<std::string, std::string>& params)
    : last_value_(std::numeric_limits<double>::quiet_NaN()) {
  auto it = params.find("expr");
  if (it == params.end() || it->second.empty())
    throw ConfigError("script plugin requires an 'expr' parameter");
  expression_ = it->second;
}

void ScriptPlugin::run(PluginContext& context) {
  const double value = ScriptEvaluator(expression_, context).evaluate();
  MutexLock lock(mutex_);
  last_value_ = value;
  last_iteration_ = context.iteration;
}

double ScriptPlugin::last_value() const {
  MutexLock lock(mutex_);
  return last_value_;
}

Iteration ScriptPlugin::last_iteration() const {
  MutexLock lock(mutex_);
  return last_iteration_;
}

// ---------------------------------------------------------------------------
// VisLitePlugin
// ---------------------------------------------------------------------------

VisLitePlugin::VisLitePlugin(const std::map<std::string, std::string>& params) {
  auto it = params.find("variable");
  if (it == params.end())
    throw ConfigError("vislite plugin requires a 'variable' parameter");
  variable_ = it->second;
  isovalue_spec_ = params.contains("isovalue") ? params.at("isovalue") : "mean";
  width_ = params.contains("width") ? std::stoi(params.at("width")) : 128;
  height_ = params.contains("height") ? std::stoi(params.at("height")) : 128;
  write_image_ = params.contains("write_image") && params.at("write_image") == "true";
}

void VisLitePlugin::run(PluginContext& context) {
  Stopwatch timer;
  NodeRuntime& node = context.node;
  const VariableSpec& var = node.config.variable(variable_);
  const LayoutSpec& layout = node.config.layout_of(var);
  if (layout.extents.size() != 3)
    throw ConfigError("vislite: variable '" + variable_ + "' must be 3-D");
  auto& index = *node.indexes[static_cast<std::size_t>(context.server_index)];
  const auto blocks = index.blocks_of(var.id, context.iteration);

  std::uint64_t triangles = 0;
  std::uint64_t rendered = 0;
  std::uint64_t images = 0;
  for (const BlockInfo& block : blocks) {
    const std::vector<double> values = block_as_doubles(context, block);
    viz::GridView grid{values, layout.extents[0], layout.extents[1],
                       layout.extents[2]};
    double isovalue = 0.0;
    if (isovalue_spec_ == "mean") {
      isovalue = viz::compute_statistics(values).mean;
    } else {
      isovalue = std::stod(isovalue_spec_);
    }
    viz::RenderOptions options;
    options.width = width_;
    options.height = height_;
    const viz::PipelineResult result =
        viz::run_insitu_pipeline(grid, isovalue, options);
    triangles += result.triangles;
    ++rendered;

    if (write_image_ && node.storage != nullptr) {
      const std::string path =
          "viz/node" + std::to_string(node.node_id) + "_it" +
          std::to_string(context.iteration) + "_r" +
          std::to_string(block.source) + "_b" + std::to_string(block.block_id) +
          ".ppm";
      std::vector<std::byte> ppm = result.image.encode_ppm();
      if (node.write_behind != nullptr) {
        // Same async emit as the store plugin: a rendered frame must not
        // gate iteration completion on disk latency, and a failed frame
        // is a dropped frame (counted at drain time), not a dead run.
        storage::WriteBehind::Job job;
        job.path = path;
        job.image = std::move(ppm);
        job.on_complete = [this](const Status& st) {
          if (!st.is_ok()) return;  // the queue logged and counted the drop
          MutexLock lock(mutex_);
          ++totals_.images_written;
        };
        node.write_behind->enqueue(std::move(job));
      } else {
        const Status st = storage::write_image(*node.storage, path, ppm);
        if (st.is_ok()) {
          ++images;
        } else {
          // Rendered images are auxiliary output: log the drop and keep
          // the run (and images_written honest) instead of aborting.
          DEDICORE_LOG(kError) << "vislite plugin: dropping '" << path
                               << "': " << st.to_string();
        }
      }
    }
  }

  MutexLock lock(mutex_);
  ++totals_.invocations;
  totals_.blocks_rendered += rendered;
  totals_.triangles += triangles;
  totals_.images_written += images;
  totals_.pipeline_seconds += timer.elapsed_seconds();
}

VisLitePlugin::Totals VisLitePlugin::totals() const {
  MutexLock lock(mutex_);
  return totals_;
}

}  // namespace dedicore::core
