#include "core/scheduler.hpp"

#include "common/clock.hpp"
#include "common/status.hpp"

namespace dedicore::core {

ThrottledScheduler::ThrottledScheduler(int max_concurrent)
    : max_concurrent_(max_concurrent) {
  DEDICORE_CHECK(max_concurrent > 0, "ThrottledScheduler requires max_concurrent > 0");
}

void ThrottledScheduler::acquire(int) {
  Stopwatch wait;
  UniqueLock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  while (!(ticket == serving_ && active_ < max_concurrent_))
    admitted_.wait(lock);
  ++serving_;
  ++active_;
  total_wait_ += wait.elapsed_seconds();
  // Wake the next ticket holder: it may also be admissible if slots remain.
  admitted_.notify_all();
}

void ThrottledScheduler::release(int) {
  {
    MutexLock lock(mutex_);
    --active_;
  }
  admitted_.notify_all();
}

double ThrottledScheduler::total_wait_seconds() const {
  MutexLock lock(mutex_);
  return total_wait_;
}

std::uint64_t ThrottledScheduler::tickets_issued() const {
  MutexLock lock(mutex_);
  return next_ticket_;
}

std::shared_ptr<IoScheduler> make_scheduler(const std::string& name,
                                            int max_concurrent) {
  if (name == "greedy") return std::make_shared<GreedyScheduler>();
  if (name == "throttled")
    return std::make_shared<ThrottledScheduler>(max_concurrent);
  throw ConfigError("unknown scheduler '" + name + "'");
}

}  // namespace dedicore::core
