// Per-node shared state: the shared-memory segment, the event queues, and
// the block indexes that connect simulation cores to dedicated cores.
//
// One NodeRuntime exists per SMP node (created by the node's rank 0 during
// Runtime::initialize and handed to the other ranks of the node).  With
// D dedicated cores per node, clients are partitioned round-robin across
// D (queue, index) pairs; the segment is shared by the whole node.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/block_index.hpp"
#include "core/configuration.hpp"
#include "core/scheduler.hpp"
#include "core/types.hpp"
#include "fsim/filesystem.hpp"
#include "shm/bounded_queue.hpp"
#include "shm/segment.hpp"

namespace dedicore::core {

struct NodeRuntime {
  NodeRuntime(Configuration config_in, int node_id_in,
              fsim::FileSystem* fs_in, std::shared_ptr<IoScheduler> sched)
      : config(std::move(config_in)),
        node_id(node_id_in),
        fs(fs_in),
        scheduler(std::move(sched)),
        segment(config.buffer_size()) {
    const int servers = std::max(1, config.dedicated_cores());
    queues.reserve(static_cast<std::size_t>(servers));
    indexes.reserve(static_cast<std::size_t>(servers));
    for (int s = 0; s < servers; ++s) {
      queues.push_back(std::make_unique<shm::BoundedQueue<Event>>(
          config.queue_capacity()));
      indexes.push_back(std::make_unique<BlockIndex>());
    }
    // Distinct event names bound in the configuration, for signal ids.
    for (const auto& action : config.actions()) {
      if (std::find(signal_names.begin(), signal_names.end(), action.event) ==
          signal_names.end())
        signal_names.push_back(action.event);
    }
  }

  /// Which dedicated core serves a given client index.
  [[nodiscard]] int server_of_client(int client_index) const noexcept {
    return client_index % static_cast<int>(queues.size());
  }

  /// How many clients a given dedicated core serves.
  [[nodiscard]] int clients_of_server(int server_index) const noexcept {
    const int clients = config.clients_per_node();
    const int servers = static_cast<int>(queues.size());
    return clients / servers + (client_index_remainder(clients, servers) > server_index ? 1 : 0);
  }

  /// Signal id for an event name; -1 when the name is not bound.
  [[nodiscard]] int signal_id(const std::string& event) const noexcept {
    for (std::size_t i = 0; i < signal_names.size(); ++i)
      if (signal_names[i] == event) return static_cast<int>(i);
    return -1;
  }

  Configuration config;
  int node_id = 0;
  fsim::FileSystem* fs = nullptr;
  std::shared_ptr<IoScheduler> scheduler;
  shm::Segment segment;
  std::vector<std::unique_ptr<shm::BoundedQueue<Event>>> queues;
  std::vector<std::unique_ptr<BlockIndex>> indexes;
  std::vector<std::string> signal_names;

 private:
  static int client_index_remainder(int clients, int servers) noexcept {
    return clients % servers;
  }
};

}  // namespace dedicore::core
