// Per-node shared state: the transport fabric (shared-memory segment plus
// event queues), the block indexes, and the bindings that connect
// simulation cores to dedicated cores.
//
// In dedicated-cores mode one NodeRuntime exists per SMP node (created by
// the node's rank 0 during Runtime::initialize and handed to the other
// ranks of the node); with D dedicated cores per node, clients are
// partitioned round-robin across D (queue, index) pairs and the segment is
// shared by the whole node.  In dedicated-nodes mode every rank owns its
// private NodeRuntime: I/O ranks carry a fabric (residency for blocks
// received over MPI) and one index; client ranks carry neither.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/fault.hpp"
#include "core/block_index.hpp"
#include "core/configuration.hpp"
#include "core/emit_stage.hpp"
#include "core/scheduler.hpp"
#include "core/types.hpp"
#include "fsim/filesystem.hpp"
#include "storage/posix_backend.hpp"
#include "storage/sharded_backend.hpp"
#include "storage/sim_backend.hpp"
#include "storage/write_behind.hpp"
#include "transport/shm_transport.hpp"

namespace dedicore::core {

struct NodeRuntime {
  /// What this NodeRuntime backs: a whole SMP node (dedicated-cores mode),
  /// a dedicated I/O rank, or a client rank in dedicated-nodes mode.
  enum class Role { kSmpNode, kIoNode, kClientOnly };

  /// Dedicated-cores mode: shared fabric with one queue+index per
  /// dedicated core of the node.
  NodeRuntime(Configuration config_in, int node_id_in,
              fsim::FileSystem* fs_in, std::shared_ptr<IoScheduler> sched)
      : NodeRuntime(std::move(config_in), node_id_in, fs_in, std::move(sched),
                    Role::kSmpNode) {}

  NodeRuntime(Configuration config_in, int node_id_in,
              fsim::FileSystem* fs_in, std::shared_ptr<IoScheduler> sched,
              Role role_in)
      : config(std::move(config_in)),
        node_id(node_id_in),
        role(role_in),
        fs(fs_in),
        scheduler(std::move(sched)) {
    // One seeded injector per node, shared by every component with an
    // injection point; null (all probes skipped) on healthy runs.  The
    // seed can be overridden by DEDICORE_FAULT_SEED for the CI fault
    // matrix without editing the XML plan.
    if (!config.faults().empty()) {
      std::uint64_t seed = config.faults().seed;
      if (const char* env = std::getenv("DEDICORE_FAULT_SEED"))
        seed = std::strtoull(env, nullptr, 10);
      faults = std::make_shared<fault::FaultInjector>(seed);
      for (const auto& spec : config.faults().faults) faults->arm(spec);
    }
    switch (role) {
      case Role::kSmpNode:
        servers_ = std::max(1, config.dedicated_cores());
        fabric = std::make_shared<transport::ShmFabric>(
            config.buffer_size(), servers_, config.queue_capacity());
        break;
      case Role::kIoNode:
        // Residency only: blocks received over MPI are re-homed here, so
        // no local event queues are needed.
        servers_ = 1;
        fabric = std::make_shared<transport::ShmFabric>(
            config.buffer_size(), /*queue_count=*/0, config.queue_capacity());
        break;
      case Role::kClientOnly:
        servers_ = 0;
        break;
    }
    indexes.reserve(static_cast<std::size_t>(servers_));
    for (int s = 0; s < servers_; ++s)
      indexes.push_back(std::make_unique<BlockIndex>());
    // Distinct event names bound in the configuration, for signal ids.
    for (const auto& action : config.actions()) {
      if (std::find(signal_names.begin(), signal_names.end(), action.event) ==
          signal_names.end())
        signal_names.push_back(action.event);
    }
    // Persistence: one StorageBackend per node, selected by the
    // configuration (both deployment modes flow through here).  The sim
    // backend wraps the experiment-wide simulator and keeps its modelled,
    // synchronous semantics; the posix backend writes real files and gets
    // an async write-behind queue drained by this node's server workers.
    if (role != Role::kClientOnly) {
      // The emit-path transform stage (codec resolution + adaptive skip)
      // sits in front of whichever backend is selected; it is shared by
      // every server of the node, so its counters are node-wide.
      emit = std::make_shared<EmitStage>(config);
      if (config.storage().backend == "posix") {
        if (!config.storage().roots.empty()) {
          // Sharded multi-root layout: chunking + placement + per-chunk
          // integrity over one PosixBackend per root.  Root i probes the
          // posix.* fault points with target i, so a plan can fail one
          // root of many.  The write-behind queue splits image jobs into
          // chunk jobs, so the node's server workers drain roots in
          // parallel.
          std::vector<std::filesystem::path> roots;
          for (const auto& root : config.storage().roots)
            roots.emplace_back(root);
          storage::ShardedOptions opts;
          if (config.storage().chunk_size > 0)
            opts.chunk_size = config.storage().chunk_size;
          opts.placement = storage::placement_policy_from_name(
              config.storage().placement);
          opts.placement_seed = config.storage().placement_seed;
          opts.replication = config.storage().replication;
          storage = std::make_shared<storage::ShardedBackend>(
              std::move(roots), opts, faults);
        } else {
          storage = std::make_shared<storage::PosixBackend>(
              std::filesystem::path(config.storage().path), faults);
        }
        const std::uint64_t budget = config.storage().write_behind_bytes > 0
                                         ? config.storage().write_behind_bytes
                                         : config.buffer_size();
        write_behind = std::make_shared<storage::WriteBehind>(
            *storage, budget, config.storage().retries, faults);
      } else if (fs != nullptr) {
        storage = std::make_shared<storage::SimBackend>(*fs);
      }
    }
  }

  /// Which dedicated core serves a given client index (cores mode).
  [[nodiscard]] int server_of_client(int client_index) const noexcept {
    return client_index % std::max(1, servers_);
  }

  /// How many clients a given dedicated core serves (cores mode).
  [[nodiscard]] int clients_of_server(int server_index) const noexcept {
    const int clients = config.clients_per_node();
    const int servers = std::max(1, servers_);  // 0 on kClientOnly ranks
    return clients / servers + (clients % servers > server_index ? 1 : 0);
  }

  /// Signal id for an event name; -1 when the name is not bound.
  [[nodiscard]] int signal_id(const std::string& event) const noexcept {
    for (std::size_t i = 0; i < signal_names.size(); ++i)
      if (signal_names[i] == event) return static_cast<int>(i);
    return -1;
  }

  /// The local block store (segment stats, pressure fixtures).  Aborts on
  /// dedicated-nodes client ranks, which have no local block residency.
  [[nodiscard]] shm::Segment& segment() noexcept {
    DEDICORE_CHECK(fabric != nullptr, "NodeRuntime: no fabric on this rank");
    return fabric->segment;
  }

  Configuration config;
  int node_id = 0;
  Role role = Role::kSmpNode;
  fsim::FileSystem* fs = nullptr;
  std::shared_ptr<IoScheduler> scheduler;
  /// The node's seeded fault injector; null (no faults armed) on healthy
  /// runs.  Shared by the transports, the storage backend, and the
  /// write-behind queue so one plan drives every injection point.
  std::shared_ptr<fault::FaultInjector> faults;
  /// Emit-path transform stage: per-variable codec resolution, adaptive
  /// store-raw decisions, and the node-wide compression counters.  Null
  /// only on dedicated-nodes client ranks.
  std::shared_ptr<EmitStage> emit;
  /// Persistence target of this node's storage-flavoured plugins and
  /// writers; null on dedicated-nodes client ranks (and on nodes built
  /// with neither a simulator nor a posix configuration).
  std::shared_ptr<storage::StorageBackend> storage;
  /// Async image queue in front of `storage`; non-null only for the posix
  /// backend.  Server workers drain it (see core::Server), and its byte
  /// budget turns a slow disk into pipeline backpressure.
  std::shared_ptr<storage::WriteBehind> write_behind;
  /// Segment + queues; shared across the node's ranks in cores mode,
  /// private to an I/O rank in nodes mode, null on nodes-mode clients.
  std::shared_ptr<transport::ShmFabric> fabric;
  std::vector<std::unique_ptr<BlockIndex>> indexes;
  std::vector<std::string> signal_names;

 private:
  int servers_ = 1;
};

}  // namespace dedicore::core
