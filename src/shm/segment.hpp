// Bounded shared-memory segment with a first-fit, coalescing free-list
// allocator.
//
// This is the Damaris data path: simulation cores allocate blocks here
// (zero-copy `alloc/commit` or one-copy `write`), and dedicated cores read
// them and free them after the I/O or analysis completes.  Because ranks
// are threads in this build, "shared memory" is ordinary memory — but the
// *behavioural* contract of a POSIX shm segment is preserved exactly:
//
//  * fixed capacity chosen in the configuration (<buffer size="..."/>);
//  * allocation fails (or blocks, or triggers the skip-iteration policy)
//    when the segment is full — the central backpressure mechanism of
//    section V.C.1 of the paper;
//  * blocks are addressed by handles (offsets), not raw pointers, as they
//    would be across processes with distinct mappings.
//
// Thread-safety: all operations are safe to call concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace dedicore::shm {

/// Handle to a block inside a Segment.  Trivially copyable so it can travel
/// through message queues; meaningless without the owning Segment.
struct BlockRef {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;

  [[nodiscard]] bool is_null() const noexcept { return size == 0; }
  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

/// Allocation statistics for the spare-time experiment (E4) and tests.
struct SegmentStats {
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;            ///< bytes currently allocated
  std::uint64_t peak_used = 0;       ///< high-water mark
  std::uint64_t allocations = 0;     ///< successful allocate() calls
  std::uint64_t frees = 0;
  std::uint64_t failed_allocations = 0;  ///< try_allocate refusals
  std::uint64_t largest_free_block = 0;
};

class Segment {
 public:
  /// Creates a segment of `capacity` bytes.  Memory is owned by the
  /// Segment; capacity must be non-zero.
  explicit Segment(std::uint64_t capacity);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Nonblocking allocation; nullopt when no free block fits (the failure
  /// is counted — the skip-iteration policy keys off it).
  std::optional<BlockRef> try_allocate(std::uint64_t size,
                                       std::uint64_t alignment = 8);

  /// Blocking allocation: waits until space frees up.  Returns nullopt if
  /// the segment is closed while waiting, or if `size` can never fit.
  std::optional<BlockRef> allocate_blocking(std::uint64_t size,
                                            std::uint64_t alignment = 8);

  /// Releases a block.  Freeing a block that was not allocated (or double
  /// freeing) aborts: in a middleware this is always a logic error.
  void deallocate(BlockRef block);

  /// Raw view of a block's bytes.
  [[nodiscard]] std::span<std::byte> view(BlockRef block);
  [[nodiscard]] std::span<const std::byte> view(BlockRef block) const;

  /// Copies `bytes` into a fresh block (the one-copy `write` path).
  std::optional<BlockRef> try_write(std::span<const std::byte> bytes,
                                    std::uint64_t alignment = 8);

  /// Unblocks all waiters; subsequent blocking allocations fail fast.
  void close();

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const;
  [[nodiscard]] std::uint64_t free_bytes() const;
  [[nodiscard]] SegmentStats stats() const;

  /// Verifies the free-list invariants (sorted, non-overlapping, coalesced,
  /// accounting consistent).  Used by property tests; aborts on violation.
  void check_invariants() const;

 private:
  struct FreeBlock {
    std::uint64_t offset;
    std::uint64_t size;
  };

  std::optional<BlockRef> allocate_locked(std::uint64_t size,
                                          std::uint64_t alignment);

  const std::uint64_t capacity_;
  std::unique_ptr<std::byte[]> memory_;

  mutable std::mutex mutex_;
  std::condition_variable space_freed_;
  std::vector<FreeBlock> free_list_;  // sorted by offset, fully coalesced
  // Allocated blocks (offset -> size) for double-free detection.
  std::vector<FreeBlock> allocated_;  // sorted by offset
  bool closed_ = false;

  std::uint64_t used_ = 0;
  std::uint64_t peak_used_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t frees_ = 0;
  std::uint64_t failed_allocations_ = 0;
};

}  // namespace dedicore::shm
