// Bounded shared-memory segment with a size-segregated, best-fit,
// coalescing allocator.
//
// This is the Damaris data path: simulation cores allocate blocks here
// (zero-copy `alloc/commit` or one-copy `write`), and dedicated cores read
// them and free them after the I/O or analysis completes.  Because ranks
// are threads in this build, "shared memory" is ordinary memory — but the
// *behavioural* contract of a POSIX shm segment is preserved exactly:
//
//  * fixed capacity chosen in the configuration (<buffer size="..."/>);
//  * allocation fails (or blocks, or triggers the skip-iteration policy)
//    when the segment is full — the central backpressure mechanism of
//    section V.C.1 of the paper;
//  * blocks are addressed by handles (offsets), not raw pointers, as they
//    would be across processes with distinct mappings.
//
// Allocator design (the node-local hot path — every simulation write goes
// through here, so it must stay in the microsecond range at any live-block
// count):
//
//  * free space is indexed twice: an offset-ordered map (offset -> size)
//    for O(log n) neighbour coalescing on free, and a (size, offset)
//    ordered set for O(log n) best-fit lookup on allocate.  Lookup scans
//    the narrow band of blocks whose size is in [size, size + alignment)
//    — only those can be disqualified by alignment padding — and then
//    jumps to the first block of size >= size + alignment - 1, which is
//    guaranteed to fit.  An allocation therefore fails only when *no*
//    free block can hold the request, the same completeness guarantee a
//    full first-fit scan gives.
//  * allocated blocks live in a hash map (offset -> size): O(1)
//    double-free detection instead of the former O(n) sorted vector.
//  * counters are atomics, so used()/free_bytes()/stats() never touch the
//    allocator lock — monitoring cannot stall the data path.
//  * blocking allocations register per-waiter wakeup records; a free
//    wakes only the waiters whose request can now plausibly fit (request
//    size <= largest free block) instead of notify_all-ing every waiter
//    into a thundering herd that mostly re-sleeps.
//
// Thread-safety: all operations are safe to call concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::shm {

/// Handle to a block inside a Segment.  Trivially copyable so it can travel
/// through message queues; meaningless without the owning Segment.
struct BlockRef {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;

  [[nodiscard]] bool is_null() const noexcept { return size == 0; }
  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

/// Allocation statistics for the spare-time experiment (E4) and tests.
struct SegmentStats {
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;            ///< bytes currently allocated
  std::uint64_t peak_used = 0;       ///< high-water mark
  std::uint64_t allocations = 0;     ///< successful allocate() calls
  std::uint64_t frees = 0;
  std::uint64_t failed_allocations = 0;  ///< try_allocate refusals
  std::uint64_t largest_free_block = 0;
};

class Segment {
 public:
  /// Creates a segment of `capacity` bytes.  Memory is owned by the
  /// Segment; capacity must be non-zero.
  explicit Segment(std::uint64_t capacity);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Nonblocking allocation; nullopt when no free block fits (the failure
  /// is counted — the skip-iteration policy keys off it).  `alignment`
  /// must be a power of two; an alignment larger than the capacity can
  /// never be satisfied and is rejected as a counted failure rather than
  /// overflowing the padding arithmetic.
  std::optional<BlockRef> try_allocate(std::uint64_t size,
                                       std::uint64_t alignment = 8);

  /// Blocking allocation: waits until space frees up.  Returns nullopt if
  /// the segment is closed while waiting, or if `size` (or `alignment`)
  /// can never fit.
  std::optional<BlockRef> allocate_blocking(std::uint64_t size,
                                            std::uint64_t alignment = 8);

  /// Releases a block.  Freeing a block that was not allocated (or double
  /// freeing) aborts: in a middleware this is always a logic error.
  void deallocate(BlockRef block);

  /// Raw view of a block's bytes.
  [[nodiscard]] std::span<std::byte> view(BlockRef block);
  [[nodiscard]] std::span<const std::byte> view(BlockRef block) const;

  /// Copies `bytes` into a fresh block (the one-copy `write` path).
  std::optional<BlockRef> try_write(std::span<const std::byte> bytes,
                                    std::uint64_t alignment = 8);

  /// Unblocks all waiters; subsequent blocking allocations fail fast.
  void close();

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  /// Lock-free: reads an atomic counter, never contends with allocations.
  [[nodiscard]] std::uint64_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept {
    return capacity_ - used();
  }
  /// Lock-free snapshot of the counters (individually consistent).
  [[nodiscard]] SegmentStats stats() const noexcept;

  /// Verifies the allocator invariants (free maps mirror each other,
  /// sorted, non-overlapping, coalesced, accounting consistent).  Used by
  /// property tests; aborts on violation.
  void check_invariants() const;

 private:
  /// A blocking allocation parked until a free might satisfy it.  All
  /// fields are written under the owning Segment's mutex_ (a nested type
  /// cannot name the enclosing instance's mutex in a GUARDED_BY, so the
  /// invariant is recorded here instead).
  struct Waiter {
    std::uint64_t size = 0;
    CondVar cv;
    bool ready = false;
  };

  std::optional<BlockRef> allocate_locked(std::uint64_t size,
                                          std::uint64_t alignment)
      DEDICORE_REQUIRES(mutex_);
  /// Removes a free block from both indexes.
  void erase_free_locked(std::uint64_t offset, std::uint64_t size)
      DEDICORE_REQUIRES(mutex_);
  /// Adds a free block to both indexes.
  void insert_free_locked(std::uint64_t offset, std::uint64_t size)
      DEDICORE_REQUIRES(mutex_);
  /// Refreshes the cached largest-free-block counter.
  void refresh_largest_locked() DEDICORE_REQUIRES(mutex_);
  /// Wakes the waiters whose request can now plausibly fit.
  void wake_fitting_waiters_locked() DEDICORE_REQUIRES(mutex_);

  const std::uint64_t capacity_;
  std::unique_ptr<std::byte[]> memory_;

  mutable Mutex mutex_{"segment.state"};
  /// Free blocks, offset -> size: neighbour lookup for coalescing.
  std::map<std::uint64_t, std::uint64_t> free_by_offset_
      DEDICORE_GUARDED_BY(mutex_);
  /// The same free blocks as (size, offset): best-fit lookup.
  std::set<std::pair<std::uint64_t, std::uint64_t>> free_by_size_
      DEDICORE_GUARDED_BY(mutex_);
  /// Allocated blocks, offset -> size: O(1) double-free detection.
  std::unordered_map<std::uint64_t, std::uint64_t> allocated_
      DEDICORE_GUARDED_BY(mutex_);
  /// Parked blocking allocations, in arrival order.
  std::list<Waiter*> waiters_ DEDICORE_GUARDED_BY(mutex_);
  bool closed_ DEDICORE_GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_used_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> failed_allocations_{0};
  std::atomic<std::uint64_t> largest_free_block_{0};
};

}  // namespace dedicore::shm
