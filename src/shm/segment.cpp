#include "shm/segment.hpp"

#include <algorithm>
#include <cstring>

namespace dedicore::shm {

namespace {
std::uint64_t align_up(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}
bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Segment::Segment(std::uint64_t capacity)
    : capacity_(capacity), memory_(new std::byte[capacity]) {
  DEDICORE_CHECK(capacity > 0, "Segment capacity must be non-zero");
  free_list_.push_back(FreeBlock{0, capacity});
}

std::optional<BlockRef> Segment::allocate_locked(std::uint64_t size,
                                                 std::uint64_t alignment) {
  DEDICORE_CHECK(size > 0, "cannot allocate an empty block");
  DEDICORE_CHECK(is_power_of_two(alignment), "alignment must be a power of two");
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& fb = free_list_[i];
    const std::uint64_t aligned = align_up(fb.offset, alignment);
    const std::uint64_t padding = aligned - fb.offset;
    if (fb.size < padding + size) continue;

    // First fit found.  Carve [aligned, aligned+size) out of fb.  Padding
    // in front stays free; the tail (if any) stays free.
    const std::uint64_t tail_offset = aligned + size;
    const std::uint64_t tail_size = fb.offset + fb.size - tail_offset;

    if (padding == 0 && tail_size == 0) {
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (padding == 0) {
      fb.offset = tail_offset;
      fb.size = tail_size;
    } else if (tail_size == 0) {
      fb.size = padding;
    } else {
      fb.size = padding;
      free_list_.insert(free_list_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        FreeBlock{tail_offset, tail_size});
    }

    const BlockRef ref{aligned, size};
    auto pos = std::lower_bound(allocated_.begin(), allocated_.end(), aligned,
                                [](const FreeBlock& b, std::uint64_t off) {
                                  return b.offset < off;
                                });
    allocated_.insert(pos, FreeBlock{aligned, size});
    used_ += size;
    peak_used_ = std::max(peak_used_, used_);
    ++allocations_;
    return ref;
  }
  ++failed_allocations_;
  return std::nullopt;
}

std::optional<BlockRef> Segment::try_allocate(std::uint64_t size,
                                              std::uint64_t alignment) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return std::nullopt;
  return allocate_locked(size, alignment);
}

std::optional<BlockRef> Segment::allocate_blocking(std::uint64_t size,
                                                   std::uint64_t alignment) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (size > capacity_) return std::nullopt;  // can never succeed
  for (;;) {
    if (closed_) return std::nullopt;
    if (auto ref = allocate_locked(size, alignment)) return ref;
    space_freed_.wait(lock);
  }
}

void Segment::deallocate(BlockRef block) {
  if (block.is_null()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto pos = std::lower_bound(allocated_.begin(), allocated_.end(),
                                block.offset,
                                [](const FreeBlock& b, std::uint64_t off) {
                                  return b.offset < off;
                                });
    DEDICORE_CHECK(pos != allocated_.end() && pos->offset == block.offset &&
                       pos->size == block.size,
                   "Segment::deallocate: unknown or double-freed block");
    allocated_.erase(pos);
    used_ -= block.size;
    ++frees_;

    // Insert into the sorted free list and coalesce with neighbours.
    auto it = std::lower_bound(free_list_.begin(), free_list_.end(),
                               block.offset,
                               [](const FreeBlock& b, std::uint64_t off) {
                                 return b.offset < off;
                               });
    it = free_list_.insert(it, FreeBlock{block.offset, block.size});
    // Coalesce with successor first (keeps `it` valid).
    if (auto next = it + 1;
        next != free_list_.end() && it->offset + it->size == next->offset) {
      it->size += next->size;
      free_list_.erase(next);
    }
    if (it != free_list_.begin()) {
      auto prev = it - 1;
      if (prev->offset + prev->size == it->offset) {
        prev->size += it->size;
        free_list_.erase(it);
      }
    }
  }
  space_freed_.notify_all();
}

std::span<std::byte> Segment::view(BlockRef block) {
  DEDICORE_CHECK(block.offset + block.size <= capacity_,
                 "Segment::view: block out of range");
  return {memory_.get() + block.offset, block.size};
}

std::span<const std::byte> Segment::view(BlockRef block) const {
  DEDICORE_CHECK(block.offset + block.size <= capacity_,
                 "Segment::view: block out of range");
  return {memory_.get() + block.offset, block.size};
}

std::optional<BlockRef> Segment::try_write(std::span<const std::byte> bytes,
                                           std::uint64_t alignment) {
  auto ref = try_allocate(bytes.size(), alignment);
  if (!ref) return std::nullopt;
  std::memcpy(memory_.get() + ref->offset, bytes.data(), bytes.size());
  return ref;
}

void Segment::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  space_freed_.notify_all();
}

std::uint64_t Segment::used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::uint64_t Segment::free_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - used_;
}

SegmentStats Segment::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SegmentStats s;
  s.capacity = capacity_;
  s.used = used_;
  s.peak_used = peak_used_;
  s.allocations = allocations_;
  s.frees = frees_;
  s.failed_allocations = failed_allocations_;
  for (const auto& fb : free_list_)
    s.largest_free_block = std::max(s.largest_free_block, fb.size);
  return s;
}

void Segment::check_invariants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t free_total = 0;
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    const auto& fb = free_list_[i];
    DEDICORE_CHECK(fb.size > 0, "invariant: empty free block");
    DEDICORE_CHECK(fb.offset + fb.size <= capacity_,
                   "invariant: free block out of range");
    if (i > 0) {
      const auto& prev = free_list_[i - 1];
      DEDICORE_CHECK(prev.offset + prev.size < fb.offset,
                     "invariant: free list not sorted/coalesced");
    }
    free_total += fb.size;
  }
  std::uint64_t alloc_total = 0;
  for (std::size_t i = 0; i < allocated_.size(); ++i) {
    const auto& ab = allocated_[i];
    DEDICORE_CHECK(ab.offset + ab.size <= capacity_,
                   "invariant: allocated block out of range");
    if (i > 0) {
      const auto& prev = allocated_[i - 1];
      DEDICORE_CHECK(prev.offset + prev.size <= ab.offset,
                     "invariant: allocated blocks overlap");
    }
    alloc_total += ab.size;
  }
  DEDICORE_CHECK(alloc_total == used_, "invariant: used-bytes accounting broken");
  // Padding bytes burnt by alignment live in neither list; they are
  // returned when the allocation that created them is freed only if they
  // were left in the free list, which this allocator guarantees — so free
  // + used must cover the whole capacity.
  DEDICORE_CHECK(free_total + alloc_total == capacity_,
                 "invariant: capacity accounting broken");
}

}  // namespace dedicore::shm
