#include "shm/segment.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace dedicore::shm {

namespace {
bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Segment::Segment(std::uint64_t capacity)
    : capacity_(capacity), memory_(new std::byte[capacity]) {
  DEDICORE_CHECK(capacity > 0, "Segment capacity must be non-zero");
  // No thread can see the segment yet, but taking the (uncontended) lock
  // keeps the _locked helpers' REQUIRES provable in the constructor too.
  MutexLock lock(mutex_);
  insert_free_locked(0, capacity);
  refresh_largest_locked();
}

void Segment::insert_free_locked(std::uint64_t offset, std::uint64_t size) {
  free_by_offset_.emplace(offset, size);
  free_by_size_.emplace(size, offset);
}

void Segment::erase_free_locked(std::uint64_t offset, std::uint64_t size) {
  free_by_offset_.erase(offset);
  free_by_size_.erase({size, offset});
}

void Segment::refresh_largest_locked() {
  largest_free_block_.store(
      free_by_size_.empty() ? 0 : free_by_size_.rbegin()->first,
      std::memory_order_relaxed);
}

std::optional<BlockRef> Segment::allocate_locked(std::uint64_t size,
                                                 std::uint64_t alignment) {
  DEDICORE_CHECK(size > 0, "cannot allocate an empty block");
  DEDICORE_CHECK(is_power_of_two(alignment), "alignment must be a power of two");
  // An alignment wider than the segment can never be satisfied (offset 0 is
  // the only aligned offset and the check below covers it); anything larger
  // would also overflow the `size + alignment - 1` band arithmetic.  Refuse
  // it as a counted failure instead of computing with wrapped padding.
  if (alignment > capacity_ || size > capacity_) {
    failed_allocations_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // Best-fit with alignment: only blocks whose size is in
  // [size, size + alignment - 1) can be disqualified by padding, so scan
  // that narrow band and fall through to the first block at or above
  // size + alignment - 1, which fits any placement.  Offsets never exceed
  // capacity_, so align_up cannot wrap after the alignment guard above.
  const std::uint64_t padding_mask = alignment - 1;
  for (auto it = free_by_size_.lower_bound({size, 0});
       it != free_by_size_.end(); ++it) {
    const std::uint64_t block_size = it->first;
    const std::uint64_t block_offset = it->second;
    const std::uint64_t aligned = (block_offset + padding_mask) & ~padding_mask;
    const std::uint64_t padding = aligned - block_offset;
    if (block_size < padding + size) continue;  // only possible in the band

    erase_free_locked(block_offset, block_size);
    const std::uint64_t tail_offset = aligned + size;
    const std::uint64_t tail_size = block_offset + block_size - tail_offset;
    if (padding > 0) insert_free_locked(block_offset, padding);
    if (tail_size > 0) insert_free_locked(tail_offset, tail_size);
    refresh_largest_locked();

    allocated_.emplace(aligned, size);
    const std::uint64_t now_used =
        used_.fetch_add(size, std::memory_order_relaxed) + size;
    if (now_used > peak_used_.load(std::memory_order_relaxed))
      peak_used_.store(now_used, std::memory_order_relaxed);
    allocations_.fetch_add(1, std::memory_order_relaxed);
    return BlockRef{aligned, size};
  }
  failed_allocations_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<BlockRef> Segment::try_allocate(std::uint64_t size,
                                              std::uint64_t alignment) {
  MutexLock lock(mutex_);
  if (closed_) return std::nullopt;
  return allocate_locked(size, alignment);
}

std::optional<BlockRef> Segment::allocate_blocking(std::uint64_t size,
                                                   std::uint64_t alignment) {
  UniqueLock lock(mutex_);
  if (size > capacity_ || alignment > capacity_)
    return std::nullopt;  // can never succeed
  for (;;) {
    if (closed_) return std::nullopt;
    if (auto ref = allocate_locked(size, alignment)) return ref;
    Waiter waiter;
    waiter.size = size;
    auto position = waiters_.insert(waiters_.end(), &waiter);
    while (!waiter.ready && !closed_) waiter.cv.wait(lock);
    waiters_.erase(position);
  }
}

void Segment::deallocate(BlockRef block) {
  if (block.is_null()) return;
  MutexLock lock(mutex_);
  auto it = allocated_.find(block.offset);
  DEDICORE_CHECK(it != allocated_.end() && it->second == block.size,
                 "Segment::deallocate: unknown or double-freed block");
  allocated_.erase(it);
  used_.fetch_sub(block.size, std::memory_order_relaxed);
  frees_.fetch_add(1, std::memory_order_relaxed);

  // Coalesce with the free neighbours, then reindex the merged block.
  std::uint64_t offset = block.offset;
  std::uint64_t size = block.size;
  auto next = free_by_offset_.lower_bound(offset);
  if (next != free_by_offset_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      offset = prev->first;
      size += prev->second;
      erase_free_locked(prev->first, prev->second);
      next = free_by_offset_.lower_bound(offset);
    }
  }
  if (next != free_by_offset_.end() && block.offset + block.size == next->first) {
    size += next->second;
    erase_free_locked(next->first, next->second);
  }
  insert_free_locked(offset, size);
  refresh_largest_locked();
  wake_fitting_waiters_locked();
}

void Segment::wake_fitting_waiters_locked() {
  if (waiters_.empty()) return;
  // Wake only the waiters whose request can now plausibly fit.  Using the
  // largest free block as the fit test is conservative (alignment padding
  // may still refuse the retry, which then re-parks), so no fitting waiter
  // is ever left asleep — but a free that cannot help anyone wakes no one,
  // unlike the former notify_all thundering herd.
  const std::uint64_t largest =
      largest_free_block_.load(std::memory_order_relaxed);
  for (Waiter* waiter : waiters_) {
    if (!waiter->ready && waiter->size <= largest) {
      waiter->ready = true;
      waiter->cv.notify_one();
    }
  }
}

std::span<std::byte> Segment::view(BlockRef block) {
  DEDICORE_CHECK(block.offset + block.size <= capacity_,
                 "Segment::view: block out of range");
  return {memory_.get() + block.offset, block.size};
}

std::span<const std::byte> Segment::view(BlockRef block) const {
  DEDICORE_CHECK(block.offset + block.size <= capacity_,
                 "Segment::view: block out of range");
  return {memory_.get() + block.offset, block.size};
}

std::optional<BlockRef> Segment::try_write(std::span<const std::byte> bytes,
                                           std::uint64_t alignment) {
  auto ref = try_allocate(bytes.size(), alignment);
  if (!ref) return std::nullopt;
  std::memcpy(memory_.get() + ref->offset, bytes.data(), bytes.size());
  return ref;
}

void Segment::close() {
  MutexLock lock(mutex_);
  closed_ = true;
  for (Waiter* waiter : waiters_) waiter->cv.notify_one();
}

SegmentStats Segment::stats() const noexcept {
  SegmentStats s;
  s.capacity = capacity_;
  s.used = used_.load(std::memory_order_relaxed);
  s.peak_used = peak_used_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.failed_allocations = failed_allocations_.load(std::memory_order_relaxed);
  s.largest_free_block = largest_free_block_.load(std::memory_order_relaxed);
  return s;
}

void Segment::check_invariants() const {
  MutexLock lock(mutex_);
  DEDICORE_CHECK(free_by_offset_.size() == free_by_size_.size(),
                 "invariant: free indexes disagree on block count");
  std::uint64_t free_total = 0;
  std::uint64_t largest = 0;
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [offset, size] : free_by_offset_) {
    DEDICORE_CHECK(size > 0, "invariant: empty free block");
    DEDICORE_CHECK(offset + size <= capacity_,
                   "invariant: free block out of range");
    DEDICORE_CHECK(free_by_size_.count({size, offset}) == 1,
                   "invariant: free block missing from size index");
    if (!first)
      DEDICORE_CHECK(prev_end < offset,
                     "invariant: free list not sorted/coalesced");
    first = false;
    prev_end = offset + size;
    free_total += size;
    largest = std::max(largest, size);
  }
  DEDICORE_CHECK(largest == largest_free_block_.load(std::memory_order_relaxed),
                 "invariant: cached largest free block stale");

  std::vector<std::pair<std::uint64_t, std::uint64_t>> allocated(
      allocated_.begin(), allocated_.end());
  std::sort(allocated.begin(), allocated.end());
  std::uint64_t alloc_total = 0;
  for (std::size_t i = 0; i < allocated.size(); ++i) {
    const auto& [offset, size] = allocated[i];
    DEDICORE_CHECK(offset + size <= capacity_,
                   "invariant: allocated block out of range");
    if (i > 0) {
      const auto& [prev_offset, prev_size] = allocated[i - 1];
      DEDICORE_CHECK(prev_offset + prev_size <= offset,
                     "invariant: allocated blocks overlap");
    }
    alloc_total += size;
  }
  DEDICORE_CHECK(alloc_total == used_.load(std::memory_order_relaxed),
                 "invariant: used-bytes accounting broken");
  // Padding bytes burnt by alignment stay in the free indexes, so free +
  // used must cover the whole capacity.
  DEDICORE_CHECK(free_total + alloc_total == capacity_,
                 "invariant: capacity accounting broken");
}

}  // namespace dedicore::shm
