// Bounded multi-producer multi-consumer queue.
//
// Damaris uses a shared message queue through which simulation cores post
// events (block-written notifications, user signals, end-of-iteration,
// shutdown) to the dedicated cores.  The queue is bounded like its
// shared-memory counterpart: a full queue participates in backpressure.
//
// The implementation is a two-lock ring buffer (Michael & Scott's two-lock
// queue adapted to a fixed ring): producers serialize on the tail lock,
// consumers on the head lock, and the two sides communicate only through
// an atomic element count.  A producer therefore never contends with the
// consumer on the hot path, and condition variables are signalled only
// when the other side has actually registered a waiter — the uncontended
// path performs no notify syscall at all.  Batch push_all/pop_all move a
// whole iteration's events through one critical section.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::shm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), buffer_(capacity) {
    DEDICORE_CHECK(capacity > 0, "BoundedQueue capacity must be non-zero");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    UniqueLock lock(tail_mutex_);
    if (!wait_for_space_locked(lock)) return false;
    enqueue_locked(std::move(value));
    lock.unlock();
    signal_not_empty();
    return true;
  }

  /// Blocking bulk push: delivers every element of `values` in order,
  /// waiting for space as needed (possibly in several chunks, but each
  /// chunk costs one critical section).  Returns the number of elements
  /// delivered — short only if the queue is closed mid-way.
  std::size_t push_all(std::span<T> values) {
    std::size_t pushed = 0;
    std::size_t final_chunk = 0;
    {
      UniqueLock lock(tail_mutex_);
      while (pushed < values.size()) {
        if (!wait_for_space_locked(lock)) break;
        // Only consumers grow the space concurrently, so the room observed
        // here can be filled without re-checking per element.
        std::size_t room = capacity_ - size_.load(std::memory_order_acquire);
        std::size_t chunk = 0;
        while (room > 0 && pushed < values.size()) {
          enqueue_locked(std::move(values[pushed]));
          ++pushed;
          ++chunk;
          --room;
        }
        if (pushed < values.size()) {
          // Mid-batch: consumers must drain before we can wait for more
          // space, so this signal has to happen before the next wait.
          signal_not_empty(chunk);
        } else {
          final_chunk = chunk;  // signal after dropping the tail lock
        }
      }
    }
    signal_not_empty(final_chunk);
    return pushed;
  }

  /// Nonblocking push; WOULD_BLOCK when full, CLOSED after close().
  Status try_push(T value) {
    {
      MutexLock lock(tail_mutex_);
      if (closed_.load(std::memory_order_relaxed))
        return Status::closed("queue closed");
      if (size_.load(std::memory_order_acquire) == capacity_)
        return Status::would_block("queue full");
      enqueue_locked(std::move(value));
    }
    signal_not_empty();
    return Status::ok();
  }

  /// Nonblocking all-or-nothing bulk push: either every element is
  /// delivered in order (one critical section) or none is.  WOULD_BLOCK
  /// when the free space cannot hold them all *right now*; a batch larger
  /// than the capacity can never succeed and is INVALID_ARGUMENT instead
  /// (retrying it would spin forever — use push_all, which chunks).
  /// CLOSED after close().
  Status try_push_all(std::span<T> values) {
    if (values.empty()) return Status::ok();
    if (values.size() > capacity_)
      return Status::invalid_argument("batch exceeds queue capacity");
    {
      MutexLock lock(tail_mutex_);
      if (closed_.load(std::memory_order_relaxed))
        return Status::closed("queue closed");
      const std::size_t room =
          capacity_ - size_.load(std::memory_order_acquire);
      if (room < values.size()) return Status::would_block("queue full");
      for (T& value : values) enqueue_locked(std::move(value));
    }
    signal_not_empty(values.size());
    return Status::ok();
  }

  /// Blocking pop; nullopt when the queue is closed *and* drained.
  std::optional<T> pop() {
    UniqueLock lock(head_mutex_);
    if (!wait_for_item_locked(lock)) return std::nullopt;
    T out = dequeue_locked();
    lock.unlock();
    signal_not_full();
    return out;
  }

  /// Blocking bulk pop: waits for at least one element, then drains
  /// everything currently queued (up to `max`) in one critical section.
  /// Appends to `out`; returns the number of elements taken (0 only when
  /// the queue is closed and drained).
  std::size_t pop_all(std::vector<T>& out,
                      std::size_t max = static_cast<std::size_t>(-1)) {
    std::size_t taken = 0;
    {
      UniqueLock lock(head_mutex_);
      if (!wait_for_item_locked(lock)) return 0;
      // Only producers grow the count concurrently, so the batch observed
      // here can be drained without re-checking per element.
      std::size_t available = size_.load(std::memory_order_acquire);
      while (available > 0 && taken < max) {
        out.push_back(dequeue_locked());
        ++taken;
        --available;
      }
    }
    signal_not_full(taken);
    return taken;
  }

  /// Nonblocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lock(head_mutex_);
      if (size_.load(std::memory_order_acquire) == 0) return std::nullopt;
      out = dequeue_locked();
    }
    signal_not_full();
    return out;
  }

  /// After close(), pushes fail and pops drain the remaining items then
  /// return nullopt.  Idempotent.
  ///
  /// The closed_ store happens under tail_mutex_: a blocking push holds
  /// that mutex from its closed-check through its enqueue, so every push
  /// that was accepted has fully enqueued before closed_ becomes true —
  /// which is what lets a consumer treat "size == 0 read *after* closed
  /// was observed" as proof the queue is drained (see
  /// wait_for_item_locked).  With the store outside the mutex, a push
  /// could pass its check, lose the CPU, and enqueue after every consumer
  /// had already concluded closed-and-empty — an accepted item silently
  /// stranded (caught by the close-race stress test).
  void close() {
    {
      MutexLock lock(tail_mutex_);
      closed_.store(true, std::memory_order_seq_cst);
      not_full_.notify_all();
    }
    {
      MutexLock lock(head_mutex_);
      not_empty_.notify_all();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_seq_cst);
  }

 private:
  // Waiting protocol: a side registers itself in waiting_* *before*
  // re-checking the count, and the other side checks waiting_* *after*
  // updating the count (both seq_cst).  Whichever ordering the race takes,
  // either the waiter sees the new count and skips the wait, or the
  // notifier sees the waiter and takes the waiter's mutex to signal —
  // never a lost wakeup.  The notifier acquires the mutex only when a
  // waiter is actually registered, so uncontended traffic never crosses
  // to the other side's lock.
  //
  // Close/drain audit (multi-worker shutdown relies on this; stressed by
  // tests/shm_queue_stress_test):
  //  * close() notifies *unconditionally* under each mutex — it does not
  //    gate on the waiting_* counts.  A waiter between its registration
  //    and its cv wait holds the mutex for that whole window, so close()'s
  //    notify cannot fire inside it: either the waiter re-checks closed_
  //    (seq_cst, after the store) and skips the wait, or it waits first
  //    and the notify — serialized behind the mutex — reaches it.
  //  * A consumer blocked in wait_for_item_locked observes close promptly
  //    even when another consumer's pop_all drains the last batch: the
  //    drain happens under head_mutex_, the blocked consumer re-checks
  //    (size, closed_) on every wakeup, and close()'s notify_all is not
  //    consumed by the draining consumer (it holds the mutex, it is not
  //    on the condvar).
  //  * The audit's stress test DID catch one race: a push that passed its
  //    closed-check could enqueue after every consumer had concluded
  //    closed-and-empty, stranding an accepted item.  Two-part fix:
  //    close() stores closed_ under tail_mutex_ (an accepted enqueue now
  //    strictly precedes the close), and a consumer declares the queue
  //    drained only from a size re-read taken AFTER it observed closed_.
  //  * An abandoned registration — a waiter increments waiting_*, then its
  //    recheck sees the count move and it skips the cv — can draw a notify
  //    into the void, but never one that another waiter needed: each
  //    notify is triggered by its own count update (seq_cst) and each
  //    waiter rechecks the count after registering (seq_cst), so a waiter
  //    registering after the notifier's counter-read must see that
  //    notifier's update and skip the wait; a waiter registering before it
  //    is seen and signalled.  The work-stealing server pool leans on this
  //    (workers bounce between the queue and stolen clients, abandoning
  //    registrations constantly); stressed by the deserter-churn case in
  //    tests/shm_queue_stress_test.
  //  * The relaxed closed_ loads in try_push/try_push_all are sound for
  //    the "pushes fail after close() returned" contract: the store now
  //    happens inside a tail critical section, so any later tail critical
  //    section observes it via the mutex ordering; a try_push genuinely
  //    concurrent with close() may land on either side, as any order-free
  //    race must — but its enqueue, like push's, precedes the store.

  /// Waits (holding tail_mutex_) until there is room; false when closed.
  bool wait_for_space_locked(UniqueLock& lock)
      DEDICORE_REQUIRES(tail_mutex_) {
    for (;;) {
      if (closed_.load(std::memory_order_seq_cst)) return false;
      if (size_.load(std::memory_order_seq_cst) < capacity_) return true;
      waiting_pushers_.fetch_add(1, std::memory_order_seq_cst);
      if (size_.load(std::memory_order_seq_cst) == capacity_ &&
          !closed_.load(std::memory_order_seq_cst))
        not_full_.wait(lock);
      waiting_pushers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// Waits (holding head_mutex_) until an item exists; false when the
  /// queue is closed and drained.
  bool wait_for_item_locked(UniqueLock& lock)
      DEDICORE_REQUIRES(head_mutex_) {
    for (;;) {
      if (size_.load(std::memory_order_seq_cst) > 0) return true;
      if (closed_.load(std::memory_order_seq_cst)) {
        // Drained only if empty when re-read AFTER closed was observed:
        // close() sets closed_ under tail_mutex_, so every accepted push
        // enqueued before it — this re-read therefore sees any late item
        // the first (pre-closed) size check raced past.
        return size_.load(std::memory_order_seq_cst) > 0;
      }
      waiting_poppers_.fetch_add(1, std::memory_order_seq_cst);
      if (size_.load(std::memory_order_seq_cst) == 0 &&
          !closed_.load(std::memory_order_seq_cst))
        not_empty_.wait(lock);
      waiting_poppers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// `produced` is how many elements the caller just made available: a
  /// bulk delivery can satisfy several waiters, so waking only one would
  /// strand the rest until unrelated traffic trickled wakeups their way.
  void signal_not_empty(std::size_t produced = 1)
      DEDICORE_EXCLUDES(head_mutex_) {
    if (produced == 0) return;
    if (waiting_poppers_.load(std::memory_order_seq_cst) > 0) {
      MutexLock lock(head_mutex_);
      if (produced > 1) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
  }

  void signal_not_full(std::size_t freed = 1)
      DEDICORE_EXCLUDES(tail_mutex_) {
    if (freed == 0) return;
    if (waiting_pushers_.load(std::memory_order_seq_cst) > 0) {
      MutexLock lock(tail_mutex_);
      if (freed > 1) {
        not_full_.notify_all();
      } else {
        not_full_.notify_one();
      }
    }
  }

  void enqueue_locked(T value) DEDICORE_REQUIRES(tail_mutex_) {
    buffer_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % capacity_;
    size_.fetch_add(1, std::memory_order_seq_cst);
  }

  T dequeue_locked() DEDICORE_REQUIRES(head_mutex_) {
    T out = std::move(buffer_[head_]);
    head_ = (head_ + 1) % capacity_;
    size_.fetch_sub(1, std::memory_order_seq_cst);
    return out;
  }

  const std::size_t capacity_;
  /// The ring storage is deliberately NOT GUARDED_BY either lock: slot
  /// buffer_[tail_] is written under tail_mutex_ and slot buffer_[head_]
  /// read under head_mutex_, and the two cursors can never alias a live
  /// slot — the atomic size_ (acquire/release) is what hands a filled
  /// slot from producer side to consumer side.  A single-mutex guard
  /// would be a lie; dual-guard is inexpressible.  Lock order when both
  /// sides meet: queue.tail before queue.head (push_all signals
  /// mid-batch while still holding the tail lock; no pop path takes the
  /// tail lock while holding the head lock).
  std::vector<T> buffer_;
  Mutex tail_mutex_{"queue.tail"};  ///< serializes producers; guards tail_
  Mutex head_mutex_{"queue.head"};  ///< serializes consumers; guards head_
  CondVar not_empty_;  ///< waited on under head_mutex_
  CondVar not_full_;   ///< waited on under tail_mutex_
  std::size_t head_ DEDICORE_GUARDED_BY(head_mutex_) = 0;
  std::size_t tail_ DEDICORE_GUARDED_BY(tail_mutex_) = 0;
  std::atomic<std::size_t> size_{0};
  std::atomic<int> waiting_pushers_{0};
  std::atomic<int> waiting_poppers_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace dedicore::shm
