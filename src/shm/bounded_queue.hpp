// Bounded multi-producer multi-consumer queue.
//
// Damaris uses a shared message queue through which simulation cores post
// events (block-written notifications, user signals, end-of-iteration,
// shutdown) to the dedicated cores.  The queue is bounded like its
// shared-memory counterpart: a full queue participates in backpressure.
//
// The implementation is a mutex/condvar ring buffer — the queue carries
// small control messages at iteration granularity, so contention is not a
// concern; correctness and blocking semantics are.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"

namespace dedicore::shm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), buffer_(capacity) {
    DEDICORE_CHECK(capacity > 0, "BoundedQueue capacity must be non-zero");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) return false;
    enqueue_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Nonblocking push; WOULD_BLOCK when full, CLOSED after close().
  Status try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::closed("queue closed");
      if (size_ == capacity_) return Status::would_block("queue full");
      enqueue_locked(std::move(value));
    }
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Blocking pop; nullopt when the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;  // closed and empty
    T out = dequeue_locked();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Nonblocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return std::nullopt;
      out = dequeue_locked();
    }
    not_full_.notify_one();
    return out;
  }

  /// After close(), pushes fail and pops drain the remaining items then
  /// return nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  void enqueue_locked(T value) {
    buffer_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % capacity_;
    ++size_;
  }

  T dequeue_locked() {
    T out = std::move(buffer_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return out;
  }

  const std::size_t capacity_;
  std::vector<T> buffer_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace dedicore::shm
