// h5lite — a self-describing scientific container format.
//
// Stands in for HDF5/pHDF5 in the reproduction: CM1 "periodically writes
// either one file per process, or a single shared file in a collective
// manner using Parallel HDF5"; Damaris's default storage plugin writes
// per-node aggregated files in the same format.  h5lite provides the
// pieces those paths need:
//
//  * a tree of named groups with typed attributes;
//  * typed n-dimensional datasets (contiguous, or chunked with optional
//    per-chunk compression via src/compress);
//  * a builder producing one contiguous byte image (written through the
//    filesystem simulator), and a reader that parses images back;
//  * `SharedLayout`, which precomputes disjoint dataset extents so many
//    writers can fill one shared file with positional writes — the
//    collective-I/O shared-file mode.
//
// Binary layout (version 1, little-endian):
//   superblock: magic "H5LITE\x00\x01" | u64 root_offset | u64 file_size
//   data blocks appended first, metadata tree last, superblock patched.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "compress/codec.hpp"

namespace dedicore::h5lite {

inline constexpr std::size_t kSuperblockSize = 8 + 8 + 8;
inline constexpr char kMagic[8] = {'H', '5', 'L', 'I', 'T', 'E', '\0', '\1'};

enum class DType : std::uint8_t {
  kInt8 = 0, kInt16, kInt32, kInt64,
  kUInt8, kUInt16, kUInt32, kUInt64,
  kFloat32, kFloat64,
};

std::size_t dtype_size(DType t) noexcept;
std::string_view dtype_name(DType t) noexcept;

/// Map a C++ arithmetic type to its DType tag.
template <typename T> constexpr DType dtype_of();
template <> constexpr DType dtype_of<std::int8_t>() { return DType::kInt8; }
template <> constexpr DType dtype_of<std::int16_t>() { return DType::kInt16; }
template <> constexpr DType dtype_of<std::int32_t>() { return DType::kInt32; }
template <> constexpr DType dtype_of<std::int64_t>() { return DType::kInt64; }
template <> constexpr DType dtype_of<std::uint8_t>() { return DType::kUInt8; }
template <> constexpr DType dtype_of<std::uint16_t>() { return DType::kUInt16; }
template <> constexpr DType dtype_of<std::uint32_t>() { return DType::kUInt32; }
template <> constexpr DType dtype_of<std::uint64_t>() { return DType::kUInt64; }
template <> constexpr DType dtype_of<float>() { return DType::kFloat32; }
template <> constexpr DType dtype_of<double>() { return DType::kFloat64; }

using AttrValue = std::variant<std::int64_t, double, std::string>;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Incrementally assembles a file image.  Dataset payloads are appended to
/// the image as they are added (so memory is the image, nothing is held
/// twice); finalize() appends the metadata tree and patches the superblock.
class FileBuilder {
 public:
  /// Opaque group id; 0 is the root.
  using GroupId = std::uint32_t;
  static constexpr GroupId kRoot = 0;

  FileBuilder();
  ~FileBuilder();  // out-of-line: GroupRecord is incomplete here
  FileBuilder(FileBuilder&&) noexcept;
  FileBuilder& operator=(FileBuilder&&) noexcept;

  /// Creates a child group; name must be unique within the parent.
  GroupId create_group(GroupId parent, std::string_view name);

  void set_attribute(GroupId group, std::string_view name, AttrValue value);

  /// Contiguous dataset; data size must equal product(dims)*dtype_size.
  void add_dataset(GroupId group, std::string_view name, DType dtype,
                   std::span<const std::uint64_t> dims,
                   std::span<const std::byte> data);

  /// Chunked dataset with optional per-chunk compression.  `chunk_dims`
  /// must have the same rank as `dims`; edge chunks are trimmed.
  void add_dataset_chunked(GroupId group, std::string_view name, DType dtype,
                           std::span<const std::uint64_t> dims,
                           std::span<const std::uint64_t> chunk_dims,
                           std::span<const std::byte> data,
                           compress::CodecId codec);

  template <typename T>
  void add_dataset(GroupId group, std::string_view name,
                   std::span<const std::uint64_t> dims,
                   std::span<const T> values) {
    add_dataset(group, name, dtype_of<T>(), dims,
                std::as_bytes(values));
  }

  /// Appends the metadata tree, patches the superblock and returns the
  /// image.  The builder is consumed.
  std::vector<std::byte> finalize() &&;

  /// Bytes accumulated so far (data blocks only, pre-metadata).
  [[nodiscard]] std::size_t data_bytes() const noexcept { return image_.size(); }

  // Implementation records; opaque to callers (defined in h5lite.cpp).
  struct DatasetRecord;
  struct GroupRecord;

 private:
  GroupRecord& group(GroupId id);
  void check_unique(const GroupRecord& g, std::string_view name) const;

  std::vector<std::byte> image_;  // superblock placeholder + data blocks
  std::vector<std::unique_ptr<GroupRecord>> groups_;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

class Dataset {
 public:
  std::string name;
  DType dtype = DType::kUInt8;
  std::vector<std::uint64_t> dims;
  std::map<std::string, AttrValue, std::less<>> attributes;

  [[nodiscard]] std::uint64_t element_count() const noexcept;
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

  /// Materializes the payload (decompressing chunks as needed).
  [[nodiscard]] std::vector<std::byte> read() const;

  template <typename T>
  [[nodiscard]] std::vector<T> read_as() const {
    DEDICORE_CHECK(dtype_of<T>() == dtype, "Dataset::read_as: dtype mismatch");
    std::vector<std::byte> raw = read();
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// On-disk footprint of the payload (post-compression); used to measure
  /// compression ratios of real files.
  [[nodiscard]] std::uint64_t stored_size() const noexcept;

 private:
  friend class File;
  friend struct DatasetAccess;
  struct Chunk {
    std::uint64_t offset, stored, raw;
  };
  const std::vector<std::byte>* image_ = nullptr;
  std::uint64_t data_offset_ = 0;  // contiguous layout
  std::uint64_t data_size_ = 0;
  bool chunked_ = false;
  compress::CodecId codec_ = compress::CodecId::kNone;
  std::vector<std::uint64_t> chunk_dims_cache_;  // chunk shape (chunked only)
  std::vector<Chunk> chunks_;
};

class Group {
 public:
  std::string name;
  std::map<std::string, AttrValue, std::less<>> attributes;
  std::vector<Group> groups;
  std::vector<Dataset> datasets;

  [[nodiscard]] const Group* find_group(std::string_view child) const noexcept;
  [[nodiscard]] const Dataset* find_dataset(std::string_view child) const noexcept;
};

/// Parsed file.  Owns the raw image; Datasets reference into it.
class File {
 public:
  /// Parses an image; throws ConfigError on malformed input.
  static File parse(std::vector<std::byte> image);

  [[nodiscard]] const Group& root() const noexcept { return root_; }

  /// Slash-separated lookup: "mesh3d/temperature".
  [[nodiscard]] const Dataset* find_dataset(std::string_view path) const;
  [[nodiscard]] const Group* find_group(std::string_view path) const;

  /// All dataset paths in the file (depth-first).
  [[nodiscard]] std::vector<std::string> dataset_paths() const;

 private:
  File() = default;
  std::unique_ptr<std::vector<std::byte>> image_;  // stable address
  Group root_;
};

// ---------------------------------------------------------------------------
// SharedLayout — collective shared-file support
// ---------------------------------------------------------------------------

/// Precomputed layout of a shared file whose datasets are filled by many
/// writers with positional writes.  All participants construct the same
/// layout deterministically from the same dataset declarations; each then
/// writes its extent at `payload_offset(i)` and rank 0 writes the header
/// image via `header_image()`.
class SharedLayout {
 public:
  struct Decl {
    std::string path;   ///< "group/name"; single-level grouping supported
    DType dtype = DType::kFloat64;
    std::vector<std::uint64_t> dims;
  };

  explicit SharedLayout(std::vector<Decl> datasets);

  [[nodiscard]] std::size_t dataset_count() const noexcept { return decls_.size(); }
  /// Byte offset of dataset i's payload inside the shared file.
  [[nodiscard]] std::uint64_t payload_offset(std::size_t i) const;
  [[nodiscard]] std::uint64_t payload_size(std::size_t i) const;
  [[nodiscard]] std::uint64_t total_size() const noexcept { return total_size_; }

  /// Superblock + metadata tree image; writing it at offset 0 (and the
  /// metadata block at `metadata_offset()`) makes the file parseable by
  /// File::parse once all payloads are in place.
  [[nodiscard]] const std::vector<std::byte>& header_image() const noexcept {
    return header_;
  }
  [[nodiscard]] std::uint64_t metadata_offset() const noexcept { return metadata_offset_; }
  [[nodiscard]] const std::vector<std::byte>& metadata_image() const noexcept {
    return metadata_;
  }

 private:
  std::vector<Decl> decls_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t metadata_offset_ = 0;
  std::uint64_t total_size_ = 0;
  std::vector<std::byte> header_;    // superblock (kSuperblockSize bytes)
  std::vector<std::byte> metadata_;  // tree at metadata_offset
};

}  // namespace dedicore::h5lite
