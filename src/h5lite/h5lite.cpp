#include "h5lite/h5lite.hpp"

#include <algorithm>
#include <cstring>

namespace dedicore::h5lite {

std::size_t dtype_size(DType t) noexcept {
  switch (t) {
    case DType::kInt8: case DType::kUInt8: return 1;
    case DType::kInt16: case DType::kUInt16: return 2;
    case DType::kInt32: case DType::kUInt32: case DType::kFloat32: return 4;
    case DType::kInt64: case DType::kUInt64: case DType::kFloat64: return 8;
  }
  return 1;
}

std::string_view dtype_name(DType t) noexcept {
  switch (t) {
    case DType::kInt8: return "int8";
    case DType::kInt16: return "int16";
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
    case DType::kUInt8: return "uint8";
    case DType::kUInt16: return "uint16";
    case DType::kUInt32: return "uint32";
    case DType::kUInt64: return "uint64";
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Low-level serialization helpers
// ---------------------------------------------------------------------------

namespace {

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}
void put_f64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}
void put_name(std::vector<std::byte>& out, std::string_view name) {
  DEDICORE_CHECK(name.size() <= 0xFFFF, "h5lite: name too long");
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  for (char ch : name) out.push_back(static_cast<std::byte>(ch));
}
void put_attr(std::vector<std::byte>& out, std::string_view name,
              const AttrValue& value) {
  put_name(out, name);
  if (std::holds_alternative<std::int64_t>(value)) {
    put_u8(out, 0);
    put_u64(out, static_cast<std::uint64_t>(std::get<std::int64_t>(value)));
  } else if (std::holds_alternative<double>(value)) {
    put_u8(out, 1);
    put_f64(out, std::get<double>(value));
  } else {
    put_u8(out, 2);
    put_name(out, std::get<std::string>(value));
  }
}

/// Cursor-based reader with bounds checking.
class Cursor {
 public:
  Cursor(const std::vector<std::byte>& image, std::uint64_t at)
      : image_(image), at_(at) {}

  std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(image_[at_++]);
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    need(2);
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(std::to_integer<std::uint8_t>(image_[at_ + static_cast<std::size_t>(i)])) << (8 * i);
    at_ += 2;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    need(8);
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(image_[at_ + static_cast<std::size_t>(i)])) << (8 * i);
    at_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string name() {
    const std::uint16_t len = u16();
    need(len);
    std::string out(len, '\0');
    std::memcpy(out.data(), image_.data() + at_, len);
    at_ += len;
    return out;
  }
  AttrValue attr_value() {
    const std::uint8_t type = u8();
    switch (type) {
      case 0: return static_cast<std::int64_t>(u64());
      case 1: return f64();
      case 2: return name();
      default: throw ConfigError("h5lite: unknown attribute type");
    }
  }

  [[nodiscard]] std::uint64_t position() const noexcept { return at_; }
  /// Bytes left between the cursor and the end of the image; used to
  /// sanity-bound table sizes *before* allocating for them.
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return at_ <= image_.size() ? image_.size() - at_ : 0;
  }

 private:
  void need(std::uint64_t n) const {
    // Subtraction form: `at_ + n` could wrap for hostile lengths.
    if (n > image_.size() || at_ > image_.size() - n)
      throw ConfigError("h5lite: truncated image");
  }
  const std::vector<std::byte>& image_;
  std::uint64_t at_;
};

std::uint64_t product(std::span<const std::uint64_t> dims) {
  std::uint64_t p = 1;
  for (auto d : dims) p *= d;
  return p;
}

/// product(dims) * elem with overflow detection — a corrupt image can
/// declare dimensions whose product wraps, making byte_size() tiny while
/// the chunk walk indexes far past the output buffer.
std::uint64_t checked_byte_size(std::span<const std::uint64_t> dims,
                                std::size_t elem) {
  std::uint64_t p = 1;
  for (auto d : dims) {
    if (d != 0 && p > UINT64_MAX / d)
      throw ConfigError("h5lite: dataset dimensions overflow");
    p *= d;
  }
  if (p > UINT64_MAX / elem)
    throw ConfigError("h5lite: dataset byte size overflows");
  return p * elem;
}

/// `offset`/`size` must describe a range inside `image` (overflow-proof).
void check_range(const std::vector<std::byte>* image, std::uint64_t offset,
                 std::uint64_t size, const char* what) {
  if (image == nullptr) return;
  if (offset > image->size() || size > image->size() - offset)
    throw ConfigError(std::string("h5lite: ") + what + " out of range");
}

}  // namespace

// ---------------------------------------------------------------------------
// FileBuilder
// ---------------------------------------------------------------------------

struct FileBuilder::DatasetRecord {
  std::string name;
  DType dtype = DType::kUInt8;
  std::vector<std::uint64_t> dims;
  std::vector<std::pair<std::string, AttrValue>> attributes;
  bool chunked = false;
  // contiguous
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  // chunked
  std::vector<std::uint64_t> chunk_dims;
  compress::CodecId codec = compress::CodecId::kNone;
  struct Chunk { std::uint64_t offset, stored, raw; };
  std::vector<Chunk> chunks;
};

struct FileBuilder::GroupRecord {
  std::string name;
  std::vector<std::pair<std::string, AttrValue>> attributes;
  std::vector<GroupId> children;
  std::vector<DatasetRecord> datasets;
};

FileBuilder::FileBuilder() {
  image_.resize(kSuperblockSize);  // patched in finalize()
  std::memcpy(image_.data(), kMagic, 8);
  groups_.push_back(std::make_unique<GroupRecord>());  // root, id 0
}

FileBuilder::~FileBuilder() = default;
FileBuilder::FileBuilder(FileBuilder&&) noexcept = default;
FileBuilder& FileBuilder::operator=(FileBuilder&&) noexcept = default;

FileBuilder::GroupRecord& FileBuilder::group(GroupId id) {
  DEDICORE_CHECK(id < groups_.size(), "h5lite: invalid group id");
  return *groups_[id];
}

void FileBuilder::check_unique(const GroupRecord& g, std::string_view name) const {
  for (GroupId c : g.children)
    if (groups_[c]->name == name)
      throw ConfigError("h5lite: duplicate name '" + std::string(name) + "' in group");
  for (const auto& d : g.datasets)
    if (d.name == name)
      throw ConfigError("h5lite: duplicate name '" + std::string(name) + "' in group");
}

FileBuilder::GroupId FileBuilder::create_group(GroupId parent, std::string_view name) {
  DEDICORE_CHECK(!finalized_, "h5lite: builder already finalized");
  GroupRecord& p = group(parent);
  check_unique(p, name);
  auto g = std::make_unique<GroupRecord>();
  g->name = std::string(name);
  const auto id = static_cast<GroupId>(groups_.size());
  groups_.push_back(std::move(g));
  p.children.push_back(id);
  return id;
}

void FileBuilder::set_attribute(GroupId id, std::string_view name, AttrValue value) {
  DEDICORE_CHECK(!finalized_, "h5lite: builder already finalized");
  group(id).attributes.emplace_back(std::string(name), std::move(value));
}

void FileBuilder::add_dataset(GroupId gid, std::string_view name, DType dtype,
                              std::span<const std::uint64_t> dims,
                              std::span<const std::byte> data) {
  DEDICORE_CHECK(!finalized_, "h5lite: builder already finalized");
  GroupRecord& g = group(gid);
  check_unique(g, name);
  if (product(dims) * dtype_size(dtype) != data.size())
    throw ConfigError("h5lite: dataset '" + std::string(name) +
                      "' data size does not match dims*dtype");
  DatasetRecord d;
  d.name = std::string(name);
  d.dtype = dtype;
  d.dims.assign(dims.begin(), dims.end());
  d.offset = image_.size();
  d.size = data.size();
  image_.insert(image_.end(), data.begin(), data.end());
  g.datasets.push_back(std::move(d));
}

void FileBuilder::add_dataset_chunked(GroupId gid, std::string_view name,
                                      DType dtype,
                                      std::span<const std::uint64_t> dims,
                                      std::span<const std::uint64_t> chunk_dims,
                                      std::span<const std::byte> data,
                                      compress::CodecId codec) {
  DEDICORE_CHECK(!finalized_, "h5lite: builder already finalized");
  if (dims.size() != chunk_dims.size() || dims.empty() || dims.size() > 8)
    throw ConfigError("h5lite: chunk rank must match dataset rank (1..8)");
  for (auto c : chunk_dims)
    if (c == 0) throw ConfigError("h5lite: zero chunk dimension");
  GroupRecord& g = group(gid);
  check_unique(g, name);
  const std::size_t elem = dtype_size(dtype);
  if (product(dims) * elem != data.size())
    throw ConfigError("h5lite: dataset '" + std::string(name) +
                      "' data size does not match dims*dtype");

  DatasetRecord d;
  d.name = std::string(name);
  d.dtype = dtype;
  d.dims.assign(dims.begin(), dims.end());
  d.chunked = true;
  d.chunk_dims.assign(chunk_dims.begin(), chunk_dims.end());
  d.codec = codec;

  const std::size_t rank = dims.size();
  // Number of chunks along each dimension.
  std::vector<std::uint64_t> grid(rank);
  for (std::size_t i = 0; i < rank; ++i)
    grid[i] = (dims[i] + chunk_dims[i] - 1) / chunk_dims[i];

  // Row-major strides of the source array, in elements.
  std::vector<std::uint64_t> stride(rank, 1);
  for (std::size_t i = rank; i-- > 1;) stride[i - 1] = stride[i] * dims[i];

  std::vector<std::uint64_t> coord(rank, 0);  // chunk coordinate
  const std::uint64_t n_chunks = product(grid);
  std::vector<std::byte> chunk_buf;
  for (std::uint64_t c = 0; c < n_chunks; ++c) {
    // Extent of this chunk (edge chunks trimmed).
    std::vector<std::uint64_t> lo(rank), extent(rank);
    std::uint64_t chunk_elems = 1;
    for (std::size_t i = 0; i < rank; ++i) {
      lo[i] = coord[i] * chunk_dims[i];
      extent[i] = std::min(chunk_dims[i], dims[i] - lo[i]);
      chunk_elems *= extent[i];
    }
    chunk_buf.resize(chunk_elems * elem);

    // Copy the chunk out row by row along the innermost dimension.
    std::vector<std::uint64_t> idx(rank, 0);  // within-chunk index
    const std::uint64_t inner = extent[rank - 1];
    std::uint64_t written = 0;
    for (;;) {
      std::uint64_t src_elem = 0;
      for (std::size_t i = 0; i < rank; ++i)
        src_elem += (lo[i] + idx[i]) * stride[i];
      std::memcpy(chunk_buf.data() + written * elem,
                  data.data() + src_elem * elem, inner * elem);
      written += inner;
      // Advance idx over all but the innermost dimension.
      std::size_t dim = rank - 1;
      for (;;) {
        if (dim == 0) goto chunk_done;
        --dim;
        if (++idx[dim] < extent[dim]) break;
        idx[dim] = 0;
      }
      if (rank == 1) break;
    }
  chunk_done:;
    DEDICORE_CHECK(written == chunk_elems, "h5lite: chunk copy accounting");

    DatasetRecord::Chunk entry;
    entry.offset = image_.size();
    entry.raw = chunk_buf.size();
    if (const compress::Codec* cc = compress::find_codec(codec)) {
      std::vector<std::byte> packed = cc->compress(chunk_buf);
      if (packed.size() < chunk_buf.size()) {
        entry.stored = packed.size();
        image_.insert(image_.end(), packed.begin(), packed.end());
      } else {
        entry.stored = entry.raw;  // stored == raw means "not compressed"
        image_.insert(image_.end(), chunk_buf.begin(), chunk_buf.end());
      }
    } else {
      entry.stored = entry.raw;
      image_.insert(image_.end(), chunk_buf.begin(), chunk_buf.end());
    }
    d.chunks.push_back(entry);

    // Next chunk coordinate (row-major).
    for (std::size_t i = rank; i-- > 0;) {
      if (++coord[i] < grid[i]) break;
      coord[i] = 0;
    }
  }
  g.datasets.push_back(std::move(d));
}

namespace {

void serialize_attrs(std::vector<std::byte>& out,
                     const std::vector<std::pair<std::string, AttrValue>>& attrs) {
  put_u16(out, static_cast<std::uint16_t>(attrs.size()));
  for (const auto& [name, value] : attrs) put_attr(out, name, value);
}

void serialize_dataset(std::vector<std::byte>& out,
                       const FileBuilder::DatasetRecord& d) {
  put_name(out, d.name);
  serialize_attrs(out, d.attributes);
  put_u8(out, static_cast<std::uint8_t>(d.dtype));
  put_u8(out, static_cast<std::uint8_t>(d.dims.size()));
  for (auto dim : d.dims) put_u64(out, dim);
  if (!d.chunked) {
    put_u8(out, 0);
    put_u64(out, d.offset);
    put_u64(out, d.size);
  } else {
    put_u8(out, 1);
    for (auto cd : d.chunk_dims) put_u64(out, cd);
    put_u8(out, static_cast<std::uint8_t>(d.codec));
    put_u64(out, d.chunks.size());
    for (const auto& c : d.chunks) {
      put_u64(out, c.offset);
      put_u64(out, c.stored);
      put_u64(out, c.raw);
    }
  }
}

}  // namespace

std::vector<std::byte> FileBuilder::finalize() && {
  DEDICORE_CHECK(!finalized_, "h5lite: builder already finalized");
  finalized_ = true;

  const std::uint64_t root_offset = image_.size();

  // Recursive group serialization.
  auto serialize_group = [&](auto&& self, GroupId id) -> void {
    const GroupRecord& g = *groups_[id];
    put_name(image_, g.name);
    serialize_attrs(image_, g.attributes);
    put_u16(image_, static_cast<std::uint16_t>(g.datasets.size()));
    for (const auto& d : g.datasets) serialize_dataset(image_, d);
    put_u16(image_, static_cast<std::uint16_t>(g.children.size()));
    for (GroupId c : g.children) self(self, c);
  };
  serialize_group(serialize_group, kRoot);

  // Patch superblock.
  std::vector<std::byte> head;
  put_u64(head, root_offset);
  put_u64(head, image_.size());
  std::memcpy(image_.data() + 8, head.data(), 16);
  return std::move(image_);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

std::uint64_t Dataset::element_count() const noexcept { return product(dims); }
std::uint64_t Dataset::byte_size() const noexcept {
  return element_count() * dtype_size(dtype);
}

std::uint64_t Dataset::stored_size() const noexcept {
  if (!chunked_) return data_size_;
  std::uint64_t total = 0;
  for (const auto& c : chunks_) total += c.stored;
  return total;
}

std::vector<std::byte> Dataset::read() const {
  DEDICORE_CHECK(image_ != nullptr, "Dataset::read: detached dataset");
  if (!chunked_) {
    if (data_offset_ > image_->size() ||
        data_size_ > image_->size() - data_offset_)
      throw ConfigError("h5lite: dataset payload out of range");
    return {image_->begin() + static_cast<std::ptrdiff_t>(data_offset_),
            image_->begin() + static_cast<std::ptrdiff_t>(data_offset_ + data_size_)};
  }

  // Reassemble chunks.  This mirrors the builder's chunk walk.
  const std::size_t rank = dims.size();
  const std::size_t elem = dtype_size(dtype);
  // byte_size() was plausibility-capped at parse time; if the machine
  // still cannot materialize it, surface the parser's error type rather
  // than leaking bad_alloc through an API that promises ConfigError.
  std::vector<std::byte> out;
  try {
    out.resize(byte_size());
  } catch (const std::bad_alloc&) {
    throw ConfigError("h5lite: dataset too large to materialize");
  } catch (const std::length_error&) {
    throw ConfigError("h5lite: dataset too large to materialize");
  }

  // Recover the chunk grid from chunk dims stored on the side during parse:
  // chunk extents were not stored per chunk, so recompute from chunk_dims_.
  // chunk_dims_ travels in `chunks_meta_dims` (set by File::parse through
  // the chunked fields below).
  DEDICORE_CHECK(!chunk_dims_cache_.empty(), "h5lite: missing chunk dims");
  const auto& chunk_dims = chunk_dims_cache_;

  std::vector<std::uint64_t> grid(rank);
  for (std::size_t i = 0; i < rank; ++i)
    grid[i] = (dims[i] + chunk_dims[i] - 1) / chunk_dims[i];
  std::vector<std::uint64_t> stride(rank, 1);
  for (std::size_t i = rank; i-- > 1;) stride[i - 1] = stride[i] * dims[i];

  if (chunks_.size() != product(grid))
    throw ConfigError("h5lite: chunk table size mismatch");

  std::vector<std::uint64_t> coord(rank, 0);
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const auto& entry = chunks_[c];
    if (entry.offset > image_->size() ||
        entry.stored > image_->size() - entry.offset)
      throw ConfigError("h5lite: chunk payload out of range");

    // Expected raw size from the (validated) grid walk — computed *before*
    // touching the codec, so a corrupt `raw` field cannot request a giant
    // decompression buffer.
    std::vector<std::uint64_t> lo(rank), extent(rank);
    std::uint64_t chunk_elems = 1;
    for (std::size_t i = 0; i < rank; ++i) {
      lo[i] = coord[i] * chunk_dims[i];
      extent[i] = std::min(chunk_dims[i], dims[i] - lo[i]);
      chunk_elems *= extent[i];
    }
    if (entry.raw != chunk_elems * elem)
      throw ConfigError("h5lite: chunk raw size mismatch");

    std::span<const std::byte> stored(image_->data() + entry.offset, entry.stored);
    std::vector<std::byte> raw;
    if (entry.stored == entry.raw) {
      raw.assign(stored.begin(), stored.end());
    } else {
      const compress::Codec* cc = compress::find_codec(codec_);
      if (cc == nullptr) throw ConfigError("h5lite: compressed chunk with no codec");
      raw = cc->decompress(stored, entry.raw);
    }
    if (raw.size() != chunk_elems * elem)
      throw ConfigError("h5lite: chunk raw size mismatch");

    std::vector<std::uint64_t> idx(rank, 0);
    const std::uint64_t inner = extent[rank - 1];
    std::uint64_t consumed = 0;
    for (;;) {
      std::uint64_t dst_elem = 0;
      for (std::size_t i = 0; i < rank; ++i)
        dst_elem += (lo[i] + idx[i]) * stride[i];
      std::memcpy(out.data() + dst_elem * elem,
                  raw.data() + consumed * elem, inner * elem);
      consumed += inner;
      std::size_t dim = rank - 1;
      for (;;) {
        if (dim == 0) goto chunk_done;
        --dim;
        if (++idx[dim] < extent[dim]) break;
        idx[dim] = 0;
      }
      if (rank == 1) break;
    }
  chunk_done:;

    for (std::size_t i = rank; i-- > 0;) {
      if (++coord[i] < grid[i]) break;
      coord[i] = 0;
    }
  }
  return out;
}

const Group* Group::find_group(std::string_view child) const noexcept {
  for (const auto& g : groups)
    if (g.name == child) return &g;
  return nullptr;
}

const Dataset* Group::find_dataset(std::string_view child) const noexcept {
  for (const auto& d : datasets)
    if (d.name == child) return &d;
  return nullptr;
}

namespace {

Dataset parse_dataset(Cursor& cur, const std::vector<std::byte>* image);
Group parse_group(Cursor& cur, const std::vector<std::byte>* image, int depth);

std::map<std::string, AttrValue, std::less<>> parse_attrs(Cursor& cur) {
  std::map<std::string, AttrValue, std::less<>> out;
  const std::uint16_t n = cur.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    std::string name = cur.name();
    out.emplace(std::move(name), cur.attr_value());
  }
  return out;
}

}  // namespace

// Dataset's private fields are set during parse; File is a friend, so the
// actual parse functions are implemented as members of a helper that File
// exposes to this translation unit.
struct DatasetAccess {
  static Dataset parse(Cursor& cur, const std::vector<std::byte>* image) {
    Dataset d;
    d.name = cur.name();
    d.attributes = parse_attrs(cur);
    const std::uint8_t dtype_tag = cur.u8();
    if (dtype_tag > static_cast<std::uint8_t>(DType::kFloat64))
      throw ConfigError("h5lite: unknown dtype tag");
    d.dtype = static_cast<DType>(dtype_tag);
    const std::uint8_t rank = cur.u8();
    if (rank == 0 || rank > 8) throw ConfigError("h5lite: bad dataset rank");
    d.dims.resize(rank);
    for (auto& dim : d.dims) dim = cur.u64();
    // Overflow-audited size: everything downstream (output buffers, chunk
    // strides) trusts product(dims) * dtype_size.
    const std::uint64_t expected_bytes =
        checked_byte_size(d.dims, dtype_size(d.dtype));
    const std::uint8_t layout = cur.u8();
    d.image_ = image;
    if (layout == 0) {
      d.data_offset_ = cur.u64();
      d.data_size_ = cur.u64();
      if (d.data_size_ != expected_bytes)
        throw ConfigError("h5lite: contiguous payload size mismatch");
      check_range(image, d.data_offset_, d.data_size_, "dataset payload");
    } else if (layout == 1) {
      d.chunked_ = true;
      d.chunk_dims_cache_.resize(rank);
      for (auto& cd : d.chunk_dims_cache_) {
        cd = cur.u64();
        if (cd == 0) throw ConfigError("h5lite: zero chunk dim");
      }
      d.codec_ = static_cast<compress::CodecId>(cur.u8());
      const std::uint64_t n = cur.u64();
      if (n > (1ull << 32)) throw ConfigError("h5lite: absurd chunk count");
      // Each table entry takes 24 bytes in the image: bound n by what the
      // image can still hold *before* resizing, or a hostile count turns
      // into a giant allocation rather than a parse error.
      if (n > cur.remaining() / 24)
        throw ConfigError("h5lite: chunk table exceeds image");
      d.chunks_.resize(n);
      std::uint64_t raw_total = 0;
      for (auto& c : d.chunks_) {
        c.offset = cur.u64();
        c.stored = cur.u64();
        c.raw = cur.u64();
        check_range(image, c.offset, c.stored, "chunk payload");
        if (c.raw > UINT64_MAX - raw_total)
          throw ConfigError("h5lite: chunk raw sizes overflow");
        raw_total += c.raw;
      }
      // The chunks partition the dataset: their raw bytes must add up to
      // exactly product(dims) * dtype_size.  This also kills images whose
      // dimension arithmetic wraps into a zero-chunk grid.
      if (raw_total != expected_bytes)
        throw ConfigError("h5lite: chunk raw sizes disagree with dims");
      // Decompression-bomb guard: the codecs can legitimately expand far
      // beyond the stored bytes (RLE encodes an arbitrary run in ~10
      // bytes), so no exact bound exists — but a dataset claiming to
      // decode to thousands of times the entire image is corruption or an
      // attack, not data.  Capping here keeps Dataset::read from being
      // talked into a multi-terabyte allocation by a few hostile u64s.
      if (image != nullptr) {
        const std::uint64_t image_size = image->size();
        const std::uint64_t cap =
            image_size > (UINT64_MAX >> 10)
                ? UINT64_MAX
                : std::max<std::uint64_t>(64ull << 20, image_size << 10);
        if (raw_total > cap)
          throw ConfigError("h5lite: chunked dataset raw size implausible");
      }
    } else {
      throw ConfigError("h5lite: unknown dataset layout");
    }
    return d;
  }
};

namespace {

Dataset parse_dataset(Cursor& cur, const std::vector<std::byte>* image) {
  return DatasetAccess::parse(cur, image);
}

Group parse_group(Cursor& cur, const std::vector<std::byte>* image, int depth) {
  if (depth > 64) throw ConfigError("h5lite: group nesting too deep");
  Group g;
  g.name = cur.name();
  g.attributes = parse_attrs(cur);
  const std::uint16_t n_datasets = cur.u16();
  g.datasets.reserve(n_datasets);
  for (std::uint16_t i = 0; i < n_datasets; ++i)
    g.datasets.push_back(parse_dataset(cur, image));
  const std::uint16_t n_groups = cur.u16();
  g.groups.reserve(n_groups);
  for (std::uint16_t i = 0; i < n_groups; ++i)
    g.groups.push_back(parse_group(cur, image, depth + 1));
  return g;
}

}  // namespace

File File::parse(std::vector<std::byte> image) {
  if (image.size() < kSuperblockSize) throw ConfigError("h5lite: image too small");
  if (std::memcmp(image.data(), kMagic, 8) != 0)
    throw ConfigError("h5lite: bad magic");
  Cursor head(image, 8);
  const std::uint64_t root_offset = head.u64();
  const std::uint64_t file_size = head.u64();
  if (file_size > image.size() || root_offset >= file_size ||
      root_offset < kSuperblockSize)
    throw ConfigError("h5lite: corrupt superblock");

  File f;
  f.image_ = std::make_unique<std::vector<std::byte>>(std::move(image));
  Cursor cur(*f.image_, root_offset);
  f.root_ = parse_group(cur, f.image_.get(), 0);
  return f;
}

const Group* File::find_group(std::string_view path) const {
  const Group* g = &root_;
  while (!path.empty() && g != nullptr) {
    const auto slash = path.find('/');
    const std::string_view head = path.substr(0, slash);
    g = g->find_group(head);
    if (slash == std::string_view::npos) break;
    path = path.substr(slash + 1);
  }
  return g;
}

const Dataset* File::find_dataset(std::string_view path) const {
  const auto slash = path.rfind('/');
  if (slash == std::string_view::npos) return root_.find_dataset(path);
  const Group* g = find_group(path.substr(0, slash));
  return g ? g->find_dataset(path.substr(slash + 1)) : nullptr;
}

std::vector<std::string> File::dataset_paths() const {
  std::vector<std::string> out;
  auto walk = [&](auto&& self, const Group& g, const std::string& prefix) -> void {
    for (const auto& d : g.datasets) out.push_back(prefix + d.name);
    for (const auto& child : g.groups)
      self(self, child, prefix + child.name + "/");
  };
  walk(walk, root_, "");
  return out;
}

// ---------------------------------------------------------------------------
// SharedLayout
// ---------------------------------------------------------------------------

SharedLayout::SharedLayout(std::vector<Decl> datasets)
    : decls_(std::move(datasets)) {
  if (decls_.empty()) throw ConfigError("SharedLayout: no datasets");

  // Payloads packed after the superblock, 8-byte aligned.
  std::uint64_t cursor = kSuperblockSize;
  offsets_.reserve(decls_.size());
  for (const auto& d : decls_) {
    cursor = (cursor + 7) / 8 * 8;
    offsets_.push_back(cursor);
    cursor += product(d.dims) * dtype_size(d.dtype);
  }
  metadata_offset_ = cursor;

  // Group the declarations by their single-level path prefix and serialize
  // the metadata tree with contiguous layouts pointing at the payload
  // offsets.  Everyone building the same decls gets an identical image.
  struct Entry { std::size_t index; std::string leaf; };
  std::vector<std::pair<std::string, std::vector<Entry>>> by_group;
  auto group_of = [&](const std::string& path) -> std::pair<std::string, std::string> {
    const auto slash = path.rfind('/');
    if (slash == std::string::npos) return {"", path};
    return {path.substr(0, slash), path.substr(slash + 1)};
  };
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    auto [grp, leaf] = group_of(decls_[i].path);
    if (grp.find('/') != std::string::npos)
      throw ConfigError("SharedLayout: at most one group level supported");
    auto it = std::find_if(by_group.begin(), by_group.end(),
                           [&](const auto& p) { return p.first == grp; });
    if (it == by_group.end()) {
      by_group.emplace_back(grp, std::vector<Entry>{});
      it = by_group.end() - 1;
    }
    it->second.push_back(Entry{i, leaf});
  }

  auto serialize_decl = [&](std::vector<std::byte>& out, const Entry& e) {
    const Decl& d = decls_[e.index];
    put_name(out, e.leaf);
    put_u16(out, 0);  // no attributes
    put_u8(out, static_cast<std::uint8_t>(d.dtype));
    put_u8(out, static_cast<std::uint8_t>(d.dims.size()));
    for (auto dim : d.dims) put_u64(out, dim);
    put_u8(out, 0);  // contiguous
    put_u64(out, offsets_[e.index]);
    put_u64(out, product(d.dims) * dtype_size(d.dtype));
  };

  // Root group.
  put_name(metadata_, "");
  put_u16(metadata_, 0);  // attrs
  std::vector<Entry>* root_entries = nullptr;
  std::size_t n_child_groups = 0;
  for (auto& [grp, entries] : by_group) {
    if (grp.empty()) root_entries = &entries;
    else ++n_child_groups;
  }
  put_u16(metadata_, static_cast<std::uint16_t>(root_entries ? root_entries->size() : 0));
  if (root_entries)
    for (const auto& e : *root_entries) serialize_decl(metadata_, e);
  put_u16(metadata_, static_cast<std::uint16_t>(n_child_groups));
  for (auto& [grp, entries] : by_group) {
    if (grp.empty()) continue;
    put_name(metadata_, grp);
    put_u16(metadata_, 0);  // attrs
    put_u16(metadata_, static_cast<std::uint16_t>(entries.size()));
    for (const auto& e : entries) serialize_decl(metadata_, e);
    put_u16(metadata_, 0);  // no nested groups
  }

  total_size_ = metadata_offset_ + metadata_.size();

  header_.resize(kSuperblockSize);
  std::memcpy(header_.data(), kMagic, 8);
  std::vector<std::byte> tail;
  put_u64(tail, metadata_offset_);
  put_u64(tail, total_size_);
  std::memcpy(header_.data() + 8, tail.data(), 16);
}

std::uint64_t SharedLayout::payload_offset(std::size_t i) const {
  DEDICORE_CHECK(i < offsets_.size(), "SharedLayout: dataset index out of range");
  return offsets_[i];
}

std::uint64_t SharedLayout::payload_size(std::size_t i) const {
  DEDICORE_CHECK(i < decls_.size(), "SharedLayout: dataset index out of range");
  return product(decls_[i].dims) * dtype_size(decls_[i].dtype);
}

}  // namespace dedicore::h5lite
