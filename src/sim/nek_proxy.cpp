#include "sim/nek_proxy.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace dedicore::sim {

NekProxy::NekProxy(const NekConfig& config) : config_(config) {
  DEDICORE_CHECK(config.nx >= 4 && config.ny >= 4 && config.nz >= 4,
                 "NekProxy: grid must be at least 4^3");
  DEDICORE_CHECK(config.modes >= 1 && config.modes <= 16,
                 "NekProxy: modes must be in 1..16");
  Rng rng(config.seed + static_cast<std::uint64_t>(config.rank) * 0x51ull);
  for (int mx = 1; mx <= config.modes; ++mx) {
    for (int my = 1; my <= config.modes; ++my) {
      for (int mz = 1; mz <= config.modes; ++mz) {
        Mode m;
        m.kx = mx;
        m.ky = my;
        m.kz = mz;
        const double k2 = static_cast<double>(mx * mx + my * my + mz * mz);
        m.amplitude = rng.uniform(0.5, 1.0) / k2;  // Kolmogorov-ish spectrum
        m.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        m.frequency = std::sqrt(k2);
        modes_.push_back(m);
      }
    }
  }
  field_.assign(static_cast<std::size_t>(config.nx * config.ny * config.nz), 0.0);
  evaluate();
}

void NekProxy::step() {
  const double decay = std::exp(-config_.viscosity * config_.dt);
  for (Mode& m : modes_) {
    const double k2 = m.kx * m.kx + m.ky * m.ky + m.kz * m.kz;
    m.amplitude *= std::pow(decay, k2 / 3.0);  // viscosity hits high modes harder
    m.phase += m.frequency * config_.dt;
  }
  ++step_;
  evaluate();
}

void NekProxy::evaluate() {
  const double tau = 2.0 * std::numbers::pi;
  const double sx = tau / static_cast<double>(config_.nx);
  const double sy = tau / static_cast<double>(config_.ny);
  const double sz = tau / static_cast<double>(config_.nz);
  // Rank offset shifts the sampled window so each rank sees its own part
  // of the (periodic) global vortex lattice.
  const double x0 = static_cast<double>(config_.rank) *
                    static_cast<double>(config_.nx);

  std::size_t i = 0;
  for (std::uint64_t x = 0; x < config_.nx; ++x) {
    for (std::uint64_t y = 0; y < config_.ny; ++y) {
      for (std::uint64_t z = 0; z < config_.nz; ++z, ++i) {
        const double px = (x0 + static_cast<double>(x)) * sx;
        const double py = static_cast<double>(y) * sy;
        const double pz = static_cast<double>(z) * sz;
        double u = 0, v = 0, w = 0;
        for (const Mode& m : modes_) {
          const double arg_x = m.kx * px + m.phase;
          const double arg_y = m.ky * py + m.phase * 0.7;
          const double arg_z = m.kz * pz + m.phase * 1.3;
          // Taylor–Green-style solenoidal triple.
          u += m.amplitude * std::cos(arg_x) * std::sin(arg_y) * std::sin(arg_z);
          v += m.amplitude * std::sin(arg_x) * std::cos(arg_y) * std::sin(arg_z);
          w += -2.0 * m.amplitude * std::sin(arg_x) * std::sin(arg_y) * std::cos(arg_z);
        }
        field_[i] = std::sqrt(u * u + v * v + w * w);
      }
    }
  }
}

double NekProxy::spectral_energy() const {
  double energy = 0.0;
  for (const Mode& m : modes_) energy += m.amplitude * m.amplitude;
  return energy;
}

}  // namespace dedicore::sim
