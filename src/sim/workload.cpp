#include "sim/workload.hpp"

namespace dedicore::sim {

core::Configuration make_cm1_configuration(const Cm1WorkloadOptions& options) {
  core::Configuration cfg;
  cfg.set_simulation_name("cm1");
  cfg.set_architecture(options.cores_per_node, options.dedicated_cores);
  cfg.set_dedicated_mode(options.dedicated_mode, options.dedicated_nodes);
  cfg.set_buffer(options.buffer_size, options.queue_capacity, options.policy);

  core::LayoutSpec grid;
  grid.name = "grid3d";
  grid.dtype = h5lite::DType::kFloat32;
  grid.extents = {options.nx, options.ny, options.nz};
  cfg.add_layout(grid);

  core::MeshSpec mesh;
  mesh.name = "atmosphere";
  mesh.type = "rectilinear";
  cfg.add_mesh(mesh);

  for (const char* name : {"theta", "qv", "u", "v", "w"}) {
    core::VariableSpec v;
    v.name = name;
    v.layout = "grid3d";
    v.mesh = "atmosphere";
    v.group = "fields";
    cfg.add_variable(v);
  }

  core::StorageSpec storage;
  storage.basename = options.basename;
  storage.codec = options.codec;
  storage.stripe_count = options.stripe_count;
  storage.scheduler = options.scheduler;
  storage.max_concurrent_nodes = options.max_concurrent_nodes;
  cfg.set_storage(storage);

  core::ActionSpec store;
  store.event = "end_iteration";
  store.plugin = "store";
  cfg.add_action(store);

  cfg.validate();
  return cfg;
}

Cm1Config make_cm1_proxy_config(const Cm1WorkloadOptions& options, int rank,
                                int world_size) {
  Cm1Config cfg;
  cfg.nx = options.nx;
  cfg.ny = options.ny;
  cfg.nz = options.nz;
  cfg.rank = rank;
  cfg.world_size = world_size;
  return cfg;
}

core::Configuration make_nek_configuration(const NekWorkloadOptions& options) {
  core::Configuration cfg;
  cfg.set_simulation_name("nek5000");
  cfg.set_architecture(options.cores_per_node, options.dedicated_cores);
  cfg.set_dedicated_mode(options.dedicated_mode, options.dedicated_nodes);
  cfg.set_buffer(options.buffer_size, 4096, options.policy);

  core::LayoutSpec grid;
  grid.name = "spectral3d";
  grid.dtype = h5lite::DType::kFloat64;
  grid.extents = {options.nx, options.ny, options.nz};
  cfg.add_layout(grid);

  core::VariableSpec v;
  v.name = "vel_mag";
  v.layout = "spectral3d";
  cfg.add_variable(v);

  core::StorageSpec storage;
  storage.basename = "nek";
  cfg.set_storage(storage);

  core::ActionSpec viz;
  viz.event = "end_iteration";
  viz.plugin = "vislite";
  viz.params["variable"] = "vel_mag";
  viz.params["isovalue"] = options.isovalue;
  viz.params["width"] = std::to_string(options.render_size);
  viz.params["height"] = std::to_string(options.render_size);
  viz.params["write_image"] = options.write_images ? "true" : "false";
  cfg.add_action(viz);

  cfg.validate();
  return cfg;
}

std::uint64_t cm1_bytes_per_core(std::uint64_t nx, std::uint64_t ny,
                                 std::uint64_t nz, int fields_3d,
                                 int bytes_per_value) {
  return nx * ny * nz * static_cast<std::uint64_t>(fields_3d) *
         static_cast<std::uint64_t>(bytes_per_value);
}

}  // namespace dedicore::sim
