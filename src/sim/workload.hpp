// Workload / configuration generators shared by tests, benches and
// examples: they build the Configuration objects matching the paper's
// experimental setups so that every harness uses identical constants.
#pragma once

#include <cstdint>
#include <string>

#include "core/configuration.hpp"
#include "sim/cm1_proxy.hpp"

namespace dedicore::sim {

/// Options for the CM1-style experiment configuration.
struct Cm1WorkloadOptions {
  std::uint64_t nx = 24, ny = 24, nz = 24;  ///< per-core block
  int cores_per_node = 12;                   ///< Kraken XT5 topology
  int dedicated_cores = 1;
  /// Deployment topology: dedicated cores per node (shm transport) or
  /// dedicated I/O nodes at the end of the world (mpi transport).
  core::DedicatedMode dedicated_mode = core::DedicatedMode::kCores;
  int dedicated_nodes = 1;                   ///< kNodes mode only
  std::uint64_t buffer_size = 256ull << 20;
  std::size_t queue_capacity = 4096;
  core::BackpressurePolicy policy = core::BackpressurePolicy::kBlock;
  std::string codec = "none";
  std::string scheduler = "greedy";
  int max_concurrent_nodes = 0;
  int stripe_count = 0;
  std::string basename = "cm1";
};

/// CM1's output set (theta, qv, u, v, w as float32 blocks of nx*ny*nz),
/// one rectilinear mesh, storage + actions bound to "store".
core::Configuration make_cm1_configuration(const Cm1WorkloadOptions& options);

/// Matching proxy config for one rank.
Cm1Config make_cm1_proxy_config(const Cm1WorkloadOptions& options, int rank,
                                int world_size);

/// Nek5000-style single-variable (velocity magnitude, float64) config with
/// a "vislite" action bound to end_iteration.
struct NekWorkloadOptions {
  std::uint64_t nx = 24, ny = 24, nz = 24;
  int cores_per_node = 8;
  int dedicated_cores = 1;
  core::DedicatedMode dedicated_mode = core::DedicatedMode::kCores;
  int dedicated_nodes = 1;                   ///< kNodes mode only
  std::uint64_t buffer_size = 256ull << 20;
  core::BackpressurePolicy policy = core::BackpressurePolicy::kSkipIteration;
  bool write_images = false;
  int render_size = 96;
  std::string isovalue = "mean";
};

core::Configuration make_nek_configuration(const NekWorkloadOptions& options);

/// Paper-scale constants used by the model layer (src/model) and recorded
/// in EXPERIMENTS.md: CM1 on Kraken wrote ~37 3-D fields + 2-D slices per
/// output step; this helper returns the bytes one core contributes per
/// output iteration for a given per-core grid.
std::uint64_t cm1_bytes_per_core(std::uint64_t nx, std::uint64_t ny,
                                 std::uint64_t nz, int fields_3d = 37,
                                 int bytes_per_value = 4);

}  // namespace dedicore::sim
