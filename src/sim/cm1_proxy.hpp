// CM1-like atmospheric simulation proxy.
//
// The paper evaluates Damaris with CM1 (Bryan & Fritsch), "a benchmark
// simulation for moist nonhydrostatic numerical models", whose two
// properties the experiments rely on are:
//   1. weak-scalable computation phases with extremely predictable run
//      time ("the unpredictability in run time only comes from I/O");
//   2. a large multi-variable 3-D output written every few time steps.
//
// The proxy reproduces both: a real finite-difference advection–diffusion
// kernel over a set of smooth 3-D fields (theta, qv, u, v, w — a thermal
// bubble rising through a sheared wind), plus a calibrated-cost mode that
// replaces the kernel with a fixed busy-wait for oversubscribed
// large-rank-count runs where per-rank compute must stay predictable.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace dedicore::sim {

struct Cm1Config {
  // Local (per-rank) grid.
  std::uint64_t nx = 24, ny = 24, nz = 24;
  double dx = 100.0;        ///< grid spacing (m)
  double dt = 1.0;          ///< time step (s)
  double diffusivity = 15.0;
  double wind_u = 8.0, wind_v = 3.0;  ///< background advection (m/s)
  /// Ranks tile the global domain along x; rank r covers
  /// [r*nx, (r+1)*nx) in global coordinates.
  int rank = 0;
  int world_size = 1;
  std::uint64_t seed = 7;
};

class Cm1Proxy {
 public:
  explicit Cm1Proxy(const Cm1Config& config);

  /// Advances one time step with the real stencil kernel.
  void step();

  /// Advances "one time step" by spinning for `seconds` instead of
  /// computing — calibrated mode for scale sweeps.
  static void step_calibrated(double seconds);

  [[nodiscard]] std::int64_t current_step() const noexcept { return step_; }
  [[nodiscard]] const Cm1Config& config() const noexcept { return config_; }

  /// Field accessors (row-major, z-fastest, float32 as CM1 writes).
  [[nodiscard]] std::span<const float> theta() const noexcept { return theta_; }
  [[nodiscard]] std::span<const float> qv() const noexcept { return qv_; }
  [[nodiscard]] std::span<const float> u() const noexcept { return u_; }
  [[nodiscard]] std::span<const float> v() const noexcept { return v_; }
  [[nodiscard]] std::span<const float> w() const noexcept { return w_; }

  /// All fields by name — the iteration's output set.
  [[nodiscard]] std::map<std::string, std::span<const float>> fields() const;

  /// Byte views (what I/O paths consume).
  [[nodiscard]] std::map<std::string, std::span<const std::byte>> field_bytes() const;

  /// Global element offset of this rank's block ({x, y, z}).
  [[nodiscard]] std::vector<std::uint64_t> global_offset() const;

  /// Field extents {nx, ny, nz} — the layout every field uses.
  [[nodiscard]] std::vector<std::uint64_t> extents() const;

  /// Conservation diagnostic: total theta mass (tested to be stable under
  /// pure diffusion, drifting only via the surface source term).
  [[nodiscard]] double theta_total() const;

 private:
  [[nodiscard]] std::size_t at(std::uint64_t x, std::uint64_t y,
                               std::uint64_t z) const noexcept {
    return static_cast<std::size_t>((x * config_.ny + y) * config_.nz + z);
  }
  void apply_stencil(std::vector<float>& field, double diffusivity) const;

  Cm1Config config_;
  std::int64_t step_ = 0;
  std::vector<float> theta_, qv_, u_, v_, w_;
  std::vector<float> scratch_;
};

}  // namespace dedicore::sim
