// Nek5000-like CFD proxy for the in-situ visualization experiments (§V.C).
//
// Nek5000 is a spectral-element Navier–Stokes solver; what the experiments
// need from it is a smoothly evolving vortical velocity field whose
// magnitude produces interesting isosurfaces.  The proxy synthesizes a
// Taylor–Green-style vortex lattice with time-evolving mode amplitudes
// (a genuinely spectral representation, evaluated on the grid each step).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace dedicore::sim {

struct NekConfig {
  std::uint64_t nx = 24, ny = 24, nz = 24;
  int modes = 4;            ///< spectral modes per axis
  double viscosity = 0.02;  ///< decay rate of high modes
  double dt = 0.05;
  int rank = 0;
  int world_size = 1;
  std::uint64_t seed = 11;
};

class NekProxy {
 public:
  explicit NekProxy(const NekConfig& config);

  /// Advances the spectral coefficients and re-evaluates the field.
  void step();

  [[nodiscard]] std::int64_t current_step() const noexcept { return step_; }

  /// Velocity magnitude on the grid (float64, row-major z-fastest).
  [[nodiscard]] std::span<const double> velocity_magnitude() const noexcept {
    return field_;
  }
  [[nodiscard]] std::span<const std::byte> field_bytes() const noexcept {
    return std::as_bytes(std::span<const double>(field_));
  }

  [[nodiscard]] std::vector<std::uint64_t> extents() const {
    return {config_.nx, config_.ny, config_.nz};
  }

  /// Spectral energy (sum of squared mode amplitudes) — decays
  /// monotonically under viscosity; used as a physics sanity check.
  [[nodiscard]] double spectral_energy() const;

 private:
  void evaluate();

  NekConfig config_;
  std::int64_t step_ = 0;
  struct Mode {
    double kx, ky, kz;   ///< wavenumbers
    double amplitude;
    double phase;
    double frequency;    ///< phase advance per unit time
  };
  std::vector<Mode> modes_;
  std::vector<double> field_;
};

}  // namespace dedicore::sim
