#include "sim/cm1_proxy.hpp"

#include <cmath>
#include <numbers>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace dedicore::sim {

Cm1Proxy::Cm1Proxy(const Cm1Config& config) : config_(config) {
  DEDICORE_CHECK(config.nx >= 4 && config.ny >= 4 && config.nz >= 4,
                 "Cm1Proxy: grid must be at least 4^3");
  DEDICORE_CHECK(config.rank >= 0 && config.rank < config.world_size,
                 "Cm1Proxy: rank out of range");
  const std::size_t n =
      static_cast<std::size_t>(config.nx * config.ny * config.nz);
  theta_.assign(n, 300.0f);  // isentropic base state (K)
  qv_.assign(n, 0.0f);
  u_.assign(n, static_cast<float>(config.wind_u));
  v_.assign(n, static_cast<float>(config.wind_v));
  w_.assign(n, 0.0f);
  scratch_.assign(n, 0.0f);

  // Warm thermal bubble, offset per rank so every domain differs; a small
  // random perturbation seeds turbulence-like variation.
  Rng rng(config.seed + static_cast<std::uint64_t>(config.rank) * 0x9e37ull);
  const double cx = static_cast<double>(config.nx) * (0.3 + 0.4 * rng.next_double());
  const double cy = static_cast<double>(config.ny) * 0.5;
  const double cz = static_cast<double>(config.nz) * 0.25;
  const double radius = static_cast<double>(config.nz) * 0.2;
  for (std::uint64_t x = 0; x < config.nx; ++x) {
    for (std::uint64_t y = 0; y < config.ny; ++y) {
      for (std::uint64_t z = 0; z < config.nz; ++z) {
        const double dxr = (static_cast<double>(x) - cx) / radius;
        const double dyr = (static_cast<double>(y) - cy) / radius;
        const double dzr = (static_cast<double>(z) - cz) / radius;
        const double r2 = dxr * dxr + dyr * dyr + dzr * dzr;
        if (r2 < 1.0) {
          const double bump = 3.0 * std::cos(0.5 * std::numbers::pi * std::sqrt(r2));
          theta_[at(x, y, z)] += static_cast<float>(bump);
          qv_[at(x, y, z)] += static_cast<float>(0.01 * bump);
        }
        // Seed perturbation only inside the bubble: real CM1 fields are
        // smooth outside active regions, which is what makes the paper's
        // 600% compression possible.
        if (r2 < 1.0)
          theta_[at(x, y, z)] += static_cast<float>(0.01 * rng.normal());
      }
    }
  }
}

void Cm1Proxy::apply_stencil(std::vector<float>& field, double diffusivity) const {
  // Explicit 7-point diffusion + first-order upwind advection by the
  // background wind.  Neumann (copy) boundaries.
  const double k = diffusivity * config_.dt / (config_.dx * config_.dx);
  const double cu = config_.wind_u * config_.dt / config_.dx;
  const double cv = config_.wind_v * config_.dt / config_.dx;
  auto& out = const_cast<std::vector<float>&>(scratch_);

  const std::uint64_t nx = config_.nx, ny = config_.ny, nz = config_.nz;
  for (std::uint64_t x = 0; x < nx; ++x) {
    const std::uint64_t xm = x > 0 ? x - 1 : 0;
    const std::uint64_t xp = x + 1 < nx ? x + 1 : nx - 1;
    for (std::uint64_t y = 0; y < ny; ++y) {
      const std::uint64_t ym = y > 0 ? y - 1 : 0;
      const std::uint64_t yp = y + 1 < ny ? y + 1 : ny - 1;
      for (std::uint64_t z = 0; z < nz; ++z) {
        const std::uint64_t zm = z > 0 ? z - 1 : 0;
        const std::uint64_t zp = z + 1 < nz ? z + 1 : nz - 1;
        const double center = field[at(x, y, z)];
        const double lap = field[at(xm, y, z)] + field[at(xp, y, z)] +
                           field[at(x, ym, z)] + field[at(x, yp, z)] +
                           field[at(x, y, zm)] + field[at(x, y, zp)] -
                           6.0 * center;
        // Upwind: wind_u, wind_v assumed positive (defaults are).
        const double adv = cu * (center - field[at(xm, y, z)]) +
                           cv * (center - field[at(x, ym, z)]);
        out[at(x, y, z)] = static_cast<float>(center + k * lap - adv);
      }
    }
  }
  field.swap(out);
}

void Cm1Proxy::step() {
  apply_stencil(theta_, config_.diffusivity);
  apply_stencil(qv_, config_.diffusivity * 0.7);

  // Buoyancy couples theta into vertical velocity, which stirs the winds —
  // enough physics to keep the fields evolving and spatially smooth.
  const std::uint64_t nx = config_.nx, ny = config_.ny, nz = config_.nz;
  for (std::uint64_t x = 0; x < nx; ++x)
    for (std::uint64_t y = 0; y < ny; ++y)
      for (std::uint64_t z = 0; z < nz; ++z) {
        const float buoy = (theta_[at(x, y, z)] - 300.0f) * 0.01f;
        w_[at(x, y, z)] = 0.98f * w_[at(x, y, z)] + buoy;
      }
  apply_stencil(w_, config_.diffusivity * 0.5);
  ++step_;
}

void Cm1Proxy::step_calibrated(double seconds) { spin_seconds(seconds); }

std::map<std::string, std::span<const float>> Cm1Proxy::fields() const {
  return {{"theta", theta()}, {"qv", qv()}, {"u", u()}, {"v", v()}, {"w", w()}};
}

std::map<std::string, std::span<const std::byte>> Cm1Proxy::field_bytes() const {
  std::map<std::string, std::span<const std::byte>> out;
  for (const auto& [name, values] : fields())
    out.emplace(name, std::as_bytes(values));
  return out;
}

std::vector<std::uint64_t> Cm1Proxy::global_offset() const {
  return {static_cast<std::uint64_t>(config_.rank) * config_.nx, 0, 0};
}

std::vector<std::uint64_t> Cm1Proxy::extents() const {
  return {config_.nx, config_.ny, config_.nz};
}

double Cm1Proxy::theta_total() const {
  double total = 0.0;
  for (float v : theta_) total += v;
  return total;
}

}  // namespace dedicore::sim
