// Parameters and virtual-time primitives of the parallel-file-system model.
//
// The paper's experiments ran against Lustre on Kraken (336 OSTs, one
// metadata server) and PVFS on Grid'5000.  Every effect the paper reports
// is a consequence of three storage properties, which this model captures:
//
//  1. a single metadata server that serializes file creates/opens — the
//     file-per-process approach pays O(#processes) serialized MDS ops;
//  2. object storage targets (OSTs) with finite bandwidth, fair-shared
//     among concurrent streams — collective I/O from thousands of clients
//     hits every OST at once and each stream crawls;
//  3. heavy-tailed per-operation jitter plus background interference from
//     other jobs — the "orders of magnitude" variability of section IV.B.
//
// This header holds the pure virtual-time pieces (usable from the DES
// replay); filesystem.hpp wraps them for real blocking threads.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace dedicore::fsim {

/// Model parameters.  Times are in *simulated seconds*, sizes in bytes,
/// bandwidths in bytes per simulated second.  Defaults approximate one
/// Kraken-class I/O subsystem scaled to a small test rig; the experiment
/// drivers in src/model override them with the calibrated constants listed
/// in EXPERIMENTS.md.
struct StorageConfig {
  int ost_count = 8;                  ///< number of object storage targets
  double ost_bandwidth = 400e6;       ///< per-OST streaming bandwidth (B/s)
  double mds_op_cost = 1.5e-3;        ///< serialized metadata op cost (s)
  std::uint64_t stripe_size = 1u << 20;  ///< bytes per stripe chunk
  int default_stripe_count = 1;       ///< OSTs per file unless overridden
  double request_latency = 5e-4;      ///< fixed per-write RPC latency (s)

  // Jitter: multiplicative lognormal factor applied per write, unit mean;
  // with probability `spike_probability` an additional bounded-Pareto
  // straggler factor in [1, spike_max] with tail index `spike_alpha`.
  double jitter_sigma = 0.25;
  double spike_probability = 0.02;
  double spike_max = 64.0;
  double spike_alpha = 1.1;

  // Background interference from other jobs sharing the machine: an on/off
  // process per OST; while "on" it consumes `interference_share` of the
  // OST's bandwidth.
  double interference_on_rate = 0.05;   ///< transitions to on (per sim s)
  double interference_off_rate = 0.25;  ///< transitions to off (per sim s)
  double interference_share = 0.5;      ///< bandwidth fraction stolen while on

  std::uint64_t seed = 42;

  void validate() const;
};

/// Heavy-tailed per-operation slowdown factor, >= ~lognormal with unit
/// median and occasional Pareto stragglers.
class JitterModel {
 public:
  JitterModel(const StorageConfig& config, Rng rng)
      : sigma_(config.jitter_sigma),
        spike_probability_(config.spike_probability),
        spike_max_(config.spike_max),
        spike_alpha_(config.spike_alpha),
        rng_(rng) {}

  double factor() noexcept {
    double f = rng_.lognormal(0.0, sigma_);
    if (spike_probability_ > 0.0 && rng_.chance(spike_probability_))
      f *= rng_.bounded_pareto(1.0, spike_max_, spike_alpha_);
    return f;
  }

 private:
  double sigma_, spike_probability_, spike_max_, spike_alpha_;
  Rng rng_;
};

/// On/off background-interference process for one OST, evaluated lazily in
/// virtual time.  available_fraction(t) is deterministic per seed.
class InterferenceProcess {
 public:
  InterferenceProcess(const StorageConfig& config, Rng rng);

  /// Fraction of the OST bandwidth available to the application at time t.
  /// Monotone non-decreasing calls in t (lazy evaluation advances state).
  double available_fraction(double t);

  /// Average available fraction over [t0, t1] (integrates the process).
  double average_available(double t0, double t1);

 private:
  void advance_to(double t);

  double on_rate_, off_rate_, share_;
  Rng rng_;
  bool on_ = false;
  double state_until_ = 0.0;  ///< current on/off phase ends at this time
};

/// FIFO queue server in virtual time — the metadata server.  submit()
/// returns the completion time of an op arriving at `now` with the given
/// service demand; ops are served one at a time in arrival order.
class QueueServer {
 public:
  /// Arrival at `now`, service time `service`; returns completion time.
  double submit(double now, double service);

  [[nodiscard]] double busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] std::uint64_t operations() const noexcept { return operations_; }
  /// Total time ops spent queued (not being served).
  [[nodiscard]] double total_queue_wait() const noexcept { return total_wait_; }

 private:
  double busy_until_ = 0.0;
  std::uint64_t operations_ = 0;
  double total_wait_ = 0.0;
};

/// Virtual-time processor-sharing server: concurrent flows share the
/// bandwidth equally (the standard model of an OST or network link).
///
/// Usage from a discrete-event loop:
///   advance_to(now); id = submit(now, bytes);
///   ... t = next_completion_time(); completed = complete_at(t); ...
class SharedLink {
 public:
  using FlowId = std::uint64_t;
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  explicit SharedLink(double bandwidth);

  /// Moves virtual time forward, draining remaining bytes at the current
  /// fair-share rates.  `now` must be >= the current time.
  void advance_to(double now);

  /// Registers a flow of `bytes` at time `now` (implies advance_to(now)).
  FlowId submit(double now, double bytes);

  /// Time at which the next active flow finishes, assuming no further
  /// arrivals; kNever when idle.
  [[nodiscard]] double next_completion_time() const;

  /// Advances to `t` (which must equal next_completion_time()) and returns
  /// the flows that finish there.
  std::vector<FlowId> complete_at(double t);

  /// Scales the effective bandwidth (interference); takes effect from the
  /// current virtual time.
  void set_bandwidth_factor(double factor);

  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Cumulative time with at least one active flow (utilization numerator).
  [[nodiscard]] double busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] double bytes_served() const noexcept { return bytes_served_; }

 private:
  [[nodiscard]] double rate_per_flow() const noexcept;

  double bandwidth_;
  double factor_ = 1.0;
  double now_ = 0.0;
  double busy_time_ = 0.0;
  double bytes_served_ = 0.0;
  FlowId next_id_ = 1;
  std::map<FlowId, double> flows_;  // id -> remaining bytes
};

}  // namespace dedicore::fsim
