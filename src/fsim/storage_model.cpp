#include "fsim/storage_model.hpp"

#include <algorithm>
#include <cmath>

namespace dedicore::fsim {

void StorageConfig::validate() const {
  if (ost_count <= 0) throw ConfigError("StorageConfig: ost_count must be > 0");
  if (ost_bandwidth <= 0) throw ConfigError("StorageConfig: ost_bandwidth must be > 0");
  if (mds_op_cost < 0) throw ConfigError("StorageConfig: mds_op_cost must be >= 0");
  if (stripe_size == 0) throw ConfigError("StorageConfig: stripe_size must be > 0");
  if (default_stripe_count <= 0 || default_stripe_count > ost_count)
    throw ConfigError("StorageConfig: default_stripe_count out of range");
  if (jitter_sigma < 0) throw ConfigError("StorageConfig: jitter_sigma must be >= 0");
  if (spike_probability < 0 || spike_probability > 1)
    throw ConfigError("StorageConfig: spike_probability must be in [0,1]");
  if (interference_share < 0 || interference_share >= 1)
    throw ConfigError("StorageConfig: interference_share must be in [0,1)");
}

// ---------------------------------------------------------------------------
// InterferenceProcess
// ---------------------------------------------------------------------------

InterferenceProcess::InterferenceProcess(const StorageConfig& config, Rng rng)
    : on_rate_(config.interference_on_rate),
      off_rate_(config.interference_off_rate),
      share_(config.interference_share),
      rng_(rng) {
  if (on_rate_ > 0.0) state_until_ = rng_.exponential(on_rate_);
}

void InterferenceProcess::advance_to(double t) {
  if (on_rate_ <= 0.0 || share_ <= 0.0) return;  // interference disabled
  while (state_until_ < t) {
    on_ = !on_;
    const double rate = on_ ? off_rate_ : on_rate_;
    state_until_ += rng_.exponential(rate);
  }
}

double InterferenceProcess::available_fraction(double t) {
  advance_to(t);
  return on_ ? 1.0 - share_ : 1.0;
}

double InterferenceProcess::average_available(double t0, double t1) {
  DEDICORE_CHECK(t1 >= t0, "average_available: t1 < t0");
  if (t1 == t0) return available_fraction(t0);
  advance_to(t0);
  double integral = 0.0;
  double cursor = t0;
  while (state_until_ < t1) {
    integral += (state_until_ - cursor) * (on_ ? 1.0 - share_ : 1.0);
    cursor = state_until_;
    advance_to(std::nextafter(state_until_, t1 + 1.0));
  }
  integral += (t1 - cursor) * (on_ ? 1.0 - share_ : 1.0);
  return integral / (t1 - t0);
}

// ---------------------------------------------------------------------------
// QueueServer
// ---------------------------------------------------------------------------

double QueueServer::submit(double now, double service) {
  DEDICORE_CHECK(service >= 0.0, "QueueServer: negative service time");
  const double start = std::max(now, busy_until_);
  total_wait_ += start - now;
  busy_until_ = start + service;
  ++operations_;
  return busy_until_;
}

// ---------------------------------------------------------------------------
// SharedLink
// ---------------------------------------------------------------------------

SharedLink::SharedLink(double bandwidth) : bandwidth_(bandwidth) {
  DEDICORE_CHECK(bandwidth > 0.0, "SharedLink bandwidth must be > 0");
}

double SharedLink::rate_per_flow() const noexcept {
  if (flows_.empty()) return 0.0;
  return bandwidth_ * factor_ / static_cast<double>(flows_.size());
}

void SharedLink::advance_to(double now) {
  DEDICORE_CHECK(now >= now_ - 1e-12, "SharedLink: time went backwards");
  if (now <= now_) return;
  const double dt = now - now_;
  if (!flows_.empty()) {
    const double drained = rate_per_flow() * dt;
    for (auto& [id, remaining] : flows_) {
      const double served = std::min(remaining, drained);
      remaining -= served;
      bytes_served_ += served;
    }
    busy_time_ += dt;
  }
  now_ = now;
}

SharedLink::FlowId SharedLink::submit(double now, double bytes) {
  DEDICORE_CHECK(bytes > 0.0, "SharedLink: flow must carry bytes");
  advance_to(now);
  const FlowId id = next_id_++;
  flows_.emplace(id, bytes);
  return id;
}

double SharedLink::next_completion_time() const {
  if (flows_.empty()) return kNever;
  double least = std::numeric_limits<double>::infinity();
  for (const auto& [id, remaining] : flows_) least = std::min(least, remaining);
  return now_ + least / rate_per_flow();
}

std::vector<SharedLink::FlowId> SharedLink::complete_at(double t) {
  advance_to(t);
  std::vector<FlowId> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    // Byte-scale epsilon: generous enough that a remainder too small to
    // advance virtual time still counts as finished.
    if (it->second <= 1e-3) {
      done.push_back(it->first);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return done;
}

void SharedLink::set_bandwidth_factor(double factor) {
  DEDICORE_CHECK(factor > 0.0 && factor <= 1.0,
                 "SharedLink: bandwidth factor must be in (0,1]");
  factor_ = factor;
}

}  // namespace dedicore::fsim
