#include "fsim/filesystem.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/clock.hpp"

namespace dedicore::fsim {

// Time flows through common/clock so the virtual-time test hook applies:
// under virtual time a modelled write advances the calling thread's clock
// by exactly the modelled duration instead of blocking it.
namespace {
double steady_now() { return now_seconds(); }
}  // namespace

/// One object storage target: fair-shared bandwidth with lazy interference.
struct FileSystem::OstState {
  OstState(const StorageConfig& config, Rng rng)
      : interference(config, rng) {}

  Mutex mutex{"fsim.ost"};
  int active DEDICORE_GUARDED_BY(mutex) = 0;  ///< concurrent transfers
                                              ///< registered on this OST
  InterferenceProcess interference DEDICORE_GUARDED_BY(mutex);
  /// Quanta with >= 1 active transfer.
  double busy_sim DEDICORE_GUARDED_BY(mutex) = 0.0;
};

struct FileSystem::FileState {
  std::string path;
  int stripe_count = 1;
  int stripe_origin = 0;  ///< first OST index for round-robin striping
  /// Leaf lock over this file's bytes (append offset + memcpy).
  Mutex content_mutex{"fsim.content"};
  std::vector<std::byte> content DEDICORE_GUARDED_BY(content_mutex);
};

FileSystem::FileSystem(StorageConfig config, TimeScale scale)
    : config_(config), scale_(scale), epoch_real_(steady_now()),
      jitter_(config, Rng(config.seed ^ 0x6a09e667f3bcc909ull)) {
  config_.validate();
  DEDICORE_CHECK(scale_.real_per_sim > 0 && scale_.quantum_sim > 0,
                 "TimeScale values must be positive");
  Rng root(config_.seed);
  osts_.reserve(static_cast<std::size_t>(config_.ost_count));
  for (int i = 0; i < config_.ost_count; ++i)
    osts_.push_back(std::make_unique<OstState>(config_, root.split()));
}

FileSystem::~FileSystem() = default;

double FileSystem::sim_now() const {
  return scale_.to_sim(steady_now() - epoch_real_);
}

FileHandle FileSystem::create(const std::string& path, int stripe_count,
                              double* mds_time_sim) {
  if (stripe_count == 0) stripe_count = config_.default_stripe_count;
  DEDICORE_CHECK(stripe_count > 0 && stripe_count <= config_.ost_count,
                 "create: stripe_count out of range");

  // The metadata server serializes creates: holding the mutex while
  // sleeping the scaled service time makes concurrent creators queue for
  // real, which is exactly the file-per-process metadata storm.
  const double arrival = sim_now();
  {
    MutexLock lock(mds_mutex_);
    sleep_seconds(scale_.to_real(config_.mds_op_cost));
  }
  const double mds_time = sim_now() - arrival;

  MutexLock lock(meta_mutex_);
  mds_accounting_.submit(arrival, config_.mds_op_cost);
  ++mds_operations_;
  mds_busy_time_sim_ += config_.mds_op_cost;
  if (mds_time_sim != nullptr) *mds_time_sim = mds_time;

  auto state = std::make_unique<FileState>();
  state->path = path;
  state->stripe_count = stripe_count;
  state->stripe_origin = next_stripe_origin_;
  next_stripe_origin_ = (next_stripe_origin_ + stripe_count) % config_.ost_count;

  // Truncate-on-create: drop any previous incarnation.
  if (auto it = by_path_.find(path); it != by_path_.end()) files_.erase(it->second);

  const std::uint64_t id = next_handle_++;
  by_path_[path] = id;
  files_.emplace(id, std::move(state));
  ++files_created_;
  return FileHandle{id};
}

std::optional<FileHandle> FileSystem::open(const std::string& path,
                                           double* mds_time_sim) {
  const double arrival = sim_now();
  {
    MutexLock lock(mds_mutex_);
    sleep_seconds(scale_.to_real(config_.mds_op_cost));
  }
  const double mds_time = sim_now() - arrival;

  MutexLock lock(meta_mutex_);
  mds_accounting_.submit(arrival, config_.mds_op_cost);
  ++mds_operations_;
  mds_busy_time_sim_ += config_.mds_op_cost;
  if (mds_time_sim != nullptr) *mds_time_sim = mds_time;

  auto it = by_path_.find(path);
  if (it == by_path_.end()) return std::nullopt;
  return FileHandle{it->second};
}

FileSystem::FileState* FileSystem::find_file(FileHandle handle) const {
  MutexLock lock(meta_mutex_);
  auto it = files_.find(handle.id);
  DEDICORE_CHECK(it != files_.end(), "FileSystem: stale file handle");
  return it->second.get();
}

double FileSystem::run_transfer(std::vector<std::pair<int, double>> ost_bytes) {
  // Register on every involved OST, then drain bandwidth in quanta.  The
  // per-quantum share is bandwidth * interference / active, so concurrent
  // writers genuinely slow each other down.
  const double start_sim = sim_now();
  sleep_seconds(scale_.to_real(config_.request_latency));

  for (auto& [ost, bytes] : ost_bytes) {
    OstState& o = *osts_[static_cast<std::size_t>(ost)];
    MutexLock lock(o.mutex);
    ++o.active;
  }

  std::size_t remaining_osts = ost_bytes.size();
  while (remaining_osts > 0) {
    sleep_seconds(scale_.to_real(scale_.quantum_sim));
    const double t = sim_now();
    for (auto& [ost, bytes] : ost_bytes) {
      if (bytes <= 0.0) continue;
      OstState& o = *osts_[static_cast<std::size_t>(ost)];
      MutexLock lock(o.mutex);
      const double share = config_.ost_bandwidth *
                           o.interference.available_fraction(t) /
                           static_cast<double>(std::max(1, o.active));
      bytes -= share * scale_.quantum_sim;
      o.busy_sim += scale_.quantum_sim;
      if (bytes <= 0.0) {
        --o.active;
        --remaining_osts;
      }
    }
  }
  return sim_now() - start_sim;
}

double FileSystem::pwrite(FileHandle file, std::uint64_t offset,
                          std::span<const std::byte> bytes) {
  FileState* state = find_file(file);

  double duration = 0.0;
  if (!bytes.empty()) {
    // Per-write heavy-tailed slowdown: model stragglers by inflating the
    // effective transfer volume.
    double factor = 1.0;
    {
      MutexLock lock(jitter_mutex_);
      factor = jitter_.factor();
    }

    // Split the byte range into stripe_size chunks round-robin over the
    // file's OSTs, then transfer all per-OST totals concurrently.
    std::vector<double> per_ost(static_cast<std::size_t>(config_.ost_count), 0.0);
    std::uint64_t cursor = offset;
    std::uint64_t left = bytes.size();
    while (left > 0) {
      const std::uint64_t stripe_index = cursor / config_.stripe_size;
      const std::uint64_t within = cursor % config_.stripe_size;
      const std::uint64_t chunk = std::min<std::uint64_t>(left, config_.stripe_size - within);
      const int ost = (state->stripe_origin +
                       static_cast<int>(stripe_index %
                                        static_cast<std::uint64_t>(state->stripe_count))) %
                      config_.ost_count;
      per_ost[static_cast<std::size_t>(ost)] += static_cast<double>(chunk);
      cursor += chunk;
      left -= chunk;
    }
    std::vector<std::pair<int, double>> ost_bytes;
    for (int i = 0; i < config_.ost_count; ++i)
      if (per_ost[static_cast<std::size_t>(i)] > 0.0)
        ost_bytes.emplace_back(i, per_ost[static_cast<std::size_t>(i)] * factor);

    duration = run_transfer(std::move(ost_bytes));
  }

  // Persist content so files can be read back and verified.
  {
    MutexLock lock(state->content_mutex);
    if (state->content.size() < offset + bytes.size())
      state->content.resize(offset + bytes.size());
    if (!bytes.empty())
      std::memcpy(state->content.data() + offset, bytes.data(), bytes.size());
  }

  {
    MutexLock lock(meta_mutex_);
    ++writes_;
    bytes_written_ += bytes.size();
    total_write_time_sim_ += duration;
    write_times_sim_.add(duration);
  }
  return duration;
}

double FileSystem::write(FileHandle file, std::span<const std::byte> bytes) {
  FileState* state = find_file(file);
  std::uint64_t offset = 0;
  {
    MutexLock lock(state->content_mutex);
    offset = state->content.size();
  }
  return pwrite(file, offset, bytes);
}

void FileSystem::close(FileHandle file) {
  (void)find_file(file);  // validates the handle
}

bool FileSystem::exists(const std::string& path) const {
  MutexLock lock(meta_mutex_);
  return by_path_.contains(path);
}

std::optional<std::vector<std::byte>> FileSystem::read_file(
    const std::string& path) const {
  FileState* state = nullptr;
  {
    MutexLock lock(meta_mutex_);
    auto it = by_path_.find(path);
    if (it == by_path_.end()) return std::nullopt;
    state = files_.at(it->second).get();
  }
  MutexLock lock(state->content_mutex);
  return state->content;
}

std::uint64_t FileSystem::file_size(const std::string& path) const {
  auto content = read_file(path);
  return content ? content->size() : 0;
}

std::vector<std::string> FileSystem::list_files() const {
  MutexLock lock(meta_mutex_);
  std::vector<std::string> out;
  out.reserve(by_path_.size());
  for (const auto& [path, id] : by_path_) out.push_back(path);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t FileSystem::file_count() const {
  MutexLock lock(meta_mutex_);
  return by_path_.size();
}

FileSystemStats FileSystem::stats() const {
  MutexLock lock(meta_mutex_);
  FileSystemStats s;
  s.files_created = files_created_;
  s.mds_operations = mds_operations_;
  s.writes = writes_;
  s.bytes_written = bytes_written_;
  s.total_write_time_sim = total_write_time_sim_;
  s.mds_busy_time_sim = mds_busy_time_sim_;
  s.write_time_summary = write_times_sim_.summary();
  return s;
}

}  // namespace dedicore::fsim
