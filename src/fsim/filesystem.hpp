// Real-thread parallel-filesystem front end.
//
// Threads calling write() genuinely block for the modelled duration (at a
// configurable real-time scale), so asynchronous I/O from dedicated cores
// *actually overlaps* with computation in the calling application — the
// overlap the paper measures is real concurrency here, not bookkeeping.
//
// File contents are retained in an in-memory store so that h5lite files
// written through the simulator can be read back and verified by tests and
// analysis examples (the paper's "output can be post-processed" claim).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "fsim/storage_model.hpp"

namespace dedicore::fsim {

/// Mapping between simulated seconds and real (wall-clock) seconds.
struct TimeScale {
  /// Real seconds per simulated second.  1e-3 => a 100 s simulated I/O
  /// phase costs 100 ms of wall time in tests.
  double real_per_sim = 1e-3;
  /// Bandwidth-sharing quantum, in simulated seconds.
  double quantum_sim = 0.02;

  [[nodiscard]] double to_real(double sim_seconds) const noexcept {
    return sim_seconds * real_per_sim;
  }
  [[nodiscard]] double to_sim(double real_seconds) const noexcept {
    return real_seconds / real_per_sim;
  }
};

/// Opaque file handle.
struct FileHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

/// Aggregate observability counters.
struct FileSystemStats {
  std::uint64_t files_created = 0;
  std::uint64_t mds_operations = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  double total_write_time_sim = 0.0;   ///< sum over writes (overlap counted per write)
  double mds_busy_time_sim = 0.0;      ///< serialized metadata service time
  Summary write_time_summary;          ///< distribution of per-write sim durations
};

class FileSystem {
 public:
  FileSystem(StorageConfig config, TimeScale scale);
  ~FileSystem();

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Creates (or truncates) a file.  Costs one serialized MDS operation.
  /// stripe_count == 0 uses the configured default.  Returns the handle
  /// and, optionally, the simulated time the MDS op took (queue + service).
  FileHandle create(const std::string& path, int stripe_count = 0,
                    double* mds_time_sim = nullptr);

  /// Opens an existing file (MDS op).  NOT_FOUND if absent.
  std::optional<FileHandle> open(const std::string& path,
                                 double* mds_time_sim = nullptr);

  /// Appends `bytes`; blocks the calling thread for the modelled duration.
  /// Returns the simulated duration of the write.
  double write(FileHandle file, std::span<const std::byte> bytes);

  /// Positional write (used by collective/two-phase I/O and h5lite).
  double pwrite(FileHandle file, std::uint64_t offset,
                std::span<const std::byte> bytes);

  /// Closing is free (Lustre closes are cheap relative to creates).
  void close(FileHandle file);

  // -- content inspection (no modelled cost; test/analysis use) -----------
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list_files() const;
  [[nodiscard]] std::size_t file_count() const;

  /// Simulated time since construction (wall time rescaled).
  [[nodiscard]] double sim_now() const;

  [[nodiscard]] FileSystemStats stats() const;
  [[nodiscard]] const StorageConfig& config() const noexcept { return config_; }
  [[nodiscard]] const TimeScale& time_scale() const noexcept { return scale_; }

 private:
  struct OstState;
  struct FileState;

  FileState* find_file(FileHandle handle) const;
  double run_transfer(std::vector<std::pair<int, double>> ost_bytes);

  StorageConfig config_;
  TimeScale scale_;
  double epoch_real_;  // steady-clock origin for sim_now()

  /// The single metadata server.  The ONE lock in the repo deliberately
  /// held across a sleep: serializing creators for the scaled service
  /// time IS the modelled metadata storm.  Nothing else is ever acquired
  /// under it (meta_mutex_ is taken only after it is released).
  mutable Mutex mds_mutex_{"fsim.mds"};
  QueueServer mds_accounting_ DEDICORE_GUARDED_BY(meta_mutex_);
  /// Leaf lock over the maps & counters below; never held across a sleep
  /// or another lock.
  mutable Mutex meta_mutex_{"fsim.meta"};
  std::unordered_map<std::uint64_t, std::unique_ptr<FileState>> files_
      DEDICORE_GUARDED_BY(meta_mutex_);
  std::unordered_map<std::string, std::uint64_t> by_path_
      DEDICORE_GUARDED_BY(meta_mutex_);
  std::uint64_t next_handle_ DEDICORE_GUARDED_BY(meta_mutex_) = 1;
  int next_stripe_origin_ DEDICORE_GUARDED_BY(meta_mutex_) = 0;

  /// Per-OST states each own an "fsim.ost" lock; run_transfer takes them
  /// strictly one at a time (never two OST locks together).
  std::vector<std::unique_ptr<OstState>> osts_;

  // Stats (guarded by meta_mutex_).
  std::uint64_t files_created_ DEDICORE_GUARDED_BY(meta_mutex_) = 0;
  std::uint64_t mds_operations_ DEDICORE_GUARDED_BY(meta_mutex_) = 0;
  std::uint64_t writes_ DEDICORE_GUARDED_BY(meta_mutex_) = 0;
  std::uint64_t bytes_written_ DEDICORE_GUARDED_BY(meta_mutex_) = 0;
  double total_write_time_sim_ DEDICORE_GUARDED_BY(meta_mutex_) = 0.0;
  double mds_busy_time_sim_ DEDICORE_GUARDED_BY(meta_mutex_) = 0.0;
  SampleSet write_times_sim_ DEDICORE_GUARDED_BY(meta_mutex_);

  /// Leaf lock around the shared heavy-tail RNG.
  mutable Mutex jitter_mutex_{"fsim.jitter"};
  JitterModel jitter_ DEDICORE_GUARDED_BY(jitter_mutex_);
};

}  // namespace dedicore::fsim
