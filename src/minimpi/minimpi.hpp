// minimpi — a thread-based MPI-like runtime.
//
// The paper's middleware (Damaris) runs inside MPI applications: it needs
// ranks, tagged point-to-point messages, collectives, and communicator
// splitting (to carve per-node communicators and separate dedicated cores
// from computation cores).  No MPI implementation is available in this
// environment, so minimpi provides the same semantics with OS threads as
// ranks inside one process:
//
//   minimpi::run_world(16, [](minimpi::Comm& world) {
//     if (world.rank() == 0) world.send_value(42, /*dest=*/1, /*tag=*/7);
//     ...
//   });
//
// Semantics notes (documented divergences from MPI):
//  * send() is buffered (like MPI_Bsend with unlimited buffer): it never
//    blocks, so naive exchange patterns cannot deadlock.
//  * Collectives must be invoked by all ranks of the communicator in the
//    same order (as in MPI); they are implemented over point-to-point
//    messages with binomial trees / dissemination patterns.
//  * Message payloads are byte vectors; typed helpers require trivially
//    copyable element types.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace dedicore::minimpi {

/// Wildcards for recv/probe.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags >= kReservedTagBase are reserved for internal collectives.
inline constexpr int kReservedTagBase = 1 << 24;

/// A received (or in-flight) message.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Result of a probe: matching envelope without removing the message.
struct ProbeResult {
  int source = -1;
  int tag = 0;
  std::size_t size = 0;
};

namespace detail {
struct CommState;  // shared among the ranks of one communicator
}  // namespace detail

class Comm;

/// Handle to a pending nonblocking operation.  isend completes immediately
/// (buffered); irecv completes when a matching message is consumed by
/// wait()/test().
class Request {
 public:
  Request() = default;

  /// Blocks until the operation completes; returns the message for
  /// receives, an empty message for sends.  Calling wait() twice is an
  /// error (FAILED_PRECONDITION fatal).
  Message wait();

  /// Nonblocking completion check; on success the result is stored and
  /// wait() will return it without blocking.
  bool test();

  [[nodiscard]] bool valid() const noexcept { return comm_ != nullptr || done_; }

 private:
  friend class Comm;
  detail::CommState* comm_ = nullptr;
  int self_ = -1;
  int source_ = kAnySource;
  int tag_ = kAnyTag;
  bool is_recv_ = false;
  bool done_ = false;
  Message result_;
};

/// Communicator: a rank's view of a group of ranks.  Each rank owns its own
/// Comm instance; instances of one group share state internally.
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  // -- point to point ---------------------------------------------------
  /// Buffered send; never blocks.
  void send_bytes(std::vector<std::byte> payload, int dest, int tag);

  /// Buffered gather-send: ships `parts` as ONE message whose payload is
  /// their concatenation.  The parts are moved in and assembled directly
  /// into the wire buffer (a single-part send moves straight through with
  /// no copy at all), so batching N buffers into one message costs one
  /// mailbox transaction instead of N — the primitive behind the
  /// transport layer's per-iteration frame batching.
  void send_bytes_parts(std::vector<std::vector<std::byte>> parts, int dest,
                        int tag);

  /// Blocking receive; source/tag may be wildcards.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Nonblocking receive attempt; nullopt when nothing matches now.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag);

  /// Blocking probe: envelope of the first matching message, not removed.
  ProbeResult probe(int source = kAnySource, int tag = kAnyTag);
  std::optional<ProbeResult> iprobe(int source = kAnySource, int tag = kAnyTag);

  Request isend_bytes(std::vector<std::byte> payload, int dest, int tag);
  Request irecv(int source = kAnySource, int tag = kAnyTag);

  // Typed convenience wrappers (trivially copyable element types).
  template <typename T>
  void send(const T* data, std::size_t count, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(count * sizeof(T));
    if (count > 0) std::memcpy(bytes.data(), data, bytes.size());
    send_bytes(std::move(bytes), dest, tag);
  }

  template <typename T>
  void send_value(const T& value, int dest, int tag) {
    send(&value, 1, dest, tag);
  }

  template <typename T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag,
                             Message* envelope = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv(source, tag);
    DEDICORE_CHECK(m.payload.size() % sizeof(T) == 0,
                   "recv_vector: payload size not a multiple of element size");
    std::vector<T> out(m.payload.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), m.payload.data(), m.payload.size());
    if (envelope != nullptr) *envelope = Message{m.source, m.tag, {}};
    return out;
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    auto v = recv_vector<T>(source, tag);
    DEDICORE_CHECK(v.size() == 1, "recv_value: expected exactly one element");
    return v.front();
  }

  // -- collectives (call from all ranks, same order) ---------------------
  void barrier();

  /// Broadcast `bytes` from root to all; on non-roots the vector is
  /// replaced with the root's content.
  void bcast_bytes(std::vector<std::byte>& bytes, int root);

  template <typename T>
  void bcast(std::vector<T>& values, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(values.size() * sizeof(T));
    if (!values.empty()) std::memcpy(bytes.data(), values.data(), bytes.size());
    bcast_bytes(bytes, root);
    values.resize(bytes.size() / sizeof(T));
    if (!values.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
  }

  template <typename T>
  T bcast_value(T value, int root) {
    std::vector<T> v{value};
    bcast(v, root);
    return v.front();
  }

  /// Element-wise reduction to root with a binary op on T.
  template <typename T, typename Op>
  std::vector<T> reduce(const std::vector<T>& contribution, int root, Op op);

  template <typename T, typename Op>
  T reduce_value(T value, int root, Op op) {
    std::vector<T> v = reduce(std::vector<T>{value}, root, op);
    return v.empty() ? value : v.front();
  }

  template <typename T, typename Op>
  std::vector<T> allreduce(const std::vector<T>& contribution, Op op) {
    std::vector<T> result = reduce(contribution, 0, op);
    bcast(result, 0);
    return result;
  }

  template <typename T, typename Op>
  T allreduce_value(T value, Op op) {
    std::vector<T> v = allreduce(std::vector<T>{value}, op);
    return v.front();
  }

  /// Gathers equally sized contributions to root (rank-major order).
  template <typename T>
  std::vector<T> gather(const std::vector<T>& contribution, int root);

  /// Gathers variably sized contributions to root; `counts_out`, when
  /// non-null, receives per-rank element counts (root only).
  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& contribution, int root,
                         std::vector<std::size_t>* counts_out = nullptr);

  /// Inclusive prefix reduction (linear chain).
  template <typename T, typename Op>
  T scan_value(T value, Op op);

  /// All-to-all personalized exchange: send_blocks[i] goes to rank i;
  /// returns blocks received from each rank (index = source).
  std::vector<std::vector<std::byte>> alltoall_bytes(
      std::vector<std::vector<std::byte>> send_blocks);

  // -- communicator management ------------------------------------------
  /// MPI_Comm_split: ranks with the same color form a new communicator;
  /// ranks ordered by (key, old rank).  color < 0 -> returns invalid Comm.
  Comm split(int color, int key);

  /// Convenience for node-local communicators: groups ranks into
  /// consecutive blocks of `cores_per_node`.
  Comm split_by_node(int cores_per_node) {
    DEDICORE_CHECK(cores_per_node > 0, "cores_per_node must be > 0");
    return split(rank() / cores_per_node, rank() % cores_per_node);
  }

  /// Wall-clock in seconds (monotonic), like MPI_Wtime.
  static double wtime();

 private:
  friend void run_world(int, const std::function<void(Comm&)>&);
  friend struct detail::CommState;
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  /// Allocates a tag block for the next collective on this rank.
  int next_collective_tag();

  std::shared_ptr<detail::CommState> state_;
  int rank_ = -1;
  std::uint64_t collective_seq_ = 0;
};

/// Launches `nranks` threads, each running `body` with its own world Comm,
/// and joins them.  Exceptions thrown by rank bodies are captured; the
/// first one (by rank order) is rethrown after all threads have joined.
void run_world(int nranks, const std::function<void(Comm&)>& body);

// ---------------------------------------------------------------------------
// Template implementations
// ---------------------------------------------------------------------------

template <typename T, typename Op>
std::vector<T> Comm::reduce(const std::vector<T>& contribution, int root, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = next_collective_tag();
  const int n = size();
  const int me = rank();
  // Rotate ranks so the algorithm always reduces toward virtual rank 0.
  const int vrank = (me - root + n) % n;
  std::vector<T> acc = contribution;
  // Binomial tree: at step k, vranks with bit k set send to (vrank - 2^k).
  for (int step = 1; step < n; step <<= 1) {
    if ((vrank & step) != 0) {
      const int dst = ((vrank - step) + root) % n;
      send(acc.data(), acc.size(), dst, tag);
      return {};  // non-roots return empty
    }
    if (vrank + step < n) {
      const int src = ((vrank + step) + root) % n;
      std::vector<T> incoming = recv_vector<T>(src, tag);
      DEDICORE_CHECK(incoming.size() == acc.size(),
                     "reduce: mismatched contribution sizes");
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = op(acc[i], incoming[i]);
    }
  }
  return acc;
}

template <typename T>
std::vector<T> Comm::gather(const std::vector<T>& contribution, int root) {
  std::vector<std::size_t> counts;
  std::vector<T> out = gatherv(contribution, root, &counts);
  if (rank() == root) {
    for (std::size_t c : counts)
      DEDICORE_CHECK(c == contribution.size(),
                     "gather: ranks contributed different sizes");
  }
  return out;
}

template <typename T>
std::vector<T> Comm::gatherv(const std::vector<T>& contribution, int root,
                             std::vector<std::size_t>* counts_out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = next_collective_tag();
  const int n = size();
  if (rank() != root) {
    send(contribution.data(), contribution.size(), root, tag);
    return {};
  }
  std::vector<std::vector<T>> parts(static_cast<std::size_t>(n));
  parts[static_cast<std::size_t>(root)] = contribution;
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    parts[static_cast<std::size_t>(r)] = recv_vector<T>(r, tag);
  }
  std::vector<T> out;
  std::vector<std::size_t> counts;
  for (auto& p : parts) {
    counts.push_back(p.size());
    out.insert(out.end(), p.begin(), p.end());
  }
  if (counts_out != nullptr) *counts_out = std::move(counts);
  return out;
}

template <typename T, typename Op>
T Comm::scan_value(T value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = next_collective_tag();
  T acc = value;
  if (rank() > 0) {
    T prefix = recv_value<T>(rank() - 1, tag);
    acc = op(prefix, acc);
  }
  if (rank() + 1 < size()) send_value(acc, rank() + 1, tag);
  return acc;
}

}  // namespace dedicore::minimpi
