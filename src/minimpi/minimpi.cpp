#include "minimpi/minimpi.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::minimpi {

namespace detail {

/// Per-rank mailbox: FIFO of pending messages with wakeups on arrival.
struct Mailbox {
  /// Leaf lock: a deliver/consume/probe critical section acquires nothing
  /// else (every transport lock sits above it).
  Mutex mutex{"minimpi.mailbox"};
  CondVar arrived;
  std::deque<Message> pending DEDICORE_GUARDED_BY(mutex);
};

/// State shared by all ranks of one communicator.
struct CommState {
  explicit CommState(int size) : mailboxes(static_cast<std::size_t>(size)) {}

  std::vector<Mailbox> mailboxes;

  // Registry used by split(): rank 0 publishes child states here under a
  // sequence id; other ranks pick theirs up by id (same address space).
  Mutex registry_mutex{"minimpi.registry"};  ///< leaf lock
  std::unordered_map<std::uint64_t, std::shared_ptr<CommState>> child_registry
      DEDICORE_GUARDED_BY(registry_mutex);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(mailboxes.size());
  }

  void deliver(int dest, Message message) {
    DEDICORE_CHECK(dest >= 0 && dest < size(), "minimpi: destination rank out of range");
    Mailbox& box = mailboxes[static_cast<std::size_t>(dest)];
    {
      MutexLock lock(box.mutex);
      box.pending.push_back(std::move(message));
    }
    box.arrived.notify_all();
  }

  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Removes and returns the first matching message, waiting if needed.
  Message consume(int self, int source, int tag) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(self)];
    UniqueLock lock(box.mutex);
    for (;;) {
      auto it = std::find_if(box.pending.begin(), box.pending.end(),
                             [&](const Message& m) { return matches(m, source, tag); });
      if (it != box.pending.end()) {
        Message out = std::move(*it);
        box.pending.erase(it);
        return out;
      }
      box.arrived.wait(lock);
    }
  }

  std::optional<Message> try_consume(int self, int source, int tag) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(self)];
    MutexLock lock(box.mutex);
    auto it = std::find_if(box.pending.begin(), box.pending.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it == box.pending.end()) return std::nullopt;
    Message out = std::move(*it);
    box.pending.erase(it);
    return out;
  }

  ProbeResult probe(int self, int source, int tag) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(self)];
    UniqueLock lock(box.mutex);
    for (;;) {
      auto it = std::find_if(box.pending.begin(), box.pending.end(),
                             [&](const Message& m) { return matches(m, source, tag); });
      if (it != box.pending.end())
        return ProbeResult{it->source, it->tag, it->payload.size()};
      box.arrived.wait(lock);
    }
  }

  std::optional<ProbeResult> iprobe(int self, int source, int tag) {
    Mailbox& box = mailboxes[static_cast<std::size_t>(self)];
    MutexLock lock(box.mutex);
    auto it = std::find_if(box.pending.begin(), box.pending.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it == box.pending.end()) return std::nullopt;
    return ProbeResult{it->source, it->tag, it->payload.size()};
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

Message Request::wait() {
  DEDICORE_CHECK(valid(), "Request::wait on an empty request");
  if (done_) {
    Message out = std::move(result_);
    comm_ = nullptr;
    done_ = false;  // waiting twice is a usage error; invalidate
    return out;
  }
  DEDICORE_CHECK(is_recv_, "internal: pending request must be a receive");
  Message out = comm_->consume(self_, source_, tag_);
  comm_ = nullptr;
  return out;
}

bool Request::test() {
  if (done_) return true;
  if (comm_ == nullptr) return false;
  if (!is_recv_) {  // buffered send: already complete
    done_ = true;
    return true;
  }
  auto m = comm_->try_consume(self_, source_, tag_);
  if (!m) return false;
  result_ = std::move(*m);
  done_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// Comm — point to point
// ---------------------------------------------------------------------------

int Comm::size() const noexcept { return state_ ? state_->size() : 0; }

void Comm::send_bytes(std::vector<std::byte> payload, int dest, int tag) {
  DEDICORE_CHECK(valid(), "send on an invalid communicator");
  DEDICORE_CHECK(tag >= 0, "negative tags are reserved");
  state_->deliver(dest, Message{rank_, tag, std::move(payload)});
}

void Comm::send_bytes_parts(std::vector<std::vector<std::byte>> parts,
                            int dest, int tag) {
  DEDICORE_CHECK(valid(), "send on an invalid communicator");
  DEDICORE_CHECK(tag >= 0, "negative tags are reserved");
  std::vector<std::byte> payload;
  if (parts.size() == 1) {
    payload = std::move(parts.front());
  } else {
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    payload.reserve(total);
    for (const auto& part : parts)
      payload.insert(payload.end(), part.begin(), part.end());
  }
  state_->deliver(dest, Message{rank_, tag, std::move(payload)});
}

Message Comm::recv(int source, int tag) {
  DEDICORE_CHECK(valid(), "recv on an invalid communicator");
  return state_->consume(rank_, source, tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  DEDICORE_CHECK(valid(), "try_recv on an invalid communicator");
  return state_->try_consume(rank_, source, tag);
}

ProbeResult Comm::probe(int source, int tag) {
  DEDICORE_CHECK(valid(), "probe on an invalid communicator");
  return state_->probe(rank_, source, tag);
}

std::optional<ProbeResult> Comm::iprobe(int source, int tag) {
  DEDICORE_CHECK(valid(), "iprobe on an invalid communicator");
  return state_->iprobe(rank_, source, tag);
}

Request Comm::isend_bytes(std::vector<std::byte> payload, int dest, int tag) {
  send_bytes(std::move(payload), dest, tag);  // buffered: completes now
  Request r;
  r.comm_ = state_.get();
  r.self_ = rank_;
  r.is_recv_ = false;
  r.done_ = true;
  return r;
}

Request Comm::irecv(int source, int tag) {
  DEDICORE_CHECK(valid(), "irecv on an invalid communicator");
  Request r;
  r.comm_ = state_.get();
  r.self_ = rank_;
  r.source_ = source;
  r.tag_ = tag;
  r.is_recv_ = true;
  return r;
}

int Comm::next_collective_tag() {
  // Each collective call consumes one tag out of a large rotating window;
  // the window is big enough that a tag cannot be reused while messages
  // from the call that owned it are still in flight.
  const auto offset = static_cast<int>(collective_seq_++ % (1u << 20));
  return kReservedTagBase + offset;
}

// ---------------------------------------------------------------------------
// Comm — collectives
// ---------------------------------------------------------------------------

void Comm::barrier() {
  // Dissemination barrier: log2(n) rounds; in round k, rank r signals
  // (r + 2^k) mod n and waits for a signal from (r - 2^k) mod n.
  const int tag = next_collective_tag();
  const int n = size();
  const int me = rank();
  for (int step = 1; step < n; step <<= 1) {
    const int to = (me + step) % n;
    const int from = (me - step % n + n) % n;
    send_bytes({}, to, tag + 0);
    (void)recv(from, tag + 0);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& bytes, int root) {
  const int tag = next_collective_tag();
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  // Binomial broadcast on virtual ranks rooted at 0.
  if (vrank != 0) {
    Message m = recv(kAnySource, tag);
    bytes = std::move(m.payload);
  }
  // Highest power of two <= own position determines where forwarding starts.
  int step = 1;
  while (step <= vrank) step <<= 1;
  for (; step < n; step <<= 1) {
    const int vdst = vrank + step;
    if (vdst < n) {
      const int dst = (vdst + root) % n;
      send_bytes(bytes, dst, tag);
    }
  }
}

std::vector<std::vector<std::byte>> Comm::alltoall_bytes(
    std::vector<std::vector<std::byte>> send_blocks) {
  const int n = size();
  DEDICORE_CHECK(static_cast<int>(send_blocks.size()) == n,
                 "alltoall: need exactly one block per rank");
  const int tag = next_collective_tag();
  const int me = rank();
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    send_bytes(std::move(send_blocks[static_cast<std::size_t>(r)]), r, tag);
  }
  std::vector<std::vector<std::byte>> received(static_cast<std::size_t>(n));
  received[static_cast<std::size_t>(me)] =
      std::move(send_blocks[static_cast<std::size_t>(me)]);
  for (int i = 0; i < n - 1; ++i) {
    Message m = recv(kAnySource, tag);
    received[static_cast<std::size_t>(m.source)] = std::move(m.payload);
  }
  return received;
}

// ---------------------------------------------------------------------------
// Comm — split
// ---------------------------------------------------------------------------

Comm Comm::split(int color, int key) {
  const int tag = next_collective_tag();
  const int me = rank();

  // Gather (color, key) triples at rank 0 of the parent.
  struct Entry {
    int color, key, old_rank;
  };
  const Entry mine{color, key, me};
  std::vector<Entry> all = gather(std::vector<Entry>{mine}, 0);

  // Rank 0 forms the groups and publishes one child state per color.
  // Assignment message: (sequence id of child state, new rank), id 0 => no
  // group (negative color).
  if (me == 0) {
    std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
      if (a.color != b.color) return a.color < b.color;
      if (a.key != b.key) return a.key < b.key;
      return a.old_rank < b.old_rank;
    });
    static std::atomic<std::uint64_t> next_id{1};
    std::size_t i = 0;
    while (i < all.size()) {
      std::size_t j = i;
      while (j < all.size() && all[j].color == all[i].color) ++j;
      if (all[i].color < 0) {
        for (std::size_t k = i; k < j; ++k) {
          const std::uint64_t none[2] = {0, 0};
          send(none, 2, all[k].old_rank, tag);
        }
      } else {
        const std::uint64_t id = next_id.fetch_add(1);
        auto child = std::make_shared<detail::CommState>(static_cast<int>(j - i));
        {
          MutexLock lock(state_->registry_mutex);
          state_->child_registry.emplace(id, child);
        }
        for (std::size_t k = i; k < j; ++k) {
          const std::uint64_t assignment[2] = {id, k - i};
          send(assignment, 2, all[k].old_rank, tag);
        }
      }
      i = j;
    }
  }

  const auto assignment = recv_vector<std::uint64_t>(0, tag);
  DEDICORE_CHECK(assignment.size() == 2, "split: malformed assignment");
  const std::uint64_t id = assignment[0];
  if (id == 0) return Comm{};  // negative color: no membership

  std::shared_ptr<detail::CommState> child;
  {
    MutexLock lock(state_->registry_mutex);
    auto it = state_->child_registry.find(id);
    DEDICORE_CHECK(it != state_->child_registry.end(), "split: unknown child id");
    child = it->second;
  }
  Comm out(child, static_cast<int>(assignment[1]));

  // Once every member has fetched the state, rank 0 of the parent can
  // retire the registry entry.  A barrier on the child communicator makes
  // that safe and doubles as the synchronization MPI_Comm_split implies.
  out.barrier();
  if (out.rank() == 0) {
    MutexLock lock(state_->registry_mutex);
    state_->child_registry.erase(id);
  }
  return out;
}

double Comm::wtime() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// run_world
// ---------------------------------------------------------------------------

void run_world(int nranks, const std::function<void(Comm&)>& body) {
  DEDICORE_CHECK(nranks > 0, "run_world requires at least one rank");
  auto state = std::make_shared<detail::CommState>(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(state, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace dedicore::minimpi
