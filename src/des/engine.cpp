#include "des/engine.hpp"

namespace dedicore::des {

EventId Engine::schedule_at(double time, Callback fn) {
  DEDICORE_CHECK(time >= now_ - 1e-9, "Engine: scheduling into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{time, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Engine::cancel(EventId id) { callbacks_.erase(id); }

void Engine::run() { run_until(std::numeric_limits<double>::infinity()); }

void Engine::run_until(double horizon) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {  // cancelled
      queue_.pop();
      continue;
    }
    if (top.time > horizon) break;
    queue_.pop();
    now_ = std::max(now_, top.time);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
  }
  // Virtual time passes up to the horizon even when later events remain.
  if (horizon != std::numeric_limits<double>::infinity())
    now_ = std::max(now_, horizon);
}

SimSemaphore::SimSemaphore(Engine& engine, int permits)
    : engine_(engine), permits_(permits) {
  DEDICORE_CHECK(permits > 0, "SimSemaphore: permits must be positive");
}

void SimSemaphore::acquire(std::function<void()> acquired) {
  if (permits_ > 0) {
    --permits_;
    // Defer to the engine so acquisition order is deterministic and the
    // caller's stack unwinds first.
    engine_.schedule_in(0.0, std::move(acquired));
  } else {
    waiters_.push(std::move(acquired));
  }
}

void SimSemaphore::release() {
  if (!waiters_.empty()) {
    auto next = std::move(waiters_.front());
    waiters_.pop();
    engine_.schedule_in(0.0, std::move(next));
  } else {
    ++permits_;
  }
}

double SimFifoServer::request(double service, std::function<void()> done) {
  DEDICORE_CHECK(service >= 0.0, "SimFifoServer: negative service time");
  const double start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + service;
  busy_time_ += service;
  ++operations_;
  engine_.schedule_at(busy_until_, std::move(done));
  return busy_until_;
}

}  // namespace dedicore::des
