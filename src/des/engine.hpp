// Discrete-event simulation engine (virtual time).
//
// The paper's headline experiments ran on up to 9216 cores of a Cray XT5 —
// far beyond what one container can execute with real threads.  The model
// layer (src/model) replays the exact same I/O-strategy logic at full
// scale in virtual time on this engine; the real-thread runtime validates
// the middleware at small scale, the DES extrapolates it (EXPERIMENTS.md
// records the cross-validation).
//
// Deterministic: ties in time break by schedule order.  Events can be
// cancelled; the engine is single-threaded by design.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/status.hpp"

namespace dedicore::des {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `time` (must be >= now()).
  EventId schedule_at(double time, Callback fn);

  /// Schedules `fn` after a delay (>= 0) relative to now().
  EventId schedule_in(double delay, Callback fn) {
    DEDICORE_CHECK(delay >= 0.0, "Engine: negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; harmless if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs until the queue drains (or until `run_until`'s horizon).
  void run();
  void run_until(double horizon);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] bool empty() const noexcept { return callbacks_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return callbacks_.size(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;  ///< FIFO among same-time events
    EventId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
};

/// Counting semaphore with FIFO waiters — admission control (the
/// "throttled" I/O scheduler) and bounded buffers in the DES models.
class SimSemaphore {
 public:
  SimSemaphore(Engine& engine, int permits);

  /// Calls `acquired` (immediately or later) once a permit is granted.
  void acquire(std::function<void()> acquired);
  void release();

  [[nodiscard]] int available() const noexcept { return permits_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine& engine_;
  int permits_;
  std::queue<std::function<void()>> waiters_;
};

/// FIFO single server in virtual time (the metadata server).  Requests
/// queue in arrival order; `done` fires at the completion time.
class SimFifoServer {
 public:
  explicit SimFifoServer(Engine& engine) : engine_(engine) {}

  /// Returns the completion time (also delivered via `done`).
  double request(double service, std::function<void()> done);

  [[nodiscard]] double busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] std::uint64_t operations() const noexcept { return operations_; }
  [[nodiscard]] double busy_time() const noexcept { return busy_time_; }

 private:
  Engine& engine_;
  double busy_until_ = 0.0;
  double busy_time_ = 0.0;
  std::uint64_t operations_ = 0;
};

}  // namespace dedicore::des
