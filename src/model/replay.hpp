// Full-scale replay of the four I/O strategies on the DES engine.
//
// Each replay runs the same decision logic as the real-thread middleware
// (buffering, backpressure, per-node aggregation, admission control) but
// in virtual time, so the paper's 9216-core Kraken runs fit in
// milliseconds of wall time.  Constants are calibrated in EXPERIMENTS.md;
// the real-thread runtime cross-validates the model at small scale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/stats.hpp"
#include "core/types.hpp"
#include "fsim/storage_model.hpp"

namespace dedicore::model {

enum class Strategy {
  kFilePerProcess,
  kCollective,
  kDamaris,
  kDamarisThrottled,
  /// Ablation: dedicated cores fed by message passing instead of shared
  /// memory (the design of [9] in the paper) — two extra copies through
  /// the interconnect on the critical path.
  kDamarisMsgPassing,
  /// Dedicated I/O *nodes* (DataSpaces/IOFSL-style placement, the
  /// runtime's dedicated_mode=nodes): every core of a compute node runs
  /// the simulation, each compute node ships its output once over the
  /// interconnect to an I/O node serving `compute_nodes_per_io_node`
  /// compute nodes.  No core is sacrificed, but hand-off pays interconnect
  /// bandwidth and the (fewer) I/O nodes absorb a whole group's traffic.
  kDedicatedNodes,
};

std::string_view strategy_name(Strategy s) noexcept;

struct ClusterSpec {
  int total_cores = 9216;
  int cores_per_node = 12;  ///< Kraken XT5 nodes
  int dedicated_cores = 1;  ///< used by the Damaris strategies

  [[nodiscard]] int nodes() const noexcept { return total_cores / cores_per_node; }
  [[nodiscard]] int clients_per_node() const noexcept {
    return cores_per_node - dedicated_cores;
  }
};

struct WorkloadSpec {
  int iterations = 10;
  double compute_seconds = 350.0;  ///< per iteration, per core (weak scaling)
  double compute_noise = 0.005;    ///< relative stddev of compute time
  std::uint64_t bytes_per_core = 43ull << 20;  ///< output per core per iteration

  double shm_bandwidth = 4.0e9;          ///< node memory-bus copy rate (B/s)
  double interconnect_bandwidth = 1.2e9; ///< per-endpoint network rate (B/s)

  int aggregators_per_node = 1;  ///< collective two-phase writers
  int fpp_stripe = 1;            ///< stripes per file-per-process file
  int damaris_stripe = 4;        ///< stripes per per-node Damaris file
  std::uint64_t node_buffer_bytes = 4ull << 30;  ///< Damaris segment size
  core::BackpressurePolicy policy = core::BackpressurePolicy::kBlock;
  int throttle_max_nodes = 0;    ///< kDamarisThrottled admission width
  /// kDedicatedNodes: compute nodes per dedicated I/O node (the paper's
  /// comparison systems provision roughly one I/O node per 16-64 compute
  /// nodes).
  int compute_nodes_per_io_node = 16;
  /// kDedicatedNodes: concurrent server workers per I/O node; 0 = the full
  /// node width (cores_per_node), the runtime's default.  Mirrors the
  /// runtime's `server_workers` so model predictions and measured behavior
  /// stay comparable along the worker axis.
  int io_node_workers = 0;
};

struct ReplayResult {
  Strategy strategy{};
  double app_seconds = 0.0;       ///< makespan of the computation cores
  double storage_drain_seconds = 0.0;  ///< when the last byte hit storage
  SampleSet visible_io_seconds;   ///< per core-iteration stall seen by app
  SampleSet hidden_io_seconds;    ///< Damaris: per node-iteration write time
  double aggregate_throughput = 0.0;   ///< B/s sustained while writing
  double peak_throughput = 0.0;        ///< best-burst B/s ("up to X GB/s")
  double dedicated_idle_fraction = 0.0;
  std::uint64_t files_created = 0;
  std::uint64_t mds_operations = 0;
  std::uint64_t iterations_skipped = 0;  ///< node-iterations dropped
  std::uint64_t total_bytes = 0;
  double io_fraction = 0.0;       ///< stalled share of app time (mean core)

  /// Ideal weak-scaling run time (compute only) for reference.
  double compute_only_seconds = 0.0;
};

/// Runs one strategy at full scale.  Deterministic per seed.
ReplayResult replay(Strategy strategy, const ClusterSpec& cluster,
                    const WorkloadSpec& workload,
                    const fsim::StorageConfig& storage_config,
                    double congestion_alpha, std::uint64_t seed);

/// Kraken-like storage parameters used by the paper-scale benches
/// (336 OSTs, Lustre; see EXPERIMENTS.md for the calibration).
fsim::StorageConfig kraken_storage_config();
/// Matching congestion coefficient.
double kraken_congestion_alpha();

/// One of the paper's three experimental platforms (§IV): Kraken
/// (Cray XT5, 12 cores/node, Lustre), Grid'5000 (24 cores/node, smaller
/// PVFS-like storage) and a Power5 cluster (16 cores/node, GPFS-like).
struct Platform {
  std::string name;
  int cores_per_node = 12;
  fsim::StorageConfig storage;
  double congestion_alpha = 0.08;
  int max_cores = 9216;  ///< largest configuration the paper used there
};

Platform kraken_platform();
Platform grid5000_platform();
Platform power5_platform();

}  // namespace dedicore::model
