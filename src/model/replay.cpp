#include "model/replay.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "des/engine.hpp"
#include "model/sim_storage.hpp"

namespace dedicore::model {

std::string_view strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kFilePerProcess: return "file-per-process";
    case Strategy::kCollective: return "collective";
    case Strategy::kDamaris: return "damaris";
    case Strategy::kDamarisThrottled: return "damaris+sched";
    case Strategy::kDamarisMsgPassing: return "damaris-msg";
    case Strategy::kDedicatedNodes: return "dedicated-nodes";
  }
  return "?";
}

fsim::StorageConfig kraken_storage_config() {
  // Kraken: Lustre with 336 OSTs behind one MDS.  Values calibrated so the
  // three baselines land near the paper's reported throughputs (see
  // EXPERIMENTS.md, "Storage calibration").
  fsim::StorageConfig cfg;
  cfg.ost_count = 336;
  cfg.ost_bandwidth = 90e6;       // Kraken aggregate ~30 GB/s over 336 OSTs
  cfg.mds_op_cost = 24e-3;        // serialized create/open under load
  cfg.stripe_size = 1u << 20;
  cfg.default_stripe_count = 1;
  cfg.request_latency = 1e-3;
  cfg.jitter_sigma = 0.30;
  cfg.spike_probability = 0.015;
  cfg.spike_max = 24.0;
  cfg.spike_alpha = 1.2;
  cfg.interference_on_rate = 0.02;
  cfg.interference_off_rate = 0.10;
  cfg.interference_share = 0.4;
  cfg.seed = 20130520;  // IPDPS'13
  return cfg;
}

double kraken_congestion_alpha() { return 0.08; }

Platform kraken_platform() {
  Platform p;
  p.name = "Kraken (Cray XT5, Lustre)";
  p.cores_per_node = 12;
  p.storage = kraken_storage_config();
  p.congestion_alpha = kraken_congestion_alpha();
  p.max_cores = 9216;
  return p;
}

Platform grid5000_platform() {
  // Grid'5000 parapluie-class nodes: 24 cores/node, a much smaller
  // PVFS-like storage system (few servers, lower aggregate bandwidth, but
  // also fewer clients hitting it).
  Platform p;
  p.name = "Grid'5000 (24c/node, PVFS)";
  p.cores_per_node = 24;
  fsim::StorageConfig s;
  s.ost_count = 24;
  s.ost_bandwidth = 120e6;
  s.mds_op_cost = 8e-3;
  s.stripe_size = 1u << 20;
  s.default_stripe_count = 1;
  s.request_latency = 5e-4;
  s.jitter_sigma = 0.25;
  s.spike_probability = 0.02;
  s.spike_max = 16.0;
  s.spike_alpha = 1.3;
  s.interference_on_rate = 0.01;  // reserved nodes: little interference
  s.interference_off_rate = 0.20;
  s.interference_share = 0.3;
  s.seed = 5000;
  p.storage = s;
  p.congestion_alpha = 0.05;
  p.max_cores = 672;  // the paper's Grid'5000 runs used up to ~28 nodes
  return p;
}

Platform power5_platform() {
  // Power5 cluster: 16 cores/node, GPFS-like storage (fewer, fatter
  // servers; higher per-op latency).
  Platform p;
  p.name = "Power5 (16c/node, GPFS)";
  p.cores_per_node = 16;
  fsim::StorageConfig s;
  s.ost_count = 16;
  s.ost_bandwidth = 250e6;
  s.mds_op_cost = 12e-3;
  s.stripe_size = 4u << 20;
  s.default_stripe_count = 1;
  s.request_latency = 1e-3;
  s.jitter_sigma = 0.3;
  s.spike_probability = 0.02;
  s.spike_max = 20.0;
  s.spike_alpha = 1.2;
  s.interference_on_rate = 0.03;
  s.interference_off_rate = 0.12;
  s.interference_share = 0.4;
  s.seed = 555;
  p.storage = s;
  p.congestion_alpha = 0.06;
  p.max_cores = 512;
  return p;
}

namespace {

/// Shared pieces of every replay.
struct ReplayContext {
  des::Engine engine;
  std::unique_ptr<SimStorage> storage;
  const ClusterSpec& cluster;
  const WorkloadSpec& workload;
  int ost_count;
  Rng rng;
  ReplayResult result;
  double app_finish = 0.0;  ///< max completion over compute actors

  ReplayContext(const ClusterSpec& c, const WorkloadSpec& w,
                const fsim::StorageConfig& s, double alpha, std::uint64_t seed)
      : cluster(c), workload(w), ost_count(s.ost_count), rng(seed) {
    storage = std::make_unique<SimStorage>(engine, s, alpha);
  }

  [[nodiscard]] double compute_time(Rng& r) const {
    return workload.compute_seconds *
           std::max(0.1, 1.0 + workload.compute_noise * r.normal());
  }
};

// ---------------------------------------------------------------------------
// File-per-process: every core computes, creates its own file (serialized
// MDS) and writes it, every iteration.
// ---------------------------------------------------------------------------

void replay_file_per_process(ReplayContext& ctx) {
  const int cores = ctx.cluster.total_cores;
  const int iterations = ctx.workload.iterations;
  const double bytes = static_cast<double>(ctx.workload.bytes_per_core);

  struct CoreActor {
    int iterations_done = 0;
    double io_start = 0.0;
    Rng rng;
  };
  auto actors = std::make_shared<std::vector<CoreActor>>(
      static_cast<std::size_t>(cores));
  for (auto& a : *actors) a.rng = ctx.rng.split();

  // The engine drains inside ctx.engine.run() before this scope exits, so
  // the closures may capture the function object by reference; a by-value
  // shared_ptr capture would form a self-cycle and leak every actor.
  std::function<void(int)> start_iteration;
  start_iteration = [&ctx, actors, &start_iteration, bytes, iterations](int core) {
    CoreActor& a = (*actors)[static_cast<std::size_t>(core)];
    ctx.engine.schedule_in(ctx.compute_time(a.rng), [&ctx, actors,
                                                     &start_iteration, bytes,
                                                     iterations, core] {
      CoreActor& self = (*actors)[static_cast<std::size_t>(core)];
      self.io_start = ctx.engine.now();
      ctx.storage->mds_op([&ctx, actors, &start_iteration, bytes, iterations, core] {
        CoreActor& me = (*actors)[static_cast<std::size_t>(core)];
        const std::uint64_t file_index =
            static_cast<std::uint64_t>(core) * static_cast<std::uint64_t>(iterations) +
            static_cast<std::uint64_t>(me.iterations_done);
        ctx.storage->write(
            ctx.storage->stripe_chunks(file_index, bytes, ctx.workload.fpp_stripe),
            [&ctx, actors, &start_iteration, iterations, core](double) {
              CoreActor& done = (*actors)[static_cast<std::size_t>(core)];
              ctx.result.visible_io_seconds.add(ctx.engine.now() - done.io_start);
              ++ctx.result.files_created;
              if (++done.iterations_done < iterations) {
                start_iteration(core);
              } else {
                ctx.app_finish = std::max(ctx.app_finish, ctx.engine.now());
              }
            });
      });
    });
  };
  for (int core = 0; core < cores; ++core) start_iteration(core);
  ctx.engine.run();
}

// ---------------------------------------------------------------------------
// Collective two-phase into one shared file per iteration: lockstep
// compute, rank 0 creates, aggregators open (serialized MDS), exchange
// their group's data over the interconnect, then write regions striped
// across every OST.  Every core stalls for the whole phase.
// ---------------------------------------------------------------------------

void replay_collective(ReplayContext& ctx) {
  const int cores = ctx.cluster.total_cores;
  const int iterations = ctx.workload.iterations;
  const int n_aggr = ctx.cluster.nodes() * ctx.workload.aggregators_per_node;
  const double total_bytes = static_cast<double>(ctx.workload.bytes_per_core) * cores;
  const double bytes_per_aggr = total_bytes / n_aggr;
  const int ost_count = ctx.ost_count;

  struct State {
    int iteration = 0;
    double phase_start = 0.0;
    int aggr_remaining = 0;
  };
  auto state = std::make_shared<State>();

  std::function<void()> run_iteration;  // by-ref captures: see replay_file_per_process
  run_iteration = [&ctx, state, &run_iteration, cores, iterations, n_aggr,
                    bytes_per_aggr, ost_count] {
    double slowest = 0.0;
    for (int c = 0; c < cores; ++c)
      slowest = std::max(slowest, ctx.compute_time(ctx.rng));

    ctx.engine.schedule_in(slowest, [&ctx, state, &run_iteration, iterations,
                                     n_aggr, bytes_per_aggr, ost_count] {
      state->phase_start = ctx.engine.now();
      state->aggr_remaining = n_aggr;
      ctx.storage->mds_op([&ctx, state, &run_iteration, iterations, n_aggr,
                           bytes_per_aggr, ost_count] {
        ++ctx.result.files_created;
        const double exchange = bytes_per_aggr / ctx.workload.interconnect_bandwidth;
        for (int a = 0; a < n_aggr; ++a) {
          ctx.storage->mds_op([&ctx, state, &run_iteration, iterations,
                               bytes_per_aggr, ost_count, exchange] {
            ctx.engine.schedule_in(exchange, [&ctx, state, &run_iteration,
                                              iterations, bytes_per_aggr,
                                              ost_count] {
              std::vector<std::pair<int, double>> chunks;
              chunks.reserve(static_cast<std::size_t>(ost_count));
              for (int o = 0; o < ost_count; ++o)
                chunks.emplace_back(o, bytes_per_aggr / ost_count);
              ctx.storage->write(std::move(chunks), [&ctx, state,
                                                     &run_iteration,
                                                     iterations](double) {
                if (--state->aggr_remaining == 0) {
                  const double phase = ctx.engine.now() - state->phase_start;
                  ctx.result.visible_io_seconds.add(phase);
                  ctx.app_finish = ctx.engine.now();
                  if (++state->iteration < iterations) run_iteration();
                }
              });
            });
          });
        }
      });
    });
  };
  run_iteration();
  ctx.engine.run();
}

// ---------------------------------------------------------------------------
// Damaris: clients hand off through shared memory (or the interconnect in
// the message-passing ablation) into a bounded per-node buffer; the
// dedicated core(s) aggregate and write one file per node per iteration,
// overlapped with the next compute phase.  Optional admission throttling.
// ---------------------------------------------------------------------------

void replay_damaris(ReplayContext& ctx, Strategy strategy) {
  const int nodes = ctx.cluster.nodes();
  const int clients = ctx.cluster.clients_per_node();
  const int server_width = std::max(1, ctx.cluster.dedicated_cores);
  const int iterations = ctx.workload.iterations;
  const double node_bytes = static_cast<double>(ctx.workload.bytes_per_core) * clients;
  const auto slots = static_cast<int>(std::max<std::uint64_t>(
      1, ctx.workload.node_buffer_bytes /
             std::max<std::uint64_t>(1, static_cast<std::uint64_t>(node_bytes))));
  const bool throttled = strategy == Strategy::kDamarisThrottled;
  const bool msg_passing = strategy == Strategy::kDamarisMsgPassing;

  // Hand-off cost visible to the simulation: one shared-memory copy for
  // Damaris, two interconnect traversals for the message-passing ablation.
  const double handoff_seconds =
      msg_passing ? 2.0 * node_bytes / ctx.workload.interconnect_bandwidth
                  : node_bytes / ctx.workload.shm_bandwidth;

  auto semaphore = std::make_shared<des::SimSemaphore>(
      ctx.engine, throttled ? std::max(1, ctx.workload.throttle_max_nodes) : nodes);

  struct NodeActor {
    int app_iteration = 0;      ///< compute phases completed
    int slots_used = 0;
    int servers_active = 0;
    bool app_blocked = false;
    double block_start = 0.0;
    double pending_wait = 0.0;  ///< block time to charge to the next hand-off
    std::deque<int> ready;      ///< buffered iterations awaiting a server
    double server_busy_seconds = 0.0;
    Rng rng;
  };
  auto actors = std::make_shared<std::vector<NodeActor>>(
      static_cast<std::size_t>(nodes));
  for (auto& a : *actors) a.rng = ctx.rng.split();

  // Mutually recursive; by-ref captures (see replay_file_per_process).
  std::function<void(int)> app_step;
  std::function<void(int)> server_kick;

  server_kick = [&ctx, actors, &server_kick, &app_step, semaphore, node_bytes,
                  iterations, server_width](int node) {
    NodeActor& a = (*actors)[static_cast<std::size_t>(node)];
    if (a.servers_active >= server_width || a.ready.empty()) return;
    ++a.servers_active;
    const int iteration = a.ready.front();
    a.ready.pop_front();
    const double busy_from = ctx.engine.now();

    semaphore->acquire([&ctx, actors, &server_kick, &app_step, semaphore,
                        node_bytes, iterations, node, iteration, busy_from] {
      ctx.storage->mds_op([&ctx, actors, &server_kick, &app_step, semaphore,
                           node_bytes, iterations, node, iteration, busy_from] {
        const std::uint64_t file_index =
            static_cast<std::uint64_t>(node) * static_cast<std::uint64_t>(iterations) +
            static_cast<std::uint64_t>(iteration);
        ctx.storage->write(
            ctx.storage->stripe_chunks(file_index, node_bytes,
                                       ctx.workload.damaris_stripe),
            [&ctx, actors, &server_kick, &app_step, semaphore, node, busy_from](double) {
              NodeActor& a = (*actors)[static_cast<std::size_t>(node)];
              semaphore->release();
              ++ctx.result.files_created;
              const double busy = ctx.engine.now() - busy_from;
              a.server_busy_seconds += busy;
              ctx.result.hidden_io_seconds.add(busy);
              --a.slots_used;
              --a.servers_active;
              if (a.app_blocked) {
                a.app_blocked = false;
                a.pending_wait = ctx.engine.now() - a.block_start;
                ctx.engine.schedule_in(0.0, [&app_step, node] { app_step(node); });
              }
              server_kick(node);
            });
      });
    });
  };

  // One app_step call hands off the iteration produced by the just-finished
  // compute phase (or blocks/skips), then schedules the next compute phase.
  app_step = [&ctx, actors, &app_step, &server_kick, clients, iterations,
               handoff_seconds, slots](int node) {
    NodeActor& a = (*actors)[static_cast<std::size_t>(node)];

    if (a.slots_used >= slots) {
      if (ctx.workload.policy == core::BackpressurePolicy::kBlock) {
        if (!a.app_blocked) {
          a.app_blocked = true;
          a.block_start = ctx.engine.now();
        }
        return;  // resumed by a server completion
      }
      // Skip policy: this iteration's output is dropped entirely.
      ++ctx.result.iterations_skipped;
      for (int c = 0; c < clients; ++c) ctx.result.visible_io_seconds.add(0.0);
    } else {
      ++a.slots_used;
      const double visible = handoff_seconds + a.pending_wait;
      a.pending_wait = 0.0;
      for (int c = 0; c < clients; ++c) ctx.result.visible_io_seconds.add(visible);
      const int iteration = a.app_iteration;
      ctx.engine.schedule_in(handoff_seconds, [&ctx, actors, &server_kick, node,
                                               iteration] {
        (*actors)[static_cast<std::size_t>(node)].ready.push_back(iteration);
        server_kick(node);
      });
    }

    if (++a.app_iteration < iterations) {
      ctx.engine.schedule_in(ctx.compute_time(a.rng),
                             [&app_step, node] { app_step(node); });
    } else {
      ctx.app_finish = std::max(ctx.app_finish, ctx.engine.now() + handoff_seconds);
    }
  };

  for (int node = 0; node < nodes; ++node) {
    NodeActor& a = (*actors)[static_cast<std::size_t>(node)];
    ctx.engine.schedule_in(ctx.compute_time(a.rng),
                           [&app_step, node] { app_step(node); });
  }
  ctx.engine.run();

  double busy_total = 0.0;
  for (const auto& a : *actors) busy_total += a.server_busy_seconds;
  const double span = std::max(ctx.engine.now(), 1e-9);
  ctx.result.dedicated_idle_fraction =
      1.0 - busy_total / (static_cast<double>(nodes * server_width) * span);
}

// ---------------------------------------------------------------------------
// Dedicated I/O nodes: compute nodes keep every core for the simulation
// and ship one aggregated buffer per iteration over the interconnect to
// the I/O node serving their group.  Each I/O node runs io_node_workers
// server workers (default: the full cores_per_node width) and a bounded
// staging buffer shared by its whole group.
// ---------------------------------------------------------------------------

void replay_dedicated_nodes(ReplayContext& ctx) {
  const int nodes = ctx.cluster.nodes();
  const int clients = ctx.cluster.cores_per_node;  // full node computes
  const int group = std::max(1, ctx.workload.compute_nodes_per_io_node);
  const int io_nodes = (nodes + group - 1) / group;
  // Worker-pool width of an I/O node: the whole node by default, narrower
  // when the runtime is configured with fewer server_workers.
  const int server_width =
      ctx.workload.io_node_workers > 0
          ? std::min(ctx.workload.io_node_workers, ctx.cluster.cores_per_node)
          : ctx.cluster.cores_per_node;
  const int iterations = ctx.workload.iterations;
  const double node_bytes =
      static_cast<double>(ctx.workload.bytes_per_core) * clients;
  // One interconnect traversal on the critical path (the I/O node receives
  // directly; no intra-node forwarding hop as in the msg-passing ablation).
  const double handoff_seconds =
      node_bytes / ctx.workload.interconnect_bandwidth;
  // The staging buffer is per I/O node and absorbs a whole group's output.
  const auto slots = static_cast<int>(std::max<std::uint64_t>(
      1, ctx.workload.node_buffer_bytes /
             std::max<std::uint64_t>(1, static_cast<std::uint64_t>(node_bytes))));

  struct ComputeActor {
    int app_iteration = 0;
    bool app_blocked = false;
    double block_start = 0.0;
    double pending_wait = 0.0;
    Rng rng;
  };
  struct IoActor {
    int slots_used = 0;
    int servers_active = 0;
    std::deque<std::pair<int, int>> ready;  ///< (compute node, iteration)
    double server_busy_seconds = 0.0;
  };
  auto computes = std::make_shared<std::vector<ComputeActor>>(
      static_cast<std::size_t>(nodes));
  auto ios = std::make_shared<std::vector<IoActor>>(
      static_cast<std::size_t>(io_nodes));
  for (auto& a : *computes) a.rng = ctx.rng.split();

  // Mutually recursive; by-ref captures (see replay_file_per_process).
  std::function<void(int)> app_step;
  std::function<void(int)> server_kick;

  server_kick = [&ctx, computes, ios, &server_kick, &app_step, node_bytes,
                 iterations, server_width, group](int io) {
    IoActor& s = (*ios)[static_cast<std::size_t>(io)];
    if (s.servers_active >= server_width || s.ready.empty()) return;
    ++s.servers_active;
    const int node = s.ready.front().first;
    const int iteration = s.ready.front().second;
    s.ready.pop_front();
    const double busy_from = ctx.engine.now();

    ctx.storage->mds_op([&ctx, computes, ios, &server_kick, &app_step,
                         node_bytes, iterations, io, node, iteration,
                         busy_from, group] {
      const std::uint64_t file_index =
          static_cast<std::uint64_t>(node) * static_cast<std::uint64_t>(iterations) +
          static_cast<std::uint64_t>(iteration);
      ctx.storage->write(
          ctx.storage->stripe_chunks(file_index, node_bytes,
                                     ctx.workload.damaris_stripe),
          [&ctx, computes, ios, &server_kick, &app_step, io, node, busy_from,
           group](double) {
            IoActor& s = (*ios)[static_cast<std::size_t>(io)];
            ++ctx.result.files_created;
            const double busy = ctx.engine.now() - busy_from;
            s.server_busy_seconds += busy;
            ctx.result.hidden_io_seconds.add(busy);
            --s.slots_used;
            --s.servers_active;
            // A freed slot may unblock any compute node of this group.
            for (int n = io * group;
                 n < std::min(static_cast<int>(computes->size()),
                              (io + 1) * group);
                 ++n) {
              ComputeActor& a = (*computes)[static_cast<std::size_t>(n)];
              if (a.app_blocked) {
                a.app_blocked = false;
                // Accumulate: a resumed node can lose the freed slot to a
                // group peer and re-block, so one hand-off may pay several
                // wait segments.
                a.pending_wait += ctx.engine.now() - a.block_start;
                ctx.engine.schedule_in(0.0, [&app_step, n] { app_step(n); });
                break;
              }
            }
            server_kick(io);
          });
    });
  };

  app_step = [&ctx, computes, ios, &app_step, &server_kick, clients,
              iterations, handoff_seconds, slots, group](int node) {
    ComputeActor& a = (*computes)[static_cast<std::size_t>(node)];
    IoActor& s = (*ios)[static_cast<std::size_t>(node / group)];

    if (s.slots_used >= slots) {
      if (ctx.workload.policy == core::BackpressurePolicy::kBlock) {
        if (!a.app_blocked) {
          a.app_blocked = true;
          a.block_start = ctx.engine.now();
        }
        return;  // resumed by a server completion in this group
      }
      // Skip policy: this iteration's output is dropped entirely.
      ++ctx.result.iterations_skipped;
      for (int c = 0; c < clients; ++c) ctx.result.visible_io_seconds.add(0.0);
    } else {
      ++s.slots_used;
      const double visible = handoff_seconds + a.pending_wait;
      a.pending_wait = 0.0;
      for (int c = 0; c < clients; ++c) ctx.result.visible_io_seconds.add(visible);
      const int iteration = a.app_iteration;
      const int io = node / group;
      ctx.engine.schedule_in(handoff_seconds, [&ctx, ios, &server_kick, io,
                                               node, iteration] {
        (*ios)[static_cast<std::size_t>(io)].ready.emplace_back(node, iteration);
        server_kick(io);
      });
    }

    if (++a.app_iteration < iterations) {
      ctx.engine.schedule_in(ctx.compute_time(a.rng),
                             [&app_step, node] { app_step(node); });
    } else {
      ctx.app_finish = std::max(ctx.app_finish, ctx.engine.now() + handoff_seconds);
    }
  };

  for (int node = 0; node < nodes; ++node) {
    ComputeActor& a = (*computes)[static_cast<std::size_t>(node)];
    ctx.engine.schedule_in(ctx.compute_time(a.rng),
                           [&app_step, node] { app_step(node); });
  }
  ctx.engine.run();

  double busy_total = 0.0;
  for (const auto& s : *ios) busy_total += s.server_busy_seconds;
  const double span = std::max(ctx.engine.now(), 1e-9);
  ctx.result.dedicated_idle_fraction =
      1.0 - busy_total / (static_cast<double>(io_nodes * server_width) * span);
}

}  // namespace

ReplayResult replay(Strategy strategy, const ClusterSpec& cluster,
                    const WorkloadSpec& workload,
                    const fsim::StorageConfig& storage_config,
                    double congestion_alpha, std::uint64_t seed) {
  DEDICORE_CHECK(cluster.total_cores % cluster.cores_per_node == 0,
                 "replay: cores must fill whole nodes");
  ReplayContext ctx(cluster, workload, storage_config, congestion_alpha, seed);
  ctx.result.strategy = strategy;

  switch (strategy) {
    case Strategy::kFilePerProcess:
      replay_file_per_process(ctx);
      break;
    case Strategy::kCollective:
      replay_collective(ctx);
      break;
    case Strategy::kDamaris:
    case Strategy::kDamarisThrottled:
    case Strategy::kDamarisMsgPassing:
      replay_damaris(ctx, strategy);
      break;
    case Strategy::kDedicatedNodes:
      replay_dedicated_nodes(ctx);
      break;
  }

  ReplayResult& r = ctx.result;
  r.app_seconds = ctx.app_finish;
  r.storage_drain_seconds = ctx.engine.now();
  r.aggregate_throughput = ctx.storage->aggregate_throughput();
  // "Up to" throughput: best burst that carried at least a tenth of one
  // output step's volume (filters trivial lone-writer bursts).
  const double step_bytes = static_cast<double>(workload.bytes_per_core) *
                            cluster.total_cores;
  r.peak_throughput = ctx.storage->peak_burst_throughput(step_bytes * 0.1);
  r.mds_operations = ctx.storage->mds_operations();
  r.total_bytes = static_cast<std::uint64_t>(ctx.storage->bytes_written());
  r.compute_only_seconds = workload.compute_seconds * workload.iterations;
  // Dedicated-nodes keeps every core of the compute nodes computing; the
  // dedicated-cores strategies give up dedicated_cores per node.
  const int compute_cores = (strategy == Strategy::kDamaris ||
                             strategy == Strategy::kDamarisThrottled ||
                             strategy == Strategy::kDamarisMsgPassing)
                                ? cluster.nodes() * cluster.clients_per_node()
                                : cluster.total_cores;
  double stall_total = 0.0;
  for (double v : r.visible_io_seconds.samples()) stall_total += v;
  if (strategy == Strategy::kCollective) {
    // Collective samples are per-iteration (every core stalls together);
    // scale to per-core terms.
    stall_total *= compute_cores;
  }
  if (r.app_seconds > 0.0 && compute_cores > 0)
    r.io_fraction = stall_total / compute_cores / r.app_seconds;
  return r;
}

}  // namespace dedicore::model
