#include "model/sim_storage.hpp"

#include <algorithm>

namespace dedicore::model {

namespace {
// Flows below this many bytes are complete.  Must be large enough that a
// remaining amount too small to advance virtual time (bytes / rate below
// the double ulp of `now`) still counts as finished — otherwise a
// completion event can reschedule itself at the same timestamp forever.
constexpr double kRemainingEpsilon = 1e-3;
}  // namespace

SimStorage::SimStorage(des::Engine& engine, fsim::StorageConfig config,
                       double congestion_alpha)
    : engine_(engine), config_(config), alpha_(congestion_alpha),
      mds_(engine),
      jitter_(config, Rng(config.seed ^ 0x243f6a8885a308d3ull)),
      rng_(config.seed) {
  config_.validate();
  DEDICORE_CHECK(congestion_alpha >= 0.0, "congestion alpha must be >= 0");
  Rng root(config_.seed ^ 0x13198a2e03707344ull);
  links_.reserve(static_cast<std::size_t>(config_.ost_count));
  for (int i = 0; i < config_.ost_count; ++i)
    links_.emplace_back(fsim::InterferenceProcess(config_, root.split()));
}

void SimStorage::mds_op(std::function<void()> done) {
  ++mds_ops_;
  mds_.request(config_.mds_op_cost, std::move(done));
}

double SimStorage::mds_busy_time() const noexcept { return mds_.busy_time(); }

double SimStorage::rate_per_flow(const Link& link) const noexcept {
  const auto n = static_cast<double>(link.flows.size());
  if (n <= 0.0) return 0.0;
  return config_.ost_bandwidth / (n * (1.0 + alpha_ * (n - 1.0)));
}

void SimStorage::advance(Link& link) {
  const double now = engine_.now();
  const double dt = now - link.last_update;
  if (dt > 0.0 && !link.flows.empty()) {
    const double drained = rate_per_flow(link) * dt;
    for (auto& [id, flow] : link.flows)
      flow.remaining = std::max(0.0, flow.remaining - drained);
  }
  link.last_update = now;
}

void SimStorage::reschedule(int ost) {
  Link& link = links_[static_cast<std::size_t>(ost)];
  if (link.pending_completion != des::kInvalidEvent) {
    engine_.cancel(link.pending_completion);
    link.pending_completion = des::kInvalidEvent;
  }
  if (link.flows.empty()) return;
  double least = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : link.flows)
    least = std::min(least, flow.remaining);
  // Flows at/below the epsilon complete immediately; on_link_completion
  // erases them, so progress is guaranteed.
  const double delay =
      least <= kRemainingEpsilon ? 0.0 : least / rate_per_flow(link);
  link.pending_completion = engine_.schedule_at(
      engine_.now() + delay, [this, ost] { on_link_completion(ost); });
}

void SimStorage::on_link_completion(int ost) {
  Link& link = links_[static_cast<std::size_t>(ost)];
  link.pending_completion = des::kInvalidEvent;
  advance(link);

  std::vector<std::uint64_t> finished_requests;
  for (auto it = link.flows.begin(); it != link.flows.end();) {
    if (it->second.remaining <= kRemainingEpsilon) {
      finished_requests.push_back(it->second.request);
      it = link.flows.erase(it);
    } else {
      ++it;
    }
  }
  DEDICORE_CHECK(active_chunks_ >= finished_requests.size(),
                 "SimStorage: chunk accounting underflow");
  active_chunks_ -= finished_requests.size();
  if (active_chunks_ == 0 && !finished_requests.empty())
    busy_span_ += engine_.now() - busy_since_;
  for (std::uint64_t rid : finished_requests) {
    auto it = requests_.find(rid);
    DEDICORE_CHECK(it != requests_.end(), "SimStorage: orphan flow");
    if (--it->second.chunks_left == 0) {
      const double duration = engine_.now() - it->second.start;
      last_activity_ = std::max(last_activity_, engine_.now());
      burst_bytes_ += it->second.bytes;
      auto done = std::move(it->second.done);
      requests_.erase(it);
      if (done) done(duration);
    }
  }
  if (active_chunks_ == 0 && !finished_requests.empty()) {  // burst closed
    bursts_.push_back(
        Burst{busy_since_, engine_.now() - busy_since_, burst_bytes_});
  }
  reschedule(ost);
}

void SimStorage::write(std::vector<std::pair<int, double>> chunks,
                       std::function<void(double)> done) {
  DEDICORE_CHECK(!chunks.empty(), "SimStorage::write: no chunks");
  const double now = engine_.now();
  if (first_activity_ < 0.0) first_activity_ = now;
  if (active_chunks_ == 0) {
    busy_since_ = now;
    burst_bytes_ = 0.0;
  }
  active_chunks_ += chunks.size();
  ++writes_;

  const std::uint64_t rid = next_request_id_++;
  Request request;
  request.start = now;
  request.chunks_left = static_cast<int>(chunks.size());
  for (const auto& [ost, b] : chunks) request.bytes += b;
  request.done = std::move(done);
  requests_.emplace(rid, std::move(request));

  const double factor = jitter_.factor();
  for (auto& [ost, bytes] : chunks) {
    DEDICORE_CHECK(ost >= 0 && ost < config_.ost_count,
                   "SimStorage::write: OST index out of range");
    DEDICORE_CHECK(bytes > 0.0, "SimStorage::write: empty chunk");
    bytes_written_ += bytes;
    Link& link = links_[static_cast<std::size_t>(ost)];
    advance(link);
    // Interference steals a share of the OST for the whole transfer; model
    // it as byte inflation sampled from the process state at submit time.
    const double avail = link.interference.available_fraction(now);
    Flow flow;
    flow.remaining = bytes * factor / std::max(avail, 0.05);
    flow.request = rid;
    link.flows.emplace(next_flow_id_++, flow);
    reschedule(ost);
  }
}

std::vector<std::pair<int, double>> SimStorage::stripe_chunks(
    std::uint64_t file_index, double bytes, int stripe_count) const {
  DEDICORE_CHECK(stripe_count > 0 && stripe_count <= config_.ost_count,
                 "stripe_chunks: bad stripe count");
  // Hash the file index so stripe origins spread uniformly over the OSTs
  // (Lustre assigns starting OSTs round-robin per creation order, which is
  // effectively uncorrelated with our dense file-index numbering; a
  // multiplicative hash reproduces that decorrelation).
  std::uint64_t h = file_index;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  const int origin =
      static_cast<int>(h % static_cast<std::uint64_t>(config_.ost_count));
  std::vector<std::pair<int, double>> out;
  const double per = bytes / stripe_count;
  for (int s = 0; s < stripe_count; ++s)
    out.emplace_back((origin + s) % config_.ost_count, per);
  return out;
}

double SimStorage::aggregate_throughput() const noexcept {
  if (first_activity_ < 0.0) return 0.0;
  double span = busy_span_;
  if (active_chunks_ > 0)  // still mid-burst: count the open interval
    span += last_activity_ - busy_since_;
  if (span <= 0.0) span = last_activity_ - first_activity_;
  return span > 0.0 ? bytes_written_ / span : 0.0;
}

double SimStorage::peak_burst_throughput(double min_bytes) const noexcept {
  double peak = 0.0;
  for (const Burst& burst : bursts_)
    if (burst.bytes >= min_bytes) peak = std::max(peak, burst.throughput());
  return std::max(peak, aggregate_throughput());
}

}  // namespace dedicore::model
