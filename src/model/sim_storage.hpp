// Event-driven storage model on the DES engine: the virtual-time
// counterpart of fsim::FileSystem, used to replay the paper's experiments
// at Kraken scale (hundreds of nodes, thousands of cores).
//
// Per OST, concurrent flows share bandwidth *with congestion degradation*:
//
//   per-flow rate = B * avail / ( n * (1 + alpha * (n - 1)) )
//
// The (1 + alpha(n-1)) factor models Lustre extent-lock churn and disk
// seek amplification when many clients hit one OST — the mechanism behind
// the paper's collapse of collective I/O to 0.5 GB/s on hardware whose
// raw aggregate is tens of GB/s.  alpha is calibrated in EXPERIMENTS.md.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "fsim/storage_model.hpp"

namespace dedicore::model {

class SimStorage {
 public:
  SimStorage(des::Engine& engine, fsim::StorageConfig config,
             double congestion_alpha);

  /// Serialized metadata operation (file create/open); `done` fires at its
  /// completion time.
  void mds_op(std::function<void()> done);

  /// Starts a write of `chunks` = {(ost, bytes), ...} now; all chunks
  /// proceed concurrently; `done(duration)` fires when the last finishes.
  /// Jitter and interference are applied internally.
  void write(std::vector<std::pair<int, double>> chunks,
             std::function<void(double)> done);

  /// Round-robin striping: chunks of a `bytes`-long file whose stripes
  /// start at OST (file_index * stripe_count) % ost_count.
  [[nodiscard]] std::vector<std::pair<int, double>> stripe_chunks(
      std::uint64_t file_index, double bytes, int stripe_count) const;

  // -- observability ------------------------------------------------------
  [[nodiscard]] double bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t mds_operations() const noexcept { return mds_ops_; }
  [[nodiscard]] double mds_busy_time() const noexcept;
  /// Window of storage activity [first write start, last completion].
  [[nodiscard]] double first_activity() const noexcept { return first_activity_; }
  [[nodiscard]] double last_activity() const noexcept { return last_activity_; }
  /// Total time with at least one active transfer anywhere (union of
  /// write intervals).  With asynchronous Damaris writes the storage sits
  /// idle between iteration bursts; the paper's "aggregate throughput" is
  /// measured while writing, i.e. over this busy span.
  [[nodiscard]] double busy_span() const noexcept { return busy_span_; }
  /// bytes_written / busy_span — sustained throughput while writing.
  [[nodiscard]] double aggregate_throughput() const noexcept;
  /// One contiguous busy interval of the storage system.
  struct Burst {
    double start = 0.0;
    double duration = 0.0;
    double bytes = 0.0;
    [[nodiscard]] double throughput() const noexcept {
      return duration > 0.0 ? bytes / duration : 0.0;
    }
  };
  /// All closed bursts, in time order.
  [[nodiscard]] const std::vector<Burst>& bursts() const noexcept { return bursts_; }
  /// Best burst throughput among bursts carrying at least `min_bytes` —
  /// the paper's "up to X GB/s" figure (min_bytes filters out trivial
  /// lone-writer bursts).
  [[nodiscard]] double peak_burst_throughput(double min_bytes = 0.0) const noexcept;

 private:
  struct Flow {
    double remaining = 0.0;
    std::uint64_t request = 0;
  };

  struct Link {
    std::map<std::uint64_t, Flow> flows;  // flow id -> state
    double last_update = 0.0;
    des::EventId pending_completion = des::kInvalidEvent;
    fsim::InterferenceProcess interference;
    explicit Link(fsim::InterferenceProcess ip) : interference(std::move(ip)) {}
  };

  struct Request {
    int chunks_left = 0;
    double start = 0.0;
    double bytes = 0.0;
    std::function<void(double)> done;
  };

  [[nodiscard]] double rate_per_flow(const Link& link) const noexcept;
  void advance(Link& link);
  void reschedule(int ost);
  void on_link_completion(int ost);

  des::Engine& engine_;
  fsim::StorageConfig config_;
  double alpha_;
  des::SimFifoServer mds_;
  std::vector<Link> links_;
  std::map<std::uint64_t, Request> requests_;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  fsim::JitterModel jitter_;
  Rng rng_;

  double bytes_written_ = 0.0;
  std::uint64_t writes_ = 0;
  std::uint64_t mds_ops_ = 0;
  double first_activity_ = -1.0;
  double last_activity_ = 0.0;
  std::uint64_t active_chunks_ = 0;  ///< flows in flight across all OSTs
  double busy_since_ = 0.0;
  double busy_span_ = 0.0;
  double burst_bytes_ = 0.0;  ///< bytes completed in the current burst
  std::vector<Burst> bursts_;
};

}  // namespace dedicore::model
